// Synthetic CGP-job arrival trace (regenerates paper Fig. 1).
//
// The paper motivates CGraph with a week-long trace from a production social-network
// platform: (a) how many concurrent iterative jobs run at once (peaking above 20), and
// (b) what fraction of the graph's partitions is being used by more than k jobs at a
// time. That trace is proprietary, so this generator produces a qualitatively matched
// stand-in: diurnal Poisson arrivals, exponential job durations, and per-job partition
// footprints mixing full-graph jobs (PageRank-like) with small-footprint traversals
// (BFS-like).

#ifndef SRC_TRACE_JOB_TRACE_H_
#define SRC_TRACE_JOB_TRACE_H_

#include <array>
#include <cstdint>
#include <vector>

namespace cgraph {

struct TraceOptions {
  uint32_t hours = 168;            // One week, as in Fig. 1.
  double base_arrivals_per_hour = 1.5;
  double peak_multiplier = 4.0;    // Diurnal swing.
  double mean_duration_hours = 3.0;
  uint32_t num_partitions = 128;
  uint64_t seed = 7;
};

// Thresholds of Fig. 1(b): ratio of partitions shared by more than k jobs.
inline constexpr std::array<uint32_t, 5> kShareThresholds = {1, 2, 4, 8, 16};

struct TracePoint {
  double hour = 0.0;
  uint32_t concurrent_jobs = 0;
  // shared_ratio[i]: fraction of *in-use* partitions used by more than kShareThresholds[i]
  // jobs at this time.
  std::array<double, kShareThresholds.size()> shared_ratio = {};
};

struct TraceSummary {
  std::vector<TracePoint> points;  // Hourly samples.
  uint32_t peak_concurrent_jobs = 0;
  double mean_concurrent_jobs = 0.0;
  // Time-average of shared_ratio[0] (partitions used by >1 job): the paper reports >75%.
  double mean_shared_by_more_than_one = 0.0;
};

TraceSummary GenerateJobTrace(const TraceOptions& options);

}  // namespace cgraph

#endif  // SRC_TRACE_JOB_TRACE_H_
