#include "src/trace/job_trace.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/prng.h"

namespace cgraph {
namespace {

struct TraceJob {
  double arrival = 0.0;
  double departure = 0.0;
  std::vector<uint32_t> footprint;  // Partition ids the job iterates over.
};

}  // namespace

TraceSummary GenerateJobTrace(const TraceOptions& options) {
  CGRAPH_CHECK(options.num_partitions > 0);
  Xoshiro256 rng(options.seed);

  // Non-homogeneous Poisson arrivals by thinning against the diurnal peak rate.
  const double max_rate = options.base_arrivals_per_hour * (1.0 + options.peak_multiplier);
  std::vector<TraceJob> jobs;
  double t = 0.0;
  while (t < options.hours) {
    t += -std::log(1.0 - rng.NextDouble()) / max_rate;
    const double diurnal = std::sin(3.14159265358979 * std::fmod(t, 24.0) / 24.0);
    const double rate = options.base_arrivals_per_hour * (1.0 + options.peak_multiplier * diurnal * diurnal);
    if (rng.NextDouble() * max_rate > rate) {
      continue;  // Thinned.
    }
    TraceJob job;
    job.arrival = t;
    job.departure = t - options.mean_duration_hours * std::log(1.0 - rng.NextDouble());
    // Footprint mixture: 50% full-sweep jobs (PageRank/SCC-like), 30% medium, 20% small
    // frontier traversals (BFS-like).
    const double mix = rng.NextDouble();
    const double fraction = mix < 0.5 ? 1.0 : (mix < 0.8 ? 0.4 : 0.1);
    const uint32_t count = std::max<uint32_t>(
        1, static_cast<uint32_t>(fraction * options.num_partitions));
    std::vector<uint32_t> all(options.num_partitions);
    for (uint32_t p = 0; p < options.num_partitions; ++p) {
      all[p] = p;
    }
    for (uint32_t i = 0; i < count; ++i) {
      const uint64_t j = i + rng.NextBounded(options.num_partitions - i);
      std::swap(all[i], all[j]);
    }
    all.resize(count);
    job.footprint = std::move(all);
    jobs.push_back(std::move(job));
  }

  TraceSummary summary;
  double job_sum = 0.0;
  double share_sum = 0.0;
  for (uint32_t hour = 0; hour < options.hours; ++hour) {
    TracePoint point;
    point.hour = hour;
    std::vector<uint32_t> users(options.num_partitions, 0);
    for (const TraceJob& job : jobs) {
      if (job.arrival <= hour && hour < job.departure) {
        ++point.concurrent_jobs;
        for (uint32_t p : job.footprint) {
          ++users[p];
        }
      }
    }
    uint32_t in_use = 0;
    std::array<uint32_t, kShareThresholds.size()> above = {};
    for (uint32_t p = 0; p < options.num_partitions; ++p) {
      if (users[p] == 0) {
        continue;
      }
      ++in_use;
      for (size_t i = 0; i < kShareThresholds.size(); ++i) {
        if (users[p] > kShareThresholds[i]) {
          ++above[i];
        }
      }
    }
    for (size_t i = 0; i < kShareThresholds.size(); ++i) {
      point.shared_ratio[i] = in_use == 0 ? 0.0 : static_cast<double>(above[i]) / in_use;
    }
    summary.peak_concurrent_jobs = std::max(summary.peak_concurrent_jobs, point.concurrent_jobs);
    job_sum += point.concurrent_jobs;
    share_sum += point.shared_ratio[0];
    summary.points.push_back(point);
  }
  if (!summary.points.empty()) {
    summary.mean_concurrent_jobs = job_sum / summary.points.size();
    summary.mean_shared_by_more_than_one = share_sum / summary.points.size();
  }
  return summary;
}

}  // namespace cgraph
