#include "src/core/load_stage.h"

#include <algorithm>

#include "src/common/check.h"

namespace cgraph {

LoadStage::LoadStage(const PartitionedGraph& layout, const SnapshotStore* snapshots,
                     GlobalTable* table, Scheduler* scheduler, MemoryHierarchy* hierarchy,
                     JobManager* manager, const EngineOptions& options)
    : layout_(layout), snapshots_(snapshots), table_(table), scheduler_(scheduler),
      hierarchy_(hierarchy), manager_(manager), options_(options) {}

PartitionId LoadStage::PickNext(const std::vector<bool>& eligible) const {
  return scheduler_->PickNext(*table_, eligible);
}

const GraphPartition& LoadStage::Resolve(PartitionId p, const Job& job,
                                         uint32_t* version) const {
  if (snapshots_ == nullptr) {
    *version = 0;
    return layout_.partition(p);
  }
  *version = snapshots_->ResolveVersionIndex(p, job.submit_time());
  return snapshots_->Resolve(p, job.submit_time());
}

std::vector<LoadStage::VersionGroup> LoadStage::FormGroups(PartitionId p) {
  std::vector<JobId> registered = table_->RegisteredJobs(p);  // Slot indices, ascending.
  CGRAPH_CHECK(!registered.empty());
  // Rotate the order by partition id so structure-miss attribution does not always fall
  // on the lowest slot (the triggering job pays the miss; later jobs hit).
  if (registered.size() > 1) {
    std::rotate(registered.begin(),
                registered.begin() + (p % registered.size()), registered.end());
  }

  std::vector<VersionGroup> groups;
  for (const JobId slot : registered) {
    Job* job = manager_->JobAtSlot(slot);
    if (job == nullptr || job->finished_) {
      table_->Unregister(p, slot);  // Defensive: stale bits must not stall the scheduler.
      continue;
    }
    uint32_t version = 0;
    const GraphPartition& structure = Resolve(p, *job, &version);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const VersionGroup& g) { return g.version == version; });
    if (it == groups.end()) {
      groups.push_back(VersionGroup{version, &structure, {job}});
    } else {
      it->jobs.push_back(job);
    }
  }
  return groups;
}

void LoadStage::LoadStructure(PartitionId p, const VersionGroup& group) {
  const GraphPartition& layout_part = layout_.partition(p);
  const ItemKey structure_key{DataKind::kStructure, kSharedOwner, p, group.version};
  for (Job* job : group.jobs) {
    const uint32_t touched = ExpectedTouchedSegments(
        group.structure->structure_bytes(), options_.hierarchy.cache_segment_bytes,
        job->active_count_[p], layout_part.num_local_vertices());
    job->stats_.charge += hierarchy_->AccessPrefix(
        structure_key, group.structure->structure_bytes(), touched, /*pin=*/true);
  }
}

void LoadStage::Release(PartitionId p, const VersionGroup& group) {
  const ItemKey structure_key{DataKind::kStructure, kSharedOwner, p, group.version};
  hierarchy_->UnpinItem(structure_key, group.structure->structure_bytes());
}

}  // namespace cgraph
