#include "src/core/load_stage.h"

#include <algorithm>

#include "src/common/check.h"

namespace cgraph {

LoadStage::LoadStage(const PartitionedGraph& layout, const SnapshotStore* snapshots,
                     GlobalTable* table, Scheduler* scheduler, MemoryHierarchy* hierarchy,
                     JobManager* manager, const EngineOptions& options)
    : layout_(layout), snapshots_(snapshots), table_(table), scheduler_(scheduler),
      hierarchy_(hierarchy), manager_(manager), options_(options) {}

PartitionId LoadStage::PickNext(const std::vector<bool>& eligible) const {
  return scheduler_->PickNext(*table_, eligible);
}

const GraphPartition& LoadStage::Resolve(PartitionId p, const Job& job,
                                         uint32_t* version) const {
  if (snapshots_ == nullptr) {
    *version = 0;
    return layout_.partition(p);
  }
  *version = snapshots_->ResolveVersionIndex(p, job.submit_time());
  return snapshots_->Resolve(p, job.submit_time());
}

std::span<const LoadStage::VersionGroup> LoadStage::FormGroups(PartitionId p) {
  // Registered slots in ascending order, gathered word-at-a-time into a reused scratch.
  registered_scratch_.clear();
  table_->ForEachRegistered(p, [this](JobId slot) { registered_scratch_.push_back(slot); });
  CGRAPH_CHECK(!registered_scratch_.empty());
  // Rotate the order by partition id so structure-miss attribution does not always fall
  // on the lowest slot (the triggering job pays the miss; later jobs hit).
  if (registered_scratch_.size() > 1) {
    std::rotate(registered_scratch_.begin(),
                registered_scratch_.begin() + (p % registered_scratch_.size()),
                registered_scratch_.end());
  }

  size_t num_groups = 0;  // Groups are reused in place; only the prefix is live.
  for (const JobId slot : registered_scratch_) {
    Job* job = manager_->JobAtSlot(slot);
    if (job == nullptr || job->finished_) {
      table_->Unregister(p, slot);  // Defensive: stale bits must not stall the scheduler.
      continue;
    }
    uint32_t version = 0;
    const GraphPartition& structure = Resolve(p, *job, &version);
    VersionGroup* group = nullptr;
    for (size_t g = 0; g < num_groups; ++g) {
      if (groups_[g].version == version) {
        group = &groups_[g];
        break;
      }
    }
    if (group == nullptr) {
      if (num_groups == groups_.size()) {
        groups_.emplace_back();
      }
      group = &groups_[num_groups++];
      group->version = version;
      group->structure = &structure;
      group->jobs.clear();  // Keeps capacity from earlier steps.
    }
    group->jobs.push_back(job);
  }
  return {groups_.data(), num_groups};
}

void LoadStage::LoadStructure(PartitionId p, const VersionGroup& group) {
  const GraphPartition& layout_part = layout_.partition(p);
  const ItemKey structure_key{DataKind::kStructure, kSharedOwner, p, group.version};
  for (Job* job : group.jobs) {
    if (job->finished_) {
      continue;  // Failed between group formation and the load: charge nothing.
    }
    const uint32_t touched = ExpectedTouchedSegments(
        group.structure->structure_bytes(), options_.hierarchy.cache_segment_bytes,
        job->active_count_[p], layout_part.num_local_vertices());
    job->stats_.charge += hierarchy_->AccessPrefix(
        structure_key, group.structure->structure_bytes(), touched, /*pin=*/true);
  }
}

void LoadStage::Release(PartitionId p, const VersionGroup& group) {
  const ItemKey structure_key{DataKind::kStructure, kSharedOwner, p, group.version};
  hierarchy_->UnpinItem(structure_key, group.structure->structure_bytes());
}

}  // namespace cgraph
