#include "src/core/ltp_engine.h"

#include <algorithm>
#include <limits>
#include <span>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/timer.h"

namespace cgraph {

LtpEngine::LtpEngine(const PartitionedGraph* graph, const EngineOptions& options)
    : LtpEngine(options, graph, nullptr) {}

LtpEngine::LtpEngine(const SnapshotStore* snapshots, const EngineOptions& options)
    : LtpEngine(options, nullptr, snapshots) {}

LtpEngine::LtpEngine(const EngineOptions& options, const PartitionedGraph* graph,
                     const SnapshotStore* snapshots)
    : graph_(graph), snapshots_(snapshots), options_(options) {
  CGRAPH_CHECK(graph != nullptr || snapshots != nullptr);
  const PartitionedGraph& base = layout();
  hierarchy_ = std::make_unique<MemoryHierarchy>(options_.hierarchy);
  global_table_ = std::make_unique<GlobalTable>(base.num_partitions(), options_.max_jobs);
  scheduler_ = std::make_unique<Scheduler>(base, options_.use_scheduler, options_.theta_scale);
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  manager_ = std::make_unique<JobManager>(base, global_table_.get(), scheduler_.get(),
                                          pool_.get(), options_);
  push_ = std::make_unique<PushStage>(base, hierarchy_.get(), manager_.get(), options_);
  load_ = std::make_unique<LoadStage>(base, snapshots_, global_table_.get(),
                                      scheduler_.get(), hierarchy_.get(), manager_.get(),
                                      options_);
  trigger_ = std::make_unique<TriggerStage>(pool_.get(), hierarchy_.get(), options_);
  injector_ = FaultInjector(options_.fault_specs, options_.fault_seed);
  eligible_.assign(base.num_partitions(), true);
}

const PartitionedGraph& LtpEngine::layout() const {
  return snapshots_ != nullptr ? snapshots_->base() : *graph_;
}

LtpEngine::JobHandle LtpEngine::Submit(std::unique_ptr<VertexProgram> program,
                                       Timestamp submit_time) {
  ScopedThreadRole role(g_driver_role);
  // Arrival at the current step, not step 0: a later Submit must not queue-jump earlier
  // capacity-blocked waiters whose arrival step already passed (FIFO admission).
  const JobId id = manager_->Submit(std::move(program), submit_time, step_);
  manager_->AdmitDue(step_);  // Starts now when a slot is free; queues otherwise.
  return JobHandle(this, id);
}

LtpEngine::JobHandle LtpEngine::SubmitAt(std::unique_ptr<VertexProgram> program,
                                         uint64_t arrival_step, Timestamp submit_time) {
  ScopedThreadRole role(g_driver_role);
  const JobId id = manager_->Submit(std::move(program), submit_time, arrival_step);
  return JobHandle(this, id);
}

JobId LtpEngine::AddJob(std::unique_ptr<VertexProgram> program, Timestamp submit_time) {
  CGRAPH_CHECK(!ran_);
  CGRAPH_CHECK(manager_->num_jobs() < options_.max_jobs);
  return Submit(std::move(program), submit_time).id();
}

JobId LtpEngine::ScheduleJob(std::unique_ptr<VertexProgram> program, uint64_t arrival_step,
                             Timestamp submit_time) {
  CGRAPH_CHECK(!ran_);
  CGRAPH_CHECK(manager_->num_jobs() < options_.max_jobs);
  return SubmitAt(std::move(program), arrival_step, submit_time).id();
}

bool LtpEngine::Step() {
  ScopedThreadRole role(g_driver_role);
  WallTimer timer;
  // Jobs finishing during this step are stamped with the wall time accumulated *before*
  // it, mirroring the original engine's per-step clock update.
  manager_->set_elapsed_seconds(total_elapsed_);
  for (;;) {
    // Admit runtime arrivals whose step has come (paper section 3.4).
    manager_->AdmitDue(step_);
    // Execution budgets: a running job that exhausted --job-step-budget steps since its
    // admission is cancelled before this step processes anything (no-op when off).
    manager_->CancelOverBudget(step_);
    if (injector_.armed()) {
      // Simulated mid-run deadline expiry: cancel polls walk running jobs in ascending
      // slot order, so which job an unpinned spec hits is deterministic.
      for (uint32_t slot = 0; slot < options_.max_jobs; ++slot) {
        Job* job = manager_->JobAtSlot(slot);
        if (job != nullptr &&
            injector_.Poll(FaultKind::kCancel, step_, job->id()) != nullptr) {
          manager_->CancelRunning(*job);
        }
      }
    }
    const PartitionId p = load_->PickNext(eligible_);
    if (p == kInvalidPartition) {
      if (!manager_->HasWaiting()) {
        return false;  // No job needs any partition and none is coming: idle.
      }
      // Idle until the next scheduled arrival. (A due-but-queued waiter is impossible
      // here: with nothing registered there are no running jobs, so slots are free.)
      step_ = std::max(step_, manager_->NextArrivalStep());
      continue;
    }
    ProcessPartition(p);
    ++step_;
    manager_->set_current_step(step_);
    total_elapsed_ += timer.ElapsedSeconds();
    return true;
  }
}

void LtpEngine::RunUntilIdle() {
  while (Step()) {
  }
}

void LtpEngine::Wait(JobId id) {
  CGRAPH_CHECK(id < manager_->num_jobs());
  while (!manager_->job(id).finished()) {
    // A submitted job always becomes runnable eventually; running out of work with the
    // job unfinished would be an admission bug.
    CGRAPH_CHECK(Step());
  }
}

RunReport LtpEngine::Run() {
  CGRAPH_CHECK(!ran_);
  ran_ = true;
  // The memory tier starts cold: every structure copy and private table streams in from
  // disk on first use. Systems that share one structure copy therefore pay the initial
  // load once, per-job-copy systems pay it per job — part of what Figs. 2/13/19 measure.
  RunUntilIdle();
  return Report();
}

RunReport LtpEngine::Report() const {
  RunReport report;
  report.executor_name = options_.use_scheduler ? "cgraph-ltp" : "cgraph-without";
  report.workers = options_.num_workers;
  report.wall_seconds = total_elapsed_;
  for (JobId id = 0; id < manager_->num_jobs(); ++id) {
    report.jobs.push_back(manager_->job(id).stats());
  }
  report.cache = hierarchy_->cache().stats();
  report.memory = hierarchy_->memory().stats();
  report.partition = layout().quality();
  return report;
}

void LtpEngine::ProcessPartition(PartitionId p) {
  // Load: group the partition's registered jobs by resolved structure version so that
  // snapshot-sharing jobs are triggered off the same load. The span aliases LoadStage's
  // reused arenas — valid until the next FormGroups call, which cannot happen before
  // this loop finishes.
  const std::span<const LoadStage::VersionGroup> groups = load_->FormGroups(p);
  for (const LoadStage::VersionGroup& group : groups) {
    if (injector_.armed()) {
      // Load-stage faults fire before the structure load; the failed job drops out of
      // the group (every stage skips finished jobs) while its co-runners proceed.
      for (Job* job : group.jobs) {
        if (!job->finished_ &&
            injector_.Poll(FaultKind::kLoadError, step_, job->id()) != nullptr) {
          manager_->FailJob(*job, Status::Internal("injected load-stage fault at step " +
                                                   std::to_string(step_)));
        }
      }
    }
    load_->LoadStructure(p, group);
    // Trigger: process the pinned structure for every job in the group.
    trigger_->Run(p, *group.structure, group.jobs);
    load_->Release(p, group);
    // Push: per-job iteration bookkeeping; a job whose iteration completed pushes now.
    for (Job* job : group.jobs) {
      if (job->finished_) {
        continue;  // Failed or was cancelled earlier in this very step.
      }
      if (injector_.armed()) {
        if (injector_.Poll(FaultKind::kTriggerError, step_, job->id()) != nullptr) {
          manager_->FailJob(*job, Status::Internal("injected trigger-stage fault at step " +
                                                   std::to_string(step_)));
          continue;
        }
        if (injector_.Poll(FaultKind::kCorruptState, step_, job->id()) != nullptr) {
          CorruptJobState(*job);
          manager_->FailJob(*job, Status::Internal("injected state corruption at step " +
                                                   std::to_string(step_)));
          continue;
        }
      }
      push_->CollectMirrorRecords(*job, p);
      if (manager_->MarkProcessed(*job, p)) {
        if (injector_.armed() &&
            injector_.Poll(FaultKind::kPushError, step_, job->id()) != nullptr) {
          manager_->FailJob(*job, Status::Internal("injected push-stage fault at step " +
                                                   std::to_string(step_)));
          continue;
        }
        push_->Push(*job);
      }
      // Per-job failure isolation: a stage that hit a per-job invariant violation (or an
      // injected error surfaced as one) recorded it on the job instead of aborting the
      // process — retire just this job and keep driving its co-runners.
      if (!job->finished_ && !job->fail_status_.ok()) {
        manager_->FailJob(*job, job->fail_status_);
      }
    }
  }
}

void LtpEngine::CorruptJobState(Job& job) {
  const PartitionedGraph& g = layout();
  if (g.num_vertices() == 0) {
    return;
  }
  // Deterministic target: the same (seed, job) always loses the same master vertex.
  const VertexId victim =
      static_cast<VertexId>(injector_.CorruptionPoint(job.id()) % g.num_vertices());
  const ReplicaRef master = g.master_of(victim);
  auto states = job.table().partition(master.partition);
  states[master.local].value = std::numeric_limits<double>::quiet_NaN();
  states[master.local].delta = std::numeric_limits<double>::quiet_NaN();
}

bool LtpEngine::Cancel(JobId id) {
  ScopedThreadRole role(g_driver_role);
  CGRAPH_CHECK(id < manager_->num_jobs());
  Job& job = manager_->job(id);
  if (job.finished()) {
    return false;  // Terminal already (completed, shed, cancelled, or failed).
  }
  if (!job.started()) {
    return manager_->CancelWaiting(id);
  }
  manager_->CancelRunning(job);
  return true;
}

Status LtpEngine::RestartFromCheckpoint(JobId id, uint64_t arrival_step) {
  ScopedThreadRole role(g_driver_role);
  const Status status = manager_->Reenqueue(id, arrival_step);
  if (status.ok()) {
    manager_->AdmitDue(step_);  // Resumes now when due and a slot is free.
  }
  return status;
}

bool LtpEngine::HasCheckpoint(JobId id) const {
  return id < manager_->num_jobs() && manager_->FindCheckpoint(id) != nullptr;
}

std::vector<double> LtpEngine::FinalValues(JobId id) const {
  const Job& job = manager_->job(id);
  const PartitionedGraph& g = layout();
  std::vector<double> values(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const ReplicaRef master = g.master_of(v);
    values[v] = job.table().partition(master.partition)[master.local].value;
  }
  return values;
}

Result<std::vector<double>> LtpEngine::TryFinalValues(JobId id) const {
  if (id >= manager_->num_jobs()) {
    return Status::NotFound("TryFinalValues: no job " + std::to_string(id));
  }
  const Job& job = manager_->job(id);
  const std::string label = "job " + std::to_string(id);
  if (!job.finished()) {
    return Status::FailedPrecondition("TryFinalValues: " + label + " has not finished");
  }
  const JobStats& stats = job.stats();
  if (stats.shed) {
    return Status::FailedPrecondition("TryFinalValues: " + label +
                                      " was shed while waiting; it never computed");
  }
  if (stats.cancelled) {
    return Status::FailedPrecondition("TryFinalValues: " + label + " was cancelled mid-run");
  }
  if (stats.failed) {
    return Status::FailedPrecondition("TryFinalValues: " + label +
                                      " failed: " + stats.fail_message);
  }
  return FinalValues(id);
}

std::vector<double> LtpEngine::FinalAux(JobId id) const {
  const Job& job = manager_->job(id);
  const PartitionedGraph& g = layout();
  std::vector<double> values(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const ReplicaRef master = g.master_of(v);
    values[v] = job.table().partition(master.partition)[master.local].aux;
  }
  return values;
}

}  // namespace cgraph
