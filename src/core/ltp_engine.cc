#include "src/core/ltp_engine.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "src/common/check.h"
#include "src/common/timer.h"
#include "src/runtime/parallel_for.h"

namespace cgraph {

LtpEngine::LtpEngine(const PartitionedGraph* graph, const EngineOptions& options)
    : graph_(graph), options_(options) {
  CGRAPH_CHECK(graph != nullptr);
  hierarchy_ = std::make_unique<MemoryHierarchy>(options_.hierarchy);
  global_table_ = std::make_unique<GlobalTable>(graph_->num_partitions(), options_.max_jobs);
  scheduler_ =
      std::make_unique<Scheduler>(*graph_, options_.use_scheduler, options_.theta_scale);
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
}

LtpEngine::LtpEngine(const SnapshotStore* snapshots, const EngineOptions& options)
    : snapshots_(snapshots), options_(options) {
  CGRAPH_CHECK(snapshots != nullptr);
  hierarchy_ = std::make_unique<MemoryHierarchy>(options_.hierarchy);
  global_table_ =
      std::make_unique<GlobalTable>(snapshots_->num_partitions(), options_.max_jobs);
  scheduler_ = std::make_unique<Scheduler>(snapshots_->base(), options_.use_scheduler,
                                           options_.theta_scale);
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
}

const PartitionedGraph& LtpEngine::layout() const {
  return snapshots_ != nullptr ? snapshots_->base() : *graph_;
}

LtpEngine::ResolvedPartition LtpEngine::Resolve(PartitionId p, const Job& job) const {
  if (snapshots_ == nullptr) {
    return {&graph_->partition(p), 0};
  }
  return {&snapshots_->Resolve(p, job.submit_time()),
          snapshots_->ResolveVersionIndex(p, job.submit_time())};
}

JobId LtpEngine::AddJob(std::unique_ptr<VertexProgram> program, Timestamp submit_time) {
  CGRAPH_CHECK(!ran_);
  CGRAPH_CHECK(jobs_.size() < options_.max_jobs);
  const JobId id = static_cast<JobId>(jobs_.size());
  jobs_.push_back(std::make_unique<Job>(id, std::move(program), submit_time));
  Job& job = *jobs_.back();
  job.stats_.job_name = std::string(job.program().name());
  InitJob(job);
  return id;
}

JobId LtpEngine::ScheduleJob(std::unique_ptr<VertexProgram> program, uint64_t arrival_step,
                             Timestamp submit_time) {
  CGRAPH_CHECK(!ran_);
  CGRAPH_CHECK(jobs_.size() < options_.max_jobs);
  const JobId id = static_cast<JobId>(jobs_.size());
  jobs_.push_back(std::make_unique<Job>(id, std::move(program), submit_time));
  Job& job = *jobs_.back();
  job.stats_.job_name = std::string(job.program().name());
  // Reserve the per-job scheduler bookkeeping now; state tables materialize on arrival.
  change_fraction_.emplace_back(layout().num_partitions(), 0.0);
  pending_.push_back(PendingArrival{id, arrival_step});
  return id;
}

void LtpEngine::InitJob(Job& job) {
  const PartitionedGraph& g = layout();
  job.started_ = true;
  job.table_ = PrivateTable(g);
  job.active_.resize(g.num_partitions());
  job.active_count_.assign(g.num_partitions(), 0);
  job.processed_.assign(g.num_partitions(), false);
  job.dirty_.assign(g.num_partitions(), false);
  if (change_fraction_.size() <= job.id()) {
    change_fraction_.emplace_back(g.num_partitions(), 1.0);
  } else {
    change_fraction_[job.id()].assign(g.num_partitions(), 1.0);
  }

  const VertexProgram& program = job.program();
  const double identity = AccIdentity(program.acc_kind());
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    const GraphPartition& part = g.partition(p);
    auto states = job.table_.partition(p);
    job.active_[p].Resize(part.num_local_vertices());
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      states[v] = program.InitialState(part.vertex(v));
      states[v].delta_next = identity;  // The accumulator must start at Acc's identity.
    }
  }
  const uint64_t active = RefreshActivity(job, /*all_partitions=*/true, /*swap_buffers=*/false,
                                          /*initial=*/true);
  if (active == 0) {
    job.finished_ = true;
  }
}

RunReport LtpEngine::Run() {
  CGRAPH_CHECK(!ran_);
  ran_ = true;
  // The memory tier starts cold: every structure copy and private table streams in from
  // disk on first use. Systems that share one structure copy therefore pay the initial
  // load once, per-job-copy systems pay it per job — part of what Figs. 2/13/19 measure.

  WallTimer timer;
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingArrival& a, const PendingArrival& b) {
              return a.arrival_step < b.arrival_step;
            });
  size_t next_pending = 0;
  std::vector<bool> eligible(layout().num_partitions(), true);
  while (true) {
    // Admit runtime arrivals whose step has come (paper section 3.4).
    while (next_pending < pending_.size() &&
           pending_[next_pending].arrival_step <= step_) {
      InitJob(*jobs_[pending_[next_pending].job]);
      ++next_pending;
    }
    const PartitionId p = scheduler_->PickNext(*global_table_, eligible);
    if (p == kInvalidPartition) {
      if (next_pending < pending_.size()) {
        // Idle until the next arrival.
        step_ = pending_[next_pending].arrival_step;
        continue;
      }
      break;  // No job needs any partition: everything converged.
    }
    run_elapsed_ = timer.ElapsedSeconds();
    ProcessPartition(p);
    ++step_;
  }
  run_elapsed_ = timer.ElapsedSeconds();

  RunReport report;
  report.executor_name = "cgraph-ltp";
  if (!options_.use_scheduler) {
    report.executor_name = "cgraph-without";
  }
  report.workers = options_.num_workers;
  report.wall_seconds = run_elapsed_;
  for (const auto& job : jobs_) {
    report.jobs.push_back(job->stats());
  }
  report.cache = hierarchy_->cache().stats();
  report.memory = hierarchy_->memory().stats();
  return report;
}

void LtpEngine::ProcessPartition(PartitionId p) {
  // Jobs registered for p, grouped by resolved structure version so that snapshot-sharing
  // jobs are triggered off the same load.
  std::vector<JobId> registered = global_table_->RegisteredJobs(p);
  CGRAPH_CHECK(!registered.empty());
  // Rotate the order by partition id so structure-miss attribution does not always fall
  // on the lowest job id (the triggering job pays the miss; later jobs hit).
  if (registered.size() > 1) {
    std::rotate(registered.begin(),
                registered.begin() + (p % registered.size()), registered.end());
  }

  // version -> jobs needing that version, in rotated order.
  std::vector<std::pair<uint32_t, std::vector<Job*>>> groups;
  for (JobId id : registered) {
    Job* job = jobs_[id].get();
    if (job->finished_) {
      global_table_->Unregister(p, id);
      continue;
    }
    const ResolvedPartition resolved = Resolve(p, *job);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == resolved.version; });
    if (it == groups.end()) {
      groups.push_back({resolved.version, {job}});
    } else {
      it->second.push_back(job);
    }
  }

  const GraphPartition& layout_part = layout().partition(p);
  for (auto& [version, group_jobs] : groups) {
    const GraphPartition* part = nullptr;
    {
      const ResolvedPartition resolved = Resolve(p, *group_jobs.front());
      part = resolved.data;
    }
    const ItemKey structure_key{DataKind::kStructure, kSharedOwner, p, version};

    // Load stage: every triggered job reads the shared structure; the first access brings
    // it in (miss), the rest hit. Pinned so private-table rotation cannot evict it
    // mid-group (section 3.2.3's batching rule). Each job touches only the segments
    // expected to hold its active vertices (selective loading, section 3.2.2).
    for (Job* job : group_jobs) {
      const uint32_t touched = ExpectedTouchedSegments(
          part->structure_bytes(), options_.hierarchy.cache_segment_bytes,
          job->active_count_[p], layout_part.num_local_vertices());
      job->stats_.charge += hierarchy_->AccessPrefix(structure_key, part->structure_bytes(),
                                                     touched, /*pin=*/true);
    }

    // Trigger stage, in batches of at most num_workers jobs.
    const size_t batch_size = std::max<size_t>(1, options_.num_workers);
    for (size_t begin = 0; begin < group_jobs.size(); begin += batch_size) {
      const size_t end = std::min(group_jobs.size(), begin + batch_size);
      std::vector<Job*> batch(group_jobs.begin() + begin, group_jobs.begin() + end);
      for (Job* job : batch) {
        const ItemKey private_key{DataKind::kPrivate, job->id(), p, 0};
        job->stats_.charge +=
            hierarchy_->Access(private_key, job->table().partition_bytes(p), /*pin=*/false);
      }
      TriggerBatch(p, *part, batch);
    }
    hierarchy_->UnpinItem(structure_key, part->structure_bytes());

    // Post-trigger bookkeeping per job: buffer mirror deltas, mark progress, and push at
    // the job's iteration boundary.
    for (Job* job : group_jobs) {
      CollectMirrorRecords(*job, p, layout_part);
      job->processed_[p] = true;
      job->dirty_[p] = true;
      global_table_->Unregister(p, job->id());
      CGRAPH_CHECK(job->remaining_ > 0);
      --job->remaining_;
      if (job->remaining_ == 0) {
        PushJob(*job);
      }
    }
  }
}

void LtpEngine::TriggerBatch(PartitionId p, const GraphPartition& part,
                             const std::vector<Job*>& batch) {
  struct JobTask {
    Job* job;
    std::shared_ptr<std::atomic<size_t>> cursor;
  };
  std::vector<JobTask> job_tasks;
  job_tasks.reserve(batch.size());
  for (Job* job : batch) {
    job_tasks.push_back({job, std::make_shared<std::atomic<size_t>>(0)});
  }

  const size_t n = part.num_local_vertices();
  const size_t grain = std::max<uint32_t>(1, options_.chunk_grain);
  auto process_range = [&part, p](Job* job, size_t begin, size_t end) {
    auto states = job->table().partition(p);
    ScatterOps ops(job->program().acc_kind(), states);
    uint64_t vertex_computes = 0;
    const DynamicBitset& active = job->active_[p];
    for (size_t v = begin; v < end; ++v) {
      if (active.Test(v)) {
        job->program().Compute(part, static_cast<LocalVertexId>(v), states, ops);
        ++vertex_computes;
      }
    }
    // Flush counters with atomic adds: several workers may finish chunks of the same job
    // concurrently.
    std::atomic_ref<uint64_t>(job->stats_.vertex_computes)
        .fetch_add(vertex_computes, std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(job->stats_.edge_traversals)
        .fetch_add(ops.edge_traversals(), std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(job->stats_.compute_units)
        .fetch_add(vertex_computes + ops.edge_traversals(), std::memory_order_relaxed);
  };

  std::vector<std::function<void()>> tasks;
  if (options_.straggler_split) {
    // Every worker can steal chunks of any job in the batch: the straggler's remaining
    // vertices are consumed by whichever cores come free (Fig. 6).
    for (const JobTask& jt : job_tasks) {
      const size_t tasks_for_job = std::min<size_t>(options_.num_workers, (n + grain - 1) / std::max<size_t>(grain, 1) + 1);
      for (size_t t = 0; t < tasks_for_job; ++t) {
        tasks.push_back([jt, n, grain, &process_range] {
          while (true) {
            const size_t begin = jt.cursor->fetch_add(grain, std::memory_order_relaxed);
            if (begin >= n) {
              return;
            }
            process_range(jt.job, begin, std::min(begin + grain, n));
          }
        });
      }
    }
  } else {
    // Ablation: one task per job — a skewed job becomes the straggler.
    for (const JobTask& jt : job_tasks) {
      tasks.push_back([jt, n, &process_range] { process_range(jt.job, 0, n); });
    }
  }
  pool_->RunAndWait(std::move(tasks));
}

void LtpEngine::CollectMirrorRecords(Job& job, PartitionId p,
                                     const GraphPartition& layout_part) {
  const double identity = AccIdentity(job.program().acc_kind());
  auto states = job.table_.partition(p);
  for (LocalVertexId v = 0; v < layout_part.num_local_vertices(); ++v) {
    const LocalVertexInfo& info = layout_part.vertex(v);
    if (info.is_master) {
      continue;  // Masters keep their accumulation in place.
    }
    if (states[v].delta_next != identity) {
      job.sync_buffer_.push_back(
          SyncRecord{info.master_partition, info.master_local, states[v].delta_next});
      // The mirror's contribution now lives in the buffer; clear the slot so the
      // broadcast phase can overwrite it with the merged value.
      states[v].delta_next = identity;
    }
  }
}

void LtpEngine::PushJob(Job& job) {
  const PartitionedGraph& g = layout();
  const AccKind kind = job.program().acc_kind();
  const double identity = AccIdentity(kind);

  // Phase 1 (Algorithm 2, SortD + merge): mirror deltas, sorted by master partition, are
  // Acc-merged into master delta_next slots. Sorting makes the updates successive per
  // private partition, which is why we charge one private-partition access per distinct
  // destination partition (in the swap sweep below) rather than one per record.
  std::sort(job.sync_buffer_.begin(), job.sync_buffer_.end(),
            [](const SyncRecord& a, const SyncRecord& b) {
              if (a.partition != b.partition) {
                return a.partition < b.partition;
              }
              return a.local < b.local;
            });
  for (const SyncRecord& rec : job.sync_buffer_) {
    auto states = job.table_.partition(rec.partition);
    states[rec.local].delta_next = AccApply(kind, states[rec.local].delta_next, rec.delta);
    job.dirty_[rec.partition] = true;
  }
  job.stats_.push_updates += job.sync_buffer_.size();
  job.sync_buffer_.clear();

  // Phase 2 (SortS + broadcast): merged master values are pushed back to mirrors so every
  // replica agrees on next iteration's delta (and hence on activity and value updates).
  std::vector<SyncRecord> broadcast;
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    if (!job.dirty_[p]) {
      continue;
    }
    const GraphPartition& part = g.partition(p);
    auto states = job.table_.partition(p);
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      const LocalVertexInfo& info = part.vertex(v);
      if (!info.is_master || states[v].delta_next == identity) {
        continue;
      }
      for (const ReplicaRef& ref : part.mirrors_of(v)) {
        broadcast.push_back(SyncRecord{ref.partition, ref.local, states[v].delta_next});
      }
    }
  }
  std::sort(broadcast.begin(), broadcast.end(), [](const SyncRecord& a, const SyncRecord& b) {
    if (a.partition != b.partition) {
      return a.partition < b.partition;
    }
    return a.local < b.local;
  });
  for (const SyncRecord& rec : broadcast) {
    auto states = job.table_.partition(rec.partition);
    states[rec.local].delta_next = rec.delta;  // Replace: mirror contribution was merged.
    job.dirty_[rec.partition] = true;
  }
  job.stats_.push_updates += broadcast.size();

  // Phase 3: swap the double buffer on dirty partitions, recompute activity, and charge
  // the batched private-table accesses of the whole push.
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    if (job.dirty_[p]) {
      const ItemKey private_key{DataKind::kPrivate, job.id(), p, 0};
      job.stats_.charge +=
          hierarchy_->Access(private_key, job.table_.partition_bytes(p), /*pin=*/false);
    }
  }
  const uint64_t active_total = RefreshActivity(job, /*all_partitions=*/false,
                                                /*swap_buffers=*/true, /*initial=*/false);

  ++job.iteration_;
  job.stats_.iterations = job.iteration_;
  std::fill(job.processed_.begin(), job.processed_.end(), false);

  // Iteration-boundary protocol with the program (possibly multi-phase).
  bool registered = false;
  uint64_t active_now = active_total;
  for (int guard = 0; guard < 1024; ++guard) {
    VertexProgram::IterationContext context;
    context.any_active = active_now > 0;
    context.iteration = job.iteration_;
    context.table = &job.table_;
    context.layout = &g;
    const auto action = job.program().OnIterationEnd(context);
    if (action == VertexProgram::IterationAction::kFinished) {
      FinishJob(job);
      return;
    }
    if (action == VertexProgram::IterationAction::kContinue) {
      if (active_now == 0 || job.iteration_ >= options_.max_iterations_per_job) {
        FinishJob(job);
        return;
      }
      registered = true;
      break;
    }
    // kNewPhase: re-initialize every vertex state and re-derive activity. Charged as a
    // full private-table sweep.
    for (PartitionId p = 0; p < g.num_partitions(); ++p) {
      const GraphPartition& part = g.partition(p);
      auto states = job.table_.partition(p);
      for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
        job.program().ReinitVertex(part.vertex(v), states[v]);
      }
      const ItemKey private_key{DataKind::kPrivate, job.id(), p, 0};
      job.stats_.charge +=
          hierarchy_->Access(private_key, job.table_.partition_bytes(p), /*pin=*/false);
    }
    active_now = RefreshActivity(job, /*all_partitions=*/true, /*swap_buffers=*/false,
                                 /*initial=*/false);
  }
  CGRAPH_CHECK(registered);
}

uint64_t LtpEngine::RefreshActivity(Job& job, bool all_partitions, bool swap_buffers,
                                    bool initial) {
  const PartitionedGraph& g = layout();
  const VertexProgram& program = job.program();
  const double identity = AccIdentity(program.acc_kind());
  uint64_t total = 0;
  job.remaining_ = 0;
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    if (!all_partitions && !job.dirty_[p]) {
      // Untouched partition: previous activity stands. It is necessarily zero — every
      // registered partition was processed (hence dirty) before Push ran.
      CGRAPH_DCHECK(job.active_count_[p] == 0);
      global_table_->Unregister(p, job.id());
      continue;
    }
    const GraphPartition& part = g.partition(p);
    auto states = job.table_.partition(p);
    uint32_t count = 0;
    job.active_[p].ClearAll();
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      if (swap_buffers) {
        states[v].delta = states[v].delta_next;
        states[v].delta_next = identity;
      }
      const bool active = initial ? program.InitiallyActive(part.vertex(v), states[v])
                                  : program.IsActive(states[v]);
      if (active) {
        job.active_[p].Set(v);
        ++count;
      }
    }
    job.active_count_[p] = count;
    change_fraction_[job.id()][p] =
        part.num_local_vertices() == 0
            ? 0.0
            : static_cast<double>(count) / part.num_local_vertices();
    scheduler_->SetStateChange(p, MeanChangeFraction(p));
    job.dirty_[p] = false;
    total += count;
    if (count > 0) {
      global_table_->Register(p, job.id());
      ++job.remaining_;
    } else {
      // Keep registration exact even across repeated phase re-initializations.
      global_table_->Unregister(p, job.id());
    }
  }
  return total;
}

void LtpEngine::FinishJob(Job& job) {
  job.finished_ = true;
  global_table_->UnregisterEverywhere(job.id());
  job.remaining_ = 0;
  job.stats_.wall_seconds = run_elapsed_;
}

double LtpEngine::MeanChangeFraction(PartitionId p) const {
  double sum = 0.0;
  uint32_t count = 0;
  for (const auto& job : jobs_) {
    if (job->started_ && !job->finished_) {
      sum += change_fraction_[job->id()][p];
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

std::vector<double> LtpEngine::FinalValues(JobId id) const {
  const Job& job = *jobs_[id];
  const PartitionedGraph& g = layout();
  std::vector<double> values(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const ReplicaRef master = g.master_of(v);
    values[v] = job.table().partition(master.partition)[master.local].value;
  }
  return values;
}

std::vector<double> LtpEngine::FinalAux(JobId id) const {
  const Job& job = *jobs_[id];
  const PartitionedGraph& g = layout();
  std::vector<double> values(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const ReplicaRef master = g.master_of(v);
    values[v] = job.table().partition(master.partition)[master.local].aux;
  }
  return values;
}

}  // namespace cgraph
