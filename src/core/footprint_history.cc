#include "src/core/footprint_history.h"

#include <algorithm>

#include "src/common/check.h"

namespace cgraph {

FootprintHistory::FootprintHistory(uint32_t num_partitions, uint32_t buckets, double decay)
    : num_partitions_(num_partitions), buckets_(buckets), decay_(decay) {
  CGRAPH_CHECK(buckets > 0);
  CGRAPH_CHECK(decay >= 0.0 && decay <= 1.0);
}

void FootprintHistory::RecordCompletion(std::string_view program,
                                        const std::vector<std::vector<PartitionId>>& trace,
                                        uint64_t iterations) {
  if (iterations == 0) {
    return;  // Nothing initially active: no occupancy signal to learn from.
  }
  // Normalize the trace onto the bucket grid: iteration i covers the normalized lifetime
  // interval [i/I, (i+1)/I), bucket b the interval [b/B, (b+1)/B). Each active partition
  // of iteration i contributes the overlap of the two intervals, scaled by B so that a
  // partition active for the whole lifetime accumulates exactly 1.0 per bucket. This
  // handles both short jobs (I < B: one iteration spans several buckets) and long ones
  // (I > B: several iterations share a bucket) without empty or overflowing cells.
  std::vector<double> occ(static_cast<size_t>(buckets_) * num_partitions_, 0.0);
  const double inv_iters = 1.0 / static_cast<double>(iterations);
  const size_t rows = std::min<size_t>(trace.size(), iterations);
  for (size_t i = 0; i < rows; ++i) {
    const double lo = static_cast<double>(i) * inv_iters;
    const double hi = static_cast<double>(i + 1) * inv_iters;
    const uint32_t first = static_cast<uint32_t>(lo * buckets_);
    for (uint32_t b = first; b < buckets_; ++b) {
      const double b_lo = static_cast<double>(b) / buckets_;
      if (b_lo >= hi) {
        break;
      }
      const double b_hi = static_cast<double>(b + 1) / buckets_;
      const double share = (std::min(hi, b_hi) - std::max(lo, b_lo)) * buckets_;
      for (const PartitionId p : trace[i]) {
        CGRAPH_DCHECK(p < num_partitions_);
        occ[static_cast<size_t>(b) * num_partitions_ + p] += share;
      }
    }
  }

  auto [it, inserted] = profiles_.try_emplace(std::string(program));
  Profile& profile = it->second;
  if (inserted) {
    profile.occupancy.assign(occ.size(), 0.0);
  }
  for (size_t i = 0; i < occ.size(); ++i) {
    profile.occupancy[i] = profile.occupancy[i] * decay_ + occ[i];
  }
  profile.lifetime_sum = profile.lifetime_sum * decay_ + static_cast<double>(iterations);
  profile.weight = profile.weight * decay_ + 1.0;
}

const FootprintHistory::Profile* FootprintHistory::Find(std::string_view program) const {
  const auto it = profiles_.find(program);
  return it == profiles_.end() ? nullptr : &it->second;
}

bool FootprintHistory::HasProfile(std::string_view program) const {
  return Find(program) != nullptr;
}

double FootprintHistory::ExpectedLifetime(std::string_view program) const {
  const Profile* profile = Find(program);
  CGRAPH_CHECK(profile != nullptr);
  return profile->lifetime_sum / profile->weight;
}

double FootprintHistory::Occupancy(std::string_view program, uint32_t bucket,
                                   PartitionId p) const {
  const Profile* profile = Find(program);
  CGRAPH_CHECK(profile != nullptr);
  CGRAPH_CHECK(bucket < buckets_);
  CGRAPH_CHECK(p < num_partitions_);
  return profile->occupancy[static_cast<size_t>(bucket) * num_partitions_ + p] /
         profile->weight;
}

double FootprintHistory::LifetimeWeight(std::string_view program, PartitionId p) const {
  const Profile* profile = Find(program);
  CGRAPH_CHECK(profile != nullptr);
  CGRAPH_CHECK(p < num_partitions_);
  double sum = 0.0;
  for (uint32_t b = 0; b < buckets_; ++b) {
    sum += profile->occupancy[static_cast<size_t>(b) * num_partitions_ + p];
  }
  return sum / (profile->weight * buckets_);
}

double FootprintHistory::ProjectRunner(const PredictedRunner& runner, double offset,
                                       PartitionId p) const {
  const Profile* profile = Find(runner.program);
  if (profile == nullptr) {
    // Persistence fallback: no history for this type, assume it keeps needing exactly
    // the partitions of its current iteration.
    return (*runner.active_counts)[p] > 0 ? 1.0 : 0.0;
  }
  const double lifetime =
      std::max(profile->lifetime_sum / profile->weight,
               static_cast<double>(runner.iteration) + 1.0);  // Already past the mean: due.
  const double pos = (static_cast<double>(runner.iteration) + offset) / lifetime;
  if (pos >= 1.0) {
    return 0.0;  // Predicted finished by then.
  }
  const uint32_t b = std::min(static_cast<uint32_t>(pos * buckets_), buckets_ - 1);
  return profile->occupancy[static_cast<size_t>(b) * num_partitions_ + p] / profile->weight;
}

double FootprintHistory::PredictOverlap(std::string_view program,
                                        std::span<const PredictedRunner> running) const {
  const Profile* profile = Find(program);
  CGRAPH_CHECK(profile != nullptr);
  const double lifetime = profile->lifetime_sum / profile->weight;
  double needed = 0.0;
  double shared = 0.0;
  for (uint32_t b = 0; b < buckets_; ++b) {
    // Project the running set to this bucket's midpoint, measured in iteration offsets
    // of the waiter's expected lifetime (iterations of concurrent jobs are assumed to
    // advance at comparable rates — the modeled scheduler interleaves them per step).
    const double offset = (static_cast<double>(b) + 0.5) / buckets_ * lifetime;
    for (PartitionId p = 0; p < num_partitions_; ++p) {
      const double occ =
          profile->occupancy[static_cast<size_t>(b) * num_partitions_ + p] / profile->weight;
      if (occ <= 0.0) {
        continue;
      }
      needed += occ;
      double reg = 0.0;
      for (const PredictedRunner& runner : running) {
        reg = std::max(reg, ProjectRunner(runner, offset, p));
        if (reg >= 1.0) {
          break;
        }
      }
      shared += occ * reg;
    }
  }
  return needed <= 0.0 ? 0.0 : shared / needed;
}

double FootprintHistory::OverlapWithSet(std::string_view program,
                                        const std::vector<bool>& needed) const {
  const Profile* profile = Find(program);
  CGRAPH_CHECK(profile != nullptr);
  CGRAPH_CHECK(needed.size() == num_partitions_);
  // Lifetime weights up to a common positive factor (weight * buckets), which the
  // ratio cancels — no per-partition profile lookups on the placement path.
  double total = 0.0;
  double shared = 0.0;
  for (PartitionId p = 0; p < num_partitions_; ++p) {
    double w = 0.0;
    for (uint32_t b = 0; b < buckets_; ++b) {
      w += profile->occupancy[static_cast<size_t>(b) * num_partitions_ + p];
    }
    total += w;
    if (needed[p]) {
      shared += w;
    }
  }
  return total <= 0.0 ? 0.0 : shared / total;
}

}  // namespace cgraph
