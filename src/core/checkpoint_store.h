// Iteration-boundary job checkpoints (docs/robustness.md).
//
// A JobCheckpoint is everything a job's forward progress lives in at an iteration
// boundary: its private vertex states, async deferred windows, iteration/staleness
// clocks, activity trace, and stats snapshot. Deliberately *not* captured: active masks,
// per-partition counts, change fractions, and global-table registrations — at a boundary
// those are all pure functions of the vertex states (RefreshActivity rebuilds them from
// IsActive sweeps), so restoring states and re-sweeping reproduces them exactly. Sync
// buckets are empty at a boundary by construction and need no capture either.
//
// The store keeps the latest checkpoint per job, dropped when the job completes cleanly
// and retained across failures so a job can be restarted repeatedly. Snapshots are taken
// only while the job is still registered (active vertices remain), so a restore always
// has work to resume.

#ifndef SRC_CORE_CHECKPOINT_STORE_H_
#define SRC_CORE_CHECKPOINT_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/common/types.h"
#include "src/metrics/run_report.h"
#include "src/storage/private_table.h"

namespace cgraph {

struct JobCheckpoint {
  uint64_t iteration = 0;
  uint64_t since_sync = 0;                    // Async staleness clock.
  PrivateTable table;                         // Full private vertex-state copy.
  std::vector<std::vector<double>> deferred;  // Async deferred-broadcast windows.
  std::vector<uint8_t> deferred_pending;
  // Per-iteration registration trace (predict-policy history feedback); empty otherwise.
  std::vector<std::vector<PartitionId>> activity_trace;
  JobStats stats;                             // Counters as of this boundary.
  uint64_t bytes = 0;                         // Snapshot payload size (table + windows).
};

class CheckpointStore {
 public:
  // Replaces any previous checkpoint for `id` (latest-only retention).
  void Save(JobId id, JobCheckpoint snapshot) CGRAPH_REQUIRES_DRIVER;

  // The latest checkpoint for `id`, or nullptr. Stays valid until the next Save/Drop
  // for the same id.
  const JobCheckpoint* Find(JobId id) const;

  // Forgets `id`'s checkpoint (no-op when absent) — called on clean completion.
  void Drop(JobId id) CGRAPH_REQUIRES_DRIVER;

  size_t size() const { return checkpoints_.size(); }

 private:
  std::unordered_map<JobId, JobCheckpoint> checkpoints_;
};

}  // namespace cgraph

#endif  // SRC_CORE_CHECKPOINT_STORE_H_
