// Job-level admission policies: the upper level of two-level scheduling.
//
// The partition-level scheduler (Eq. 1, src/core/scheduler.h) decides *which partition*
// to load for the jobs already running. The admission policy decides *which waiting job*
// to bind to a freed concurrency slot — the job-level scheduling of Zhao et al.,
// "Efficient Two-Level Scheduling for Concurrent Graph Processing" (arXiv:1806.00777):
// admitting the waiter whose footprint overlaps the running set most lets the partition
// scheduler amortize each structure load over more jobs.
//
// Three policies are provided:
//
//   * FIFO (default) — strict arrival order, bit-for-bit identical to the pre-policy
//     engine: the front of the due queue is admitted, later waiters never overtake it.
//   * Overlap — scores every *due* waiter by the fraction of its initially-active
//     partition footprint currently registered by running jobs, plus an aging bonus per
//     waited scheduling step so no due job starves (see OverlapAdmission).
//   * Predict — scores by the integral of forecast footprint overlap with the running
//     set over the waiter's expected lifetime, learned from completed jobs of the same
//     program type (src/core/footprint_history.h); types with no completed history fall
//     back to the overlap score. Same aging bonus and starvation bound.
//
// Policies are pure functions of modeled engine state (footprints, registration counts,
// history profiles, step numbers) — never of wall clock or worker interleaving — so
// admission order is deterministic and identical across runs and worker counts.

#ifndef SRC_CORE_ADMISSION_POLICY_H_
#define SRC_CORE_ADMISSION_POLICY_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "src/common/types.h"
#include "src/core/engine_options.h"
#include "src/core/footprint_history.h"
#include "src/storage/global_table.h"

namespace cgraph {

// Strategy interface consulted by JobManager::AdmitDue each time a slot is free.
class AdmissionPolicy {
 public:
  // One due waiter, in FIFO (arrival, submission) order within the span handed to Pick.
  struct Candidate {
    JobId job = kInvalidJob;
    // The step the job became runnable (already clamped to its submit step).
    uint64_t arrival_step = 0;
    // Per-partition initially-active vertex counts (the job's expected first-iteration
    // footprint), or nullptr when the policy does not need footprints (FIFO).
    const std::vector<uint32_t>* footprint = nullptr;
    // The program's name — the footprint-history profile key; empty when the policy
    // does not use history.
    std::string_view program;
  };

  struct Decision {
    size_t index = 0;       // Which candidate to admit (index into the span).
    double overlap = 0.0;   // The admitted job's overlap score (diagnostics; 0 under FIFO).
    bool predicted = false; // Whether `overlap` came from a history forecast (predict
                            // policy with a profile) rather than the initial footprint.
  };

  virtual ~AdmissionPolicy() = default;

  virtual std::string_view name() const = 0;

  // Whether candidates must carry initially-active footprints. JobManager computes
  // footprints lazily — only when this is true AND an admission decision has competing
  // candidates — so FIFO and uncontended admission pay nothing.
  virtual bool needs_footprints() const = 0;

  // Whether Pick consumes the running-set span (and JobManager must collect completed
  // jobs' activation traces into the footprint history). Only the predict policy does.
  virtual bool needs_history() const { return false; }

  // Picks the candidate to admit into the free slot.
  //
  // Pre:  `due` is non-empty and sorted by (arrival_step, submission order); every
  //       candidate's arrival_step <= step; footprints are non-null when
  //       needs_footprints(). `table` reflects the running jobs' next-iteration
  //       registrations. `running` describes the currently running jobs (ascending slot
  //       order) when needs_history(), and may be empty otherwise.
  // Post: the returned index is < due.size(). The choice depends only on the arguments
  //       (no hidden state), keeping admission deterministic.
  virtual Decision Pick(std::span<const Candidate> due, const GlobalTable& table,
                        uint64_t step, std::span<const PredictedRunner> running) const = 0;
};

// Strict arrival-order admission: always the front of the due queue. This is exactly the
// pre-policy `AdmitDue` behavior, preserved as the default.
class FifoAdmission : public AdmissionPolicy {
 public:
  std::string_view name() const override { return "fifo"; }
  bool needs_footprints() const override { return false; }
  Decision Pick(std::span<const Candidate> due, const GlobalTable& table, uint64_t step,
                std::span<const PredictedRunner> running) const override;
};

// Correlation-aware admission: maximize expected shared-partition reuse with the running
// set, with aging for starvation-freedom.
//
//   score(w) = overlap(w) + aging * (step - w.arrival_step)
//   overlap(w) = |{p : w.footprint[p] > 0 and RegisteredCount(p) > 0}| /
//                |{p : w.footprint[p] > 0}|            (0 when the footprint is empty)
//
// overlap is in [0, 1]; ties break toward FIFO order. Because overlap is bounded by 1,
// a due job can only ever be overtaken by jobs that arrived less than 1/aging steps
// after it: any later arrival's aging deficit already exceeds the largest possible
// overlap advantage. With finitely many submissions in any step window, every due job is
// admitted after a bounded number of decisions — no starvation (for aging > 0).
class OverlapAdmission : public AdmissionPolicy {
 public:
  // `aging` is the score bonus per waited scheduling step (EngineOptions::admission_aging).
  explicit OverlapAdmission(double aging) : aging_(aging) {}

  std::string_view name() const override { return "overlap"; }
  bool needs_footprints() const override { return true; }
  Decision Pick(std::span<const Candidate> due, const GlobalTable& table, uint64_t step,
                std::span<const PredictedRunner> running) const override;

  // The raw overlap term in [0, 1] (exposed for tests and diagnostics). Pre: `footprint`
  // has one entry per partition of `table`.
  static double OverlapScore(const std::vector<uint32_t>& footprint, const GlobalTable& table);

 private:
  double aging_;
};

// Forecast-aware admission: like OverlapAdmission, but a waiter whose program type has
// completed history is scored by FootprintHistory::PredictOverlap — the integral of its
// learned lifetime occupancy against the running set projected forward — instead of the
// first-iteration snapshot. Types with no history score exactly like OverlapAdmission
// (so with an empty history the policy degenerates to it decision-for-decision). Both
// scores live in [0, 1], so the aging bound and the starvation argument carry over
// unchanged.
class PredictAdmission : public AdmissionPolicy {
 public:
  // `history` is borrowed (owned by JobManager) and must outlive this.
  PredictAdmission(double aging, const FootprintHistory* history)
      : aging_(aging), history_(history) {}

  std::string_view name() const override { return "predict"; }
  bool needs_footprints() const override { return true; }
  bool needs_history() const override { return true; }
  Decision Pick(std::span<const Candidate> due, const GlobalTable& table, uint64_t step,
                std::span<const PredictedRunner> running) const override;

 private:
  double aging_;
  const FootprintHistory* history_;
};

// Maps "fifo"/"overlap"/"predict" to the enum; returns false on unknown names.
bool ParseAdmissionPolicyName(std::string_view name, AdmissionPolicyKind* kind);

// The canonical CLI/report name of a policy kind.
std::string_view AdmissionPolicyKindName(AdmissionPolicyKind kind);

// Instantiates the policy selected by `options.admission_policy`. `history` may be null
// for kFifo/kOverlap; kPredict requires it.
std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(const EngineOptions& options,
                                                     const FootprintHistory* history);

}  // namespace cgraph

#endif  // SRC_CORE_ADMISSION_POLICY_H_
