#include "src/core/admission_policy.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/function_ref.h"

namespace cgraph {

namespace {

// The shared scoring loop of the footprint-aware policies: score every due candidate as
// overlap + aging * waited, strict > keeping ties on the earliest (FIFO-ordered)
// candidate. `overlap_of` returns the candidate's overlap term in [0, 1] and whether it
// came from a history forecast. Centralizing this keeps the starvation bound — a score
// bounded by 1 plus an unbounded aging term — and the tie-break identical across
// policies, which the predict-degenerates-to-overlap guarantee relies on.
AdmissionPolicy::Decision PickByScore(
    std::span<const AdmissionPolicy::Candidate> due, uint64_t step, double aging,
    FunctionRef<std::pair<double, bool>(const AdmissionPolicy::Candidate&)> overlap_of) {
  CGRAPH_CHECK(!due.empty());
  AdmissionPolicy::Decision best;
  double best_score = -1.0;
  for (size_t i = 0; i < due.size(); ++i) {
    const AdmissionPolicy::Candidate& c = due[i];
    CGRAPH_CHECK(c.footprint != nullptr);
    CGRAPH_CHECK(c.arrival_step <= step);
    const auto [overlap, predicted] = overlap_of(c);
    const double score = overlap + aging * static_cast<double>(step - c.arrival_step);
    if (score > best_score) {
      best_score = score;
      best = AdmissionPolicy::Decision{i, overlap, predicted};
    }
  }
  return best;
}

}  // namespace

AdmissionPolicy::Decision FifoAdmission::Pick(std::span<const Candidate> due,
                                              const GlobalTable& table, uint64_t step,
                                              std::span<const PredictedRunner> running) const {
  (void)table;
  (void)step;
  (void)running;
  CGRAPH_CHECK(!due.empty());
  return Decision{0, 0.0, false};
}

double OverlapAdmission::OverlapScore(const std::vector<uint32_t>& footprint,
                                      const GlobalTable& table) {
  uint32_t needed = 0;
  uint32_t shared = 0;
  for (PartitionId p = 0; p < table.num_partitions(); ++p) {
    if (footprint[p] == 0) {
      continue;
    }
    ++needed;
    if (table.RegisteredCount(p) > 0) {
      ++shared;
    }
  }
  return needed == 0 ? 0.0 : static_cast<double>(shared) / needed;
}

AdmissionPolicy::Decision OverlapAdmission::Pick(std::span<const Candidate> due,
                                                 const GlobalTable& table, uint64_t step,
                                                 std::span<const PredictedRunner> running) const {
  (void)running;
  return PickByScore(due, step, aging_, [&table](const Candidate& c) {
    return std::make_pair(OverlapScore(*c.footprint, table), false);
  });
}

AdmissionPolicy::Decision PredictAdmission::Pick(std::span<const Candidate> due,
                                                 const GlobalTable& table, uint64_t step,
                                                 std::span<const PredictedRunner> running) const {
  return PickByScore(due, step, aging_, [&](const Candidate& c) {
    if (history_->HasProfile(c.program)) {
      return std::make_pair(history_->PredictOverlap(c.program, running), true);
    }
    return std::make_pair(OverlapAdmission::OverlapScore(*c.footprint, table), false);
  });
}

bool ParseAdmissionPolicyName(std::string_view name, AdmissionPolicyKind* kind) {
  if (name == "fifo") {
    *kind = AdmissionPolicyKind::kFifo;
    return true;
  }
  if (name == "overlap") {
    *kind = AdmissionPolicyKind::kOverlap;
    return true;
  }
  if (name == "predict") {
    *kind = AdmissionPolicyKind::kPredict;
    return true;
  }
  return false;
}

std::string_view AdmissionPolicyKindName(AdmissionPolicyKind kind) {
  switch (kind) {
    case AdmissionPolicyKind::kFifo:
      return "fifo";
    case AdmissionPolicyKind::kOverlap:
      return "overlap";
    case AdmissionPolicyKind::kPredict:
      return "predict";
  }
  return "fifo";
}

std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(const EngineOptions& options,
                                                     const FootprintHistory* history) {
  switch (options.admission_policy) {
    case AdmissionPolicyKind::kFifo:
      return std::make_unique<FifoAdmission>();
    case AdmissionPolicyKind::kOverlap:
      return std::make_unique<OverlapAdmission>(options.admission_aging);
    case AdmissionPolicyKind::kPredict:
      CGRAPH_CHECK(history != nullptr);
      return std::make_unique<PredictAdmission>(options.admission_aging, history);
  }
  return std::make_unique<FifoAdmission>();
}

}  // namespace cgraph
