#include "src/core/admission_policy.h"

#include "src/common/check.h"

namespace cgraph {

AdmissionPolicy::Decision FifoAdmission::Pick(std::span<const Candidate> due,
                                              const GlobalTable& table, uint64_t step) const {
  (void)table;
  (void)step;
  CGRAPH_CHECK(!due.empty());
  return Decision{0, 0.0};
}

double OverlapAdmission::OverlapScore(const std::vector<uint32_t>& footprint,
                                      const GlobalTable& table) {
  uint32_t needed = 0;
  uint32_t shared = 0;
  for (PartitionId p = 0; p < table.num_partitions(); ++p) {
    if (footprint[p] == 0) {
      continue;
    }
    ++needed;
    if (table.RegisteredCount(p) > 0) {
      ++shared;
    }
  }
  return needed == 0 ? 0.0 : static_cast<double>(shared) / needed;
}

AdmissionPolicy::Decision OverlapAdmission::Pick(std::span<const Candidate> due,
                                                 const GlobalTable& table,
                                                 uint64_t step) const {
  CGRAPH_CHECK(!due.empty());
  Decision best;
  double best_score = -1.0;
  for (size_t i = 0; i < due.size(); ++i) {
    const Candidate& c = due[i];
    CGRAPH_CHECK(c.footprint != nullptr);
    CGRAPH_CHECK(c.arrival_step <= step);
    const double overlap = OverlapScore(*c.footprint, table);
    const double score = overlap + aging_ * static_cast<double>(step - c.arrival_step);
    // Strict > keeps ties on the earliest (FIFO-ordered) candidate.
    if (score > best_score) {
      best_score = score;
      best = Decision{i, overlap};
    }
  }
  return best;
}

bool ParseAdmissionPolicyName(std::string_view name, AdmissionPolicyKind* kind) {
  if (name == "fifo") {
    *kind = AdmissionPolicyKind::kFifo;
    return true;
  }
  if (name == "overlap") {
    *kind = AdmissionPolicyKind::kOverlap;
    return true;
  }
  return false;
}

std::string_view AdmissionPolicyKindName(AdmissionPolicyKind kind) {
  switch (kind) {
    case AdmissionPolicyKind::kFifo:
      return "fifo";
    case AdmissionPolicyKind::kOverlap:
      return "overlap";
  }
  return "fifo";
}

std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(const EngineOptions& options) {
  switch (options.admission_policy) {
    case AdmissionPolicyKind::kFifo:
      return std::make_unique<FifoAdmission>();
    case AdmissionPolicyKind::kOverlap:
      return std::make_unique<OverlapAdmission>(options.admission_aging);
  }
  return std::make_unique<FifoAdmission>();
}

}  // namespace cgraph
