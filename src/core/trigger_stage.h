// Trigger stage of the LTP pipeline (paper section 3.2.3, Algorithm 1 lines 4-6).
//
// The loaded partition is processed for *all* triggered jobs concurrently: jobs form
// batches of at most num_workers, each batch rotates its private tables through the
// hierarchy while the shared structure stays pinned, and straggler splitting lets every
// worker steal vertex chunks of any job in the batch so a skewed job's remaining vertices
// are consumed by whichever cores come free (Fig. 6). With straggler splitting disabled
// (ablation) each job becomes a single task and skew serializes on one core.

#ifndef SRC_CORE_TRIGGER_STAGE_H_
#define SRC_CORE_TRIGGER_STAGE_H_

#include <vector>

#include "src/cache/memory_hierarchy.h"
#include "src/core/engine_options.h"
#include "src/core/job.h"
#include "src/partition/partitioned_graph.h"
#include "src/runtime/thread_pool.h"

namespace cgraph {

class TriggerStage {
 public:
  // `pool` and `hierarchy` are borrowed from the engine and must outlive this.
  TriggerStage(ThreadPool* pool, MemoryHierarchy* hierarchy, const EngineOptions& options);

  // Triggers partition p's loaded structure for every job in `group`, charging each
  // job's private-partition access as its batch rotates in.
  void Run(PartitionId p, const GraphPartition& part, const std::vector<Job*>& group);

 private:
  void TriggerBatch(PartitionId p, const GraphPartition& part,
                    const std::vector<Job*>& batch);

  ThreadPool* pool_;
  MemoryHierarchy* hierarchy_;
  EngineOptions options_;
};

}  // namespace cgraph

#endif  // SRC_CORE_TRIGGER_STAGE_H_
