// Trigger stage of the LTP pipeline (paper section 3.2.3, Algorithm 1 lines 4-6).
//
// The loaded partition is processed for *all* triggered jobs concurrently: jobs form
// batches of at most num_workers, each batch rotates its private tables through the
// hierarchy while the shared structure stays pinned, and straggler splitting lets every
// worker steal vertex chunks of any job in the batch so a skewed job's remaining vertices
// are consumed by whichever cores come free (Fig. 6). With straggler splitting disabled
// (ablation) each job becomes a single task and skew serializes on one core.
//
// The sweep itself is frontier-aware: active-vertex bitmask words are scanned 64 bits at
// a time (DynamicBitset::ForEachSetBitInWords), chunks are claimed word-aligned from
// per-job cursors held in a reused member arena, and dispatch goes through
// ThreadPool::RunBatch — no per-task heap allocation anywhere on the path. Batches whose
// jobs hold fewer than EngineOptions::parallel_trigger_threshold active vertices run
// inline on the driver thread instead (dispatch would cost more than the sweep). Cost is
// proportional to the frontier, not the partition; modeled metrics are identical to the
// dense sweep (EngineOptions::sparse_trigger toggles it for ablation).

#ifndef SRC_CORE_TRIGGER_STAGE_H_
#define SRC_CORE_TRIGGER_STAGE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "src/cache/memory_hierarchy.h"
#include "src/common/bitset.h"
#include "src/common/thread_annotations.h"
#include "src/core/engine_options.h"
#include "src/core/job.h"
#include "src/partition/partitioned_graph.h"
#include "src/runtime/thread_pool.h"

namespace cgraph {

class TriggerStage {
 public:
  // `pool` and `hierarchy` are borrowed from the engine and must outlive this.
  TriggerStage(ThreadPool* pool, MemoryHierarchy* hierarchy, const EngineOptions& options);

  // Triggers partition p's loaded structure for every job in `group`, charging each
  // job's private-partition access as its batch rotates in. Fully converged (job,
  // partition) pairs — active count zero — are skipped before batching.
  void Run(PartitionId p, const GraphPartition& part, const std::vector<Job*>& group)
      CGRAPH_REQUIRES_DRIVER;

 private:
  void TriggerBatch(PartitionId p, const GraphPartition& part, std::span<Job* const> batch)
      CGRAPH_REQUIRES_DRIVER;

  // Sweeps words [word_begin, word_end) of `mask`, invoking Compute on each set bit (or
  // the dense per-vertex loop under the ablation), and flushes the stat counters with
  // atomic adds. `mask` is the job's partition-p active set on the normal trigger path
  // and the re-drain set on the async path. Returns the Compute calls issued.
  uint64_t ProcessWords(PartitionId p, const GraphPartition& part, Job* job,
                        const DynamicBitset& mask, size_t word_begin, size_t word_end) const;

  // Async intra-iteration visibility (docs/execution_modes.md): after the normal trigger
  // sweep, repeatedly consumes pending delta_next contributions of the partition's
  // *master* vertices that the activation predicate accepts and re-runs Compute over
  // them, until the partition-local cascade settles. Interior masters (no replicas) are
  // self-contained; replicated masters additionally Acc-fold each consumed delta into
  // the job's deferred broadcast window so their mirrors still receive it at the next
  // sync boundary — every contribution reaches every replica exactly once. Mirrors are
  // never drained. Runs inline on the driver thread in ascending vertex order; for a
  // monotonic program the result equals dedicating extra BSP iterations to this
  // partition, so converged values are unchanged — only the iteration count shrinks.
  void Redrain(PartitionId p, const GraphPartition& part, Job* job) CGRAPH_REQUIRES_DRIVER;

  ThreadPool* pool_;
  MemoryHierarchy* hierarchy_;
  EngineOptions options_;

  // Reused dispatch arenas (sized once): per-batch-slot word cursors for straggler chunk
  // claiming, the batch's surviving jobs, and the task-index -> batch-slot map.
  std::unique_ptr<std::atomic<size_t>[]> cursors_;
  std::vector<Job*> batch_scratch_;
  std::vector<uint32_t> task_slot_;
  DynamicBitset drain_scratch_;  // Re-drain set of the partition being drained.
};

}  // namespace cgraph

#endif  // SRC_CORE_TRIGGER_STAGE_H_
