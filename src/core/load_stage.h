// Load stage of the LTP pipeline (paper sections 3.2.1-3.2.3, Algorithm 1 lines 1-3).
//
// Per scheduling step the stage picks the highest-priority partition still needed by some
// running job, resolves each triggered job to its snapshot-bound structure version, groups
// the jobs per version so snapshot-sharing jobs are triggered off the same load, and
// charges the shared structure access to the simulated hierarchy: the first toucher brings
// a segment in (miss), the rest hit, and each job touches only the segments expected to
// hold its active vertices (selective loading). The structure stays pinned until the
// trigger stage releases it so private-table rotation cannot evict it mid-group.

#ifndef SRC_CORE_LOAD_STAGE_H_
#define SRC_CORE_LOAD_STAGE_H_

#include <span>
#include <vector>

#include "src/cache/memory_hierarchy.h"
#include "src/common/thread_annotations.h"
#include "src/core/engine_options.h"
#include "src/core/job_manager.h"
#include "src/core/scheduler.h"
#include "src/partition/partitioned_graph.h"
#include "src/storage/global_table.h"
#include "src/storage/snapshot_store.h"

namespace cgraph {

class LoadStage {
 public:
  // Jobs needing the same resolved structure version of one partition: one shared load.
  struct VersionGroup {
    uint32_t version = 0;
    const GraphPartition* structure = nullptr;
    std::vector<Job*> jobs;
  };

  // `snapshots` may be null (single-graph engine); everything else is borrowed from the
  // engine and must outlive this.
  LoadStage(const PartitionedGraph& layout, const SnapshotStore* snapshots,
            GlobalTable* table, Scheduler* scheduler, MemoryHierarchy* hierarchy,
            JobManager* manager, const EngineOptions& options);

  // Highest-priority partition some job needs, or kInvalidPartition when none.
  PartitionId PickNext(const std::vector<bool>& eligible) const CGRAPH_REQUIRES_DRIVER_SHARED;

  // Partition p's registered jobs grouped by resolved structure version. The group order
  // rotates with p so structure-miss attribution does not always fall on the lowest slot.
  // The returned span aliases member arenas reused every scheduling step (no per-step
  // allocation); it is valid until the next FormGroups call.
  std::span<const VersionGroup> FormGroups(PartitionId p) CGRAPH_REQUIRES_DRIVER;

  // Charges every job's selective structure load and pins the structure for the group.
  void LoadStructure(PartitionId p, const VersionGroup& group) CGRAPH_REQUIRES_DRIVER;

  // Unpins the group's structure once the trigger stage is done with it.
  void Release(PartitionId p, const VersionGroup& group) CGRAPH_REQUIRES_DRIVER;

 private:
  // Snapshot resolution: the structure version bound to the job's submit time.
  const GraphPartition& Resolve(PartitionId p, const Job& job, uint32_t* version) const;

  const PartitionedGraph& layout_;
  const SnapshotStore* snapshots_;
  GlobalTable* table_;
  Scheduler* scheduler_;
  MemoryHierarchy* hierarchy_;
  JobManager* manager_;
  EngineOptions options_;

  // FormGroups arenas, reused across scheduling steps: the registered-slot scratch and
  // the group storage (each group's jobs vector keeps its capacity between steps).
  std::vector<JobId> registered_scratch_;
  std::vector<VersionGroup> groups_;
};

}  // namespace cgraph

#endif  // SRC_CORE_LOAD_STAGE_H_
