#include "src/core/scheduler.h"

#include <algorithm>

namespace cgraph {

Scheduler::Scheduler(const PartitionedGraph& graph, bool use_priorities, double theta_scale)
    : use_priorities_(use_priorities) {
  const uint32_t parts = graph.num_partitions();
  avg_degree_.resize(parts);
  state_change_.assign(parts, 1.0);  // Everything changes in iteration 0.
  double d_max = 0.0;
  for (PartitionId p = 0; p < parts; ++p) {
    avg_degree_[p] = graph.partition(p).average_degree();
    d_max = std::max(d_max, avg_degree_[p]);
  }
  // C(P) is a fraction in [0, 1], so C_max = 1; theta < 1 / (D_max * C_max) guarantees
  // the N(P) term strictly dominates.
  theta_ = d_max > 0.0 ? 0.99 / d_max : 0.0;
  theta_ *= std::clamp(theta_scale, 0.0, 1.0);
}

void Scheduler::SetStateChange(PartitionId p, double active_fraction) {
  state_change_[p] = std::clamp(active_fraction, 0.0, 1.0);
}

double Scheduler::Priority(const GlobalTable& table, PartitionId p) const {
  return PriorityFromCount(table.RegisteredCount(p), p);
}

double Scheduler::PriorityFromCount(uint32_t registered_count, PartitionId p) const {
  return static_cast<double>(registered_count) + theta_ * avg_degree_[p] * state_change_[p];
}

PartitionId Scheduler::PickNext(const GlobalTable& table,
                                const std::vector<bool>& eligible) const {
  PartitionId best = kInvalidPartition;
  double best_priority = -1.0;
  for (PartitionId p = 0; p < table.num_partitions(); ++p) {
    // One table lookup per partition: the count feeds both the eligibility filter and
    // the N(P) term of Eq. 1.
    const uint32_t count = table.RegisteredCount(p);
    if (!eligible[p] || count == 0) {
      continue;
    }
    if (!use_priorities_) {
      return p;  // Fixed index order.
    }
    const double priority = PriorityFromCount(count, p);
    if (priority > best_priority) {
      best_priority = priority;
      best = p;
    }
  }
  return best;
}

}  // namespace cgraph
