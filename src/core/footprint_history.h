// Lifetime-footprint forecasting from completed-job history.
//
// The overlap admission policy (src/core/admission_policy.h) scores a waiting job by its
// *initial* active-partition footprint — a snapshot that goes stale against long-running
// traversals whose frontier has long since moved on. CGraph's correlations exist across a
// job's whole lifetime, so this subsystem learns, per program type, *where in the graph a
// job of that type spends its life*:
//
//   * Every completed job contributes its per-iteration registered-partition trace (the
//     activation-tracing sets JobManager maintains anyway). The trace is normalized onto
//     `buckets` equal slices of the job's lifetime, producing an occupancy matrix
//     occ[b][p] in [0, 1]: the fraction of bucket-b time partition p was active.
//   * Profiles are decayed means over completed jobs of the same program type:
//     contribution sums are multiplied by `decay` before each new job folds in, so recent
//     jobs dominate when the workload drifts (decay = 1 is the plain mean, 0 keeps only
//     the latest job).
//   * Prediction answers: over a fresh job's expected lifetime, what fraction of its
//     partition-time will be spent on partitions the currently running set also needs?
//     Running jobs with a profile are projected forward through their own occupancy
//     matrices (a job at iteration i of an expected L is at normalized position i/L);
//     running jobs without one are assumed to persist on their currently active
//     partitions.
//
// Everything is a pure function of modeled engine state — traces, iteration counts, and
// profile arithmetic — so predictions are deterministic across runs and worker counts.

#ifndef SRC_CORE_FOOTPRINT_HISTORY_H_
#define SRC_CORE_FOOTPRINT_HISTORY_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"

namespace cgraph {

// One running job as the predictor sees it: enough to project its future footprint.
struct PredictedRunner {
  // Profile key (the program's name); looked up in the history, may be unknown.
  std::string_view program;
  // Completed iterations so far (0 while in its first iteration).
  uint64_t iteration = 0;
  // Per-partition active-vertex counts of the job's current iteration; the persistence
  // fallback predicts the job stays exactly on these partitions. Never null.
  const std::vector<uint32_t>* active_counts = nullptr;
};

class FootprintHistory {
 public:
  // Pre: buckets > 0, decay in [0, 1].
  FootprintHistory(uint32_t num_partitions, uint32_t buckets, double decay);

  uint32_t num_partitions() const { return num_partitions_; }
  uint32_t buckets() const { return buckets_; }
  double decay() const { return decay_; }

  // Folds a completed job into its program type's profile. `trace[i]` lists the
  // partitions active at iteration i (ascending); rows at or beyond `iterations` are
  // ignored (the final activation refresh registers an iteration that never runs).
  // Zero-iteration jobs (nothing initially active) carry no occupancy signal and are
  // skipped entirely.
  //
  // Post: HasProfile(program) is true iff it was before or iterations > 0.
  void RecordCompletion(std::string_view program,
                        const std::vector<std::vector<PartitionId>>& trace,
                        uint64_t iterations);

  // Whether at least one completed job of this type has been folded in.
  bool HasProfile(std::string_view program) const;
  size_t num_profiles() const { return profiles_.size(); }

  // Decayed mean lifetime of the type, in iterations. Pre: HasProfile(program).
  double ExpectedLifetime(std::string_view program) const;

  // Predicted probability that a job of this type is active on partition p during
  // lifetime bucket b. Pre: HasProfile(program), b < buckets(), p < num_partitions().
  double Occupancy(std::string_view program, uint32_t bucket, PartitionId p) const;

  // Fraction of the type's lifetime spent active on p (occupancy integrated over
  // buckets). Pre: HasProfile(program).
  double LifetimeWeight(std::string_view program, PartitionId p) const;

  // The predict policy's score: the integral, over a fresh job's expected lifetime, of
  // its predicted footprint overlap with the running set's predicted footprint,
  // normalized to [0, 1] by the job's own predicted partition-time. For each lifetime
  // bucket the running set is projected to the bucket's midpoint (iteration offset
  // against each runner's expected lifetime); an empty running set scores 0.
  //
  // Pre: HasProfile(program); every runner's active_counts is non-null and sized
  // num_partitions().
  double PredictOverlap(std::string_view program,
                        std::span<const PredictedRunner> running) const;

  // Overlap of the type's lifetime weights with an arbitrary partition set (admission-
  // time slot placement scores candidate cohorts with this): sum of LifetimeWeight(p)
  // over needed[p], normalized by the total lifetime weight. Pre: HasProfile(program),
  // needed.size() == num_partitions(). Returns 0 for an all-idle cohort or a type whose
  // profile never activates anything.
  double OverlapWithSet(std::string_view program, const std::vector<bool>& needed) const;

 private:
  struct Profile {
    // Decayed sums; divide by weight for the mean. occupancy is buckets x partitions,
    // row-major.
    std::vector<double> occupancy;
    double lifetime_sum = 0.0;
    double weight = 0.0;
  };

  const Profile* Find(std::string_view program) const;

  // A runner's predicted activity on p, `offset` iterations into the future.
  double ProjectRunner(const PredictedRunner& runner, double offset, PartitionId p) const;

  uint32_t num_partitions_;
  uint32_t buckets_;
  double decay_;
  // Ordered map: deterministic iteration, heterogeneous string_view lookup.
  std::map<std::string, Profile, std::less<>> profiles_;
};

}  // namespace cgraph

#endif  // SRC_CORE_FOOTPRINT_HISTORY_H_
