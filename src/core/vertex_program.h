// The user-facing programming model (paper section 3.4, Fig. 7).
//
// A job instantiates three functions — IsNotConvergent() (here IsActive), Acc(), and
// Compute() — over the decoupled state S while the engine owns the shared structure G.
// Compute() updates the vertex's value from its accumulated delta and scatters
// contributions to neighbors *within the loaded partition only*; replicas on other
// partitions receive them at the Push stage. Multi-phase algorithms (SCC) additionally
// drive the engine through phase transitions via OnIterationEnd()/ReinitVertex().
//
// Program objects are per-job and may hold phase state; the engine invokes Compute()
// concurrently from many workers but calls the phase hooks only at single-threaded
// synchronization points.

#ifndef SRC_CORE_VERTEX_PROGRAM_H_
#define SRC_CORE_VERTEX_PROGRAM_H_

#include <atomic>
#include <span>
#include <string_view>

#include "src/common/types.h"
#include "src/partition/partitioned_graph.h"
#include "src/storage/private_table.h"
#include "src/storage/vertex_state.h"

namespace cgraph {

// Scatter sink handed to Compute(): accumulates contributions into the *local* targets'
// delta_next slots with the job's Acc, and counts edge traversals for the cost model.
class ScatterOps {
 public:
  ScatterOps(AccKind kind, std::span<VertexState> states)
      : kind_(kind), states_(states) {}

  // Acc-accumulates `contribution` into the target's next-iteration delta. Thread-safe
  // against concurrent scatters from other workers processing the same partition.
  void Accumulate(LocalVertexId target, double contribution) {
    AtomicAccumulate(kind_, &states_[target].delta_next, contribution);
    ++edge_traversals_;
  }

  // Read-only view of a target's state, e.g. for SCC's same-color filter. value/aux are
  // stable during an iteration (only delta_next is concurrently written).
  const VertexState& Peek(LocalVertexId target) const { return states_[target]; }

  uint64_t edge_traversals() const { return edge_traversals_; }

 private:
  AccKind kind_;
  std::span<VertexState> states_;
  uint64_t edge_traversals_ = 0;
};

class VertexProgram {
 public:
  // What the engine should do after a job's iteration completed (post-Push).
  enum class IterationAction {
    kContinue,  // Keep iterating; the engine finishes the job when nothing is active.
    kNewPhase,  // Re-initialize every vertex state via ReinitVertex() and continue.
    kFinished,  // The job is done regardless of remaining activity.
  };

  // Passed to OnIterationEnd so multi-phase programs can inspect global progress.
  struct IterationContext {
    bool any_active = false;
    uint64_t iteration = 0;
    const PrivateTable* table = nullptr;          // Full state (read access).
    const PartitionedGraph* layout = nullptr;     // Partition layout (vertex membership).
  };

  virtual ~VertexProgram() = default;

  virtual std::string_view name() const = 0;

  // The accumulator joining neighbor contributions (paper's Acc()).
  virtual AccKind acc_kind() const = 0;

  // Monotonicity / confluence trait (docs/execution_modes.md): declares that the
  // program's fixpoint is independent of contribution *delivery timing* — any schedule
  // that eventually delivers every contribution converges to the same final masters.
  // Programs that return true contract to:
  //   * converge to a unique fixpoint under out-of-order / batched delivery (e.g. a
  //     min-based label fixpoint, or a peeling count whose scatters fire at most once
  //     per vertex on a state transition, never per-iteration);
  //   * be single-phase: OnIterationEnd never returns kNewPhase (the async push stage
  //     has no replay of deferred contributions across a ReinitVertex sweep);
  //   * tolerate a vertex consuming the Acc-combination of several iterations' worth of
  //     contributions in one Compute call.
  // Only such programs are eligible for ExecutionMode::kAsync; everything else runs BSP
  // regardless of the configured mode. Convergence-threshold programs (pagerank/ppr)
  // are NOT monotonic in this sense: their termination test depends on delta timing, so
  // batching contributions changes which residuals are discarded at convergence.
  virtual bool monotonic() const { return false; }

  // Path-independence trait, consulted only when monotonic() is true: declares that the
  // value a Compute call scatters along an edge is the vertex's candidate value itself,
  // not an edge-accumulated quantity — any path delivers the same final value (WCC's
  // min-label flood). For such programs the trigger stage's intra-iteration re-drain is
  // pure profit: eagerly flooding a partition can only deliver final candidate labels,
  // collapsing a multi-iteration local cascade into one trigger. Edge-accumulating
  // programs (sssp's dist+weight, bfs/khop's hop counts) must leave this false: a
  // drained scatter of a value that a shorter cross-partition path is about to improve
  // is wasted work, and without priority ordering (delta-stepping) eager relaxation
  // does strictly more of it than BSP's per-wave batching.
  virtual bool path_independent() const { return false; }

  // Initial state of a vertex (delta doubles as the activation bootstrap).
  virtual VertexState InitialState(const LocalVertexInfo& info) const = 0;

  // The paper's IsNotConvergent(): whether the vertex must be processed next iteration,
  // given its post-synchronization state.
  virtual bool IsActive(const VertexState& state) const = 0;

  // Forces a vertex active in iteration 0 even when IsActive(initial state) is false
  // (used by algorithms whose first sweep is unconditional, e.g. k-core).
  virtual bool InitiallyActive(const LocalVertexInfo& info, const VertexState& state) const {
    (void)info;
    return IsActive(state);
  }

  // Processes one active vertex of the loaded partition: consume state.delta into
  // state.value and scatter contributions through `ops` (paper Fig. 7).
  virtual void Compute(const GraphPartition& partition, LocalVertexId v,
                       std::span<VertexState> states, ScatterOps& ops) = 0;

  // Called at the job's iteration boundary, after synchronization. Default: plain
  // fixpoint semantics (run while anything is active).
  virtual IterationAction OnIterationEnd(const IterationContext& context) {
    (void)context;
    return IterationAction::kContinue;
  }

  // Applied to every vertex state when OnIterationEnd returned kNewPhase. Implementations
  // must leave value/delta/delta_next coherent for the new phase — in particular,
  // delta_next must be reset to the Acc identity.
  virtual void ReinitVertex(const LocalVertexInfo& info, VertexState& state) const {
    (void)info;
    (void)state;
  }
};

}  // namespace cgraph

#endif  // SRC_CORE_VERTEX_PROGRAM_H_
