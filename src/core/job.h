// A concurrent iterative graph-processing (CGP) job: a vertex program bound to its
// private state table, activity tracking, and synchronization buffer.

#ifndef SRC_CORE_JOB_H_
#define SRC_CORE_JOB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/bitset.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/vertex_program.h"
#include "src/metrics/run_report.h"
#include "src/storage/private_table.h"

namespace cgraph {

// A buffered mirror->master (or master->mirror) state-synchronization record; the
// elements of the paper's S_new queue (Algorithm 1 line 6 / Algorithm 2).
struct SyncRecord {
  PartitionId partition = 0;   // Destination partition.
  LocalVertexId local = 0;     // Destination local vertex.
  double delta = 0.0;
};

// Bucketed sync record: the destination partition is implied by the bucket, so only the
// local slot and the delta travel. Half the bytes of a SyncRecord, which matters because
// the push stage streams millions of these per run.
struct BucketRecord {
  LocalVertexId local = 0;
  double delta = 0.0;
};

class Job {
 public:
  // Sentinel for "not admitted": the job holds no global-table slot.
  static constexpr uint32_t kInvalidSlot = 0xFFFFFFFFu;

  Job(JobId id, std::unique_ptr<VertexProgram> program, Timestamp submit_time)
      : id_(id), program_(std::move(program)), submit_time_(submit_time) {}

  JobId id() const { return id_; }
  VertexProgram& program() { return *program_; }
  const VertexProgram& program() const { return *program_; }
  Timestamp submit_time() const { return submit_time_; }

  PrivateTable& table() { return table_; }
  const PrivateTable& table() const { return table_; }

  bool started() const { return started_; }
  bool finished() const { return finished_; }
  uint64_t iteration() const { return iteration_; }

  // Global-table registration index while admitted (kInvalidSlot when queued or done).
  // Distinct from id(): ids are unbounded, slots are bounded by EngineOptions::max_jobs
  // and recycled as jobs complete.
  uint32_t slot() const { return slot_; }

  JobStats& stats() { return stats_; }
  const JobStats& stats() const { return stats_; }

  // Per-partition initially-active vertex counts, the job's expected first-iteration
  // footprint. Computed lazily — only under footprint-aware admission policies, at the
  // job's first contended admission decision (empty otherwise); immutable afterwards.
  const std::vector<uint32_t>& footprint() const { return footprint_; }

  // Per-iteration active-partition trace (row i = partitions with active vertices at
  // iteration i, ascending). Collected only when the admission policy learns from
  // history (predict); folded into the FootprintHistory and released at completion.
  const std::vector<std::vector<PartitionId>>& activity_trace() const {
    return activity_trace_;
  }

 private:
  friend class LtpEngine;
  friend class BaselineExecutor;
  friend class JobManager;
  friend class LoadStage;
  friend class TriggerStage;
  friend class PushStage;

  JobId id_;
  std::unique_ptr<VertexProgram> program_;
  Timestamp submit_time_;

  PrivateTable table_;
  bool started_ = false;  // False until the engine admits the job (runtime arrival).
  uint32_t slot_ = kInvalidSlot;
  // Per-partition activity for the job's *current* iteration.
  std::vector<DynamicBitset> active_;
  std::vector<uint32_t> active_count_;
  std::vector<bool> processed_;       // Partition handled in the current iteration?
  std::vector<bool> dirty_;           // Private partition touched since last Push?
  // Fraction of each partition's vertices whose state changed at the previous iteration;
  // feeds the scheduler's C(P) term.
  std::vector<double> change_fraction_;
  uint32_t remaining_ = 0;            // Active partitions still to process this iteration.
  // Flat sync queue (baseline executors only; sorted by destination at push time).
  std::vector<SyncRecord> sync_buffer_;
  // LTP push path: one bucket per destination partition, reused across iterations with
  // capacity pre-reserved at admission (counting-sort semantics — records land grouped by
  // destination, so the merge/broadcast sweeps stay successive per private partition
  // without any std::sort).
  std::vector<std::vector<BucketRecord>> sync_in_;     // Mirror deltas -> their masters.
  std::vector<std::vector<BucketRecord>> broadcast_;   // Merged masters -> their mirrors.
  uint64_t iteration_ = 0;
  bool finished_ = false;
  JobStats stats_;
  // Per-job failure isolation (docs/robustness.md): a stage that detects a per-job
  // invariant violation (or an injected fault) records it here instead of aborting the
  // process; the engine's step loop routes a non-ok status into JobManager::FailJob,
  // which retires only this job. Reset at (re-)admission.
  Status fail_status_;
  // Step at which the job was (last) admitted; the base of the --job-step-budget clock.
  uint64_t admit_step_ = 0;
  // Set by LtpEngine::RestartFromCheckpoint while the job waits for re-admission:
  // InitJob then restores from the checkpoint instead of initializing fresh state.
  bool restore_pending_ = false;
  // Async (bounded-staleness) execution state; see docs/execution_modes.md. async_ is
  // the job's *effective* mode, fixed at init: options say async AND staleness > 0 AND
  // the program declares monotonic(). All three fields are untouched under BSP.
  bool async_ = false;
  // Iterations since the last master->mirror broadcast; a push is a sync boundary when
  // since_sync_ >= staleness, otherwise the broadcast is deferred.
  uint64_t since_sync_ = 0;
  // Per-partition deferred-broadcast accumulators, parallel to that partition's
  // replicated_masters(): the Acc-combination of the master deltas withheld since the
  // last sync, folded in just before each deferred swap and delivered (then reset to
  // the Acc identity) at the next sync boundary.
  std::vector<std::vector<double>> deferred_;
  std::vector<uint8_t> deferred_pending_;  // Partition has non-identity deferred deltas.
  // See footprint(); sized num_partitions when computed.
  std::vector<uint32_t> footprint_;
  // See activity_trace(); empty unless the manager tracks footprint history.
  std::vector<std::vector<PartitionId>> activity_trace_;
};

}  // namespace cgraph

#endif  // SRC_CORE_JOB_H_
