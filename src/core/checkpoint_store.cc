#include "src/core/checkpoint_store.h"

#include <utility>

namespace cgraph {

void CheckpointStore::Save(JobId id, JobCheckpoint snapshot) {
  checkpoints_[id] = std::move(snapshot);
}

const JobCheckpoint* CheckpointStore::Find(JobId id) const {
  const auto it = checkpoints_.find(id);
  return it == checkpoints_.end() ? nullptr : &it->second;
}

void CheckpointStore::Drop(JobId id) { checkpoints_.erase(id); }

}  // namespace cgraph
