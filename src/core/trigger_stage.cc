#include "src/core/trigger_stage.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/core/vertex_program.h"

namespace cgraph {

TriggerStage::TriggerStage(ThreadPool* pool, MemoryHierarchy* hierarchy,
                           const EngineOptions& options)
    : pool_(pool), hierarchy_(hierarchy), options_(options) {
  CGRAPH_CHECK(pool != nullptr);
  CGRAPH_CHECK(hierarchy != nullptr);
  const size_t max_batch = std::max<size_t>(1, options_.num_workers);
  cursors_ = std::make_unique<std::atomic<size_t>[]>(max_batch);
  batch_scratch_.reserve(options_.max_jobs);
  task_slot_.reserve(max_batch * max_batch);
}

void TriggerStage::Run(PartitionId p, const GraphPartition& part,
                       const std::vector<Job*>& group) {
  // Fully converged (job, partition) pairs have nothing to trigger: drop them before
  // batching so they occupy no batch slot and charge no private-table access. Activation
  // tracing only registers partitions that hold active vertices, so on a healthy engine
  // this filter passes everyone through — it is the invariant, made local. Finished jobs
  // are also dropped: a job can fail or be cancelled between group formation and the
  // trigger (fault isolation, docs/robustness.md), leaving stale activity behind.
  batch_scratch_.clear();
  for (Job* job : group) {
    if (!job->finished_ && job->active_count_[p] > 0) {
      batch_scratch_.push_back(job);
    }
  }
  const size_t batch_size = std::max<size_t>(1, options_.num_workers);
  const std::span<Job* const> all(batch_scratch_);
  for (size_t begin = 0; begin < all.size(); begin += batch_size) {
    const std::span<Job* const> batch =
        all.subspan(begin, std::min(batch_size, all.size() - begin));
    for (Job* job : batch) {
      const ItemKey private_key{DataKind::kPrivate, job->id(), p, 0};
      job->stats_.charge +=
          hierarchy_->Access(private_key, job->table().partition_bytes(p), /*pin=*/false);
    }
    TriggerBatch(p, part, batch);
  }
  // Async jobs settle their partition-local cascades before the barrier: the private
  // table is still resident (just charged above), so the extra sweeps are pure compute.
  // Only path-independent programs drain — their eager local flood delivers final
  // candidate labels, while an edge-accumulating program would scatter values the next
  // mirror merge is about to improve (see VertexProgram::path_independent()). The
  // active-count gate is an ablation knob on top.
  for (Job* job : batch_scratch_) {
    if (job->async_ && job->program().path_independent() &&
        (options_.async_drain_limit == 0 ||
         job->active_count_[p] <= options_.async_drain_limit)) {
      Redrain(p, part, job);
    }
  }
}

void TriggerStage::TriggerBatch(PartitionId p, const GraphPartition& part,
                                std::span<Job* const> batch) {
  const size_t n_words = (static_cast<size_t>(part.num_local_vertices()) + 63) / 64;
  if (n_words == 0 || batch.empty()) {
    return;
  }
  // Small batches run inline: below the active-work threshold, pool dispatch (wake-ups,
  // cursor traffic, batch open/close) costs more than sweeping the few frontier words on
  // the driver thread. Per-job word order is ascending either way, so modeled metrics
  // and results are identical to the pooled path.
  if (options_.parallel_trigger_threshold > 0) {
    uint64_t batch_active = 0;
    for (const Job* job : batch) {
      batch_active += job->active_count_[p];
    }
    if (batch_active < options_.parallel_trigger_threshold) {
      for (Job* job : batch) {
        ProcessWords(p, part, job, job->active_[p], 0, n_words);
      }
      return;
    }
  }
  // Chunks are claimed in whole bitmask words so a grain never straddles a word and the
  // sparse scan needs no partial-word masking.
  const size_t grain_words =
      std::max<size_t>(1, (std::max<uint32_t>(1, options_.chunk_grain) + 63) / 64);

  if (options_.straggler_split) {
    // Every worker can steal chunks of any job in the batch: the straggler's remaining
    // vertices are consumed by whichever cores come free (Fig. 6). Cursors live in the
    // stage's arena — one per batch slot, reset here, no allocation per batch.
    task_slot_.clear();
    for (uint32_t j = 0; j < batch.size(); ++j) {
      cursors_[j].store(0, std::memory_order_relaxed);
      const size_t tasks_for_job =
          std::min<size_t>(options_.num_workers, n_words / grain_words + 1);
      task_slot_.insert(task_slot_.end(), tasks_for_job, j);
    }
    pool_->RunBatch(task_slot_.size(), [&](size_t task) {
      const uint32_t j = task_slot_[task];
      Job* const job = batch[j];
      std::atomic<size_t>& cursor = cursors_[j];
      while (true) {
        const size_t begin = cursor.fetch_add(grain_words, std::memory_order_relaxed);
        if (begin >= n_words) {
          return;
        }
        ProcessWords(p, part, job, job->active_[p], begin,
                     std::min(begin + grain_words, n_words));
      }
    });
  } else {
    // Ablation: one task per job — a skewed job becomes the straggler.
    pool_->RunBatch(batch.size(), [&](size_t j) {
      ProcessWords(p, part, batch[j], batch[j]->active_[p], 0, n_words);
    });
  }
}

uint64_t TriggerStage::ProcessWords(PartitionId p, const GraphPartition& part, Job* job,
                                    const DynamicBitset& mask, size_t word_begin,
                                    size_t word_end) const {
  auto states = job->table().partition(p);
  ScatterOps ops(job->program().acc_kind(), states);
  uint64_t vertex_computes = 0;
  if (options_.sparse_trigger) {
    // Word-level frontier scan: 64 inactive vertices cost one load + compare, and active
    // vertices are visited in the same ascending order as the dense loop.
    mask.ForEachSetBitInWords(word_begin, word_end, [&](size_t v) {
      job->program().Compute(part, static_cast<LocalVertexId>(v), states, ops);
      ++vertex_computes;
    });
  } else {
    // Dense ablation sweep: per-vertex Test over the same word range.
    const size_t begin = word_begin * 64;
    const size_t end = std::min(word_end * 64, static_cast<size_t>(part.num_local_vertices()));
    for (size_t v = begin; v < end; ++v) {
      if (mask.Test(v)) {
        job->program().Compute(part, static_cast<LocalVertexId>(v), states, ops);
        ++vertex_computes;
      }
    }
  }
  // Flush counters with atomic adds: several workers may finish chunks of the same job
  // concurrently.
  std::atomic_ref<uint64_t>(job->stats_.vertex_computes)
      .fetch_add(vertex_computes, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(job->stats_.edge_traversals)
      .fetch_add(ops.edge_traversals(), std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(job->stats_.compute_units)
      .fetch_add(vertex_computes + ops.edge_traversals(), std::memory_order_relaxed);
  return vertex_computes;
}

void TriggerStage::Redrain(PartitionId p, const GraphPartition& part, Job* job) {
  const std::span<const LocalVertexId> interior = part.interior_locals();
  const std::span<const LocalVertexId> replicated = part.replicated_masters();
  if (interior.empty() && replicated.empty()) {
    return;
  }
  const AccKind kind = job->program().acc_kind();
  VertexProgram& program = job->program();
  const double identity = AccIdentity(kind);
  auto states = job->table().partition(p);
  const size_t n_words = (static_cast<size_t>(part.num_local_vertices()) + 63) / 64;
  drain_scratch_.Resize(part.num_local_vertices());
  uint64_t drained = 0;
  std::vector<double>& deferred = job->deferred_[p];
  bool any_deferred = false;
  while (true) {
    // Collect this round's drain set: master vertices whose pending contribution the
    // activation predicate accepts *now*. The mini-swap consumes delta_next exactly once
    // (delta was already consumed by the sweep that scattered here); contributions the
    // predicate rejects stay in delta_next and are discarded by the end-of-iteration
    // global swap, exactly as BSP discards them. Mirrors are never drained — their
    // deltas belong to their masters and travel through the mirror sync untouched.
    drain_scratch_.ClearAll();
    uint32_t activations = 0;
    for (const LocalVertexId v : interior) {
      VertexState& s = states[v];
      if (s.delta_next == identity) {
        continue;
      }
      VertexState probe = s;
      probe.delta = s.delta_next;
      if (!program.IsActive(probe)) {
        continue;
      }
      s.delta = s.delta_next;
      s.delta_next = identity;
      drain_scratch_.Set(v);
      ++activations;
    }
    // Replicated masters drain too: the master's copy of the contribution is consumed
    // here, and the mirrors' copy is Acc-folded into the deferred window so the next
    // sync boundary still delivers it — each contribution reaches every replica exactly
    // once, the master just no longer waits an iteration to act on it.
    for (size_t i = 0; i < replicated.size(); ++i) {
      VertexState& s = states[replicated[i]];
      if (s.delta_next == identity) {
        continue;
      }
      VertexState probe = s;
      probe.delta = s.delta_next;
      if (!program.IsActive(probe)) {
        continue;
      }
      deferred[i] = AccApply(kind, deferred[i], s.delta_next);
      any_deferred = true;
      s.delta = s.delta_next;
      s.delta_next = identity;
      drain_scratch_.Set(replicated[i]);
      ++activations;
    }
    if (activations == 0) {
      break;
    }
    drained += ProcessWords(p, part, job, drain_scratch_, 0, n_words);
  }
  if (any_deferred) {
    job->deferred_pending_[p] = 1;
  }
  job->stats_.redrain_computes += drained;
}

}  // namespace cgraph
