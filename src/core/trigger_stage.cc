#include "src/core/trigger_stage.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>

#include "src/common/check.h"
#include "src/core/vertex_program.h"

namespace cgraph {

TriggerStage::TriggerStage(ThreadPool* pool, MemoryHierarchy* hierarchy,
                           const EngineOptions& options)
    : pool_(pool), hierarchy_(hierarchy), options_(options) {
  CGRAPH_CHECK(pool != nullptr);
  CGRAPH_CHECK(hierarchy != nullptr);
}

void TriggerStage::Run(PartitionId p, const GraphPartition& part,
                       const std::vector<Job*>& group) {
  const size_t batch_size = std::max<size_t>(1, options_.num_workers);
  for (size_t begin = 0; begin < group.size(); begin += batch_size) {
    const size_t end = std::min(group.size(), begin + batch_size);
    std::vector<Job*> batch(group.begin() + begin, group.begin() + end);
    for (Job* job : batch) {
      const ItemKey private_key{DataKind::kPrivate, job->id(), p, 0};
      job->stats_.charge +=
          hierarchy_->Access(private_key, job->table().partition_bytes(p), /*pin=*/false);
    }
    TriggerBatch(p, part, batch);
  }
}

void TriggerStage::TriggerBatch(PartitionId p, const GraphPartition& part,
                                const std::vector<Job*>& batch) {
  struct JobTask {
    Job* job;
    std::shared_ptr<std::atomic<size_t>> cursor;
  };
  std::vector<JobTask> job_tasks;
  job_tasks.reserve(batch.size());
  for (Job* job : batch) {
    job_tasks.push_back({job, std::make_shared<std::atomic<size_t>>(0)});
  }

  const size_t n = part.num_local_vertices();
  const size_t grain = std::max<uint32_t>(1, options_.chunk_grain);
  auto process_range = [&part, p](Job* job, size_t begin, size_t end) {
    auto states = job->table().partition(p);
    ScatterOps ops(job->program().acc_kind(), states);
    uint64_t vertex_computes = 0;
    const DynamicBitset& active = job->active_[p];
    for (size_t v = begin; v < end; ++v) {
      if (active.Test(v)) {
        job->program().Compute(part, static_cast<LocalVertexId>(v), states, ops);
        ++vertex_computes;
      }
    }
    // Flush counters with atomic adds: several workers may finish chunks of the same job
    // concurrently.
    std::atomic_ref<uint64_t>(job->stats_.vertex_computes)
        .fetch_add(vertex_computes, std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(job->stats_.edge_traversals)
        .fetch_add(ops.edge_traversals(), std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(job->stats_.compute_units)
        .fetch_add(vertex_computes + ops.edge_traversals(), std::memory_order_relaxed);
  };

  std::vector<std::function<void()>> tasks;
  if (options_.straggler_split) {
    // Every worker can steal chunks of any job in the batch: the straggler's remaining
    // vertices are consumed by whichever cores come free (Fig. 6).
    for (const JobTask& jt : job_tasks) {
      const size_t tasks_for_job = std::min<size_t>(
          options_.num_workers, (n + grain - 1) / std::max<size_t>(grain, 1) + 1);
      for (size_t t = 0; t < tasks_for_job; ++t) {
        tasks.push_back([jt, n, grain, &process_range] {
          while (true) {
            const size_t begin = jt.cursor->fetch_add(grain, std::memory_order_relaxed);
            if (begin >= n) {
              return;
            }
            process_range(jt.job, begin, std::min(begin + grain, n));
          }
        });
      }
    }
  } else {
    // Ablation: one task per job — a skewed job becomes the straggler.
    for (const JobTask& jt : job_tasks) {
      tasks.push_back([jt, n, &process_range] { process_range(jt.job, 0, n); });
    }
  }
  pool_->RunAndWait(std::move(tasks));
}

}  // namespace cgraph
