#include "src/core/push_stage.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/core/vertex_program.h"

namespace cgraph {

PushStage::PushStage(const PartitionedGraph& layout, MemoryHierarchy* hierarchy,
                     JobManager* manager, const EngineOptions& options)
    : layout_(layout), hierarchy_(hierarchy), manager_(manager), options_(options) {
  CGRAPH_CHECK(hierarchy != nullptr);
  CGRAPH_CHECK(manager != nullptr);
}

void PushStage::CollectMirrorRecords(Job& job, PartitionId p) {
  const GraphPartition& layout_part = layout_.partition(p);
  const double identity = AccIdentity(job.program().acc_kind());
  auto states = job.table_.partition(p);
  for (LocalVertexId v = 0; v < layout_part.num_local_vertices(); ++v) {
    const LocalVertexInfo& info = layout_part.vertex(v);
    if (info.is_master) {
      continue;  // Masters keep their accumulation in place.
    }
    if (states[v].delta_next != identity) {
      job.sync_buffer_.push_back(
          SyncRecord{info.master_partition, info.master_local, states[v].delta_next});
      // The mirror's contribution now lives in the buffer; clear the slot so the
      // broadcast phase can overwrite it with the merged value.
      states[v].delta_next = identity;
    }
  }
}

void PushStage::Push(Job& job) {
  const PartitionedGraph& g = layout_;
  const AccKind kind = job.program().acc_kind();
  const double identity = AccIdentity(kind);

  // Phase 1 (Algorithm 2, SortD + merge): mirror deltas, sorted by master partition, are
  // Acc-merged into master delta_next slots. Sorting makes the updates successive per
  // private partition, which is why we charge one private-partition access per distinct
  // destination partition (in the swap sweep below) rather than one per record.
  std::sort(job.sync_buffer_.begin(), job.sync_buffer_.end(),
            [](const SyncRecord& a, const SyncRecord& b) {
              if (a.partition != b.partition) {
                return a.partition < b.partition;
              }
              return a.local < b.local;
            });
  for (const SyncRecord& rec : job.sync_buffer_) {
    auto states = job.table_.partition(rec.partition);
    states[rec.local].delta_next = AccApply(kind, states[rec.local].delta_next, rec.delta);
    job.dirty_[rec.partition] = true;
  }
  job.stats_.push_updates += job.sync_buffer_.size();
  job.sync_buffer_.clear();

  // Phase 2 (SortS + broadcast): merged master values are pushed back to mirrors so every
  // replica agrees on next iteration's delta (and hence on activity and value updates).
  std::vector<SyncRecord> broadcast;
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    if (!job.dirty_[p]) {
      continue;
    }
    const GraphPartition& part = g.partition(p);
    auto states = job.table_.partition(p);
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      const LocalVertexInfo& info = part.vertex(v);
      if (!info.is_master || states[v].delta_next == identity) {
        continue;
      }
      for (const ReplicaRef& ref : part.mirrors_of(v)) {
        broadcast.push_back(SyncRecord{ref.partition, ref.local, states[v].delta_next});
      }
    }
  }
  std::sort(broadcast.begin(), broadcast.end(), [](const SyncRecord& a, const SyncRecord& b) {
    if (a.partition != b.partition) {
      return a.partition < b.partition;
    }
    return a.local < b.local;
  });
  for (const SyncRecord& rec : broadcast) {
    auto states = job.table_.partition(rec.partition);
    states[rec.local].delta_next = rec.delta;  // Replace: mirror contribution was merged.
    job.dirty_[rec.partition] = true;
  }
  job.stats_.push_updates += broadcast.size();

  // Phase 3: swap the double buffer on dirty partitions, recompute activity, and charge
  // the batched private-table accesses of the whole push.
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    if (job.dirty_[p]) {
      const ItemKey private_key{DataKind::kPrivate, job.id(), p, 0};
      job.stats_.charge +=
          hierarchy_->Access(private_key, job.table_.partition_bytes(p), /*pin=*/false);
    }
  }
  const uint64_t active_total = manager_->RefreshActivity(job, /*all_partitions=*/false,
                                                          /*swap_buffers=*/true,
                                                          /*initial=*/false);

  ++job.iteration_;
  job.stats_.iterations = job.iteration_;
  std::fill(job.processed_.begin(), job.processed_.end(), false);

  // Iteration-boundary protocol with the program (possibly multi-phase).
  bool registered = false;
  uint64_t active_now = active_total;
  for (int guard = 0; guard < 1024; ++guard) {
    VertexProgram::IterationContext context;
    context.any_active = active_now > 0;
    context.iteration = job.iteration_;
    context.table = &job.table_;
    context.layout = &g;
    const auto action = job.program().OnIterationEnd(context);
    if (action == VertexProgram::IterationAction::kFinished) {
      manager_->FinishJob(job);
      return;
    }
    if (action == VertexProgram::IterationAction::kContinue) {
      if (active_now == 0 || job.iteration_ >= options_.max_iterations_per_job) {
        manager_->FinishJob(job);
        return;
      }
      registered = true;
      break;
    }
    // kNewPhase: re-initialize every vertex state and re-derive activity. Charged as a
    // full private-table sweep.
    for (PartitionId p = 0; p < g.num_partitions(); ++p) {
      const GraphPartition& part = g.partition(p);
      auto states = job.table_.partition(p);
      for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
        job.program().ReinitVertex(part.vertex(v), states[v]);
      }
      const ItemKey private_key{DataKind::kPrivate, job.id(), p, 0};
      job.stats_.charge +=
          hierarchy_->Access(private_key, job.table_.partition_bytes(p), /*pin=*/false);
    }
    active_now = manager_->RefreshActivity(job, /*all_partitions=*/true,
                                           /*swap_buffers=*/false, /*initial=*/false);
  }
  CGRAPH_CHECK(registered);
}

}  // namespace cgraph
