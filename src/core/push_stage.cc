#include "src/core/push_stage.h"

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "src/common/check.h"
#include "src/core/vertex_program.h"

namespace cgraph {

PushStage::PushStage(const PartitionedGraph& layout, MemoryHierarchy* hierarchy,
                     JobManager* manager, const EngineOptions& options)
    : layout_(layout), hierarchy_(hierarchy), manager_(manager), options_(options) {
  CGRAPH_CHECK(hierarchy != nullptr);
  CGRAPH_CHECK(manager != nullptr);
  for (PartitionId p = 0; p < layout.num_partitions(); ++p) {
    total_replicated_ += layout.partition(p).replicated_masters().size();
  }
}

void PushStage::CollectMirrorRecords(Job& job, PartitionId p) {
  const GraphPartition& layout_part = layout_.partition(p);
  const double identity = AccIdentity(job.program().acc_kind());
  auto states = job.table_.partition(p);
  // Only mirror replicas can have anything to send: walk the partition's mirror index
  // (ascending locals, so record order matches the old full-sweep order) instead of
  // testing every local vertex.
  for (const LocalVertexId v : layout_part.mirror_locals()) {
    if (states[v].delta_next != identity) {
      const LocalVertexInfo& info = layout_part.vertex(v);
      job.sync_in_[info.master_partition].push_back(
          BucketRecord{info.master_local, states[v].delta_next});
      // The mirror's contribution now lives in the bucket; clear the slot so the
      // broadcast phase can overwrite it with the merged value.
      states[v].delta_next = identity;
    }
  }
}

void PushStage::Push(Job& job) {
  const PartitionedGraph& g = layout_;
  const AccKind kind = job.program().acc_kind();
  const double identity = AccIdentity(kind);

  // Phase 1 (Algorithm 2's SortD + merge, realized as counting-sort buckets): mirror
  // deltas were collected directly into per-destination-partition buckets, so sweeping
  // buckets in partition order makes the updates successive per private partition — the
  // same access pattern the sort used to establish, hence the same charge model of one
  // private-partition access per distinct destination partition (in the swap sweep below)
  // rather than one per record.
  uint64_t merged_records = 0;
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    std::vector<BucketRecord>& bucket = job.sync_in_[p];
    if (bucket.empty()) {
      continue;
    }
    auto states = job.table_.partition(p);
    for (const BucketRecord& rec : bucket) {
      states[rec.local].delta_next = AccApply(kind, states[rec.local].delta_next, rec.delta);
    }
    job.dirty_[p] = true;
    merged_records += bucket.size();
    bucket.clear();  // Keeps capacity: the bucket is reused every iteration.
  }
  job.stats_.push_updates += merged_records;

  // Phase 2 (SortS + broadcast, same bucket scheme): merged master values are pushed back
  // to mirrors so every replica agrees on next iteration's delta (and hence on activity
  // and value updates). Only replicated masters can have mirrors to feed, so the source
  // sweep walks the mirror index instead of every local vertex. Destinations are unique
  // (a mirror has exactly one master), so per-bucket application order cannot matter.
  //
  // Async (docs/execution_modes.md): mirror->master flow above runs every iteration —
  // masters are always fresh — but this master->mirror broadcast may lag by up to
  // `staleness` iterations. At a deferred boundary each master's delta is Acc-folded
  // into the job's per-partition deferred accumulator instead of travelling; at a sync
  // boundary the accumulated window combines with the current delta and travels as one
  // record per mirror. Exact for monotonic programs: min-windows are idempotent, and a
  // sum-window delivers each contribution exactly once (mirror application replaces, and
  // the mirror's own prior contribution was already merged upstream).
  uint64_t broadcast_records = 0;
  bool sync_boundary = !job.async_ || job.since_sync_ >= options_.staleness;
  if (!sync_boundary && options_.async_defer_divisor > 0) {
    // Adaptive deferral: the staleness window is an upper bound, not a mandate. Count
    // the fresh master records this boundary would withhold; a cold boundary (the
    // convergence tail, where the critical path is a latency-bound cross-partition
    // chain) syncs immediately instead of stretching it by a whole iteration. Only hot
    // boundaries — where batching several waves into one Acc-combined record pays —
    // actually defer.
    uint64_t fresh = 0;
    for (PartitionId p = 0; p < g.num_partitions(); ++p) {
      if (!job.dirty_[p]) {
        continue;
      }
      const GraphPartition& part = g.partition(p);
      auto states = job.table_.partition(p);
      for (const LocalVertexId v : part.replicated_masters()) {
        fresh += states[v].delta_next != identity ? 1 : 0;
      }
    }
    sync_boundary = fresh * options_.async_defer_divisor < total_replicated_;
  }
  if (sync_boundary) {
    for (PartitionId p = 0; p < g.num_partitions(); ++p) {
      const bool has_deferred = job.async_ && job.deferred_pending_[p] != 0;
      if (!job.dirty_[p] && !has_deferred) {
        continue;
      }
      const GraphPartition& part = g.partition(p);
      auto states = job.table_.partition(p);
      const std::span<const LocalVertexId> masters = part.replicated_masters();
      for (size_t i = 0; i < masters.size(); ++i) {
        const LocalVertexId v = masters[i];
        double delta = states[v].delta_next;
        if (has_deferred) {
          delta = AccApply(kind, job.deferred_[p][i], delta);
          job.deferred_[p][i] = identity;
        }
        if (delta == identity) {
          continue;
        }
        for (const ReplicaRef& ref : part.mirrors_of(v)) {
          job.broadcast_[ref.partition].push_back(BucketRecord{ref.local, delta});
        }
      }
      if (has_deferred) {
        job.deferred_pending_[p] = 0;
      }
    }
    job.since_sync_ = 0;
  } else {
    // Deferred boundary: withhold the broadcast, Acc-folding each master's fresh delta
    // into the window accumulator *before* the phase-3 swap clears it. The master still
    // consumes its own delta via the swap — its copy and the mirrors' window entry are
    // disjoint deliveries, so nothing is double-counted.
    uint64_t deferred_now = 0;
    for (PartitionId p = 0; p < g.num_partitions(); ++p) {
      if (!job.dirty_[p]) {
        continue;
      }
      const GraphPartition& part = g.partition(p);
      auto states = job.table_.partition(p);
      const std::span<const LocalVertexId> masters = part.replicated_masters();
      for (size_t i = 0; i < masters.size(); ++i) {
        const LocalVertexId v = masters[i];
        if (states[v].delta_next == identity) {
          continue;
        }
        job.deferred_[p][i] = AccApply(kind, job.deferred_[p][i], states[v].delta_next);
        job.deferred_pending_[p] = 1;
        deferred_now += part.mirrors_of(v).size();
      }
    }
    job.stats_.deferred_pushes += deferred_now;
    ++job.since_sync_;
  }
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    std::vector<BucketRecord>& bucket = job.broadcast_[p];
    if (bucket.empty()) {
      continue;
    }
    auto states = job.table_.partition(p);
    for (const BucketRecord& rec : bucket) {
      states[rec.local].delta_next = rec.delta;  // Replace: mirror contribution was merged.
    }
    job.dirty_[p] = true;
    broadcast_records += bucket.size();
    bucket.clear();
  }
  job.stats_.push_updates += broadcast_records;

  // Phase 3: swap the double buffer on dirty partitions, recompute activity, and charge
  // the batched private-table accesses of the whole push.
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    if (job.dirty_[p]) {
      const ItemKey private_key{DataKind::kPrivate, job.id(), p, 0};
      job.stats_.charge +=
          hierarchy_->Access(private_key, job.table_.partition_bytes(p), /*pin=*/false);
    }
  }
  uint64_t active_total = manager_->RefreshActivity(job, /*all_partitions=*/false,
                                                    /*swap_buffers=*/true,
                                                    /*initial=*/false);

  // Flush-on-drain: an async job whose frontier went quiet may still owe mirrors a
  // deferred window — convergence is only real once every withheld record was delivered
  // and the refreshed activity is still zero. One flush suffices: it empties every
  // accumulator and nothing re-defers without Compute running.
  if (job.async_ && active_total == 0 && job.since_sync_ > 0) {
    uint64_t flushed_records = 0;
    for (PartitionId p = 0; p < g.num_partitions(); ++p) {
      if (job.deferred_pending_[p] == 0) {
        continue;
      }
      const GraphPartition& part = g.partition(p);
      const std::span<const LocalVertexId> masters = part.replicated_masters();
      for (size_t i = 0; i < masters.size(); ++i) {
        if (job.deferred_[p][i] == identity) {
          continue;
        }
        for (const ReplicaRef& ref : part.mirrors_of(masters[i])) {
          job.broadcast_[ref.partition].push_back(BucketRecord{ref.local, job.deferred_[p][i]});
        }
        job.deferred_[p][i] = identity;
      }
      job.deferred_pending_[p] = 0;
    }
    for (PartitionId p = 0; p < g.num_partitions(); ++p) {
      std::vector<BucketRecord>& bucket = job.broadcast_[p];
      if (bucket.empty()) {
        continue;
      }
      auto states = job.table_.partition(p);
      for (const BucketRecord& rec : bucket) {
        states[rec.local].delta_next = rec.delta;  // Mirror slots are at the identity here.
      }
      job.dirty_[p] = true;
      flushed_records += bucket.size();
      bucket.clear();
      const ItemKey private_key{DataKind::kPrivate, job.id(), p, 0};
      job.stats_.charge +=
          hierarchy_->Access(private_key, job.table_.partition_bytes(p), /*pin=*/false);
    }
    job.stats_.push_updates += flushed_records;
    job.since_sync_ = 0;
    if (flushed_records > 0) {
      active_total = manager_->RefreshActivity(job, /*all_partitions=*/false,
                                               /*swap_buffers=*/true, /*initial=*/false);
    }
  }

  ++job.iteration_;
  job.stats_.iterations = job.iteration_;
  std::fill(job.processed_.begin(), job.processed_.end(), false);

  // Iteration-boundary protocol with the program (possibly multi-phase).
  bool registered = false;
  uint64_t active_now = active_total;
  for (int guard = 0; guard < 1024; ++guard) {
    VertexProgram::IterationContext context;
    context.any_active = active_now > 0;
    context.iteration = job.iteration_;
    context.table = &job.table_;
    context.layout = &g;
    const auto action = job.program().OnIterationEnd(context);
    if (action == VertexProgram::IterationAction::kFinished) {
      manager_->FinishJob(job);
      return;
    }
    if (action == VertexProgram::IterationAction::kContinue) {
      if (active_now == 0 || job.iteration_ >= options_.max_iterations_per_job) {
        manager_->FinishJob(job);
        return;
      }
      registered = true;
      break;
    }
    // kNewPhase: re-initialize every vertex state and re-derive activity. Charged as a
    // full private-table sweep. The monotonic() contract forbids phases under async —
    // a re-init would invalidate the deferred window without any way to replay it. A
    // program breaking that contract is a per-job failure, not a process abort: record
    // it and let the engine retire just this job.
    if (job.async_) {
      job.fail_status_ = Status::FailedPrecondition(
          "Push: program '" + job.stats_.job_name +
          "' requested a new phase while running async — monotonic() forbids phases");
      return;
    }
    for (PartitionId p = 0; p < g.num_partitions(); ++p) {
      const GraphPartition& part = g.partition(p);
      auto states = job.table_.partition(p);
      for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
        job.program().ReinitVertex(part.vertex(v), states[v]);
      }
      const ItemKey private_key{DataKind::kPrivate, job.id(), p, 0};
      job.stats_.charge +=
          hierarchy_->Access(private_key, job.table_.partition_bytes(p), /*pin=*/false);
    }
    active_now = manager_->RefreshActivity(job, /*all_partitions=*/true,
                                           /*swap_buffers=*/false, /*initial=*/false);
  }
  if (!registered) {
    // The program spun through the phase guard without settling — isolate this job.
    job.fail_status_ = Status::Internal(
        "Push: program '" + job.stats_.job_name +
        "' did not settle on a continuing or finished iteration within the phase guard");
    return;
  }
  // The job continues from a consistent boundary: sync buckets empty, buffers swapped,
  // next iteration's registrations in place — the state a checkpoint can resume from.
  manager_->MaybeCheckpoint(job);
}

}  // namespace cgraph
