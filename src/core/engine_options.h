// Configuration shared by the LTP engine and the baseline executors.

#ifndef SRC_CORE_ENGINE_OPTIONS_H_
#define SRC_CORE_ENGINE_OPTIONS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/cache/memory_hierarchy.h"
#include "src/common/fault_injection.h"
#include "src/metrics/cost_model.h"
#include "src/partition/partition_quality.h"

namespace cgraph {

// Which job-level admission policy JobManager uses when a concurrency slot frees up
// (the upper level of two-level scheduling; see src/core/admission_policy.h).
enum class AdmissionPolicyKind : uint8_t {
  kFifo,     // Strict arrival order (default; bit-identical to the pre-policy engine).
  kOverlap,  // Maximize footprint overlap with running jobs, aging-bounded wait.
  kPredict,  // Maximize lifetime-forecast overlap from completed-job history
             // (src/core/footprint_history.h); falls back to kOverlap scoring for
             // program types with no completed history yet.
};

// Iteration model (docs/execution_modes.md). kBsp is the deterministic bulk-synchronous
// default: every iteration triggers to a barrier, then the Push stage synchronizes
// replicas, so a vertex never sees same-iteration updates. kAsync relaxes both halves of
// that barrier for *monotonic* programs (VertexProgram::monotonic()):
//
//   * intra-iteration visibility — the trigger stage re-drains interior vertices (masters
//     with no replicas anywhere) of a partition within the iteration, so improvement
//     cascades that stay inside the partition settle in one pass instead of one level per
//     iteration;
//   * bounded-staleness propagation — the push stage may withhold master->mirror
//     broadcasts for up to `staleness` iterations, accumulating the deferred updates and
//     delivering their Acc-combination at the next sync boundary, so replica traffic is
//     batched instead of per-wave.
//
// Non-monotonic jobs silently run BSP under kAsync (stats().async_execution stays false);
// final converged values are identical to BSP either way — BSP stays the correctness
// oracle.
enum class ExecutionMode : uint8_t {
  kBsp,
  kAsync,
};

inline const char* ExecutionModeName(ExecutionMode mode) {
  return mode == ExecutionMode::kAsync ? "async" : "bsp";
}

// Parses a CLI spelling of ExecutionMode. Returns false (leaving *out untouched) on an
// unknown name so callers can emit a usage error listing the valid values.
inline bool ParseExecutionModeName(const char* name, ExecutionMode* out) {
  const std::string_view s(name);
  if (s == "bsp") {
    *out = ExecutionMode::kBsp;
    return true;
  }
  if (s == "async") {
    *out = ExecutionMode::kAsync;
    return true;
  }
  return false;
}

struct EngineOptions {
  // Worker threads ("cores"); one trigger task per worker (paper section 3.2.3).
  uint32_t num_workers = 4;

  // Simulated LLC / memory / disk parameters (identical across compared systems).
  HierarchyOptions hierarchy;

  // Modeled-time coefficients used by reports.
  CostModel cost_model;

  // Priority-based partition loading (Eq. 1). Disabled = fixed index order, i.e. the
  // "CGraph-without" configuration of Fig. 8.
  bool use_scheduler = true;

  // Ablation: scales Eq. 1's theta (0 drops the D(P)*C(P) term entirely, leaving pure
  // N(P) ordering; 1 is the paper's setting).
  double theta_scale = 1.0;

  // Straggler splitting: dynamic chunk stealing within a partition trigger (Fig. 6).
  // Disabled = one task per (job, partition).
  bool straggler_split = true;

  // Vertices per work chunk when straggler splitting is on. The trigger stage rounds this
  // up to whole 64-vertex bitmask words so chunk claiming stays word-aligned.
  uint32_t chunk_grain = 256;

  // Frontier-aware trigger sweeps: scan the active bitmask word-at-a-time and skip 64
  // inactive vertices per load. Disabled = the dense per-vertex Test() loop (ablation;
  // modeled metrics are identical either way, only wall time differs).
  bool sparse_trigger = true;

  // Per-vertex bookkeeping sweeps (job init, activity refresh) run through the thread
  // pool's batch dispatch when a partition has at least this many local vertices;
  // smaller partitions stay inline because dispatch would cost more than the sweep.
  // 0 forces the parallel path (used by tests to cover it on small fixtures).
  uint32_t parallel_sweep_threshold = 1u << 13;

  // A trigger batch dispatches through the thread pool only when its jobs together hold
  // at least this many active vertices in the picked partition; smaller batches run
  // inline on the driver thread — waking workers for a handful of frontier words costs
  // more than the sweep (the workers=4 < workers=1 regression on small partitions).
  // 0 forces pooled dispatch (tests use it to cover the parallel path on small
  // fixtures). Modeled metrics are identical either way; only wall time differs.
  uint32_t parallel_trigger_threshold = 1u << 12;

  // Capacity of the global table's per-partition job set.
  uint32_t max_jobs = 64;

  // Edge-placement strategy the graph was (or should be) built with (CLI:
  // --partitioner; see docs/partitioning.md). Partitioning happens at graph-build time,
  // before the engine exists, so this field is record-keeping the CLI wires into
  // PartitionOptions::partitioner — Report() sources the measured quality indices from
  // PartitionedGraph::quality(), the layout's own record, not from here.
  PartitionerKind partitioner = PartitionerKind::kEvenEdge;

  // Job-level admission: which due waiter a freed slot admits (CLI: --admission).
  AdmissionPolicyKind admission_policy = AdmissionPolicyKind::kFifo;

  // Overlap/predict-admission aging: score bonus per scheduling step a due job has
  // waited (CLI: --aging). Both overlap scores are bounded by 1, so a waiter can only be
  // overtaken by jobs arriving within 1/admission_aging steps of it — bounded
  // overtaking, hence no starvation (total wait still depends on how long slot-holders
  // run). Must be > 0 under kOverlap/kPredict; ignored under kFifo.
  double admission_aging = 1.0 / 256.0;

  // Footprint-history decay (CLI: --history-decay): each program type's occupancy
  // profile is a decayed mean over its completed jobs — prior contributions are scaled
  // by this factor before a new job folds in. 1 = plain mean over all history, 0 = only
  // the most recent job. Must be in [0, 1]; consulted under kPredict.
  double history_decay = 0.5;

  // Lifetime buckets of the occupancy profile (CLI: --history-buckets): each completed
  // job's per-iteration partition trace is normalized onto this many equal slices of its
  // lifetime before folding into the profile. More buckets resolve frontier movement
  // finer at proportionally more profile memory. Must be > 0 under kPredict.
  uint32_t history_buckets = 8;

  // Admission-time slot placement (CLI: --slot-pools): when > 1, the max_jobs slots are
  // partitioned into this many contiguous pools and an admitted job joins the pool whose
  // running cohort its (predicted, or initial-footprint) partition weights overlap most,
  // taking the pool's lowest free slot. 1 (default) keeps the legacy placement
  // (slot == job id when free, else lowest free slot), which FIFO bit-identity relies
  // on. Placement affects only slot indices — and hence per-partition trigger order of
  // co-registered jobs — never which job is admitted.
  uint32_t slot_pools = 1;

  // Iteration model (CLI: --execution). kAsync only changes behavior for jobs whose
  // program declares monotonic() — everything else (and kBsp itself) is byte-identical
  // to the pre-async engine. See the ExecutionMode comment above and
  // docs/execution_modes.md.
  ExecutionMode execution_mode = ExecutionMode::kBsp;

  // Bounded-staleness window for kAsync (CLI: --staleness): master->mirror broadcasts
  // may be withheld for at most this many iterations before a forced sync. 0 makes
  // every push a sync boundary — i.e. async degenerates to BSP and is treated as BSP
  // (re-drain included). Ignored under kBsp.
  uint32_t staleness = 1;

  // Adaptive deferral (kAsync): the staleness window is an upper bound, not a mandate.
  // A push boundary defers its broadcast only while the iteration is "hot" — the number
  // of fresh master broadcast records is at least (total replicated masters) /
  // async_defer_divisor. Cold boundaries sync immediately: deferral batches high-churn
  // phases without stretching the critical path, which away from those phases is a
  // latency-bound cross-partition chain that a withheld broadcast delays by a whole
  // iteration. The default 1 defers only boundaries where essentially the entire
  // replicated population is churning (an all-active flood, e.g. WCC's first waves) —
  // the strictest setting, and the one that wins modeled time as well as compute units;
  // larger divisors widen deferral (more batching, more iteration stretch), 0 always
  // defers up to the staleness bound (fixed-window ablation).
  uint32_t async_defer_divisor = 1;

  // Re-drain gate (kAsync, ablation): when non-zero, a partition is re-drained within
  // the iteration only while its pre-sweep active count is at most this many vertices.
  // Eligibility itself is the program's path_independent() trait — this knob only
  // restricts *when* an eligible program drains, for ablating the eager flood against
  // a tail-only one. 0 (default) always drains eligible programs.
  uint32_t async_drain_limit = 0;

  // Safety valve against non-converging programs.
  uint64_t max_iterations_per_job = 10000;

  // Fault-tolerance layer (docs/robustness.md). All four knobs default off; the engine
  // pays nothing for the subsystem when they stay there.

  // Planned injected failures (CLI: --inject-fault=KIND@STEP[:JOB], repeatable). Empty =
  // harness unarmed; each poll site then costs one boolean load.
  std::vector<FaultSpec> fault_specs;

  // Seed for deterministic corruption-target selection under --inject-fault=corrupt@...
  uint64_t fault_seed = 42;

  // Iteration-boundary checkpointing (CLI: --checkpoint-every): every K-th iteration of a
  // running job snapshots its vertex values, deferred async windows, and stats into the
  // engine's CheckpointStore, enabling RestartFromCheckpoint after a failure or
  // cancellation. 0 = off. Checkpoints are bookkeeping, not modeled work: they add no
  // hierarchy charge, so modeled CSVs are byte-identical with checkpointing on or off
  // (their modeled cost is reported separately via stats().checkpoint_bytes).
  uint64_t checkpoint_every = 0;

  // Per-job execution budget in scheduling steps (CLI: --job-step-budget): a job still
  // running this many steps after its admission is cancelled mid-run (terminal
  // stats().cancelled; restartable from its last checkpoint). The budget restarts on
  // every (re-)admission. 0 = off. This is the daemon's lever for bounding *execution*,
  // complementing deadline_steps which bounds queue wait only.
  uint64_t job_step_budget = 0;
};

}  // namespace cgraph

#endif  // SRC_CORE_ENGINE_OPTIONS_H_
