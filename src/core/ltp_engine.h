// The data-centric Load-Trigger-Pushing (LTP) execution engine — the paper's core
// contribution (sections 3.1, 3.2, 3.4; Algorithms 1-3).
//
// Per scheduling step the engine:
//   Load    — picks the highest-priority partition still needed by some job this
//             iteration and charges one shared structure access (pinned) plus each
//             triggered job's private-partition access to the simulated hierarchy;
//   Trigger — processes the partition for *all* registered jobs concurrently (batched by
//             worker count; job batches rotate private tables while the structure stays
//             pinned; straggler splitting balances skewed jobs across free cores);
//   Push    — when a job has handled all its active partitions, its buffered mirror
//             deltas are merged into masters (sorted by destination partition), merged
//             values broadcast back to mirrors (sorted again), the delta double-buffer is
//             swapped, and the next iteration's partitions are registered in the global
//             table (activation tracing).
//
// Jobs advance through their own iterations independently — BFS may touch three
// partitions per iteration while PageRank sweeps all of them — yet all structure loads
// are shared through the common loading order.
//
// When constructed over a SnapshotStore, each job binds to the newest snapshot not newer
// than its submit time; jobs on different snapshots still share every unchanged partition
// version (section 3.2.1, Figs. 16-19).

#ifndef SRC_CORE_LTP_ENGINE_H_
#define SRC_CORE_LTP_ENGINE_H_

#include <memory>
#include <vector>

#include "src/cache/memory_hierarchy.h"
#include "src/core/engine_options.h"
#include "src/core/job.h"
#include "src/core/scheduler.h"
#include "src/core/vertex_program.h"
#include "src/metrics/run_report.h"
#include "src/partition/partitioned_graph.h"
#include "src/runtime/thread_pool.h"
#include "src/storage/global_table.h"
#include "src/storage/snapshot_store.h"

namespace cgraph {

class LtpEngine {
 public:
  // Single-snapshot engine over a prepartitioned graph (not owned; must outlive this).
  LtpEngine(const PartitionedGraph* graph, const EngineOptions& options);

  // Snapshot-aware engine; jobs resolve partition versions by submit time.
  LtpEngine(const SnapshotStore* snapshots, const EngineOptions& options);

  LtpEngine(const LtpEngine&) = delete;
  LtpEngine& operator=(const LtpEngine&) = delete;

  // Registers a job. `submit_time` selects the snapshot (ignored without a store).
  // Must be called before Run().
  JobId AddJob(std::unique_ptr<VertexProgram> program, Timestamp submit_time = 0);

  // Schedules a job to arrive while the engine runs, after `arrival_step` partition-
  // scheduling steps (the paper's "allows to add new jobs into SJobs at runtime",
  // section 3.4). The newcomer registers its first-iteration partitions and is triggered
  // alongside the jobs already executing from then on. Deterministic and thread-free so
  // arrival interleavings are reproducible in tests.
  JobId ScheduleJob(std::unique_ptr<VertexProgram> program, uint64_t arrival_step,
                    Timestamp submit_time = 0);

  // Executes every job to convergence and returns the measured report.
  RunReport Run();

  size_t num_jobs() const { return jobs_.size(); }
  const Job& job(JobId id) const { return *jobs_[id]; }
  const MemoryHierarchy& hierarchy() const { return *hierarchy_; }
  const EngineOptions& options() const { return options_; }

  // Post-run readback: value/aux of every global vertex, taken from master replicas.
  std::vector<double> FinalValues(JobId id) const;
  std::vector<double> FinalAux(JobId id) const;

 private:
  struct ResolvedPartition {
    const GraphPartition* data;
    uint32_t version;
  };

  // The partition layout (vertex membership / replica routing), identical across
  // snapshot versions.
  const PartitionedGraph& layout() const;

  ResolvedPartition Resolve(PartitionId p, const Job& job) const;

  void InitJob(Job& job);
  void ProcessPartition(PartitionId p);
  void TriggerBatch(PartitionId p, const GraphPartition& part, const std::vector<Job*>& batch);
  void CollectMirrorRecords(Job& job, PartitionId p, const GraphPartition& layout_part);
  void PushJob(Job& job);
  // Recomputes job's activity and next-iteration registration. `swap_buffers` applies the
  // delta double-buffer swap (post-Push); `all_partitions` sweeps everything instead of
  // only dirty partitions; `initial` uses InitiallyActive. Returns the active total.
  uint64_t RefreshActivity(Job& job, bool all_partitions, bool swap_buffers, bool initial);
  void FinishJob(Job& job);
  double MeanChangeFraction(PartitionId p) const;

  const PartitionedGraph* graph_ = nullptr;
  const SnapshotStore* snapshots_ = nullptr;
  EngineOptions options_;

  std::unique_ptr<MemoryHierarchy> hierarchy_;
  std::unique_ptr<GlobalTable> global_table_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Job>> jobs_;
  struct PendingArrival {
    JobId job;
    uint64_t arrival_step;
  };
  std::vector<PendingArrival> pending_;  // Sorted by arrival_step at Run() start.
  uint64_t step_ = 0;                    // Partition-scheduling steps executed.
  // change_fraction_[job][partition]: fraction of vertices whose state changed at the
  // job's previous iteration; feeds C(P).
  std::vector<std::vector<double>> change_fraction_;
  double run_elapsed_ = 0.0;
  bool ran_ = false;
};

}  // namespace cgraph

#endif  // SRC_CORE_LTP_ENGINE_H_
