// The data-centric Load-Trigger-Pushing (LTP) execution engine — the paper's core
// contribution (sections 3.1, 3.2, 3.4; Algorithms 1-3) — as a layered job service.
//
// The engine composes four runtime layers, each in its own translation unit:
//
//   JobManager    — job lifecycle: submission, admission (a bounded slot pool with a FIFO
//                   waiting queue instead of a hard capacity crash), activation-tracing
//                   registration, and per-job report finalization at completion;
//   LoadStage     — scheduler pick, snapshot-version resolve, shared-structure charging;
//   TriggerStage  — per-partition concurrent triggering of all registered jobs (job
//                   batches rotate private tables while the structure stays pinned;
//                   straggler splitting balances skewed jobs across free cores);
//   PushStage     — mirror-delta merge/broadcast, buffer swap, activity refresh, and the
//                   iteration-boundary protocol with the vertex program.
//
// The service API admits jobs online: Submit() hands back a JobHandle immediately, Step()
// executes one partition-scheduling step, RunUntilIdle() drains all runnable work, and
// Wait() drives until a specific job completes. New jobs may be submitted between steps or
// after the engine went idle — the paper's "allows to add new jobs into SJobs at runtime"
// (section 3.4). Everything is deterministic and thread-free at this level (workers
// parallelize only within a trigger), so arrival interleavings are reproducible in tests.
//
// Run() survives as a one-shot batch wrapper over Submit/RunUntilIdle for legacy callers.
//
// When constructed over a SnapshotStore, each job binds to the newest snapshot not newer
// than its submit time; jobs on different snapshots still share every unchanged partition
// version (section 3.2.1, Figs. 16-19).

#ifndef SRC_CORE_LTP_ENGINE_H_
#define SRC_CORE_LTP_ENGINE_H_

#include <memory>
#include <vector>

#include "src/cache/memory_hierarchy.h"
#include "src/common/check.h"
#include "src/common/fault_injection.h"
#include "src/common/thread_annotations.h"
#include "src/common/status.h"
#include "src/core/engine_options.h"
#include "src/core/job.h"
#include "src/core/job_manager.h"
#include "src/core/load_stage.h"
#include "src/core/push_stage.h"
#include "src/core/scheduler.h"
#include "src/core/trigger_stage.h"
#include "src/core/vertex_program.h"
#include "src/metrics/run_report.h"
#include "src/partition/partitioned_graph.h"
#include "src/runtime/thread_pool.h"
#include "src/storage/global_table.h"
#include "src/storage/snapshot_store.h"

namespace cgraph {

class LtpEngine {
 public:
  // Lightweight reference to a submitted job; valid as long as the engine lives.
  class JobHandle {
   public:
    JobHandle() = default;
    JobId id() const { return id_; }
    bool valid() const { return engine_ != nullptr; }
    inline bool done() const;
    inline const JobStats& stats() const;
    inline void Wait() const;

   private:
    friend class LtpEngine;
    JobHandle(LtpEngine* engine, JobId id) : engine_(engine), id_(id) {}
    LtpEngine* engine_ = nullptr;
    JobId id_ = kInvalidJob;
  };

  // Single-snapshot engine over a prepartitioned graph (not owned; must outlive this).
  LtpEngine(const PartitionedGraph* graph, const EngineOptions& options);

  // Snapshot-aware engine; jobs resolve partition versions by submit time.
  LtpEngine(const SnapshotStore* snapshots, const EngineOptions& options);

  LtpEngine(const LtpEngine&) = delete;
  LtpEngine& operator=(const LtpEngine&) = delete;

  // --- Service API -----------------------------------------------------------------

  // Submits a job for online execution. `submit_time` selects the snapshot (ignored
  // without a store).
  //
  // Pre:  callable at any point in the engine's life (before, between, after drives).
  // Post: the job starts immediately when the admission policy grants it a free
  //       concurrency slot, otherwise it queues and starts when one frees up; the
  //       returned handle stays valid for the engine's lifetime.
  JobHandle Submit(std::unique_ptr<VertexProgram> program, Timestamp submit_time = 0);

  // Like Submit(), but the job becomes runnable only once `arrival_step` partition-
  // scheduling steps have executed (deterministic arrival injection). An arrival step
  // already in the past is clamped to "due now" without overtaking earlier due waiters.
  JobHandle SubmitAt(std::unique_ptr<VertexProgram> program, uint64_t arrival_step,
                     Timestamp submit_time = 0);

  // Executes one partition-scheduling step: admits due arrivals, loads the highest-
  // priority partition, triggers its jobs, and pushes any finished iterations. Fast-
  // forwards over idle gaps to the next scheduled arrival.
  //
  // Post: returns false iff the engine is idle (no running and no waiting jobs); on
  //       true, current_step() advanced by one — plus any idle gap skipped to reach
  //       the next scheduled arrival.
  bool Step();

  // Drives Step() until the engine is idle. Post: AllIdle; every job submitted so far
  // has finished (each converges or hits max_iterations_per_job, so this terminates).
  void RunUntilIdle();

  // Drives the engine until job `id` completes.
  //
  // Pre:  `id` was returned by a Submit/SubmitAt/AddJob/ScheduleJob call on this engine.
  // Post: job(id).finished(); other jobs may have progressed but not necessarily done.
  void Wait(JobId id);

  // Point-in-time report over all jobs submitted so far. Per-job stats — including the
  // admission diagnostics wait_steps/admit_overlap (docs/scheduling.md) — are final once
  // the job completed; hierarchy totals cover everything executed so far.
  RunReport Report() const;

  // Partition-scheduling steps executed so far.
  uint64_t current_step() const { return step_; }

  // --- Service-daemon hooks (src/service/; see docs/service.md) ------------------

  // Jobs submitted but not yet admitted — the daemon's backpressure signal.
  size_t NumWaiting() const {
    ScopedThreadRole role(g_driver_role);
    return manager_->NumWaiting();
  }

  // Sheds a job that is still queued for admission (deadline expiry / queue bound).
  // Returns true iff the job was waiting; it is then finished with stats().shed set and
  // zero work. Running or finished jobs are untouched (returns false).
  bool CancelWaiting(JobId id) {
    ScopedThreadRole role(g_driver_role);
    return manager_->CancelWaiting(id);
  }

  // Mutable per-job stats for service-layer annotations (coalesced_callers,
  // deadline_step). Engine behavior never reads these fields; modeled metrics are
  // unaffected by any value written here.
  JobStats& MutableStats(JobId id) { return manager_->job(id).stats(); }

  // --- Fault tolerance (docs/robustness.md) --------------------------------------

  // Cancels a job in any pre-terminal state: a waiting job is shed (stats().shed, as
  // CancelWaiting), a running job is retired mid-run (terminal stats().cancelled, slot
  // freed through the normal finalization path, co-running jobs untouched). Returns
  // false iff the job already finished.
  //
  // Pre: `id` was returned by a Submit-family call on this engine.
  bool Cancel(JobId id);

  // Re-admits a terminally failed/cancelled job (or a checkpointed job that was shed
  // while re-waiting for a slot) from its latest checkpoint, arriving at `arrival_step`
  // (clamped to now; admitted immediately when due and a slot is free). The restored
  // job resumes at the checkpointed iteration and converges to the same final values
  // as an undisturbed run.
  //
  // Errors: kFailedPrecondition when the job is not terminally failed/cancelled/shed;
  // kNotFound for an unknown id or a job without a checkpoint (checkpointing off, or
  // the job failed before its first --checkpoint-every boundary).
  Status RestartFromCheckpoint(JobId id, uint64_t arrival_step);

  // True when `id` has a restart point (EngineOptions::checkpoint_every > 0 and the job
  // passed at least one checkpoint boundary since its last clean completion).
  bool HasCheckpoint(JobId id) const;

  // Specs fired so far by the fault-injection harness (0 when unarmed).
  size_t faults_fired() const { return injector_.fired(); }

  // --- Legacy batch API ------------------------------------------------------------

  // Registers a job. Must be called before Run(); admission beyond max_jobs is a
  // programmer error here (Submit() queues instead).
  JobId AddJob(std::unique_ptr<VertexProgram> program, Timestamp submit_time = 0);

  // Schedules a job to arrive after `arrival_step` steps (paper section 3.4). Must be
  // called before Run().
  JobId ScheduleJob(std::unique_ptr<VertexProgram> program, uint64_t arrival_step,
                    Timestamp submit_time = 0);

  // One-shot batch wrapper: executes every job to convergence and returns the report.
  RunReport Run();

  size_t num_jobs() const { return manager_->num_jobs(); }
  const Job& job(JobId id) const { return manager_->job(id); }
  // Per-program-type lifetime-footprint profiles learned from completed jobs. Pre:
  // admission_policy = predict — the subsystem only exists under history-consuming
  // policies (see src/core/footprint_history.h).
  const FootprintHistory& footprint_history() const { return manager_->history(); }
  const MemoryHierarchy& hierarchy() const { return *hierarchy_; }
  const EngineOptions& options() const { return options_; }

  // Readback once a job finished: value/aux of every global vertex, from master replicas.
  // Pre: the job *completed* — readback from a shed/cancelled/failed job is invalid (a
  // shed job holds no table at all). Use TryFinalValues when the terminal state is not
  // known statically.
  std::vector<double> FinalValues(JobId id) const;
  std::vector<double> FinalAux(JobId id) const;

  // Terminal-state-aware readback (docs/service.md): the converged values for completed
  // jobs; kFailedPrecondition naming the terminal state (still pending / shed /
  // cancelled / failed, with the failure message) otherwise; kNotFound for unknown ids.
  // Never hangs and never touches a recycled slot.
  Result<std::vector<double>> TryFinalValues(JobId id) const;

 private:
  // Shared constructor target: both public constructors delegate here and differ only in
  // which of `graph` / `snapshots` is set.
  LtpEngine(const EngineOptions& options, const PartitionedGraph* graph,
            const SnapshotStore* snapshots);

  // The partition layout (vertex membership / replica routing), identical across
  // snapshot versions.
  const PartitionedGraph& layout() const;

  // Load -> Trigger -> Push for one picked partition. Fault-injection polls and the
  // fail_status_ routing (per-job failure isolation) live here, between the stages.
  void ProcessPartition(PartitionId p) CGRAPH_REQUIRES_DRIVER;

  // Scribbles NaN into one deterministically chosen vertex of the job's private table
  // (the kCorruptState payload) so recovery tests can prove a restore discards damage.
  void CorruptJobState(Job& job) CGRAPH_REQUIRES_DRIVER;

  const PartitionedGraph* graph_ = nullptr;
  const SnapshotStore* snapshots_ = nullptr;
  EngineOptions options_;

  std::unique_ptr<MemoryHierarchy> hierarchy_;
  std::unique_ptr<GlobalTable> global_table_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<JobManager> manager_;
  std::unique_ptr<PushStage> push_;
  std::unique_ptr<LoadStage> load_;
  std::unique_ptr<TriggerStage> trigger_;

  FaultInjector injector_;      // Unarmed (one boolean per poll guard) without specs.
  std::vector<bool> eligible_;  // Per-partition scheduling eligibility (currently all).
  uint64_t step_ = 0;           // Partition-scheduling steps executed.
  double total_elapsed_ = 0.0;  // Wall seconds spent inside Step() so far.
  bool ran_ = false;            // Legacy Run() called (guards the one-shot contract).
};

inline bool LtpEngine::JobHandle::done() const {
  CGRAPH_CHECK(valid());
  return engine_->job(id_).finished();
}
inline const JobStats& LtpEngine::JobHandle::stats() const {
  CGRAPH_CHECK(valid());
  return engine_->job(id_).stats();
}
inline void LtpEngine::JobHandle::Wait() const {
  CGRAPH_CHECK(valid());
  engine_->Wait(id_);
}

}  // namespace cgraph

#endif  // SRC_CORE_LTP_ENGINE_H_
