// Core-subgraph based partition-loading scheduler (paper section 3.3).
//
// Among the partitions some unfinished job still needs this iteration, the scheduler picks
// the one with the highest priority
//
//     Pri(P) = N(P) + theta * D(P) * C(P)                                (Eq. 1)
//
// where N(P) is the number of registered jobs (temporal correlation), D(P) the average
// degree of P's vertices, and C(P) the mean normalized state change of P's vertices over
// its jobs at the previous iteration. theta is auto-scaled below 1/(D_max * C_max) at
// preprocessing time so a partition needed by strictly more jobs always wins; D*C only
// breaks ties toward hub-heavy, fast-changing partitions, which both serves more jobs per
// load and accelerates convergence. With `use_priorities == false` the scheduler degrades
// to fixed index order (the CGraph-without configuration of Fig. 8).

#ifndef SRC_CORE_SCHEDULER_H_
#define SRC_CORE_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/partition/partitioned_graph.h"
#include "src/storage/global_table.h"

namespace cgraph {

class Scheduler {
 public:
  // `theta_scale` in [0, 1] scales the auto-computed theta (ablation knob; 1 = Eq. 1).
  Scheduler(const PartitionedGraph& graph, bool use_priorities, double theta_scale = 1.0);

  // Updates C(P) from a finished iteration: `active_fraction` is the mean over registered
  // jobs of the fraction of P's vertices whose state changed. Clamped into [0, 1].
  void SetStateChange(PartitionId p, double active_fraction);

  // Picks the next partition to load among those with RegisteredCount > 0 and
  // eligible[p] == true.
  //
  // Pre:  `eligible` has one entry per partition of `table`.
  // Post: returns the qualifying partition maximizing Eq. 1 (lowest index on ties, and
  //       plain lowest qualifying index when priorities are disabled), or
  //       kInvalidPartition when none qualifies. Never mutates state: picking is
  //       side-effect-free and deterministic.
  PartitionId PickNext(const GlobalTable& table, const std::vector<bool>& eligible) const;

  // Eq. 1 for one partition, reading N(P) from the table.
  double Priority(const GlobalTable& table, PartitionId p) const;

  // Eq. 1 with N(P) already in hand, so PickNext reads the global table once per
  // partition instead of once for the eligibility filter and once for the priority.
  double PriorityFromCount(uint32_t registered_count, PartitionId p) const;

  double theta() const { return theta_; }

 private:
  bool use_priorities_;
  double theta_ = 0.0;
  std::vector<double> avg_degree_;    // D(P), fixed at preprocessing.
  std::vector<double> state_change_;  // C(P), updated each iteration.
};

}  // namespace cgraph

#endif  // SRC_CORE_SCHEDULER_H_
