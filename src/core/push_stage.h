// Push stage of the LTP pipeline (paper section 3.2.4, Algorithm 2).
//
// When a job has handled all its active partitions, its buffered mirror deltas are merged
// into masters, merged values are broadcast back to mirrors, the delta double-buffer is
// swapped, and the next iteration's partitions are registered in the global table through
// the JobManager (activation tracing). Algorithm 2's SortD/SortS passes are realized as
// counting-sort buckets: records are collected straight into per-destination-partition
// buckets (reused, pre-reserved on the Job), so sweeping buckets in partition order gives
// the same successive-access pattern — and the same charge model — as the sorts, without
// sorting. Collection walks each partition's mirror index (mirror_locals /
// replicated_masters) instead of filtering every local vertex. The iteration-boundary
// protocol with the vertex program runs here too: convergence detection, the
// max-iteration safety valve, and multi-phase re-initialization (SCC). Jobs that complete
// are finalized immediately via JobManager::FinishJob, which may admit a queued job into
// the freed slot.
//
// Async (bounded-staleness) jobs relax only the broadcast half of the sync: mirror->master
// merge runs every iteration, master->mirror delivery may lag by up to
// EngineOptions::staleness iterations through per-partition deferred-window accumulators,
// with a flush-on-drain pass guaranteeing every withheld record is delivered before the
// job can be declared converged. See docs/execution_modes.md.

#ifndef SRC_CORE_PUSH_STAGE_H_
#define SRC_CORE_PUSH_STAGE_H_

#include "src/cache/memory_hierarchy.h"
#include "src/common/thread_annotations.h"
#include "src/core/engine_options.h"
#include "src/core/job_manager.h"
#include "src/partition/partitioned_graph.h"

namespace cgraph {

class PushStage {
 public:
  // `hierarchy` and `manager` are borrowed from the engine and must outlive this.
  PushStage(const PartitionedGraph& layout, MemoryHierarchy* hierarchy, JobManager* manager,
            const EngineOptions& options);

  // Buffers the job's non-identity mirror deltas of partition p into its sync queue
  // (the paper's S_new) after a trigger, clearing the slots for the broadcast phase.
  void CollectMirrorRecords(Job& job, PartitionId p) CGRAPH_REQUIRES_DRIVER;

  // Runs the job's full iteration-boundary push: merge, broadcast, buffer swap, activity
  // refresh, and the program's OnIterationEnd protocol. Finishes the job when it
  // converged, hit the iteration valve, or declared itself done.
  void Push(Job& job) CGRAPH_REQUIRES_DRIVER;

 private:
  const PartitionedGraph& layout_;
  MemoryHierarchy* hierarchy_;
  JobManager* manager_;
  EngineOptions options_;
  // Replicated masters across all partitions — the scale against which the adaptive
  // deferral policy (EngineOptions::async_defer_divisor) judges a boundary hot or cold.
  uint64_t total_replicated_ = 0;
};

}  // namespace cgraph

#endif  // SRC_CORE_PUSH_STAGE_H_
