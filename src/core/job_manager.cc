#include "src/core/job_manager.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <string>
#include <utility>

#include "src/cache/cache_sim.h"
#include "src/common/check.h"
#include "src/common/function_ref.h"

namespace cgraph {

namespace {

// Chunk size for pool-dispatched bookkeeping sweeps. A multiple of 64 so concurrent
// DynamicBitset::Set calls from different chunks always land in disjoint words.
constexpr size_t kSweepGrain = 4096;

// Runs body(begin, end) over disjoint subranges covering [0, n): inline below
// `threshold` (dispatch would cost more than the sweep), otherwise through the pool's
// allocation-free batch primitive in word-aligned chunks.
void SweepRange(ThreadPool* pool, uint32_t num_workers, uint32_t threshold, size_t n,
                FunctionRef<void(size_t, size_t)> body) {
  if (pool == nullptr || num_workers <= 1 || n < threshold) {
    body(0, n);
    return;
  }
  const size_t chunks = (n + kSweepGrain - 1) / kSweepGrain;
  pool->RunBatch(chunks, [&](size_t chunk) {
    const size_t begin = chunk * kSweepGrain;
    body(begin, std::min(begin + kSweepGrain, n));
  });
}

// The initially-active predicate over a vertex's *freshly initialized* state — exactly
// the state InitJob's fill sweep writes (InitialState with delta_next at the Acc
// identity) before its first activity sweep evaluates InitiallyActive. ComputeFootprint
// and InitJob must agree on this evaluation or admission overlap scores drift from the
// partitions a job actually activates; keep all three sites in lockstep.
bool InitiallyActiveFresh(const VertexProgram& program, const LocalVertexInfo& info,
                          double identity) {
  VertexState state = program.InitialState(info);
  state.delta_next = identity;
  return program.InitiallyActive(info, state);
}

}  // namespace

JobManager::JobManager(const PartitionedGraph& layout, GlobalTable* table,
                       Scheduler* scheduler, ThreadPool* pool, const EngineOptions& options)
    : layout_(layout), table_(table), scheduler_(scheduler), pool_(pool), options_(options),
      slot_jobs_(options.max_jobs, nullptr),
      // The history subsystem exists only for policies that consume it: fifo/overlap
      // skip the allocation and the constructor's knob validation entirely (so e.g.
      // history_buckets = 0 is only rejected where it would matter).
      history_(options.admission_policy == AdmissionPolicyKind::kPredict
                   ? std::make_unique<FootprintHistory>(layout.num_partitions(),
                                                        options.history_buckets,
                                                        options.history_decay)
                   : nullptr),
      policy_(MakeAdmissionPolicy(options, history_.get())) {
  CGRAPH_CHECK(table != nullptr);
  CGRAPH_CHECK(scheduler != nullptr);
  // Zero slots would livelock the drive loop: a due waiter could never be admitted.
  CGRAPH_CHECK(options.max_jobs > 0);
  // Zero pools would leave admitted jobs with no slot to land in.
  CGRAPH_CHECK(options.slot_pools > 0);
  // Aging is the overlap/predict policies' starvation bound (a bounded overlap advantage
  // cannot outrank an unboundedly aged waiter); zero would reopen unbounded waits.
  if (options.admission_policy != AdmissionPolicyKind::kFifo) {
    CGRAPH_CHECK(options.admission_aging > 0.0);
  }
  // The checkpoint subsystem exists only when asked for; runs without it pay nothing.
  if (options.checkpoint_every > 0) {
    checkpoints_ = std::make_unique<CheckpointStore>();
  }
}

JobId JobManager::Submit(std::unique_ptr<VertexProgram> program, Timestamp submit_time,
                         uint64_t arrival_step) {
  const JobId id = static_cast<JobId>(jobs_.size());
  // Job ids double as per-job cache-item owners, which PackItemKey bounds to 16 bits with
  // kSharedOwner reserved for the shared structure copy. Fail fast instead of silently
  // aliasing accounting; lifting the cap means widening ItemKey's owner field.
  CGRAPH_CHECK(id < kSharedOwner);
  jobs_.push_back(std::make_unique<Job>(id, std::move(program), submit_time));
  Job& job = *jobs_.back();
  job.stats_.job_name = std::string(job.program().name());
  // An arrival step in the past means "due now": clamp to the current step so the sorted
  // insert cannot queue-jump earlier waiters that are already due (FIFO fairness).
  arrival_step = std::max(arrival_step, current_step_);
  // Stable insert keeps equal arrival steps in submission order.
  auto it = std::upper_bound(waiting_.begin(), waiting_.end(), arrival_step,
                             [](uint64_t step, const Waiter& w) { return step < w.arrival_step; });
  waiting_.insert(it, Waiter{id, arrival_step});
  return id;
}

void JobManager::ComputeFootprint(Job& job) {
  const PartitionedGraph& g = layout_;
  const VertexProgram& program = job.program();
  const double identity = AccIdentity(program.acc_kind());
  job.footprint_.assign(g.num_partitions(), 0);
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    // Same per-vertex evaluation InitJob performs, without a private table: chunk counts
    // are an order-independent integer sum, so the parallel sweep is deterministic.
    const GraphPartition& part = g.partition(p);
    std::atomic<uint32_t> total{0};
    SweepRange(pool_, options_.num_workers, options_.parallel_sweep_threshold,
               part.num_local_vertices(), [&](size_t begin, size_t end) {
                 uint32_t count = 0;
                 for (size_t i = begin; i < end; ++i) {
                   const LocalVertexId v = static_cast<LocalVertexId>(i);
                   if (InitiallyActiveFresh(program, part.vertex(v), identity)) {
                     ++count;
                   }
                 }
                 total.fetch_add(count, std::memory_order_relaxed);
               });
    job.footprint_[p] = total.load(std::memory_order_relaxed);
  }
}

void JobManager::AdmitDue(uint64_t step) {
  current_step_ = std::max(current_step_, step);
  // A job that finishes during InitJob (nothing initially active) frees its slot before
  // the next loop round, so an arbitrarily long run of instantly-done waiters drains
  // iteratively here rather than recursing.
  while (!waiting_.empty() && waiting_.front().arrival_step <= step) {
    if (running_ >= slot_jobs_.size()) {
      return;  // Saturated: don't score candidates for a decision that cannot admit.
    }
    // The due candidates are a prefix of the (arrival-sorted) queue; the policy chooses
    // which of them the next free slot admits. FIFO always picks the front — the exact
    // pre-policy behavior, including "a blocked due job blocks everyone behind it".
    candidates_.clear();
    for (const Waiter& w : waiting_) {
      if (w.arrival_step > step) {
        break;
      }
      candidates_.push_back(AdmissionPolicy::Candidate{
          w.job, w.arrival_step, &jobs_[w.job]->footprint(),
          jobs_[w.job]->stats_.job_name});
    }
    const bool contended = candidates_.size() > 1;
    // Footprints are computed lazily, only when a decision actually has competing
    // candidates: a lone due job is admitted regardless of its score, so the sweep
    // would be pure overhead in the uncontended case. Memoized per job (a computed
    // footprint is never empty — it has one entry per partition); deterministic
    // whenever computed, since it depends only on the program and the layout.
    if (policy_->needs_footprints() && contended) {
      for (const AdmissionPolicy::Candidate& c : candidates_) {
        if (jobs_[c.job]->footprint_.empty()) {
          ComputeFootprint(*jobs_[c.job]);
        }
      }
    }
    // The predict policy projects the running set forward: hand it the running jobs in
    // ascending slot order (deterministic, and identical to legacy id order whenever
    // total jobs <= max_jobs).
    runners_.clear();
    if (policy_->needs_history() && contended) {
      for (const Job* running : slot_jobs_) {
        if (running != nullptr) {
          runners_.push_back(PredictedRunner{running->stats_.job_name, running->iteration_,
                                             &running->active_count_});
        }
      }
    }
    const AdmissionPolicy::Decision pick =
        contended ? policy_->Pick(candidates_, *table_, step, runners_)
                  : AdmissionPolicy::Decision{0, 0.0, false};
    CGRAPH_CHECK(pick.index < candidates_.size());
    Job& job = *jobs_[candidates_[pick.index].job];
    const uint32_t slot = AllocateSlot(job);
    if (slot == Job::kInvalidSlot) {
      return;  // At capacity: every due job keeps waiting.
    }
    job.stats_.wait_steps = step - candidates_[pick.index].arrival_step;
    job.stats_.admit_overlap = pick.overlap;
    // Scored iff the policy actually computed a score: a decision with competitors under
    // a footprint-aware policy. Keeps "scored zero overlap" distinguishable from "never
    // scored" in Report() aggregation.
    job.stats_.admit_scored = contended && policy_->needs_footprints();
    job.stats_.admit_predicted = pick.predicted;
    job.stats_.predicted_overlap = pick.predicted ? pick.overlap : 0.0;
    waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(pick.index));
    InitJob(job, slot);
  }
}

bool JobManager::CancelWaiting(JobId id) {
  CGRAPH_CHECK(id < jobs_.size());
  Job& job = *jobs_[id];
  if (job.started_ || job.finished_) {
    return false;  // Admitted or done: sheds only ever retire queued work.
  }
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if (it->job == id) {
      waiting_.erase(it);
      job.finished_ = true;
      job.stats_.shed = true;
      job.stats_.finish_step = current_step_;
      // Never admitted: no slot, no registrations, no private table — nothing to tear
      // down, and wall_seconds stays 0 like any job that never computed.
      return true;
    }
  }
  // Every unstarted, unfinished job is in the waiting queue by construction.
  CGRAPH_CHECK(false);
  return false;
}

uint64_t JobManager::NextArrivalStep() const {
  CGRAPH_CHECK(!waiting_.empty());
  return waiting_.front().arrival_step;
}

uint32_t JobManager::AllocateSlot(Job& job) {
  const uint32_t num_slots = static_cast<uint32_t>(slot_jobs_.size());
  if (options_.slot_pools <= 1) {
    // Prefer slot == id: in every legacy scenario (total jobs <= max_jobs) each job then
    // lands on its own id even when an earlier job already finished, keeping registration
    // bits — and hence RegisteredJobs order, rotation, and miss attribution — identical to
    // the pre-layered engine. The fallback scan recycles freed slots for ids beyond the
    // pool.
    if (job.id_ < num_slots && slot_jobs_[job.id_] == nullptr) {
      return job.id_;
    }
    for (uint32_t s = 0; s < num_slots; ++s) {
      if (slot_jobs_[s] == nullptr) {
        return s;
      }
    }
    return Job::kInvalidSlot;
  }

  // Admission-time placement: slots are split into contiguous pools; the job joins the
  // pool whose running cohort's active partitions its own partition weights overlap
  // most (ties toward the lowest pool, and an all-idle pool scores 0). Placement never
  // rejects: any pool with a free slot is eligible, so a job is only turned away when
  // every slot everywhere is busy.
  const uint32_t pools = std::min(options_.slot_pools, num_slots);
  uint32_t best_slot = Job::kInvalidSlot;
  uint32_t best_pool = 0;
  double best_score = -1.0;
  for (uint32_t pool = 0; pool < pools; ++pool) {
    const uint32_t lo = static_cast<uint32_t>(
        static_cast<uint64_t>(pool) * num_slots / pools);
    const uint32_t hi = static_cast<uint32_t>(
        static_cast<uint64_t>(pool + 1) * num_slots / pools);
    uint32_t free_slot = Job::kInvalidSlot;
    bool any_member = false;
    cohort_needed_.assign(layout_.num_partitions(), false);
    for (uint32_t s = lo; s < hi; ++s) {
      const Job* member = slot_jobs_[s];
      if (member == nullptr) {
        if (free_slot == Job::kInvalidSlot) {
          free_slot = s;
        }
        continue;
      }
      any_member = true;
      for (PartitionId p = 0; p < layout_.num_partitions(); ++p) {
        if (member->active_count_[p] > 0) {
          cohort_needed_[p] = true;
        }
      }
    }
    if (free_slot == Job::kInvalidSlot) {
      continue;  // Pool full.
    }
    const double score = any_member ? PlacementScore(job, cohort_needed_) : 0.0;
    if (score > best_score) {
      best_score = score;
      best_slot = free_slot;
      best_pool = pool;
    }
  }
  if (best_slot != Job::kInvalidSlot) {
    job.stats_.admit_pool = best_pool;
  }
  return best_slot;
}

double JobManager::PlacementScore(Job& job, const std::vector<bool>& needed) {
  // Forecast weights when the job's type has history, the initial-footprint snapshot
  // otherwise (computed on demand here — placement can run before any contended
  // decision forced it).
  if (history_ != nullptr && history_->HasProfile(job.stats_.job_name)) {
    return history_->OverlapWithSet(job.stats_.job_name, needed);
  }
  if (job.footprint_.empty()) {
    ComputeFootprint(job);
  }
  uint32_t total = 0;
  uint32_t shared = 0;
  for (PartitionId p = 0; p < layout_.num_partitions(); ++p) {
    if (job.footprint_[p] == 0) {
      continue;
    }
    ++total;
    if (needed[p]) {
      ++shared;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(shared) / total;
}

void JobManager::InitJob(Job& job, uint32_t slot) {
  const PartitionedGraph& g = layout_;
  job.started_ = true;
  job.slot_ = slot;
  slot_jobs_[slot] = &job;
  ++running_;
  // The step-budget clock and failure state restart on every (re-)admission.
  job.admit_step_ = current_step_;
  job.fail_status_ = Status();
  if (job.restore_pending_) {
    RestoreJob(job);
    return;
  }
  job.table_ = PrivateTable(g);
  job.active_.resize(g.num_partitions());
  job.active_count_.assign(g.num_partitions(), 0);
  job.processed_.assign(g.num_partitions(), false);
  job.dirty_.assign(g.num_partitions(), false);
  job.change_fraction_.assign(g.num_partitions(), 1.0);
  // Sync buckets, pre-reserved to their tight per-iteration bounds so the push path never
  // reallocates mid-run: partition p can receive at most one merge record per mirror of
  // its masters and at most one broadcast record per mirror replica it hosts.
  job.sync_in_.resize(g.num_partitions());
  job.broadcast_.resize(g.num_partitions());
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    job.sync_in_[p].clear();
    job.sync_in_[p].reserve(g.partition(p).num_mirror_refs());
    job.broadcast_[p].clear();
    job.broadcast_[p].reserve(g.partition(p).mirror_locals().size());
  }

  const VertexProgram& program = job.program();
  const double identity = AccIdentity(program.acc_kind());

  // Effective execution mode, fixed for the job's lifetime: async only when the options
  // ask for it, the staleness window is non-degenerate, and the program declared the
  // monotonicity contract. Everything else runs the exact BSP path.
  job.async_ = options_.execution_mode == ExecutionMode::kAsync && options_.staleness > 0 &&
               program.monotonic();
  job.stats_.async_execution = job.async_;
  job.since_sync_ = 0;
  if (job.async_) {
    job.deferred_.resize(g.num_partitions());
    job.deferred_pending_.assign(g.num_partitions(), 0);
    for (PartitionId p = 0; p < g.num_partitions(); ++p) {
      job.deferred_[p].assign(g.partition(p).replicated_masters().size(), identity);
    }
  }

  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    const GraphPartition& part = g.partition(p);
    auto states = job.table_.partition(p);
    job.active_[p].Resize(part.num_local_vertices());
    // This fill (and the initial activity sweep over it) is what InitiallyActiveFresh
    // mirrors for admission footprints — change them together.
    SweepRange(pool_, options_.num_workers, options_.parallel_sweep_threshold,
               part.num_local_vertices(), [&](size_t begin, size_t end) {
                 for (size_t v = begin; v < end; ++v) {
                   states[v] = program.InitialState(part.vertex(static_cast<LocalVertexId>(v)));
                   states[v].delta_next = identity;  // Acc must start at its identity.
                 }
               });
  }
  const uint64_t active = RefreshActivity(job, /*all_partitions=*/true, /*swap_buffers=*/false,
                                          /*initial=*/true);
  if (active == 0) {
    FinalizeJob(job);  // The caller's admit loop picks up the freed slot.
    // A job that never computed reports zero wall time (legacy engine behavior), not the
    // engine uptime at its admission.
    job.stats_.wall_seconds = 0.0;
  }
}

void JobManager::RestoreJob(Job& job) {
  const PartitionedGraph& g = layout_;
  const JobCheckpoint* cp = FindCheckpoint(job.id_);
  // Reenqueue verified a checkpoint exists; losing it before admission is a bug.
  CGRAPH_CHECK(cp != nullptr);
  job.restore_pending_ = false;
  // Counters resume from the boundary snapshot so the recovered run reports the same
  // compute totals as an undisturbed one. The recovery count accumulates across
  // restarts, and the service-layer annotations belong to the current submission.
  const uint32_t recoveries = job.stats_.recoveries + 1;
  const uint32_t coalesced = job.stats_.coalesced_callers;
  const uint64_t deadline = job.stats_.deadline_step;
  job.stats_ = cp->stats;
  job.stats_.recoveries = recoveries;
  job.stats_.coalesced_callers = coalesced;
  job.stats_.deadline_step = deadline;

  job.table_ = cp->table;
  job.iteration_ = cp->iteration;
  job.since_sync_ = cp->since_sync;
  job.deferred_ = cp->deferred;
  job.deferred_pending_ = cp->deferred_pending;
  job.activity_trace_ = cp->activity_trace;
  // Same effective-mode derivation as a fresh init; the snapshot's async state matches
  // because the options and program are the job's own.
  job.async_ = options_.execution_mode == ExecutionMode::kAsync && options_.staleness > 0 &&
               job.program().monotonic();

  job.active_.resize(g.num_partitions());
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    job.active_[p].Resize(g.partition(p).num_local_vertices());
  }
  job.active_count_.assign(g.num_partitions(), 0);
  job.processed_.assign(g.num_partitions(), false);
  job.dirty_.assign(g.num_partitions(), false);
  job.change_fraction_.assign(g.num_partitions(), 0.0);
  job.sync_in_.resize(g.num_partitions());
  job.broadcast_.resize(g.num_partitions());
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    job.sync_in_[p].clear();
    job.sync_in_[p].reserve(g.partition(p).num_mirror_refs());
    job.broadcast_[p].clear();
    job.broadcast_[p].reserve(g.partition(p).mirror_locals().size());
  }
  // Masks, counts, fractions, and registrations are pure functions of the restored
  // states at an iteration boundary: the all-partition re-sweep reproduces them exactly
  // (inactive partitions land on fraction 0, which is also their pre-failure value —
  // a partition's fraction was zeroed by the sweep that deactivated it).
  const uint64_t active = RefreshActivity(job, /*all_partitions=*/true, /*swap_buffers=*/false,
                                          /*initial=*/false);
  if (active == 0) {
    // Snapshots are only taken while registered, so this means the checkpointed state
    // already converged — finalize as a normal completion.
    FinalizeJob(job);
  }
}

void JobManager::FailJob(Job& job, Status status) {
  CGRAPH_CHECK(!status.ok());
  CGRAPH_CHECK(job.started_ && !job.finished_);
  job.stats_.failed = true;
  job.stats_.fail_message = status.ToString();
  job.fail_status_ = std::move(status);
  FinalizeJob(job);
  // The freed slot admits the next due waiter, exactly like a clean completion.
  AdmitDue(current_step_);
}

void JobManager::CancelRunning(Job& job) {
  CGRAPH_CHECK(job.started_ && !job.finished_);
  job.stats_.cancelled = true;
  FinalizeJob(job);
  AdmitDue(current_step_);
}

uint32_t JobManager::CancelOverBudget(uint64_t step) {
  if (options_.job_step_budget == 0) {
    return 0;
  }
  uint32_t cancelled = 0;
  // Ascending slot order for a deterministic cancellation sequence; FinalizeJob nulls
  // the scanned entry, so indexed iteration stays valid.
  for (size_t s = 0; s < slot_jobs_.size(); ++s) {
    Job* job = slot_jobs_[s];
    if (job != nullptr && step >= job->admit_step_ + options_.job_step_budget) {
      job->stats_.cancelled = true;
      FinalizeJob(*job);
      ++cancelled;
    }
  }
  if (cancelled > 0) {
    AdmitDue(step);
  }
  return cancelled;
}

Status JobManager::Reenqueue(JobId id, uint64_t arrival_step) {
  if (id >= jobs_.size()) {
    return Status::NotFound("Reenqueue: no job " + std::to_string(id));
  }
  Job& job = *jobs_[id];
  // Shed is accepted too: a restored job re-shed while waiting for its slot still has a
  // checkpoint to resume from.
  if (!job.finished_ || !(job.stats_.failed || job.stats_.cancelled || job.stats_.shed)) {
    return Status::FailedPrecondition("Reenqueue: job " + std::to_string(id) +
                                      " is not terminally failed, cancelled, or shed");
  }
  if (FindCheckpoint(id) == nullptr) {
    return Status::NotFound("Reenqueue: job " + std::to_string(id) + " has no checkpoint");
  }
  job.finished_ = false;
  job.started_ = false;
  job.restore_pending_ = true;
  // The terminal flags belong to the failed attempt; stats are fully rebuilt from the
  // snapshot at restore, this just keeps the waiting-state readback coherent.
  job.stats_.failed = false;
  job.stats_.cancelled = false;
  job.stats_.shed = false;
  job.fail_status_ = Status();
  arrival_step = std::max(arrival_step, current_step_);
  auto it = std::upper_bound(waiting_.begin(), waiting_.end(), arrival_step,
                             [](uint64_t step, const Waiter& w) { return step < w.arrival_step; });
  waiting_.insert(it, Waiter{id, arrival_step});
  return Status::Ok();
}

const JobCheckpoint* JobManager::FindCheckpoint(JobId id) const {
  return checkpoints_ == nullptr ? nullptr : checkpoints_->Find(id);
}

void JobManager::MaybeCheckpoint(Job& job) {
  if (checkpoints_ == nullptr || job.iteration_ == 0 ||
      job.iteration_ % options_.checkpoint_every != 0) {
    return;
  }
  uint64_t bytes = job.table_.total_bytes();
  for (const std::vector<double>& window : job.deferred_) {
    bytes += window.size() * sizeof(double);
  }
  // Counters first, snapshot second: a restored job then reproduces the undisturbed
  // run's later checkpoint counts exactly.
  job.stats_.checkpoints_taken += 1;
  job.stats_.checkpoint_bytes += bytes;
  JobCheckpoint cp;
  cp.iteration = job.iteration_;
  cp.since_sync = job.since_sync_;
  cp.table = job.table_;
  cp.deferred = job.deferred_;
  cp.deferred_pending = job.deferred_pending_;
  cp.activity_trace = job.activity_trace_;
  cp.stats = job.stats_;
  cp.bytes = bytes;
  checkpoints_->Save(job.id_, std::move(cp));
}

uint64_t JobManager::RefreshActivity(Job& job, bool all_partitions, bool swap_buffers,
                                     bool initial) {
  const PartitionedGraph& g = layout_;
  uint64_t total = 0;
  job.remaining_ = 0;
  // History-consuming policies record the registered set per iteration. The row is the
  // 0-based index of the iteration this registration feeds: 0 from InitJob, the next
  // iteration from the post-Push swap refresh (iteration_ not yet incremented), and the
  // current upcoming iteration from a phase re-initialization (iteration_ already
  // incremented — overwrites the row the swap refresh just wrote, which is correct:
  // the re-init replaced that iteration's activation set).
  std::vector<PartitionId>* trace_row = nullptr;
  if (policy_->needs_history()) {
    const size_t row = initial ? 0 : (swap_buffers ? job.iteration_ + 1 : job.iteration_);
    if (job.activity_trace_.size() <= row) {
      job.activity_trace_.resize(row + 1);
    }
    trace_row = &job.activity_trace_[row];
    trace_row->clear();
  }
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    if (!all_partitions && !job.dirty_[p]) {
      // Untouched partition: previous activity stands. It is necessarily zero — every
      // registered partition was processed (hence dirty) before Push ran.
      CGRAPH_DCHECK(job.active_count_[p] == 0);
      table_->Unregister(p, job.slot_);
      continue;
    }
    const GraphPartition& part = g.partition(p);
    const uint32_t count = SweepPartitionActivity(job, part, p, swap_buffers, initial);
    job.active_count_[p] = count;
    job.change_fraction_[p] =
        part.num_local_vertices() == 0
            ? 0.0
            : static_cast<double>(count) / part.num_local_vertices();
    scheduler_->SetStateChange(p, MeanStateChange(p));
    job.dirty_[p] = false;
    total += count;
    if (count > 0) {
      table_->Register(p, job.slot_);
      ++job.remaining_;
      if (trace_row != nullptr) {
        trace_row->push_back(p);  // Ascending p: the loop index.
      }
    } else {
      // Keep registration exact even across repeated phase re-initializations.
      table_->Unregister(p, job.slot_);
    }
  }
  return total;
}

uint32_t JobManager::SweepPartitionActivity(Job& job, const GraphPartition& part,
                                            PartitionId p, bool swap_buffers, bool initial) {
  const VertexProgram& program = job.program();
  const double identity = AccIdentity(program.acc_kind());
  auto states = job.table_.partition(p);
  DynamicBitset& active = job.active_[p];
  active.ClearAll();
  // Chunk results are order-independent — the count is an integer sum and SweepRange's
  // word-aligned grains keep concurrent Set() calls in disjoint bitmask words — so the
  // parallel sweep is bit-identical to the serial one.
  std::atomic<uint32_t> total{0};
  SweepRange(pool_, options_.num_workers, options_.parallel_sweep_threshold,
             part.num_local_vertices(), [&](size_t begin, size_t end) {
               uint32_t count = 0;
               for (size_t i = begin; i < end; ++i) {
                 const LocalVertexId v = static_cast<LocalVertexId>(i);
                 if (swap_buffers) {
                   states[v].delta = states[v].delta_next;
                   states[v].delta_next = identity;
                 }
                 const bool is_active = initial
                                            ? program.InitiallyActive(part.vertex(v), states[v])
                                            : program.IsActive(states[v]);
                 if (is_active) {
                   active.Set(v);
                   ++count;
                 }
               }
               total.fetch_add(count, std::memory_order_relaxed);
             });
  return total.load(std::memory_order_relaxed);
}

bool JobManager::MarkProcessed(Job& job, PartitionId p) {
  job.processed_[p] = true;
  job.dirty_[p] = true;
  table_->Unregister(p, job.slot_);
  if (job.remaining_ == 0) {
    // Registration accounting broke for this job alone — a per-job invariant failure.
    // Record it for the engine's FailJob routing instead of aborting every co-runner.
    job.fail_status_ = Status::Internal(
        "MarkProcessed: partition " + std::to_string(p) +
        " retired with no remaining registrations for job " + std::to_string(job.id_));
    return false;
  }
  --job.remaining_;
  return job.remaining_ == 0;
}

void JobManager::FinalizeJob(Job& job) {
  CGRAPH_CHECK(job.slot_ != Job::kInvalidSlot);
  job.finished_ = true;
  const bool clean = !job.stats_.failed && !job.stats_.cancelled;
  if (policy_->needs_history() && clean) {
    // Feed the completed lifetime back into the per-type profile before the freed slot
    // admits anyone — the very next decision already sees this job's trace. Failed and
    // cancelled jobs are excluded: their truncated traces would poison the profiles.
    history_->RecordCompletion(job.stats_.job_name, job.activity_trace_, job.stats_.iterations);
    job.activity_trace_.clear();
    job.activity_trace_.shrink_to_fit();
  }
  if (checkpoints_ != nullptr && clean) {
    // A cleanly completed job needs no restart point; failed/cancelled jobs keep theirs
    // for RestartFromCheckpoint.
    checkpoints_->Drop(job.id_);
  }
  table_->UnregisterEverywhere(job.slot_);
  job.remaining_ = 0;
  job.stats_.wall_seconds = elapsed_seconds_;
  job.stats_.finish_step = current_step_;
  slot_jobs_[job.slot_] = nullptr;
  job.slot_ = Job::kInvalidSlot;
  CGRAPH_CHECK(running_ > 0);
  --running_;
}

void JobManager::FinishJob(Job& job) {
  FinalizeJob(job);
  // The freed slot admits the next due waiter immediately.
  AdmitDue(current_step_);
}

double JobManager::MeanStateChange(PartitionId p) const {
  // Slot scan, not job scan: the slot pool is bounded by max_jobs while jobs_ grows with
  // every submission the service ever took. Occupied slots are exactly the started,
  // unfinished jobs; ascending slot order keeps the float summation deterministic (and
  // identical to the legacy id order whenever total jobs <= max_jobs).
  double sum = 0.0;
  uint32_t count = 0;
  for (const Job* job : slot_jobs_) {
    if (job != nullptr) {
      sum += job->change_fraction_[p];
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace cgraph
