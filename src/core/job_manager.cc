#include "src/core/job_manager.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/cache/cache_sim.h"
#include "src/common/check.h"

namespace cgraph {

JobManager::JobManager(const PartitionedGraph& layout, GlobalTable* table,
                       Scheduler* scheduler, const EngineOptions& options)
    : layout_(layout), table_(table), scheduler_(scheduler), options_(options),
      slot_jobs_(options.max_jobs, nullptr) {
  CGRAPH_CHECK(table != nullptr);
  CGRAPH_CHECK(scheduler != nullptr);
  // Zero slots would livelock the drive loop: a due waiter could never be admitted.
  CGRAPH_CHECK(options.max_jobs > 0);
}

JobId JobManager::Submit(std::unique_ptr<VertexProgram> program, Timestamp submit_time,
                         uint64_t arrival_step) {
  const JobId id = static_cast<JobId>(jobs_.size());
  // Job ids double as per-job cache-item owners, which PackItemKey bounds to 16 bits with
  // kSharedOwner reserved for the shared structure copy. Fail fast instead of silently
  // aliasing accounting; lifting the cap means widening ItemKey's owner field.
  CGRAPH_CHECK(id < kSharedOwner);
  jobs_.push_back(std::make_unique<Job>(id, std::move(program), submit_time));
  Job& job = *jobs_.back();
  job.stats_.job_name = std::string(job.program().name());
  // An arrival step in the past means "due now": clamp to the current step so the sorted
  // insert cannot queue-jump earlier waiters that are already due (FIFO fairness).
  arrival_step = std::max(arrival_step, current_step_);
  // Stable insert keeps equal arrival steps in submission order.
  auto it = std::upper_bound(waiting_.begin(), waiting_.end(), arrival_step,
                             [](uint64_t step, const Waiter& w) { return step < w.arrival_step; });
  waiting_.insert(it, Waiter{id, arrival_step});
  return id;
}

void JobManager::AdmitDue(uint64_t step) {
  current_step_ = std::max(current_step_, step);
  // A job that finishes during InitJob (nothing initially active) frees its slot before
  // the next loop round, so an arbitrarily long run of instantly-done waiters drains
  // iteratively here rather than recursing.
  while (!waiting_.empty() && waiting_.front().arrival_step <= step) {
    Job& job = *jobs_[waiting_.front().job];
    const uint32_t slot = AllocateSlot(job);
    if (slot == Job::kInvalidSlot) {
      return;  // At capacity: the due job (and everyone behind it) keeps waiting.
    }
    waiting_.pop_front();
    InitJob(job, slot);
  }
}

uint64_t JobManager::NextArrivalStep() const {
  CGRAPH_CHECK(!waiting_.empty());
  return waiting_.front().arrival_step;
}

uint32_t JobManager::AllocateSlot(const Job& job) {
  // Prefer slot == id: in every legacy scenario (total jobs <= max_jobs) each job then
  // lands on its own id even when an earlier job already finished, keeping registration
  // bits — and hence RegisteredJobs order, rotation, and miss attribution — identical to
  // the pre-layered engine. The fallback scan recycles freed slots for ids beyond the pool.
  if (job.id_ < slot_jobs_.size() && slot_jobs_[job.id_] == nullptr) {
    return job.id_;
  }
  for (uint32_t s = 0; s < slot_jobs_.size(); ++s) {
    if (slot_jobs_[s] == nullptr) {
      return s;
    }
  }
  return Job::kInvalidSlot;
}

void JobManager::InitJob(Job& job, uint32_t slot) {
  const PartitionedGraph& g = layout_;
  job.started_ = true;
  job.slot_ = slot;
  slot_jobs_[slot] = &job;
  ++running_;
  job.table_ = PrivateTable(g);
  job.active_.resize(g.num_partitions());
  job.active_count_.assign(g.num_partitions(), 0);
  job.processed_.assign(g.num_partitions(), false);
  job.dirty_.assign(g.num_partitions(), false);
  job.change_fraction_.assign(g.num_partitions(), 1.0);

  const VertexProgram& program = job.program();
  const double identity = AccIdentity(program.acc_kind());
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    const GraphPartition& part = g.partition(p);
    auto states = job.table_.partition(p);
    job.active_[p].Resize(part.num_local_vertices());
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      states[v] = program.InitialState(part.vertex(v));
      states[v].delta_next = identity;  // The accumulator must start at Acc's identity.
    }
  }
  const uint64_t active = RefreshActivity(job, /*all_partitions=*/true, /*swap_buffers=*/false,
                                          /*initial=*/true);
  if (active == 0) {
    FinalizeJob(job);  // The caller's admit loop picks up the freed slot.
    // A job that never computed reports zero wall time (legacy engine behavior), not the
    // engine uptime at its admission.
    job.stats_.wall_seconds = 0.0;
  }
}

uint64_t JobManager::RefreshActivity(Job& job, bool all_partitions, bool swap_buffers,
                                     bool initial) {
  const PartitionedGraph& g = layout_;
  const VertexProgram& program = job.program();
  const double identity = AccIdentity(program.acc_kind());
  uint64_t total = 0;
  job.remaining_ = 0;
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    if (!all_partitions && !job.dirty_[p]) {
      // Untouched partition: previous activity stands. It is necessarily zero — every
      // registered partition was processed (hence dirty) before Push ran.
      CGRAPH_DCHECK(job.active_count_[p] == 0);
      table_->Unregister(p, job.slot_);
      continue;
    }
    const GraphPartition& part = g.partition(p);
    auto states = job.table_.partition(p);
    uint32_t count = 0;
    job.active_[p].ClearAll();
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      if (swap_buffers) {
        states[v].delta = states[v].delta_next;
        states[v].delta_next = identity;
      }
      const bool active = initial ? program.InitiallyActive(part.vertex(v), states[v])
                                  : program.IsActive(states[v]);
      if (active) {
        job.active_[p].Set(v);
        ++count;
      }
    }
    job.active_count_[p] = count;
    job.change_fraction_[p] =
        part.num_local_vertices() == 0
            ? 0.0
            : static_cast<double>(count) / part.num_local_vertices();
    scheduler_->SetStateChange(p, MeanStateChange(p));
    job.dirty_[p] = false;
    total += count;
    if (count > 0) {
      table_->Register(p, job.slot_);
      ++job.remaining_;
    } else {
      // Keep registration exact even across repeated phase re-initializations.
      table_->Unregister(p, job.slot_);
    }
  }
  return total;
}

bool JobManager::MarkProcessed(Job& job, PartitionId p) {
  job.processed_[p] = true;
  job.dirty_[p] = true;
  table_->Unregister(p, job.slot_);
  CGRAPH_CHECK(job.remaining_ > 0);
  --job.remaining_;
  return job.remaining_ == 0;
}

void JobManager::FinalizeJob(Job& job) {
  CGRAPH_CHECK(job.slot_ != Job::kInvalidSlot);
  job.finished_ = true;
  table_->UnregisterEverywhere(job.slot_);
  job.remaining_ = 0;
  job.stats_.wall_seconds = elapsed_seconds_;
  slot_jobs_[job.slot_] = nullptr;
  job.slot_ = Job::kInvalidSlot;
  CGRAPH_CHECK(running_ > 0);
  --running_;
}

void JobManager::FinishJob(Job& job) {
  FinalizeJob(job);
  // The freed slot admits the next due waiter immediately.
  AdmitDue(current_step_);
}

double JobManager::MeanStateChange(PartitionId p) const {
  // Slot scan, not job scan: the slot pool is bounded by max_jobs while jobs_ grows with
  // every submission the service ever took. Occupied slots are exactly the started,
  // unfinished jobs; ascending slot order keeps the float summation deterministic (and
  // identical to the legacy id order whenever total jobs <= max_jobs).
  double sum = 0.0;
  uint32_t count = 0;
  for (const Job* job : slot_jobs_) {
    if (job != nullptr) {
      sum += job->change_fraction_[p];
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace cgraph
