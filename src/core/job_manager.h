// Job-service admission layer: owns every job's lifecycle from submission to completion.
//
// The paper's LTP engine is a continuously running service that admits concurrent jobs at
// runtime (section 3.4: "allows to add new jobs into SJobs at runtime"). The JobManager is
// that admission layer, decoupled from the Load/Trigger/Push pipeline:
//
//   * Submission creates a Job with a stable, unbounded JobId. Jobs become *runnable* once
//     their arrival step has come (immediately for plain Submit).
//   * Admission binds a runnable job to a global-table *slot* — the registration bit index,
//     bounded by EngineOptions::max_jobs. When all slots are busy the job waits in a
//     queue instead of crashing; completion of any running job admits a waiter chosen by
//     the configured AdmissionPolicy (EngineOptions::admission_policy). Under the default
//     FIFO policy admission is strict arrival order and — in every legacy scenario
//     (total jobs <= max_jobs, slot == id) — admission order, registration bits, and
//     hence the whole schedule are identical to the pre-layered engine. The overlap
//     policy instead admits the due waiter with the highest footprint overlap with the
//     running set (job-level scheduling; see src/core/admission_policy.h).
//   * All global-table registration (activation tracing) goes through the manager:
//     RefreshActivity registers next-iteration partitions, MarkProcessed retires them,
//     FinishJob clears every bit, frees the slot, and finalizes the job's stats — the
//     per-job report is complete the moment the job completes, not at engine teardown.
//   * Under the predict policy the manager doubles as the history feedback loop: the
//     activation-tracing sets RefreshActivity computes are recorded per iteration on the
//     job, folded into the FootprintHistory at completion, and consulted by the next
//     admission decision (and, with slot_pools > 1, by admission-time slot placement).

#ifndef SRC_CORE_JOB_MANAGER_H_
#define SRC_CORE_JOB_MANAGER_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/core/admission_policy.h"
#include "src/core/checkpoint_store.h"
#include "src/core/engine_options.h"
#include "src/core/footprint_history.h"
#include "src/core/job.h"
#include "src/core/scheduler.h"
#include "src/partition/partitioned_graph.h"
#include "src/runtime/thread_pool.h"
#include "src/storage/global_table.h"

namespace cgraph {

class JobManager {
 public:
  // `layout`, `table`, `scheduler`, and `pool` are borrowed from the engine and must
  // outlive this. `pool` may be null: every bookkeeping sweep then runs inline.
  JobManager(const PartitionedGraph& layout, GlobalTable* table, Scheduler* scheduler,
             ThreadPool* pool, const EngineOptions& options);

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  // Creates a job that becomes runnable once the engine reaches `arrival_step`. Never
  // blocks and never rejects: jobs beyond the concurrency limit queue. Call AdmitDue() to
  // start whatever can start.
  //
  // Pre:  called any time, including mid-drive (online submission).
  // Post: the job exists with a stable id == its submission index; an arrival step in the
  //       past is clamped to the current step (a later Submit cannot queue-jump already-
  //       due waiters).
  JobId Submit(std::unique_ptr<VertexProgram> program, Timestamp submit_time,
               uint64_t arrival_step) CGRAPH_REQUIRES_DRIVER;

  // Admits waiting jobs while slots are free: each free slot goes to the due waiter
  // (arrival_step <= step) chosen by the configured AdmissionPolicy — strict arrival
  // order under FIFO, maximum running-set overlap (with aging) under overlap. When no
  // slot is free, every due waiter keeps waiting; policy decisions depend only on
  // modeled state, so interleavings stay deterministic across runs and worker counts.
  //
  // Post: either no waiter is due or all slots are occupied; admitted jobs have
  //       stats().wait_steps and stats().admit_overlap recorded.
  void AdmitDue(uint64_t step) CGRAPH_REQUIRES_DRIVER;

  // Cancels a job that is still waiting for admission (the service layer's shed hook:
  // deadline expiry and queue-bound backpressure both retire queued work through here).
  //
  // Pre:  `id` was returned by Submit on this manager.
  // Post: returns true iff the job was waiting — it is then finished with
  //       stats().shed = true, zero work, and finish_step stamped; it never held a slot
  //       and FinalValues-style readback is invalid for it. Returns false (no-op) when
  //       the job already started or finished: running jobs are never shed, they bound
  //       queue wait, not execution (docs/service.md).
  bool CancelWaiting(JobId id) CGRAPH_REQUIRES_DRIVER;

  // True when no job is running and none is waiting.
  bool AllIdle() const CGRAPH_REQUIRES_DRIVER_SHARED {
    return running_ == 0 && waiting_.empty();
  }
  bool HasWaiting() const CGRAPH_REQUIRES_DRIVER_SHARED { return !waiting_.empty(); }
  // Jobs submitted but not yet admitted (includes future-scheduled arrivals). The
  // service layer's backpressure signal: a bounded daemon sheds at the door when this
  // reaches its queue bound.
  size_t NumWaiting() const CGRAPH_REQUIRES_DRIVER_SHARED { return waiting_.size(); }
  // Smallest arrival step among waiting jobs; only meaningful when HasWaiting().
  uint64_t NextArrivalStep() const CGRAPH_REQUIRES_DRIVER_SHARED;

  size_t num_jobs() const { return jobs_.size(); }
  Job& job(JobId id) { return *jobs_[id]; }
  const Job& job(JobId id) const { return *jobs_[id]; }
  // The running job holding `slot`, or nullptr.
  Job* JobAtSlot(uint32_t slot) const CGRAPH_REQUIRES_DRIVER_SHARED {
    return slot_jobs_[slot];
  }

  // Activation tracing (paper section 3.2.2): recomputes the job's activity and
  // next-iteration global-table registration. `swap_buffers` applies the delta
  // double-buffer swap (post-Push); `all_partitions` sweeps everything instead of only
  // dirty partitions; `initial` uses InitiallyActive.
  //
  // Pre:  the job is running (holds a slot).
  // Post: the global table registers exactly the partitions where the job has active
  //       vertices; returns the active-vertex total (0 means the job converged).
  uint64_t RefreshActivity(Job& job, bool all_partitions, bool swap_buffers, bool initial)
      CGRAPH_REQUIRES_DRIVER;

  // Marks partition p handled for the job's current iteration and retires its
  // registration.
  //
  // Pre:  p is registered for the job this iteration (remaining() > 0). A violation is a
  //       *per-job* accounting failure: it sets the job's fail_status_ (the engine then
  //       routes it through FailJob) and returns false rather than aborting the process.
  // Post: returns true when it was the last partition — the iteration boundary, after
  //       which the caller runs Push and RefreshActivity.
  bool MarkProcessed(Job& job, PartitionId p) CGRAPH_REQUIRES_DRIVER;

  // --- Fault tolerance (docs/robustness.md) --------------------------------------

  // Retires a running job through per-job failure isolation: terminal stats().failed
  // with `status` recorded, slot freed through the normal FinalizeJob path (admission /
  // footprint bookkeeping stays consistent, co-running jobs are untouched), and the
  // freed slot immediately admits the next due waiter.
  //
  // Pre:  the job is running (holds a slot); `status` is non-ok.
  void FailJob(Job& job, Status status) CGRAPH_REQUIRES_DRIVER;

  // Cancels a running job mid-run: terminal stats().cancelled, slot freed via
  // FinalizeJob, next due waiter admitted. The running-job counterpart of
  // CancelWaiting.
  //
  // Pre: the job is running (holds a slot).
  void CancelRunning(Job& job) CGRAPH_REQUIRES_DRIVER;

  // Enforces EngineOptions::job_step_budget: cancels (via the CancelRunning path) every
  // running job admitted at least `job_step_budget` steps ago. Returns the number
  // cancelled; no-op returning 0 when the budget is off.
  uint32_t CancelOverBudget(uint64_t step) CGRAPH_REQUIRES_DRIVER;

  // Re-queues a terminally failed/cancelled job for re-admission from its latest
  // checkpoint at `arrival_step` (clamped to now). On admission the job resumes from
  // the checkpointed iteration instead of initializing fresh state.
  //
  // Errors: kFailedPrecondition when the job is not terminally failed/cancelled (or is
  // already queued for restore); kNotFound when it has no checkpoint.
  Status Reenqueue(JobId id, uint64_t arrival_step) CGRAPH_REQUIRES_DRIVER;

  // The job's latest checkpoint, or nullptr (also nullptr whenever checkpointing is
  // off).
  const JobCheckpoint* FindCheckpoint(JobId id) const;

  // Push-stage hook: snapshots the job at the current iteration boundary when
  // checkpointing is on and the iteration index is a multiple of checkpoint_every.
  // Increments stats().checkpoints_taken / checkpoint_bytes *before* snapshotting, so a
  // restored job reproduces the undisturbed run's later checkpoint counts.
  void MaybeCheckpoint(Job& job) CGRAPH_REQUIRES_DRIVER;

  // Completes the job.
  //
  // Pre:  the job is running (holds a slot).
  // Post: finished() is true, stats are final (wall clock stamped), every registration
  //       bit is cleared, and the freed slot has already admitted the admission
  //       policy's next pick if any waiter was due.
  void FinishJob(Job& job) CGRAPH_REQUIRES_DRIVER;

  // Mean change fraction of p over running jobs — C(P) of scheduler Eq. 1.
  double MeanStateChange(PartitionId p) const;

  // The per-program-type lifetime-footprint profiles learned from completed jobs.
  // Pre: the admission policy consumes history (predict) — the subsystem does not
  // exist (and its knobs are not validated) under fifo/overlap.
  const FootprintHistory& history() const {
    CGRAPH_CHECK(history_ != nullptr);
    return *history_;
  }

  // Engine-maintained clocks, consumed by FinishJob (stats) and slot-release admission.
  void set_elapsed_seconds(double seconds) CGRAPH_REQUIRES_DRIVER {
    elapsed_seconds_ = seconds;
  }
  void set_current_step(uint64_t step) CGRAPH_REQUIRES_DRIVER { current_step_ = step; }

 private:
  // Binds the job to `slot` and initializes its private table, activity, and first
  // registrations. Jobs with no initially active vertex finalize immediately (the caller's
  // admit loop reuses the freed slot; no recursion). Restore-pending jobs take the
  // RestoreJob path instead of fresh initialization.
  void InitJob(Job& job, uint32_t slot) CGRAPH_REQUIRES_DRIVER;
  // Restore half of InitJob: rebuilds the job's runtime state from its latest checkpoint
  // (vertex states, async windows, stats snapshot) and re-derives activity masks,
  // counts, and registrations by re-sweeping the restored states — at an iteration
  // boundary those are pure functions of the states, so the rebuild is exact.
  void RestoreJob(Job& job) CGRAPH_REQUIRES_DRIVER;
  // Completion bookkeeping without follow-on admission: final stats, registration
  // teardown, slot release — and, under history-consuming policies, folding the job's
  // activation trace into the footprint history (skipped for failed/cancelled jobs,
  // whose partial traces would poison the per-type profiles).
  void FinalizeJob(Job& job) CGRAPH_REQUIRES_DRIVER;
  // A free slot for `job`, or Job::kInvalidSlot when all are busy. With slot_pools == 1
  // (default): the job's own id when available (legacy bit-identity), else the smallest
  // free one. With slot_pools > 1: the lowest free slot of the pool whose running cohort
  // the job's partition weights (history forecast, else initial footprint) overlap most
  // — admission-time placement; records stats().admit_pool.
  uint32_t AllocateSlot(Job& job) CGRAPH_REQUIRES_DRIVER;
  // The placement score of `job` against the union of partitions currently active for
  // a cohort (`needed`, one flag per partition).
  double PlacementScore(Job& job, const std::vector<bool>& needed) CGRAPH_REQUIRES_DRIVER;

  // Fills job.footprint_ with per-partition initially-active vertex counts (the state
  // InitJob would build, without materializing a private table). Called lazily from
  // AdmitDue — at most once per job, and only when a footprint-aware policy faces a
  // decision with competing candidates.
  void ComputeFootprint(Job& job) CGRAPH_REQUIRES_DRIVER;

  // Per-vertex activity sweep of one partition: optional delta double-buffer swap, then
  // active-mask rebuild. Returns the partition's active count. Dispatches through the
  // pool's batch primitive in word-aligned chunks when the partition is at least
  // EngineOptions::parallel_sweep_threshold vertices (results are order-independent:
  // integer counts and disjoint bitmask words).
  uint32_t SweepPartitionActivity(Job& job, const GraphPartition& part, PartitionId p,
                                  bool swap_buffers, bool initial) CGRAPH_REQUIRES_DRIVER;

  const PartitionedGraph& layout_;
  GlobalTable* table_;
  Scheduler* scheduler_;
  ThreadPool* pool_;
  EngineOptions options_;

  std::vector<std::unique_ptr<Job>> jobs_;
  // slot -> running job (nullptr when free).
  std::vector<Job*> slot_jobs_ CGRAPH_GUARDED_BY_DRIVER;
  struct Waiter {
    JobId job;
    uint64_t arrival_step;
  };
  // Sorted by (arrival_step, submission order).
  std::deque<Waiter> waiting_ CGRAPH_GUARDED_BY_DRIVER;
  // Declared before policy_ (the predict policy borrows a pointer); null under
  // policies that never consult history, so fifo/overlap pay nothing for the
  // subsystem and its knobs go unvalidated there.
  std::unique_ptr<FootprintHistory> history_;
  std::unique_ptr<AdmissionPolicy> policy_;
  // Allocated only when EngineOptions::checkpoint_every > 0; null = checkpointing off.
  std::unique_ptr<CheckpointStore> checkpoints_;
  // AdmitDue's candidate/runner arenas and AllocateSlot's cohort mask, reused across
  // calls (no per-admission allocation).
  std::vector<AdmissionPolicy::Candidate> candidates_ CGRAPH_GUARDED_BY_DRIVER;
  std::vector<PredictedRunner> runners_ CGRAPH_GUARDED_BY_DRIVER;
  std::vector<bool> cohort_needed_ CGRAPH_GUARDED_BY_DRIVER;
  uint32_t running_ CGRAPH_GUARDED_BY_DRIVER = 0;
  double elapsed_seconds_ CGRAPH_GUARDED_BY_DRIVER = 0.0;
  uint64_t current_step_ CGRAPH_GUARDED_BY_DRIVER = 0;
};

}  // namespace cgraph

#endif  // SRC_CORE_JOB_MANAGER_H_
