#include "src/baselines/baseline_executor.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "src/common/check.h"
#include "src/common/prng.h"
#include "src/common/timer.h"

namespace cgraph {

const char* BaselineSystemName(BaselineSystem system) {
  switch (system) {
    case BaselineSystem::kSequential:
      return "sequential";
    case BaselineSystem::kSeraph:
      return "seraph";
    case BaselineSystem::kSeraphVt:
      return "seraph-vt";
    case BaselineSystem::kNxgraph:
      return "nxgraph";
    case BaselineSystem::kClip:
      return "clip";
  }
  return "unknown";
}

BaselineExecutor::BaselineExecutor(const PartitionedGraph* graph,
                                   const BaselineOptions& options)
    : graph_(graph), options_(options) {
  CGRAPH_CHECK(graph != nullptr);
  hierarchy_ = std::make_unique<MemoryHierarchy>(options_.engine.hierarchy);
  pool_ = std::make_unique<ThreadPool>(options_.engine.num_workers);
}

BaselineExecutor::BaselineExecutor(const SnapshotStore* snapshots,
                                   const BaselineOptions& options)
    : snapshots_(snapshots), options_(options) {
  CGRAPH_CHECK(snapshots != nullptr);
  hierarchy_ = std::make_unique<MemoryHierarchy>(options_.engine.hierarchy);
  pool_ = std::make_unique<ThreadPool>(options_.engine.num_workers);
}

const PartitionedGraph& BaselineExecutor::layout() const {
  return snapshots_ != nullptr ? snapshots_->base() : *graph_;
}

ItemKey BaselineExecutor::StructureKey(const Job& job, PartitionId p) const {
  ItemKey key;
  key.kind = DataKind::kStructure;
  key.partition = p;
  // Ownership policy: single-job engines own private copies; Seraph-family shares one.
  const bool per_job_copy = options_.system == BaselineSystem::kNxgraph ||
                            options_.system == BaselineSystem::kClip;
  key.owner = per_job_copy ? job.id() : kSharedOwner;
  if (snapshots_ == nullptr) {
    key.version = 0;
    return key;
  }
  if (options_.system == BaselineSystem::kSeraph ||
      options_.system == BaselineSystem::kSequential) {
    // Plain Seraph materializes every distinct snapshot as a full structure copy: even
    // unchanged partitions get a snapshot-specific version id.
    const auto it = std::find(snapshot_ordinals_.begin(), snapshot_ordinals_.end(),
                              job.submit_time());
    CGRAPH_CHECK(it != snapshot_ordinals_.end());
    key.version = static_cast<uint32_t>(it - snapshot_ordinals_.begin());
  } else {
    // Version-Traveler-style: unchanged partitions share one version.
    key.version = snapshots_->ResolveVersionIndex(p, job.submit_time());
  }
  return key;
}

const GraphPartition& BaselineExecutor::ResolveData(const Job& job, PartitionId p) const {
  if (snapshots_ == nullptr) {
    return graph_->partition(p);
  }
  return snapshots_->Resolve(p, job.submit_time());
}

JobId BaselineExecutor::AddJob(std::unique_ptr<VertexProgram> program, Timestamp submit_time) {
  CGRAPH_CHECK(!ran_);
  const JobId id = static_cast<JobId>(jobs_.size());
  jobs_.push_back(std::make_unique<Job>(id, std::move(program), submit_time));
  Job& job = *jobs_.back();
  job.stats_.job_name = std::string(job.program().name());
  if (std::find(snapshot_ordinals_.begin(), snapshot_ordinals_.end(), submit_time) ==
      snapshot_ordinals_.end()) {
    snapshot_ordinals_.push_back(submit_time);
    std::sort(snapshot_ordinals_.begin(), snapshot_ordinals_.end());
  }
  InitJob(job);
  return id;
}

void BaselineExecutor::InitJob(Job& job) {
  const PartitionedGraph& g = layout();
  job.table_ = PrivateTable(g);
  job.active_.resize(g.num_partitions());
  job.active_count_.assign(g.num_partitions(), 0);
  job.processed_.assign(g.num_partitions(), false);
  job.dirty_.assign(g.num_partitions(), false);

  const VertexProgram& program = job.program();
  const double identity = AccIdentity(program.acc_kind());
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    const GraphPartition& part = g.partition(p);
    auto states = job.table_.partition(p);
    job.active_[p].Resize(part.num_local_vertices());
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      states[v] = program.InitialState(part.vertex(v));
      states[v].delta_next = identity;
    }
  }

  // Job-specific traversal order: a deterministic shuffle keyed by the job id. This is
  // the paper's "individual manner along different graph paths" — no two jobs stream the
  // shared partitions in the same order.
  std::vector<PartitionId> order(g.num_partitions());
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    order[p] = p;
  }
  Xoshiro256 rng(0xC0FFEEull + job.id() * 7919ull);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  traversal_order_.push_back(std::move(order));
  cursor_.push_back(0);

  const uint64_t active =
      RefreshActivity(job, /*all_partitions=*/true, /*swap_buffers=*/false, /*initial=*/true);
  if (active == 0) {
    job.finished_ = true;
  }
}

RunReport BaselineExecutor::Run() {
  CGRAPH_CHECK(!ran_);
  ran_ = true;

  WallTimer timer;
  if (options_.system == BaselineSystem::kSequential) {
    // One job at a time, modeling a fresh engine process per job: both the cache and the
    // memory tier start cold, so every job re-streams the graph from disk — exactly the
    // "sequential way" the paper's Fig. 2 and Fig. 19 normalize against.
    for (auto& job : jobs_) {
      hierarchy_->FlushCache();
      hierarchy_->ClearMemory();
      while (!job->finished_) {
        run_elapsed_ = timer.ElapsedSeconds();
        StepJob(*job);
      }
    }
  } else {
    // Concurrent jobs: round-robin at partition granularity, which interleaves the
    // individual access streams in the shared LLC.
    while (true) {
      bool any = false;
      for (auto& job : jobs_) {
        if (!job->finished_) {
          run_elapsed_ = timer.ElapsedSeconds();
          StepJob(*job);
          any = true;
        }
      }
      if (!any) {
        break;
      }
    }
  }
  run_elapsed_ = timer.ElapsedSeconds();

  RunReport report;
  report.executor_name = BaselineSystemName(options_.system);
  report.workers = options_.engine.num_workers;
  report.wall_seconds = run_elapsed_;
  for (const auto& job : jobs_) {
    report.jobs.push_back(job->stats());
  }
  report.cache = hierarchy_->cache().stats();
  report.memory = hierarchy_->memory().stats();
  report.partition = layout().quality();
  return report;
}

bool BaselineExecutor::StepJob(Job& job) {
  if (job.finished_) {
    return false;
  }
  CGRAPH_CHECK(job.remaining_ > 0);
  // Next unprocessed active partition in this job's own order.
  const auto& order = traversal_order_[job.id()];
  size_t& cur = cursor_[job.id()];
  for (size_t scanned = 0; scanned < order.size(); ++scanned) {
    const PartitionId p = order[cur];
    cur = (cur + 1) % order.size();
    if (job.active_count_[p] > 0 && !job.processed_[p]) {
      ProcessPartitionForJob(job, p);
      if (job.remaining_ == 0) {
        PushJob(job);
      }
      return !job.finished_;
    }
  }
  CGRAPH_CHECK(false);  // remaining_ > 0 but no partition found: bookkeeping bug.
  return false;
}

void BaselineExecutor::ProcessPartitionForJob(Job& job, PartitionId p) {
  const GraphPartition& part = ResolveData(job, p);
  const ItemKey structure_key = StructureKey(job, p);
  const uint32_t touched = ExpectedTouchedSegments(
      part.structure_bytes(), options_.engine.hierarchy.cache_segment_bytes,
      job.active_count_[p], part.num_local_vertices());
  job.stats_.charge +=
      hierarchy_->AccessPrefix(structure_key, part.structure_bytes(), touched, /*pin=*/true);
  const ItemKey private_key{DataKind::kPrivate, job.id(), p, 0};
  job.stats_.charge +=
      hierarchy_->Access(private_key, job.table_.partition_bytes(p), /*pin=*/false);

  // Trigger: this job alone, parallelized over its active vertices. Dispatch goes through
  // the pool's allocation-free batch primitive: chunk starts are claimed from one atomic
  // cursor shared by the drain tasks, no heap-allocated closures.
  const size_t n = part.num_local_vertices();
  const size_t grain = std::max<uint32_t>(1, options_.engine.chunk_grain);
  std::atomic<size_t> cursor{0};
  auto process_range = [&job, &part, p](size_t begin, size_t end) {
    auto states = job.table_.partition(p);
    ScatterOps ops(job.program().acc_kind(), states);
    uint64_t vertex_computes = 0;
    const DynamicBitset& active = job.active_[p];
    for (size_t v = begin; v < end; ++v) {
      if (active.Test(v)) {
        job.program().Compute(part, static_cast<LocalVertexId>(v), states, ops);
        ++vertex_computes;
      }
    }
    std::atomic_ref<uint64_t>(job.stats_.vertex_computes)
        .fetch_add(vertex_computes, std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(job.stats_.edge_traversals)
        .fetch_add(ops.edge_traversals(), std::memory_order_relaxed);
    std::atomic_ref<uint64_t>(job.stats_.compute_units)
        .fetch_add(vertex_computes + ops.edge_traversals(), std::memory_order_relaxed);
  };
  const size_t num_tasks =
      options_.engine.straggler_split ? options_.engine.num_workers : size_t{1};
  pool_->RunBatch(num_tasks, [&](size_t) {
    while (true) {
      const size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) {
        return;
      }
      process_range(begin, std::min(begin + grain, n));
    }
  });

  if (options_.system == BaselineSystem::kClip) {
    ReentryRounds(job, p, part);
    // Beyond-neighborhood stray reads: CLIP's Compute may read vertex *states* outside
    // the loaded partition's neighborhood. Model: touch segments of this job's private
    // tables of other partitions. They rarely hit, which is the locality CLIP trades
    // away for its reduced total access volume.
    SplitMix64 stray(0xBEEFull ^ (static_cast<uint64_t>(job.id()) << 32) ^
                     (static_cast<uint64_t>(p) * 0x9e3779b97f4a7c15ULL) ^ job.iteration_);
    const uint32_t parts = layout().num_partitions();
    for (uint32_t i = 0; i < options_.clip_foreign_touches && parts > 1; ++i) {
      PartitionId q = static_cast<PartitionId>(stray.Next() % parts);
      if (q == p) {
        q = (q + 1) % parts;
      }
      job.stats_.charge += hierarchy_->AccessSegment(
          ItemKey{DataKind::kPrivate, job.id(), q, 0}, job.table_.partition_bytes(q),
          static_cast<uint32_t>(stray.Next() & 0xFFFFu));
    }
  }

  hierarchy_->UnpinItem(structure_key, part.structure_bytes());
  CollectMirrorRecords(job, p);
  job.processed_[p] = true;
  job.dirty_[p] = true;
  --job.remaining_;
}

void BaselineExecutor::ReentryRounds(Job& job, PartitionId p, const GraphPartition& part) {
  // CLIP's reentry: re-iterate the loaded partition until locally quiescent. To keep
  // replica semantics exact, only unreplicated vertices (single-copy masters) may consume
  // their locally accumulated deltas early — in a power-law vertex-cut the bulk of
  // vertices qualify, which is where reentry's iteration savings come from.
  VertexProgram& program = job.program();
  const AccKind kind = program.acc_kind();
  const double identity = AccIdentity(kind);
  auto states = job.table_.partition(p);
  ScatterOps ops(kind, states);
  uint64_t vertex_computes = 0;
  for (uint32_t round = 0; round < options_.clip_reentry_limit; ++round) {
    bool changed = false;
    // Descending sweep: a propagation chain laid out in storage order advances a bounded
    // number of hops per load (limit * 1), rather than collapsing in one lucky pass —
    // matching the bounded gains reentry has on real, imperfectly-ordered graphs.
    for (LocalVertexId v = part.num_local_vertices(); v-- > 0;) {
      const LocalVertexInfo& info = part.vertex(v);
      if (!info.is_master || !part.mirrors_of(v).empty()) {
        continue;
      }
      VertexState& s = states[v];
      if (s.delta_next == identity) {
        continue;
      }
      const double pending = s.delta_next;
      const double previous_delta = s.delta;
      s.delta = pending;
      if (!program.IsActive(s)) {
        s.delta = previous_delta;
        continue;
      }
      s.delta_next = identity;
      program.Compute(part, v, states, ops);
      ++vertex_computes;
      changed = true;
    }
    if (!changed) {
      break;
    }
  }
  job.stats_.vertex_computes += vertex_computes;
  job.stats_.edge_traversals += ops.edge_traversals();
  job.stats_.compute_units += vertex_computes + ops.edge_traversals();
}

void BaselineExecutor::CollectMirrorRecords(Job& job, PartitionId p) {
  const GraphPartition& layout_part = layout().partition(p);
  const double identity = AccIdentity(job.program().acc_kind());
  auto states = job.table_.partition(p);
  for (LocalVertexId v = 0; v < layout_part.num_local_vertices(); ++v) {
    const LocalVertexInfo& info = layout_part.vertex(v);
    if (info.is_master) {
      continue;
    }
    if (states[v].delta_next != identity) {
      job.sync_buffer_.push_back(
          SyncRecord{info.master_partition, info.master_local, states[v].delta_next});
      states[v].delta_next = identity;
    }
  }
}

void BaselineExecutor::PushJob(Job& job) {
  const PartitionedGraph& g = layout();
  const AccKind kind = job.program().acc_kind();
  const double identity = AccIdentity(kind);

  std::sort(job.sync_buffer_.begin(), job.sync_buffer_.end(),
            [](const SyncRecord& a, const SyncRecord& b) {
              if (a.partition != b.partition) {
                return a.partition < b.partition;
              }
              return a.local < b.local;
            });
  for (const SyncRecord& rec : job.sync_buffer_) {
    auto states = job.table_.partition(rec.partition);
    states[rec.local].delta_next = AccApply(kind, states[rec.local].delta_next, rec.delta);
    job.dirty_[rec.partition] = true;
  }
  job.stats_.push_updates += job.sync_buffer_.size();
  job.sync_buffer_.clear();

  std::vector<SyncRecord> broadcast;
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    if (!job.dirty_[p]) {
      continue;
    }
    const GraphPartition& part = g.partition(p);
    auto states = job.table_.partition(p);
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      const LocalVertexInfo& info = part.vertex(v);
      if (!info.is_master || states[v].delta_next == identity) {
        continue;
      }
      for (const ReplicaRef& ref : part.mirrors_of(v)) {
        broadcast.push_back(SyncRecord{ref.partition, ref.local, states[v].delta_next});
      }
    }
  }
  std::sort(broadcast.begin(), broadcast.end(), [](const SyncRecord& a, const SyncRecord& b) {
    if (a.partition != b.partition) {
      return a.partition < b.partition;
    }
    return a.local < b.local;
  });
  for (const SyncRecord& rec : broadcast) {
    auto states = job.table_.partition(rec.partition);
    states[rec.local].delta_next = rec.delta;
    job.dirty_[rec.partition] = true;
  }
  job.stats_.push_updates += broadcast.size();

  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    if (job.dirty_[p]) {
      const ItemKey private_key{DataKind::kPrivate, job.id(), p, 0};
      job.stats_.charge +=
          hierarchy_->Access(private_key, job.table_.partition_bytes(p), /*pin=*/false);
    }
  }
  uint64_t active_now =
      RefreshActivity(job, /*all_partitions=*/false, /*swap_buffers=*/true, /*initial=*/false);

  ++job.iteration_;
  job.stats_.iterations = job.iteration_;
  std::fill(job.processed_.begin(), job.processed_.end(), false);

  for (int guard = 0; guard < 1024; ++guard) {
    VertexProgram::IterationContext context;
    context.any_active = active_now > 0;
    context.iteration = job.iteration_;
    context.table = &job.table_;
    context.layout = &g;
    const auto action = job.program().OnIterationEnd(context);
    if (action == VertexProgram::IterationAction::kFinished) {
      FinishJob(job);
      return;
    }
    if (action == VertexProgram::IterationAction::kContinue) {
      if (active_now == 0 ||
          job.iteration_ >= options_.engine.max_iterations_per_job) {
        FinishJob(job);
      }
      return;
    }
    for (PartitionId p = 0; p < g.num_partitions(); ++p) {
      const GraphPartition& part = g.partition(p);
      auto states = job.table_.partition(p);
      for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
        job.program().ReinitVertex(part.vertex(v), states[v]);
      }
      const ItemKey private_key{DataKind::kPrivate, job.id(), p, 0};
      job.stats_.charge +=
          hierarchy_->Access(private_key, job.table_.partition_bytes(p), /*pin=*/false);
    }
    active_now = RefreshActivity(job, /*all_partitions=*/true, /*swap_buffers=*/false,
                                 /*initial=*/false);
  }
  CGRAPH_CHECK(false);  // Phase-change livelock guard.
}

uint64_t BaselineExecutor::RefreshActivity(Job& job, bool all_partitions, bool swap_buffers,
                                           bool initial) {
  const PartitionedGraph& g = layout();
  const VertexProgram& program = job.program();
  const double identity = AccIdentity(program.acc_kind());
  uint64_t total = 0;
  job.remaining_ = 0;
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    if (!all_partitions && !job.dirty_[p]) {
      CGRAPH_DCHECK(job.active_count_[p] == 0);
      continue;
    }
    const GraphPartition& part = g.partition(p);
    auto states = job.table_.partition(p);
    uint32_t count = 0;
    job.active_[p].ClearAll();
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      if (swap_buffers) {
        states[v].delta = states[v].delta_next;
        states[v].delta_next = identity;
      }
      const bool active = initial ? program.InitiallyActive(part.vertex(v), states[v])
                                  : program.IsActive(states[v]);
      if (active) {
        job.active_[p].Set(v);
        ++count;
      }
    }
    job.active_count_[p] = count;
    job.dirty_[p] = false;
    total += count;
    if (count > 0) {
      ++job.remaining_;
    }
  }
  return total;
}

void BaselineExecutor::FinishJob(Job& job) {
  job.finished_ = true;
  job.remaining_ = 0;
  job.stats_.wall_seconds = run_elapsed_;
}

std::vector<double> BaselineExecutor::FinalValues(JobId id) const {
  const Job& job = *jobs_[id];
  const PartitionedGraph& g = layout();
  std::vector<double> values(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const ReplicaRef master = g.master_of(v);
    values[v] = job.table().partition(master.partition)[master.local].value;
  }
  return values;
}

std::vector<double> BaselineExecutor::FinalAux(JobId id) const {
  const Job& job = *jobs_[id];
  const PartitionedGraph& g = layout();
  std::vector<double> values(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const ReplicaRef master = g.master_of(v);
    values[v] = job.table().partition(master.partition)[master.local].aux;
  }
  return values;
}

}  // namespace cgraph
