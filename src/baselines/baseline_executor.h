// Behavioural models of the systems CGraph is compared against (paper section 4).
//
// All baselines execute the *same vertex programs* on the *same partitioned substrate*
// and the *same simulated memory hierarchy* as the LTP engine, and converge to identical
// results (asserted in tests). They differ from the LTP engine — and from each other —
// only in the data-access policies that the paper identifies as the real systems'
// distinguishing traits:
//
//   Sequential  — the jobs run one after another ("the sequential way" of Fig. 2); the
//                 cache is flushed between jobs; one shared in-memory structure copy.
//   Seraph      — jobs run concurrently and share a single in-memory structure copy (the
//                 decoupling contribution of Seraph [31, 32]), but each job traverses its
//                 own active partitions in its own job-specific order; the interleaved
//                 access streams interfere in the shared LLC. With snapshots, each
//                 distinct snapshot is a full separate structure copy.
//   Seraph-VT   — Seraph plus Version-Traveler-style incremental snapshots [17]:
//                 unchanged partitions share one version in memory; access streams remain
//                 individual per job.
//   Nxgraph     — a single-job engine [11]: every job owns a private destination-sorted
//                 structure copy. Per-job copies multiply the memory footprint (and the
//                 disk I/O once the copies exceed memory); there is no inter-job sharing.
//   CLIP        — a single-job out-of-core engine [6]: per-job copies, plus *reentry* — a
//                 loaded partition is locally re-iterated (masters consume locally
//                 accumulated deltas) until quiescent, reducing global iteration counts
//                 and hence total loaded volume — plus beyond-neighborhood stray reads
//                 modeled as extra foreign-segment touches that damage its locality.

#ifndef SRC_BASELINES_BASELINE_EXECUTOR_H_
#define SRC_BASELINES_BASELINE_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cache/memory_hierarchy.h"
#include "src/core/engine_options.h"
#include "src/core/job.h"
#include "src/core/vertex_program.h"
#include "src/metrics/run_report.h"
#include "src/partition/partitioned_graph.h"
#include "src/runtime/thread_pool.h"
#include "src/storage/snapshot_store.h"

namespace cgraph {

enum class BaselineSystem {
  kSequential,
  kSeraph,
  kSeraphVt,
  kNxgraph,
  kClip,
};

const char* BaselineSystemName(BaselineSystem system);

struct BaselineOptions {
  BaselineSystem system = BaselineSystem::kSeraph;
  EngineOptions engine;
  // CLIP: stray foreign private-state touches per processed partition
  // (beyond-neighborhood reads).
  uint32_t clip_foreign_touches = 4;
  // CLIP: cap on local reentry sub-rounds per partition load. On real web graphs
  // propagation chains are only partially aligned with partition boundaries, so unbounded
  // reentry would overstate CLIP (whose published gains are bounded by exactly this).
  uint32_t clip_reentry_limit = 3;
};

class BaselineExecutor {
 public:
  // Single-snapshot run over a prepartitioned graph (not owned).
  BaselineExecutor(const PartitionedGraph* graph, const BaselineOptions& options);
  // Snapshot-aware run (Seraph / Seraph-VT comparisons of Figs. 16-19).
  BaselineExecutor(const SnapshotStore* snapshots, const BaselineOptions& options);

  BaselineExecutor(const BaselineExecutor&) = delete;
  BaselineExecutor& operator=(const BaselineExecutor&) = delete;

  JobId AddJob(std::unique_ptr<VertexProgram> program, Timestamp submit_time = 0);

  RunReport Run();

  const Job& job(JobId id) const { return *jobs_[id]; }
  const MemoryHierarchy& hierarchy() const { return *hierarchy_; }

  std::vector<double> FinalValues(JobId id) const;
  std::vector<double> FinalAux(JobId id) const;

 private:
  const PartitionedGraph& layout() const;
  // Structure item identity under this system's ownership/versioning policy.
  ItemKey StructureKey(const Job& job, PartitionId p) const;
  const GraphPartition& ResolveData(const Job& job, PartitionId p) const;

  void InitJob(Job& job);
  // Processes the job's next unprocessed active partition; pushes at iteration end.
  // Returns false when the job has nothing left to do (finished).
  bool StepJob(Job& job);
  void ProcessPartitionForJob(Job& job, PartitionId p);
  void ReentryRounds(Job& job, PartitionId p, const GraphPartition& part);
  void CollectMirrorRecords(Job& job, PartitionId p);
  void PushJob(Job& job);
  uint64_t RefreshActivity(Job& job, bool all_partitions, bool swap_buffers, bool initial);
  void FinishJob(Job& job);

  const PartitionedGraph* graph_ = nullptr;
  const SnapshotStore* snapshots_ = nullptr;
  BaselineOptions options_;

  std::unique_ptr<MemoryHierarchy> hierarchy_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Job>> jobs_;
  // Per-job traversal permutation ("different graph paths").
  std::vector<std::vector<PartitionId>> traversal_order_;
  // Per-job cursor into traversal_order_ for the current iteration.
  std::vector<size_t> cursor_;
  // Distinct submit timestamps, sorted: plain Seraph materializes one full structure copy
  // per distinct snapshot.
  std::vector<Timestamp> snapshot_ordinals_;
  double run_elapsed_ = 0.0;
  bool ran_ = false;
};

}  // namespace cgraph

#endif  // SRC_BASELINES_BASELINE_EXECUTOR_H_
