#include "src/service/trace_gen.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/check.h"
#include "src/common/prng.h"

namespace cgraph {

bool ParseArrivalPattern(const std::string& name, ArrivalPattern* out) {
  if (name == "uniform") {
    *out = ArrivalPattern::kUniform;
  } else if (name == "bursty") {
    *out = ArrivalPattern::kBursty;
  } else if (name == "diurnal") {
    *out = ArrivalPattern::kDiurnal;
  } else {
    return false;
  }
  return true;
}

const char* ArrivalPatternName(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kUniform:
      return "uniform";
    case ArrivalPattern::kBursty:
      return "bursty";
    case ArrivalPattern::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

namespace {

// Jittered gap draw: uniform over [gap/2, 3*gap/2], mean exactly `gap` for even gaps.
// gap == 0 degenerates to back-to-back arrivals.
uint64_t JitteredGap(Xoshiro256& rng, uint64_t gap) {
  if (gap == 0) {
    return 0;
  }
  const uint64_t lo = gap - gap / 2;
  return lo + rng.NextBounded(gap + 1);
}

}  // namespace

std::vector<ServiceRequest> GenerateArrivalTrace(const TraceGenOptions& options) {
  CGRAPH_CHECK(!options.programs.empty());
  CGRAPH_CHECK(!options.sources.empty());
  CGRAPH_CHECK(options.burst_size >= 1);
  CGRAPH_CHECK(options.diurnal_period >= 2);

  Xoshiro256 rng(options.seed);
  std::vector<ServiceRequest> trace;
  trace.reserve(options.num_requests);

  uint64_t step = 0;
  for (size_t i = 0; i < options.num_requests; ++i) {
    ServiceRequest req;
    req.arrival_step = step;
    req.program = options.programs[rng.NextBounded(options.programs.size())];
    req.source = options.sources[rng.NextBounded(options.sources.size())];
    trace.push_back(std::move(req));

    // Advance the clock to the next arrival. Gaps are drawn *after* emitting so the
    // first request of every trace arrives at step 0 regardless of pattern.
    switch (options.pattern) {
      case ArrivalPattern::kUniform:
        step += JitteredGap(rng, options.mean_gap);
        break;
      case ArrivalPattern::kBursty:
        // Clump boundary every burst_size requests: the quiet gap carries the whole
        // clump's worth of inter-arrival budget, so the average rate matches uniform.
        if ((i + 1) % options.burst_size == 0) {
          step += JitteredGap(rng, options.mean_gap * options.burst_size);
        }
        break;
      case ArrivalPattern::kDiurnal: {
        // Rate swings sinusoidally with the request index: modulation in [0.5, 2.0]
        // (peak rate = half the mean gap, trough = double). Scaled integer math keeps
        // the draw deterministic across libms up to std::sin, which is faithfully
        // rounded for these arguments on every platform we build on.
        const double phase = 2.0 * 3.14159265358979323846 *
                             static_cast<double>(i % options.diurnal_period) /
                             static_cast<double>(options.diurnal_period);
        const double modulation = 1.25 + 0.75 * std::sin(phase);  // [0.5, 2.0]
        const uint64_t gap =
            static_cast<uint64_t>(std::llround(static_cast<double>(options.mean_gap) *
                                               modulation));
        step += JitteredGap(rng, gap);
        break;
      }
    }
  }
  return trace;
}

bool SaveTrace(const std::vector<ServiceRequest>& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  for (const ServiceRequest& req : trace) {
    out << req.arrival_step << ' ' << req.program << ' ' << req.source << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadTrace(const std::string& path, std::vector<ServiceRequest>* out) {
  out->clear();
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    ServiceRequest req;
    uint64_t source = 0;
    if (!(fields >> req.arrival_step >> req.program >> source)) {
      return false;
    }
    req.source = static_cast<VertexId>(source);
    out->push_back(std::move(req));
  }
  return true;
}

}  // namespace cgraph
