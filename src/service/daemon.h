// The graph-service daemon: a long-running driver that replays arrival traces through
// the LTP engine under production service policies.
//
// The engine's service API (Submit/SubmitAt/Step) executes whatever it is given; a
// *service* in front of it must also decide what NOT to execute. The ServiceDriver adds
// the three admission-control behaviors of a production daemon (ISSUE: daemon mode,
// docs/service.md):
//
//   backpressure — the waiting queue is bounded (queue_bound); a request arriving to a
//                  full queue is shed at the door instead of growing the queue without
//                  limit. Running jobs are never affected.
//   deadlines    — each admitted request carries a queue-wait deadline
//                  (arrival + deadline_steps); a job still waiting for a slot past its
//                  deadline is shed (JobManager::CancelWaiting). Deadlines bound queue
//                  wait, not execution: a job that starts always runs to convergence.
//   query fan-in — a request identical to an in-flight one (same coalesce key,
//                  src/service/request_table.h) attaches to the existing job instead of
//                  submitting a duplicate: one execution, N completions, converged values
//                  shared by every caller at readback. Attaching bypasses the queue
//                  bound — it adds no work.
//
// Latency is measured in the repo's determinism currency, *scheduling steps*: a request's
// completion latency is finish_step - arrival_step, identical across runs and worker
// counts, so p50/p95/p99 are reproducible numbers CI can gate on. Wall-clock enters only
// through the sustained-throughput figure (completed requests / wall second), which is
// the one hardware-dependent output.
//
// The driver is deliberately a pure consumer of the engine's public API plus the three
// service hooks (NumWaiting/CancelWaiting/MutableStats): with coalescing off, deadlines
// off, and the queue unbounded it degenerates to a SubmitAt replay whose modeled
// execution is byte-identical to driving the engine directly.

#ifndef SRC_SERVICE_DAEMON_H_
#define SRC_SERVICE_DAEMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/core/ltp_engine.h"
#include "src/metrics/latency_reservoir.h"
#include "src/service/request_table.h"
#include "src/service/trace_gen.h"

namespace cgraph {

struct ServiceOptions {
  // Maximum jobs waiting for admission before arrivals shed at the door; 0 = unbounded.
  size_t queue_bound = 64;
  // Queue-wait deadline in scheduling steps (a job still *waiting* more than this many
  // steps past its arrival is shed); 0 = no deadlines.
  uint64_t deadline_steps = 0;
  // Query fan-in on/off (off: every request submits its own job).
  bool coalesce = true;
  // Latency-reservoir shape (exact percentiles while a trace fits the capacity).
  size_t reservoir_capacity = 4096;
  uint64_t reservoir_seed = 42;
  // k for kcore/khop programs instantiated from trace requests.
  uint32_t k = 4;
  // Retry-with-backoff for jobs that terminate abnormally (docs/robustness.md): a
  // deadline-shed, failed, or mid-run-cancelled job is retried up to retry_limit times,
  // re-arriving retry_backoff << attempt steps after the abort (deterministic exponential
  // backoff in scheduling steps). A job with a checkpoint resumes from it
  // (RestartFromCheckpoint, same JobId); one without is resubmitted fresh from its
  // representative request. Door sheds stay final immediate rejections — backpressure
  // means the service is telling callers to go away *now*. 0 = no retries.
  uint32_t retry_limit = 0;
  // Base backoff in scheduling steps (doubled per attempt). Must be > 0 when
  // retry_limit > 0.
  uint64_t retry_backoff = 8;
};

// Per-request outcome, in trace order — the multiplexed "response" of the daemon.
// Coalesced callers share a JobId and finish_step; their converged values are read back
// through LtpEngine::FinalValues(job) by whoever holds the engine.
struct RequestOutcome {
  JobId job = kInvalidJob;  // kInvalidJob for door-shed requests (no job existed).
  uint64_t arrival_step = 0;
  uint64_t finish_step = 0;  // Completion, shed, or failure step; 0 for door sheds.
  bool shed = false;         // Door shed or terminal deadline shed — no result delivered.
  bool failed = false;       // Job terminally failed/cancelled mid-run, retries exhausted.
  bool coalesced = false;    // Attached to a pre-existing in-flight job.
};

struct ServiceReport {
  uint64_t total_requests = 0;
  uint64_t completed_requests = 0;  // Requests that received converged results.
  uint64_t shed_requests = 0;       // Door sheds + deadline sheds.
  uint64_t coalesced_requests = 0;  // Requests served by attaching to another job.
  uint64_t failed_requests = 0;     // Callers whose job failed/was cancelled, retries spent.
  uint64_t submitted_jobs = 0;      // Engine jobs created (incl. retry resubmissions).
  uint64_t executed_jobs = 0;       // Submitted jobs that ran to completion.
  // shed_jobs keeps its PR 6 meaning — jobs cancelled while *waiting* (queue-wait
  // deadline sheds, terminal only) — so dedup/shed ratios stay comparable across bench
  // records. Mid-run aborts are split out below and all sit at 0 in default configs.
  uint64_t shed_jobs = 0;           // Terminal queue-wait deadline sheds.
  uint64_t cancelled_jobs = 0;      // Mid-run cancellations observed (incl. later-retried).
  uint64_t failed_jobs = 0;         // Per-job failures observed (incl. later-retried).
  uint64_t retried_jobs = 0;        // Retry resubmissions (fresh job, no checkpoint).
  uint64_t recovered_jobs = 0;      // Checkpoint restarts (same job resumes mid-flight).
  // coalesced_requests / total_requests — the fan-in savings.
  double dedup_ratio = 0.0;
  // Queue-wait + execution latency percentiles, in scheduling steps (nearest-rank;
  // deterministic across runs and worker counts). Shed and failed requests are excluded.
  double p50_latency_steps = 0.0;
  double p95_latency_steps = 0.0;
  double p99_latency_steps = 0.0;
  double mean_latency_steps = 0.0;
  double max_latency_steps = 0.0;
  uint64_t final_step = 0;   // Engine step when the trace drained.
  double wall_seconds = 0.0; // Whole replay, wall clock.
  // completed_requests / wall_seconds — the hardware-dependent throughput figure.
  double sustained_jobs_per_second = 0.0;
  std::vector<RequestOutcome> outcomes;  // One per trace request, trace order.
};

class ServiceDriver {
 public:
  // `engine` is borrowed and must outlive the driver; the driver assumes exclusive use
  // of it for the duration of Run() (it owns the Step() loop).
  ServiceDriver(LtpEngine* engine, const ServiceOptions& options);

  // Replays `trace` (must be sorted by arrival_step — GenerateArrivalTrace and
  // LoadTrace-of-a-saved-trace both are) to completion: every request either completes
  // or is shed, and the engine is idle on return. Callable once per driver.
  ServiceReport Run(const std::vector<ServiceRequest>& trace);

 private:
  // One submitted engine job and the requests multiplexed onto it.
  struct PendingJob {
    JobId id = kInvalidJob;
    std::string key;
    uint64_t deadline_step = 0;          // 0 = none.
    std::vector<size_t> request_indices;  // Into the trace / outcomes array.
    uint32_t attempts = 0;                // Retries consumed so far.
    size_t rep_index = 0;                 // Representative request (retry resubmission).
  };

  // Routes one due request: coalesce-attach, door-shed, or submit. `index` is its trace
  // position.
  void AdmitRequest(const std::vector<ServiceRequest>& trace, size_t index,
                    ServiceReport* report) CGRAPH_REQUIRES_DRIVER;
  // Sheds pending jobs still waiting past their deadline at `now` (or retries them,
  // when retries remain).
  void ShedExpired(const std::vector<ServiceRequest>& trace, uint64_t now,
                   ServiceReport* report) CGRAPH_REQUIRES_DRIVER;
  // Moves finished pending jobs into outcomes / the latency reservoir; routes mid-run
  // failures/cancellations through the retry policy first.
  void ReapFinished(const std::vector<ServiceRequest>& trace, ServiceReport* report)
      CGRAPH_REQUIRES_DRIVER;
  // Schedules `p`'s next attempt at `abort_step` + the exponential backoff: checkpoint
  // restart when one exists, fresh resubmission of the representative request
  // otherwise. Updates the coalesce table, deadline, and outcome job ids. Pre: a retry
  // attempt remains.
  void Retry(const std::vector<ServiceRequest>& trace, PendingJob& p, uint64_t abort_step,
             ServiceReport* report) CGRAPH_REQUIRES_DRIVER;

  LtpEngine* engine_;
  ServiceOptions options_;
  RequestTable table_ CGRAPH_GUARDED_BY_DRIVER;
  LatencyReservoir reservoir_ CGRAPH_GUARDED_BY_DRIVER;
  std::vector<PendingJob> pending_ CGRAPH_GUARDED_BY_DRIVER;
  bool ran_ = false;
};

}  // namespace cgraph

#endif  // SRC_SERVICE_DAEMON_H_
