#include "src/service/daemon.h"

#include <utility>

#include "src/algorithms/factory.h"
#include "src/common/check.h"
#include "src/common/timer.h"

namespace cgraph {

ServiceDriver::ServiceDriver(LtpEngine* engine, const ServiceOptions& options)
    : engine_(engine),
      options_(options),
      reservoir_(options.reservoir_capacity, options.reservoir_seed) {
  CGRAPH_CHECK(engine != nullptr);
  // A zero backoff would re-arrive the retry at the abort step itself; require real
  // spacing so retried work never races the abort that triggered it.
  CGRAPH_CHECK(options.retry_limit == 0 || options.retry_backoff > 0);
}

void ServiceDriver::AdmitRequest(const std::vector<ServiceRequest>& trace, size_t index,
                                 ServiceReport* report) {
  const ServiceRequest& req = trace[index];
  RequestOutcome& outcome = report->outcomes[index];
  outcome.arrival_step = req.arrival_step;

  const std::string key = CoalesceKey(req.program, req.source);
  if (options_.coalesce) {
    const JobId hit = table_.Find(key);
    if (hit != kInvalidJob) {
      // Fan-in: an identical computation is already queued or running — multiplex this
      // caller onto it. No queue growth, no new work, so the queue bound does not apply.
      for (PendingJob& p : pending_) {
        if (p.id == hit) {
          p.request_indices.push_back(index);
          break;
        }
      }
      engine_->MutableStats(hit).coalesced_callers += 1;
      outcome.job = hit;
      outcome.coalesced = true;
      report->coalesced_requests += 1;
      return;
    }
  }

  if (options_.queue_bound > 0 && engine_->NumWaiting() >= options_.queue_bound) {
    // Backpressure: the waiting queue is at its bound — shed at the door rather than
    // queue without limit. The request never becomes an engine job.
    outcome.shed = true;
    outcome.finish_step = req.arrival_step;
    report->shed_requests += 1;
    return;
  }

  LtpEngine::JobHandle handle =
      engine_->SubmitAt(MakeProgram(req.program, req.source, options_.k),
                        req.arrival_step);
  PendingJob pending;
  pending.id = handle.id();
  pending.key = key;
  pending.rep_index = index;
  pending.request_indices.push_back(index);
  if (options_.deadline_steps > 0) {
    pending.deadline_step = req.arrival_step + options_.deadline_steps;
    engine_->MutableStats(pending.id).deadline_step = pending.deadline_step;
  }
  pending_.push_back(std::move(pending));
  if (options_.coalesce) {
    table_.Register(key, handle.id());
  }
  outcome.job = handle.id();
  report->submitted_jobs += 1;
}

void ServiceDriver::ShedExpired(const std::vector<ServiceRequest>& trace, uint64_t now,
                                ServiceReport* report) {
  size_t keep = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    PendingJob& p = pending_[i];
    // Deadlines bound queue wait only: CancelWaiting refuses (returns false) once the
    // job started, and a refused job simply stays pending until it finishes.
    if (p.deadline_step != 0 && now > p.deadline_step && engine_->CancelWaiting(p.id)) {
      table_.Retire(p.key, p.id);
      const uint64_t shed_step = engine_->job(p.id).stats().finish_step;
      if (options_.retry_limit > 0 && p.attempts < options_.retry_limit) {
        // Retried sheds are not terminal: the entry stays pending on its next attempt
        // and shed_jobs/shed_requests count nothing until retries are exhausted.
        Retry(trace, p, shed_step, report);
      } else {
        for (size_t index : p.request_indices) {
          RequestOutcome& outcome = report->outcomes[index];
          outcome.shed = true;
          outcome.finish_step = shed_step;
        }
        report->shed_requests += p.request_indices.size();
        report->shed_jobs += 1;
        continue;
      }
    }
    if (keep != i) {
      pending_[keep] = std::move(pending_[i]);
    }
    ++keep;
  }
  pending_.resize(keep);
}

void ServiceDriver::ReapFinished(const std::vector<ServiceRequest>& trace,
                                 ServiceReport* report) {
  size_t keep = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    PendingJob& p = pending_[i];
    bool drop = false;
    if (engine_->job(p.id).finished()) {
      const JobStats& stats = engine_->job(p.id).stats();
      if (stats.failed || stats.cancelled) {
        // Mid-run abort (injected fault, step-budget cancel, explicit Cancel). The
        // observed counters include attempts that are retried right below; only
        // failed_requests is terminal.
        const uint64_t abort_step = stats.finish_step;
        (stats.failed ? report->failed_jobs : report->cancelled_jobs) += 1;
        table_.Retire(p.key, p.id);
        if (options_.retry_limit > 0 && p.attempts < options_.retry_limit) {
          Retry(trace, p, abort_step, report);  // The entry stays on its next attempt.
        } else {
          for (size_t index : p.request_indices) {
            RequestOutcome& outcome = report->outcomes[index];
            outcome.failed = true;
            outcome.finish_step = abort_step;
          }
          report->failed_requests += p.request_indices.size();
          drop = true;
        }
      } else {
        table_.Retire(p.key, p.id);
        const uint64_t finish_step = stats.finish_step;
        for (size_t index : p.request_indices) {
          RequestOutcome& outcome = report->outcomes[index];
          outcome.finish_step = finish_step;
          // Every multiplexed caller observes its own latency: the shared finish minus
          // its own arrival (a coalesced late-joiner waits less than the originator).
          CGRAPH_CHECK(finish_step >= trace[index].arrival_step);
          reservoir_.Add(static_cast<double>(finish_step - trace[index].arrival_step));
        }
        report->completed_requests += p.request_indices.size();
        report->executed_jobs += 1;
        drop = true;
      }
    }
    if (!drop) {
      if (keep != i) {
        pending_[keep] = std::move(pending_[i]);
      }
      ++keep;
    }
  }
  pending_.resize(keep);
}

void ServiceDriver::Retry(const std::vector<ServiceRequest>& trace, PendingJob& p,
                          uint64_t abort_step, ServiceReport* report) {
  CGRAPH_CHECK(options_.retry_limit > 0 && p.attempts < options_.retry_limit);
  // Deterministic exponential backoff in scheduling steps: base << attempts-so-far. No
  // jitter — two identical runs retry at identical steps, which is what the
  // retry-determinism test in tests/fault_tolerance_test.cc pins down.
  const uint64_t retry_step = abort_step + (options_.retry_backoff << p.attempts);
  p.attempts += 1;
  if (engine_->HasCheckpoint(p.id) &&
      engine_->RestartFromCheckpoint(p.id, retry_step).ok()) {
    // Checkpoint resume: the same JobId re-enters the waiting queue and picks up from
    // its last iteration boundary instead of recomputing from scratch.
    report->recovered_jobs += 1;
  } else {
    // No restart point (checkpointing off, or the job died before its first boundary):
    // resubmit the representative request as a fresh job.
    const ServiceRequest& req = trace[p.rep_index];
    LtpEngine::JobHandle handle =
        engine_->SubmitAt(MakeProgram(req.program, req.source, options_.k), retry_step);
    p.id = handle.id();
    for (size_t index : p.request_indices) {
      report->outcomes[index].job = p.id;
    }
    report->submitted_jobs += 1;
    report->retried_jobs += 1;
  }
  if (options_.deadline_steps > 0) {
    // The retry gets a fresh queue-wait deadline from its new arrival; the original
    // deadline already did its job when the first attempt was aborted or shed.
    p.deadline_step = retry_step + options_.deadline_steps;
    engine_->MutableStats(p.id).deadline_step = p.deadline_step;
  }
  if (options_.coalesce) {
    table_.Register(p.key, p.id);  // Future identical requests fan in onto the retry.
  }
}

ServiceReport ServiceDriver::Run(const std::vector<ServiceRequest>& trace) {
  // The driver owns the engine's Step() loop for the whole replay — this thread IS the
  // driver thread (docs/static_analysis.md).
  ScopedThreadRole role(g_driver_role);
  CGRAPH_CHECK(!ran_);
  ran_ = true;

  ServiceReport report;
  report.total_requests = trace.size();
  report.outcomes.resize(trace.size());

  WallTimer timer;
  size_t next = 0;
  while (true) {
    const uint64_t now = engine_->current_step();
    if (options_.deadline_steps > 0) {
      ShedExpired(trace, now, &report);
    }
    while (next < trace.size() && trace[next].arrival_step <= now) {
      AdmitRequest(trace, next, &report);
      ++next;
    }
    const bool progressed = engine_->Step();
    ReapFinished(trace, &report);
    if (!progressed) {
      if (next < trace.size()) {
        // The engine drained before the next arrival. Submit that one request at its
        // future step; the engine's idle fast-forward then jumps the clock straight to
        // it, and the admit loop above picks up anything else due at the same step.
        AdmitRequest(trace, next, &report);
        ++next;
        continue;
      }
      if (!pending_.empty()) {
        // The idle Step itself aborted a job (step-budget cancel before the pick) and
        // ReapFinished just retried it — the retry is waiting, so keep driving.
        continue;
      }
      break;
    }
  }
  CGRAPH_CHECK(pending_.empty());

  report.wall_seconds = timer.ElapsedSeconds();
  report.final_step = engine_->current_step();
  if (report.total_requests > 0) {
    report.dedup_ratio = static_cast<double>(report.coalesced_requests) /
                         static_cast<double>(report.total_requests);
  }
  report.p50_latency_steps = reservoir_.Percentile(50.0);
  report.p95_latency_steps = reservoir_.Percentile(95.0);
  report.p99_latency_steps = reservoir_.Percentile(99.0);
  report.mean_latency_steps = reservoir_.Mean();
  report.max_latency_steps = reservoir_.Max();
  if (report.wall_seconds > 0.0) {
    report.sustained_jobs_per_second =
        static_cast<double>(report.completed_requests) / report.wall_seconds;
  }
  return report;
}

}  // namespace cgraph
