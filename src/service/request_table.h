// Query fan-in: coalescing identical in-flight requests onto one shared job.
//
// Real graph-service workloads repeat themselves — the same PageRank over the same graph,
// the same shortest-path query from a popular source — and requests that arrive while an
// identical traversal is already queued or running can share its execution instead of
// competing with it for a slot. The RequestTable is that dedup index: it maps a request's
// *coalesce key* to the in-flight JobId computing the same answer. The daemon consults it
// at admission — a hit attaches the caller to the existing job (one execution, N
// completions, results multiplexed at readback), a miss submits a fresh job and registers
// it (src/service/daemon.h, docs/service.md#fan-in).
//
// The coalesce key is (program, normalized source). Source-free programs — pagerank, wcc,
// scc, kcore — normalize the source away entirely: "pagerank from vertex 3" and "pagerank
// from vertex 9" are the same computation, so they must coalesce. Source-rooted programs
// (sssp, bfs, ppr, khop) keep it: different roots are different answers.
//
// Correctness rests on one invariant: a key maps to a job only while that job can still
// deliver the shared answer — i.e. until it finishes or is shed. The daemon retires
// entries at exactly those two transitions; an attached caller therefore always observes
// the job's converged values (or its shed notice), never a stale slot reused by an
// unrelated job.

#ifndef SRC_SERVICE_REQUEST_TABLE_H_
#define SRC_SERVICE_REQUEST_TABLE_H_

#include <string>
#include <unordered_map>

#include "src/common/types.h"

namespace cgraph {

// The dedup key for a (program, source) request; see file comment for normalization.
std::string CoalesceKey(const std::string& program, VertexId source);

class RequestTable {
 public:
  // The in-flight job computing `key`, or kInvalidJob on miss.
  JobId Find(const std::string& key) const {
    auto it = in_flight_.find(key);
    return it == in_flight_.end() ? kInvalidJob : it->second;
  }

  // Registers `id` as the in-flight job for `key`. Pre: no live entry for `key` — the
  // daemon only submits a fresh job after a Find miss (or after the prior entry retired).
  void Register(const std::string& key, JobId id);

  // Drops the entry for `key` if it still points at `id` (no-op otherwise — the entry
  // may already belong to a successor job submitted after `id` retired).
  void Retire(const std::string& key, JobId id);

  size_t size() const { return in_flight_.size(); }

 private:
  std::unordered_map<std::string, JobId> in_flight_;
};

}  // namespace cgraph

#endif  // SRC_SERVICE_REQUEST_TABLE_H_
