// Arrival-trace generation for the graph-service daemon.
//
// A production graph service sees requests arrive over time — steady background load,
// bursts from batch clients, and day-scale rate swings — not a fixed batch handed over at
// startup. The daemon (src/service/daemon.h) replays such a trace through the engine's
// SubmitAt() arrival mechanism; this module generates the traces. Three canonical arrival
// patterns are built in:
//
//   uniform — one request every ~mean_gap steps with ±50% jitter; the steady-state
//             baseline where queueing is driven purely by service-time variance.
//   bursty  — requests arrive in back-to-back clumps of burst_size with long quiet gaps
//             between clumps (the gap scales with burst_size so the *average* rate matches
//             the uniform pattern at equal mean_gap); stresses queue bounds and deadlines.
//   diurnal — a sinusoidal rate profile: gaps shrink to ~½·mean_gap at peak and stretch
//             to ~2·mean_gap in the trough over a fixed period; stresses sustained
//             throughput under slow load swings.
//
// Everything is deterministic: a (pattern, seed, shape) tuple always produces the same
// trace, byte-for-byte, on every platform — the repo-wide reproducibility currency
// (src/common/prng.h). Traces can also be saved to / loaded from a plain-text file
// ("arrival_step program source" per line) so a run can be replayed exactly, bisected, or
// hand-edited.

#ifndef SRC_SERVICE_TRACE_GEN_H_
#define SRC_SERVICE_TRACE_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace cgraph {

// One service request: a named vertex program rooted at `source`, arriving at
// `arrival_step` scheduling steps into the run. For programs without a source concept
// (pagerank, wcc, scc, kcore) the source is carried but ignored by execution — and
// normalized away by the coalescer (src/service/request_table.h).
struct ServiceRequest {
  uint64_t arrival_step = 0;
  std::string program;
  VertexId source = 0;
};

enum class ArrivalPattern { kUniform, kBursty, kDiurnal };

// Parses "uniform" / "bursty" / "diurnal"; returns false on anything else.
bool ParseArrivalPattern(const std::string& name, ArrivalPattern* out);
const char* ArrivalPatternName(ArrivalPattern pattern);

struct TraceGenOptions {
  size_t num_requests = 1000;
  ArrivalPattern pattern = ArrivalPattern::kUniform;
  uint64_t seed = 42;
  // Target mean inter-arrival gap in scheduling steps (all patterns honor it on average).
  uint64_t mean_gap = 4;
  // Requests per clump under the bursty pattern (>= 1).
  uint64_t burst_size = 16;
  // Full period of the diurnal rate swing, in requests (>= 2).
  uint64_t diurnal_period = 256;
  // Programs drawn per request, uniformly (must be non-empty; repeats allowed to skew
  // the mix — {"pagerank","pagerank","sssp"} is 2:1).
  std::vector<std::string> programs;
  // Sources drawn per request, uniformly (must be non-empty). Small pools yield high
  // repeat probability, i.e. coalescing opportunity; see docs/service.md#fan-in.
  std::vector<VertexId> sources;
};

// Generates `num_requests` arrivals, sorted by (arrival_step, generation order).
// Deterministic in TraceGenOptions; no global state.
std::vector<ServiceRequest> GenerateArrivalTrace(const TraceGenOptions& options);

// Trace file round-trip: one "arrival_step program source" line per request.
// SaveTrace returns false when the file cannot be opened; LoadTrace returns false on
// open failure or any malformed line (out receives the requests parsed so far).
bool SaveTrace(const std::vector<ServiceRequest>& trace, const std::string& path);
bool LoadTrace(const std::string& path, std::vector<ServiceRequest>* out);

}  // namespace cgraph

#endif  // SRC_SERVICE_TRACE_GEN_H_
