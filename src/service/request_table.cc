#include "src/service/request_table.h"

#include "src/common/check.h"

namespace cgraph {

std::string CoalesceKey(const std::string& program, VertexId source) {
  // Programs whose answer does not depend on a root vertex: the source field is caller
  // noise, not computation identity. Keep this list in sync with MakeProgram
  // (src/algorithms/factory.h) — a source-rooted program listed here would wrongly merge
  // distinct queries; a source-free program missing here only costs dedup opportunity.
  const bool source_free = program == "pagerank" || program == "wcc" ||
                           program == "scc" || program == "kcore";
  if (source_free) {
    return program;
  }
  return program + '#' + std::to_string(source);
}

void RequestTable::Register(const std::string& key, JobId id) {
  auto [it, inserted] = in_flight_.emplace(key, id);
  CGRAPH_CHECK(inserted);
  (void)it;
}

void RequestTable::Retire(const std::string& key, JobId id) {
  auto it = in_flight_.find(key);
  if (it != in_flight_.end() && it->second == id) {
    in_flight_.erase(it);
  }
}

}  // namespace cgraph
