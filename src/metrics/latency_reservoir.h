// Streaming latency reservoir: p50/p95/p99 over an unbounded observation stream in
// bounded memory.
//
// The service daemon observes one latency per completed request — thousands per run,
// unbounded over a daemon's lifetime — and must report percentiles without retaining
// every sample. This is classic reservoir sampling (Vitter's Algorithm R) with a
// deterministic PRNG: while the stream fits in the reservoir the samples are exact and
// Percentile() is the exact nearest-rank statistic; past capacity each new observation
// replaces a uniformly-chosen slot with probability capacity/n, keeping the reservoir a
// uniform sample of everything seen. Determinism matters here more than in most
// reservoirs: a fixed seed makes percentile values reproducible across runs and worker
// counts, so CI can gate on them (docs/service.md#percentiles).
//
// Percentile definition: nearest-rank over the sorted reservoir — the smallest sample
// s[k] with k = ceil(p/100 * m) over m retained samples. No interpolation: a reported
// p99 is always a latency that actually occurred.

#ifndef SRC_METRICS_LATENCY_RESERVOIR_H_
#define SRC_METRICS_LATENCY_RESERVOIR_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/prng.h"

namespace cgraph {

class LatencyReservoir {
 public:
  // `capacity` samples are retained (must be > 0); `seed` fixes the replacement draws.
  explicit LatencyReservoir(size_t capacity, uint64_t seed = 42)
      : capacity_(capacity), rng_(seed) {
    CGRAPH_CHECK(capacity > 0);
    samples_.reserve(capacity);
  }

  void Add(double value) {
    ++count_;
    sum_ += value;
    max_ = count_ == 1 ? value : std::max(max_, value);
    if (samples_.size() < capacity_) {
      samples_.push_back(value);
      return;
    }
    // Algorithm R: the new value lands in a uniformly-chosen virtual slot of [0, n);
    // slots below capacity are real, the rest discard it. Every observation ends up
    // retained with probability capacity/n.
    const uint64_t slot = rng_.NextBounded(count_);
    if (slot < capacity_) {
      samples_[static_cast<size_t>(slot)] = value;
    }
  }

  // Total observations (not just retained samples).
  uint64_t count() const { return count_; }
  // Exact running mean / max over ALL observations, independent of sampling.
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  // Whether Percentile() is exact (the stream never exceeded the reservoir).
  bool exact() const { return count_ <= capacity_; }

  // Nearest-rank percentile over the retained samples; p in (0, 100]. 0 observations
  // reports 0.
  double Percentile(double p) const {
    if (samples_.empty()) {
      return 0.0;
    }
    CGRAPH_CHECK(p > 0.0 && p <= 100.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    return sorted[std::min(sorted.size(), std::max<size_t>(rank, 1)) - 1];
  }

 private:
  size_t capacity_;
  Xoshiro256 rng_;
  std::vector<double> samples_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cgraph

#endif  // SRC_METRICS_LATENCY_RESERVOIR_H_
