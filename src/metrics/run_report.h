// Per-job and per-run measurement containers produced by every executor.

#ifndef SRC_METRICS_RUN_REPORT_H_
#define SRC_METRICS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/cache_sim.h"
#include "src/cache/memory_hierarchy.h"
#include "src/metrics/cost_model.h"
#include "src/partition/partition_quality.h"

namespace cgraph {

struct JobStats {
  std::string job_name;
  uint64_t iterations = 0;
  uint64_t vertex_computes = 0;   // Vertices processed (Compute calls).
  uint64_t edge_traversals = 0;   // Scatter operations issued.
  uint64_t push_updates = 0;      // Mirror->master + master->mirror sync records.
  uint64_t compute_units = 0;     // Edge traversals + vertex computes + sync records.
  AccessCharge charge;            // Byte flows attributed to this job.
  double wall_seconds = 0.0;
  // Admission diagnostics (not part of the CSV schema): scheduling steps between the job
  // becoming runnable and its admission, and the overlap score the admission policy
  // assigned at admit time. admit_scored separates "scored zero" from "never scored":
  // it is false under FIFO and for *uncontended* admissions (a lone due candidate is
  // admitted without scoring — footprints are computed lazily, only for decisions with
  // competitors), where admit_overlap's 0 carries no information and aggregations must
  // skip the job. admit_predicted marks scores produced by the footprint-history
  // forecast (predict policy, program type with completed history) — predicted_overlap
  // then repeats the forecast value — rather than the initial-footprint snapshot.
  // admit_pool is the slot pool the job was placed into (0 unless
  // EngineOptions::slot_pools > 1).
  uint64_t wait_steps = 0;
  double admit_overlap = 0.0;
  double predicted_overlap = 0.0;
  bool admit_scored = false;
  bool admit_predicted = false;
  uint32_t admit_pool = 0;
  // Service-daemon diagnostics (not part of the CSV schema; see docs/service.md).
  // finish_step is the scheduling step at which the job completed (or was shed) —
  // completion_latency = finish_step - (arrival_step + wait is already folded in via the
  // caller's arrival). coalesced_callers counts *additional* requests multiplexed onto
  // this job by query fan-in (0 = sole caller). deadline_step is the absolute step after
  // which a still-waiting job may be shed (0 = no deadline). shed marks a job cancelled
  // while waiting: it never held a slot, never computed, and its zeros must not be
  // aggregated as real work.
  uint64_t finish_step = 0;
  uint32_t coalesced_callers = 0;
  uint64_t deadline_step = 0;
  bool shed = false;
  // Async-execution diagnostics (not part of the CSV schema; see
  // docs/execution_modes.md). async_execution marks jobs that actually ran under the
  // relaxed iteration model (mode async AND staleness > 0 AND program monotonic) — the
  // flag to check when asserting a job was, or was not, affected by --execution=async.
  // redrain_computes counts Compute calls issued by the trigger stage's intra-iteration
  // master re-drain (a subset of vertex_computes); deferred_pushes counts
  // master->mirror records withheld at deferred push boundaries by the staleness window
  // (each fresh master delta counts its mirror fan-out once, when it is folded into the
  // deferred window).
  bool async_execution = false;
  uint64_t redrain_computes = 0;
  uint64_t deferred_pushes = 0;
  // Robustness diagnostics (not part of the CSV schema; see docs/robustness.md).
  // failed marks a job retired through per-job failure isolation (stage error or injected
  // fault) — fail_message carries the Status that killed it; cancelled marks a mid-run
  // cancellation (Cancel(JobId) or a --job-step-budget expiry). Both are terminal the
  // same way shed is: the job holds no slot and FinalValues-readback is invalid for it.
  // recoveries counts checkpoint restarts this job has been through (a restored job's
  // other counters resume from the checkpoint snapshot, so a recovered run reports the
  // same compute totals as an undisturbed one). checkpoints_taken / checkpoint_bytes
  // account the snapshot work — checkpoints add no hierarchy charge (modeled CSVs stay
  // byte-identical with checkpointing on), so their modeled cost is derived from
  // checkpoint_bytes at the cost model's memory-byte rate instead.
  bool failed = false;
  bool cancelled = false;
  uint32_t recoveries = 0;
  std::string fail_message;
  uint64_t checkpoints_taken = 0;
  uint64_t checkpoint_bytes = 0;

  double ModeledComputeTime(const CostModel& model, uint32_t workers) const {
    return model.ComputeCost(compute_units) / std::max<uint32_t>(1, workers);
  }
  double ModeledAccessTime(const CostModel& model, uint32_t workers) const {
    const uint32_t channels =
        std::max<uint32_t>(1, std::min(workers, model.bandwidth_channels));
    return model.AccessCost(charge) / channels;
  }
  double ModeledTime(const CostModel& model, uint32_t workers) const {
    return ModeledComputeTime(model, workers) + ModeledAccessTime(model, workers);
  }
};

struct RunReport {
  std::string executor_name;
  uint32_t workers = 1;
  std::vector<JobStats> jobs;
  CacheStats cache;
  MemoryStats memory;
  double wall_seconds = 0.0;
  // Layout-quality record of the graph the run executed on (copied from
  // PartitionedGraph::quality() by Report(); not part of the CSV schema — surfaced by
  // the CLI's `partition:` summary line and the bench's `partition` JSON section).
  PartitionQuality partition;

  uint64_t TotalComputeUnits() const {
    uint64_t total = 0;
    for (const auto& j : jobs) {
      total += j.compute_units;
    }
    return total;
  }

  AccessCharge TotalCharge() const {
    AccessCharge total;
    for (const auto& j : jobs) {
      total += j.charge;
    }
    return total;
  }

  // Modeled makespan of the whole run. A single job cannot hide its own data-access
  // latency behind its own compute (dependencies), but concurrent jobs overlap: while one
  // stalls on memory/disk, others compute. With n jobs, only ~1/n of the smaller
  // component remains unhidden — this is the paper's observation that the sequential way
  // leaves the CPU underutilized while the concurrent way overlaps stalls with work.
  double ModeledMakespan(const CostModel& model) const {
    const uint32_t w = std::max<uint32_t>(1, workers);
    const uint32_t channels = std::max<uint32_t>(1, std::min(w, model.bandwidth_channels));
    const double compute = model.ComputeCost(TotalComputeUnits()) / w;
    const double access = model.AccessCost(TotalCharge()) / channels;
    const double n = static_cast<double>(std::max<size_t>(1, jobs.size()));
    return std::max(compute, access) + std::min(compute, access) / n;
  }

  // Fraction of the makespan the cores spend computing — the paper's "utilization ratio
  // of CPU" (Fig. 15): long unhidden data stalls leave cores idle.
  double CpuUtilization(const CostModel& model) const {
    const double compute = model.ComputeCost(TotalComputeUnits()) / std::max<uint32_t>(1, workers);
    const double total = ModeledMakespan(model);
    return total <= 0.0 ? 1.0 : compute / total;
  }

  // Total bytes moved below the LLC (memory + disk), the basis of Fig. 19's
  // "spared accesses" ratio.
  uint64_t BytesBelowCache() const {
    const AccessCharge total = TotalCharge();
    return total.mem_bytes + total.disk_bytes;
  }
};

}  // namespace cgraph

#endif  // SRC_METRICS_RUN_REPORT_H_
