// Modeled-time cost model.
//
// Wall-clock on a shared machine is noisy, and the baselines are behavioural models rather
// than the authors' binaries, so every figure reports *modeled time*: a deterministic
// linear combination of compute work and the byte flows measured by the cache/memory
// simulation. Only relative magnitudes matter; the default coefficients approximate a
// cache-hit : memory : disk cost ratio of 1 : 25 : 250 per byte, with one compute unit
// (one edge relaxation) costing about one hit-byte. Access work is parallelized only up to
// `bandwidth_channels` (memory-bus saturation), while compute parallelizes up to the
// worker count — which is what makes data-heavy systems stop scaling in Fig. 14.

#ifndef SRC_METRICS_COST_MODEL_H_
#define SRC_METRICS_COST_MODEL_H_

#include <algorithm>
#include <cstdint>

#include "src/cache/memory_hierarchy.h"

namespace cgraph {

struct CostModel {
  // One compute unit = one edge relaxation or vertex update: a handful of arithmetic ops,
  // a CAS, and (already-cached) reads, worth roughly sixteen memory bytes of time.
  double cost_per_compute_unit = 8.0;
  double cost_per_hit_byte = 0.02;
  double cost_per_mem_byte = 0.5;
  // Disk streaming is sequential and prefetched in the modeled systems (CLIP, Nxgraph,
  // GraphChi-lineage engines), so its per-byte cost is closer to memory than a random-IO
  // figure would suggest.
  double cost_per_disk_byte = 1.5;
  uint32_t bandwidth_channels = 4;

  double ComputeCost(uint64_t compute_units) const {
    return static_cast<double>(compute_units) * cost_per_compute_unit;
  }

  double AccessCost(const AccessCharge& charge) const {
    return static_cast<double>(charge.hit_bytes) * cost_per_hit_byte +
           static_cast<double>(charge.mem_bytes) * cost_per_mem_byte +
           static_cast<double>(charge.disk_bytes) * cost_per_disk_byte;
  }

  // Modeled makespan with `workers` cores: compute scales with cores, access only up to
  // the bandwidth saturation width.
  double ModeledTime(uint64_t compute_units, const AccessCharge& charge,
                     uint32_t workers) const {
    const uint32_t w = std::max<uint32_t>(1, workers);
    const uint32_t channels = std::max<uint32_t>(1, std::min(w, bandwidth_channels));
    return ComputeCost(compute_units) / w + AccessCost(charge) / channels;
  }
};

}  // namespace cgraph

#endif  // SRC_METRICS_COST_MODEL_H_
