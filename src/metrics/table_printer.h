// Fixed-width ASCII table printing for the benchmark harnesses, which regenerate the
// paper's tables and figure series as rows on stdout.

#ifndef SRC_METRICS_TABLE_PRINTER_H_
#define SRC_METRICS_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace cgraph {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds a row; cells beyond the header count are dropped, missing cells print empty.
  void AddRow(std::vector<std::string> cells);

  // Renders the table (header, separator, rows) to a string.
  std::string ToString() const;

  // Convenience: renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cgraph

#endif  // SRC_METRICS_TABLE_PRINTER_H_
