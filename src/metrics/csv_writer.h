// CSV serialization of run reports, for piping bench output into plotting scripts.

#ifndef SRC_METRICS_CSV_WRITER_H_
#define SRC_METRICS_CSV_WRITER_H_

#include <string>

#include "src/common/status.h"
#include "src/metrics/run_report.h"

namespace cgraph {

// One row per job plus a "total" row. Columns:
//   executor,job,iterations,vertex_computes,edge_traversals,push_updates,compute_units,
//   hit_bytes,mem_bytes,disk_bytes,modeled_compute,modeled_access,modeled_time,
//   wall_seconds
std::string RunReportToCsv(const RunReport& report, const CostModel& model);

// Writes the CSV (with header) to `path`.
Status WriteRunReportCsv(const RunReport& report, const CostModel& model,
                         const std::string& path);

}  // namespace cgraph

#endif  // SRC_METRICS_CSV_WRITER_H_
