#include "src/metrics/csv_writer.h"

#include <fstream>
#include <sstream>

namespace cgraph {
namespace {

void AppendJobRow(std::ostringstream& out, const std::string& executor, const JobStats& job,
                  const CostModel& model, uint32_t workers) {
  out << executor << ',' << job.job_name << ',' << job.iterations << ','
      << job.vertex_computes << ',' << job.edge_traversals << ',' << job.push_updates << ','
      << job.compute_units << ',' << job.charge.hit_bytes << ',' << job.charge.mem_bytes << ','
      << job.charge.disk_bytes << ',' << job.ModeledComputeTime(model, workers) << ','
      << job.ModeledAccessTime(model, workers) << ',' << job.ModeledTime(model, workers) << ','
      << job.wall_seconds << '\n';
}

}  // namespace

std::string RunReportToCsv(const RunReport& report, const CostModel& model) {
  std::ostringstream out;
  out << "executor,job,iterations,vertex_computes,edge_traversals,push_updates,"
         "compute_units,hit_bytes,mem_bytes,disk_bytes,modeled_compute,modeled_access,"
         "modeled_time,wall_seconds\n";
  for (const JobStats& job : report.jobs) {
    AppendJobRow(out, report.executor_name, job, model, report.workers);
  }
  JobStats total;
  total.job_name = "total";
  for (const JobStats& job : report.jobs) {
    total.iterations += job.iterations;
    total.vertex_computes += job.vertex_computes;
    total.edge_traversals += job.edge_traversals;
    total.push_updates += job.push_updates;
    total.compute_units += job.compute_units;
    total.charge += job.charge;
  }
  total.wall_seconds = report.wall_seconds;
  AppendJobRow(out, report.executor_name, total, model, report.workers);
  return out.str();
}

Status WriteRunReportCsv(const RunReport& report, const CostModel& model,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const std::string csv = RunReportToCsv(report, model);
  out.write(csv.data(), static_cast<std::streamsize>(csv.size()));
  out.flush();
  if (!out) {
    return Status::Internal("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace cgraph
