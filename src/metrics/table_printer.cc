#include "src/metrics/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace cgraph {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto append_row = [&](std::string& out, const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += "| ";
      out += cell;
      out.append(widths[c] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  append_row(out, headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) {
    append_row(out, row);
  }
  return out;
}

void TablePrinter::Print() const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

}  // namespace cgraph
