#include "src/partition/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"

namespace cgraph {
namespace {

// SplitMix-style avalanche so consecutive ids spread across partitions. Shared by the
// hash_source and degree strategies so their placements stay comparable.
uint32_t HashBucket(VertexId v, uint32_t num_parts) {
  uint64_t z = (static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<uint32_t>((z ^ (z >> 31)) % num_parts);
}

// Identity edge order, the starting point of every strategy's deterministic ordering.
std::vector<uint32_t> IotaOrder(uint64_t m) {
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  return order;
}

// Sorts an edge-index order by (src, dst), the canonical stream order. stable_sort so
// duplicate (src, dst) pairs keep their input order — part of the determinism contract.
void SortBySourceThenTarget(const EdgeList& edges, std::vector<uint32_t>* order) {
  const auto& es = edges.edges();
  std::stable_sort(order->begin(), order->end(), [&](uint32_t a, uint32_t b) {
    if (es[a].src != es[b].src) {
      return es[a].src < es[b].src;
    }
    return es[a].dst < es[b].dst;
  });
}

std::vector<uint32_t> ComputeTotalDegree(const EdgeList& edges) {
  std::vector<uint32_t> total_degree(edges.num_vertices(), 0);
  for (const Edge& e : edges.edges()) {
    ++total_degree[e.src];
    ++total_degree[e.dst];
  }
  return total_degree;
}

// Groups a streamed assignment into the plan representation: partition p receives its
// edges in stream order (a stable counting sort), which fixes the local-vertex
// interning order deterministically.
EdgePartitioning GroupByAssignment(const std::vector<uint32_t>& stream_order,
                                   const std::vector<PartitionId>& assignment,
                                   uint32_t num_parts) {
  EdgePartitioning plan;
  plan.boundaries.assign(num_parts + 1, 0);
  for (PartitionId p : assignment) {
    ++plan.boundaries[p + 1];
  }
  for (uint32_t p = 0; p < num_parts; ++p) {
    plan.boundaries[p + 1] += plan.boundaries[p];
  }
  plan.edge_order.resize(stream_order.size());
  std::vector<uint64_t> cursor(plan.boundaries.begin(), plan.boundaries.end() - 1);
  for (size_t i = 0; i < stream_order.size(); ++i) {
    plan.edge_order[cursor[assignment[i]]++] = stream_order[i];
  }
  return plan;
}

// The paper's Figure-4 scheme, moved verbatim out of the old inline builder: sort edges
// (core-subgraph edges leading when enabled, then by source/target) and cut the sorted
// order into equal-edge chunks. Byte-identical to the pre-partitioner-layer layout.
class EvenEdgePartitioner final : public Partitioner {
 public:
  PartitionerKind kind() const override { return PartitionerKind::kEvenEdge; }

  EdgePartitioning Partition(const EdgeList& edges, uint32_t num_parts,
                             const PartitionOptions& options) const override {
    const VertexId n = edges.num_vertices();
    const uint64_t m = edges.num_edges();
    EdgePartitioning plan;
    plan.edge_order = IotaOrder(m);
    if (options.core_subgraph && n > 0 && m > 0) {
      const std::vector<uint32_t> total_degree = ComputeTotalDegree(edges);
      const double avg = 2.0 * static_cast<double>(m) / static_cast<double>(n);
      const double threshold = options.core_degree_multiplier * avg;
      plan.is_core_vertex.resize(n, false);
      for (VertexId v = 0; v < n; ++v) {
        plan.is_core_vertex[v] = static_cast<double>(total_degree[v]) > threshold;
      }
      const auto& es = edges.edges();
      const auto& core = plan.is_core_vertex;
      std::stable_sort(plan.edge_order.begin(), plan.edge_order.end(),
                       [&](uint32_t a, uint32_t b) {
                         const bool core_a = core[es[a].src] && core[es[a].dst];
                         const bool core_b = core[es[b].src] && core[es[b].dst];
                         if (core_a != core_b) {
                           return core_a;  // Core edges first.
                         }
                         if (es[a].src != es[b].src) {
                           return es[a].src < es[b].src;
                         }
                         return es[a].dst < es[b].dst;
                       });
    } else {
      SortBySourceThenTarget(edges, &plan.edge_order);
    }
    plan.boundaries.resize(num_parts + 1);
    for (uint32_t p = 0; p <= num_parts; ++p) {
      plan.boundaries[p] = m * p / num_parts;  // Equal-edge chunks.
    }
    return plan;
  }

  uint64_t EdgeCapacity(uint64_t num_edges, uint32_t num_parts,
                        const PartitionOptions& options) const override {
    (void)options;
    // Equal chunks differ by at most one edge.
    return num_parts == 0 ? 0 : num_edges / num_parts + 1;
  }
};

// Hash of the source vertex (the historical EdgeAssignment::kHashBySource): keeps each
// vertex's out-edges together but inherits the power-law imbalance.
class HashSourcePartitioner final : public Partitioner {
 public:
  PartitionerKind kind() const override { return PartitionerKind::kHashSource; }

  EdgePartitioning Partition(const EdgeList& edges, uint32_t num_parts,
                             const PartitionOptions& options) const override {
    (void)options;
    const uint64_t m = edges.num_edges();
    const auto& es = edges.edges();
    EdgePartitioning plan;
    plan.edge_order = IotaOrder(m);
    std::stable_sort(plan.edge_order.begin(), plan.edge_order.end(),
                     [&](uint32_t a, uint32_t b) {
                       const uint32_t ba = HashBucket(es[a].src, num_parts);
                       const uint32_t bb = HashBucket(es[b].src, num_parts);
                       if (ba != bb) {
                         return ba < bb;
                       }
                       if (es[a].src != es[b].src) {
                         return es[a].src < es[b].src;
                       }
                       return es[a].dst < es[b].dst;
                     });
    plan.boundaries.assign(num_parts + 1, 0);
    for (uint64_t i = 0; i < m; ++i) {
      ++plan.boundaries[HashBucket(es[plan.edge_order[i]].src, num_parts) + 1];
    }
    for (uint32_t p = 0; p < num_parts; ++p) {
      plan.boundaries[p + 1] += plan.boundaries[p];
    }
    return plan;
  }
};

// Streaming greedy edge placement (the PowerGraph-style greedy vertex-cut): edges
// stream in canonical (src, dst) order; each scores every candidate partition by how
// many of its endpoints already have a replica there, tie-breaking toward the lighter
// partition, then the lower id. A per-partition capacity
// ceil(greedy_balance * m / num_parts) bounds imbalance — at every step at least one
// partition is below capacity (capacity * num_parts >= m > edges placed so far), so
// placement never gets stuck.
class GreedyPartitioner final : public Partitioner {
 public:
  PartitionerKind kind() const override { return PartitionerKind::kGreedy; }

  EdgePartitioning Partition(const EdgeList& edges, uint32_t num_parts,
                             const PartitionOptions& options) const override {
    const VertexId n = edges.num_vertices();
    const uint64_t m = edges.num_edges();
    const auto& es = edges.edges();
    std::vector<uint32_t> stream = IotaOrder(m);
    SortBySourceThenTarget(edges, &stream);

    const uint64_t capacity = EdgeCapacity(m, num_parts, options);
    const uint32_t words = (num_parts + 63) / 64;
    // resident[v * words + w] bit b set <=> vertex v already has a replica in
    // partition w * 64 + b.
    std::vector<uint64_t> resident(static_cast<uint64_t>(n) * words, 0);
    std::vector<uint64_t> occupied(num_parts, 0);
    std::vector<PartitionId> assignment(m, 0);

    auto resident_in = [&](VertexId v, uint32_t p) -> uint32_t {
      return (resident[static_cast<uint64_t>(v) * words + p / 64] >> (p % 64)) & 1u;
    };
    auto mark_resident = [&](VertexId v, uint32_t p) {
      resident[static_cast<uint64_t>(v) * words + p / 64] |= uint64_t{1} << (p % 64);
    };

    for (uint64_t i = 0; i < m; ++i) {
      const Edge& e = es[stream[i]];
      uint32_t best = num_parts;  // Sentinel: no candidate chosen yet.
      uint32_t best_score = 0;
      for (uint32_t p = 0; p < num_parts; ++p) {
        if (occupied[p] >= capacity) {
          continue;
        }
        const uint32_t score = resident_in(e.src, p) + resident_in(e.dst, p);
        if (best == num_parts || score > best_score ||
            (score == best_score && occupied[p] < occupied[best])) {
          best = p;
          best_score = score;
        }
      }
      CGRAPH_DCHECK(best < num_parts);
      assignment[i] = best;
      ++occupied[best];
      mark_resident(e.src, best);
      mark_resident(e.dst, best);
    }
    return GroupByAssignment(stream, assignment, num_parts);
  }

  uint64_t EdgeCapacity(uint64_t num_edges, uint32_t num_parts,
                        const PartitionOptions& options) const override {
    if (num_parts == 0) {
      return 0;
    }
    const double per_part = options.greedy_balance * static_cast<double>(num_edges) /
                            static_cast<double>(num_parts);
    return std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(per_part)));
  }
};

// Degree-aware placement (degree-based hashing): every edge follows its
// lower-total-degree endpoint. Low-degree vertices keep all their edges in one
// partition (they never replicate — locality packing), while hub vertices, whose
// mirrors are amortized over many edges, are the only ones that spread. Hub-hub edges
// hash by the smaller of the two hubs, which spreads the heaviest masters' edge load
// across the hash range first.
class DegreePartitioner final : public Partitioner {
 public:
  PartitionerKind kind() const override { return PartitionerKind::kDegree; }

  EdgePartitioning Partition(const EdgeList& edges, uint32_t num_parts,
                             const PartitionOptions& options) const override {
    (void)options;
    const uint64_t m = edges.num_edges();
    const auto& es = edges.edges();
    const std::vector<uint32_t> total_degree = ComputeTotalDegree(edges);
    std::vector<uint32_t> stream = IotaOrder(m);
    SortBySourceThenTarget(edges, &stream);
    std::vector<PartitionId> assignment(m, 0);
    for (uint64_t i = 0; i < m; ++i) {
      const Edge& e = es[stream[i]];
      // Ties pick the source so self-loops and equal-degree pairs stay deterministic.
      const VertexId pivot = total_degree[e.src] <= total_degree[e.dst] ? e.src : e.dst;
      assignment[i] = HashBucket(pivot, num_parts);
    }
    return GroupByAssignment(stream, assignment, num_parts);
  }
};

}  // namespace

std::unique_ptr<Partitioner> MakePartitioner(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kHashSource:
      return std::make_unique<HashSourcePartitioner>();
    case PartitionerKind::kGreedy:
      return std::make_unique<GreedyPartitioner>();
    case PartitionerKind::kDegree:
      return std::make_unique<DegreePartitioner>();
    case PartitionerKind::kEvenEdge:
    default:
      return std::make_unique<EvenEdgePartitioner>();
  }
}

}  // namespace cgraph
