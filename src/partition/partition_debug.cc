#include "src/partition/partition_debug.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>

#include "src/partition/partition_quality.h"

namespace cgraph {
namespace {

// Keep failure output readable: after this many messages the checker stops collecting
// (a broken layout tends to violate the same invariant thousands of times).
constexpr size_t kMaxIssues = 32;

void Add(std::vector<std::string>* issues, std::string message) {
  if (issues->size() < kMaxIssues) {
    issues->push_back(std::move(message));
  }
}

// (src, dst, weight-bits) triple for multiset comparison; bit-exact on weights.
using EdgeKey = std::tuple<VertexId, VertexId, uint32_t>;

uint32_t WeightBits(Weight w) {
  uint32_t bits = 0;
  static_assert(sizeof(Weight) == sizeof(uint32_t));
  std::memcpy(&bits, &w, sizeof(bits));
  return bits;
}

bool NearlyEqual(double a, double b) { return std::fabs(a - b) <= 1e-9; }

}  // namespace

std::vector<std::string> CheckPartitionInvariants(const EdgeList& edges,
                                                  const PartitionedGraph& graph,
                                                  uint64_t max_edges_per_partition) {
  std::vector<std::string> issues;
  const VertexId n = graph.num_vertices();

  if (graph.num_vertices() != edges.num_vertices()) {
    Add(&issues, "vertex count mismatch between graph and edge list");
  }
  if (graph.num_edges() != edges.num_edges()) {
    Add(&issues, "edge count mismatch between graph and edge list");
  }

  // --- Every edge assigned exactly once, weights preserved, in-CSR consistent. ---
  std::vector<EdgeKey> expected;
  expected.reserve(edges.num_edges());
  for (const Edge& e : edges.edges()) {
    expected.emplace_back(e.src, e.dst, WeightBits(e.weight));
  }
  std::vector<EdgeKey> actual;
  actual.reserve(edges.num_edges());
  for (const GraphPartition& part : graph.partitions()) {
    uint64_t in_edges = 0;
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      const auto targets = part.out_neighbors(v);
      const auto weights = part.out_weights(v);
      for (size_t i = 0; i < targets.size(); ++i) {
        const LocalVertexId t = targets[i];
        if (t >= part.num_local_vertices()) {
          Add(&issues, "partition " + std::to_string(part.id()) +
                           ": out-edge target local id out of range");
          continue;
        }
        actual.emplace_back(part.vertex(v).global_id, part.vertex(t).global_id,
                            WeightBits(weights[i]));
      }
      in_edges += part.in_neighbors(v).size();
    }
    if (in_edges != part.num_local_edges()) {
      Add(&issues, "partition " + std::to_string(part.id()) +
                       ": in-CSR edge count != out-CSR edge count");
    }
    if (max_edges_per_partition > 0 && part.num_local_edges() > max_edges_per_partition) {
      Add(&issues, "partition " + std::to_string(part.id()) + ": " +
                       std::to_string(part.num_local_edges()) +
                       " edges exceed the strategy capacity bound " +
                       std::to_string(max_edges_per_partition));
    }
  }
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  if (expected != actual) {
    Add(&issues, "edge multiset mismatch: partitions do not hold exactly the input edges");
  }

  // --- Exactly one master per vertex; replica metadata agrees with master_of. ---
  std::vector<uint32_t> master_count(n, 0);
  std::vector<uint32_t> replica_count(n, 0);
  for (const GraphPartition& part : graph.partitions()) {
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      const LocalVertexInfo& info = part.vertex(v);
      if (info.global_id >= n) {
        Add(&issues, "partition " + std::to_string(part.id()) +
                         ": local vertex has out-of-range global id");
        continue;
      }
      ++replica_count[info.global_id];
      const ReplicaRef master = graph.master_of(info.global_id);
      if (info.master_partition != master.partition || info.master_local != master.local) {
        Add(&issues, "vertex " + std::to_string(info.global_id) +
                         ": replica's master location disagrees with master_of()");
      }
      if (info.is_master) {
        ++master_count[info.global_id];
        if (master.partition != part.id() || master.local != v) {
          Add(&issues, "vertex " + std::to_string(info.global_id) +
                           ": master flag set on a replica master_of() does not name");
        }
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (master_count[v] != 1) {
      Add(&issues, "vertex " + std::to_string(v) + ": " + std::to_string(master_count[v]) +
                       " master replicas (want exactly 1)");
    }
    if (replica_count[v] == 0) {
      Add(&issues, "vertex " + std::to_string(v) + ": no replica in any partition");
    }
  }

  // --- Mirror wiring: mirrors_of lists exactly the non-master replicas; the derived
  // index triple is a disjoint ascending cover consistent with num_mirror_refs. ---
  for (const GraphPartition& part : graph.partitions()) {
    uint64_t mirror_ref_total = 0;
    std::vector<uint8_t> covered(part.num_local_vertices(), 0);
    auto cover = [&](std::span<const LocalVertexId> locals, const char* label) {
      LocalVertexId prev = 0;
      bool first = true;
      for (LocalVertexId v : locals) {
        if (v >= part.num_local_vertices() || (!first && v <= prev)) {
          Add(&issues, "partition " + std::to_string(part.id()) + ": " + label +
                           " not ascending / out of range");
          return;
        }
        if (covered[v]++) {
          Add(&issues, "partition " + std::to_string(part.id()) + ": local vertex " +
                           std::to_string(v) + " in more than one derived index");
        }
        prev = v;
        first = false;
      }
    };
    cover(part.mirror_locals(), "mirror_locals");
    cover(part.replicated_masters(), "replicated_masters");
    cover(part.interior_locals(), "interior_locals");
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      if (!covered[v]) {
        Add(&issues, "partition " + std::to_string(part.id()) + ": local vertex " +
                         std::to_string(v) + " missing from the derived index triple");
      }
      const LocalVertexInfo& info = part.vertex(v);
      const auto mirrors = part.mirrors_of(v);
      mirror_ref_total += mirrors.size();
      if (!info.is_master) {
        if (!mirrors.empty()) {
          Add(&issues, "partition " + std::to_string(part.id()) +
                           ": non-master local vertex has a mirror list");
        }
        continue;
      }
      // The master's mirror list must be exactly this vertex's other replicas.
      if (info.global_id < n &&
          mirrors.size() + 1 != replica_count[info.global_id]) {
        Add(&issues, "vertex " + std::to_string(info.global_id) + ": mirror list size " +
                         std::to_string(mirrors.size()) + " != replicas - 1");
      }
      for (const ReplicaRef& ref : mirrors) {
        if (ref.partition >= graph.num_partitions() ||
            ref.local >= graph.partition(ref.partition).num_local_vertices() ||
            graph.partition(ref.partition).vertex(ref.local).global_id != info.global_id ||
            graph.partition(ref.partition).vertex(ref.local).is_master) {
          Add(&issues, "vertex " + std::to_string(info.global_id) +
                           ": mirror ref does not name a non-master replica of it");
        }
      }
      const bool replicated = !mirrors.empty();
      const auto& rm = part.replicated_masters();
      const auto& il = part.interior_locals();
      const bool in_rm = std::binary_search(rm.begin(), rm.end(), v);
      const bool in_il = std::binary_search(il.begin(), il.end(), v);
      if (replicated != in_rm || replicated == in_il) {
        Add(&issues, "partition " + std::to_string(part.id()) + ": local vertex " +
                         std::to_string(v) + " classified into the wrong derived index");
      }
    }
    if (mirror_ref_total != part.num_mirror_refs()) {
      Add(&issues, "partition " + std::to_string(part.id()) +
                       ": num_mirror_refs() != sum of mirrors_of() sizes");
    }
  }

  // --- Stored quality record matches a recomputation from the layout. ---
  const PartitionQuality recomputed =
      ComputePartitionQuality(graph, graph.quality().partitioner);
  const PartitionQuality& stored = graph.quality();
  if (!NearlyEqual(stored.edge_cut_fraction, recomputed.edge_cut_fraction) ||
      !NearlyEqual(stored.replication_factor, recomputed.replication_factor) ||
      stored.mirror_count != recomputed.mirror_count ||
      !NearlyEqual(stored.edge_balance, recomputed.edge_balance) ||
      !NearlyEqual(stored.vertex_balance, recomputed.vertex_balance)) {
    Add(&issues, "stored quality() record disagrees with recomputation from the layout");
  }

  return issues;
}

uint64_t PartitionLayoutDigest(const PartitionedGraph& graph) {
  // FNV-1a over every layout-determining field, in a fixed traversal order.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(graph.num_vertices());
  mix(graph.num_edges());
  mix(graph.num_partitions());
  for (const GraphPartition& part : graph.partitions()) {
    mix(part.num_local_vertices());
    mix(part.num_local_edges());
    mix(part.is_core() ? 1 : 0);
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      const LocalVertexInfo& info = part.vertex(v);
      mix(info.global_id);
      mix(info.master_partition);
      mix(info.master_local);
      mix(info.is_master ? 1 : 0);
      const auto targets = part.out_neighbors(v);
      const auto weights = part.out_weights(v);
      for (size_t i = 0; i < targets.size(); ++i) {
        mix(targets[i]);
        mix(WeightBits(weights[i]));
      }
      for (const ReplicaRef& ref : part.mirrors_of(v)) {
        mix(ref.partition);
        mix(ref.local);
      }
    }
  }
  return h;
}

}  // namespace cgraph
