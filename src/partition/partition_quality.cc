#include "src/partition/partition_quality.h"

#include <algorithm>

#include "src/partition/partitioned_graph.h"

namespace cgraph {

PartitionQuality ComputePartitionQuality(const PartitionedGraph& graph,
                                         PartitionerKind partitioner) {
  PartitionQuality q;
  q.partitioner = partitioner;
  const VertexId n = graph.num_vertices();
  const uint64_t m = graph.num_edges();
  const uint32_t num_parts = graph.num_partitions();

  uint64_t replicas = 0;
  uint64_t max_local_vertices = 0;
  uint64_t max_local_edges = 0;
  uint64_t cut_edges = 0;
  for (const GraphPartition& part : graph.partitions()) {
    replicas += part.num_local_vertices();
    max_local_vertices = std::max<uint64_t>(max_local_vertices, part.num_local_vertices());
    max_local_edges = std::max<uint64_t>(max_local_edges, part.num_local_edges());
    // Each edge lives in exactly one partition's out-CSR, so this sweep visits every
    // edge once. An edge is cut when its endpoints' *master* partitions differ — that
    // is what forces replica pairs to synchronize during Push.
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      const PartitionId src_master = part.vertex(v).master_partition;
      for (LocalVertexId t : part.out_neighbors(v)) {
        if (part.vertex(t).master_partition != src_master) {
          ++cut_edges;
        }
      }
    }
  }

  // Degenerate-case conventions (docs/partitioning.md): an empty graph is perfectly
  // uncut, unreplicated, and balanced.
  q.mirror_count = replicas - n;
  q.replication_factor =
      n == 0 ? 1.0 : static_cast<double>(replicas) / static_cast<double>(n);
  q.edge_cut_fraction =
      m == 0 ? 0.0 : static_cast<double>(cut_edges) / static_cast<double>(m);
  q.edge_balance = m == 0 ? 1.0
                          : static_cast<double>(max_local_edges) * num_parts /
                                static_cast<double>(m);
  q.vertex_balance = replicas == 0 ? 1.0
                                   : static_cast<double>(max_local_vertices) * num_parts /
                                         static_cast<double>(replicas);
  return q;
}

}  // namespace cgraph
