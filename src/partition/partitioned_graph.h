// Vertex-cut partitioned graph with master/mirror replicas.
//
// This realizes the storage layout of paper Figure 4: edges are evenly divided into
// same-sized partitions; a vertex appearing in several partitions has one *master* replica
// and mirrors elsewhere; each partition's item records the vertex id, its local edge list,
// the master flag, the master location, and per-edge information. Communication happens
// only when replicas synchronize (the Push stage), never while a partition is processed.

#ifndef SRC_PARTITION_PARTITIONED_GRAPH_H_
#define SRC_PARTITION_PARTITIONED_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/graph/edge_list.h"
#include "src/partition/partition_quality.h"

namespace cgraph {

class Partitioner;

// Location of a replica: (partition, local index inside that partition's tables).
struct ReplicaRef {
  PartitionId partition = kInvalidPartition;
  LocalVertexId local = 0;

  friend bool operator==(const ReplicaRef& a, const ReplicaRef& b) {
    return a.partition == b.partition && a.local == b.local;
  }
};

// Per-local-vertex metadata (paper Fig. 4(b): "Vertex ID | Edge List | Flag | Master
// Location | edge info"). The edge list itself lives in the partition's CSR arrays.
struct LocalVertexInfo {
  VertexId global_id = kInvalidVertex;
  PartitionId master_partition = kInvalidPartition;
  LocalVertexId master_local = 0;
  bool is_master = false;
  uint32_t global_out_degree = 0;  // Needed by PageRank's contribution division.
  uint32_t global_total_degree = 0;
  // Sum of all out-edge weights across every partition: weighted-diffusion programs must
  // normalize by this, not by the local share, or replicated vertices over-emit.
  float global_out_weight = 0.0f;
};

// One graph-structure partition: local-id CSR in both directions plus replica metadata.
class GraphPartition {
 public:
  PartitionId id() const { return id_; }
  bool is_core() const { return is_core_; }
  double average_degree() const { return average_degree_; }

  LocalVertexId num_local_vertices() const { return static_cast<LocalVertexId>(vertices_.size()); }
  uint64_t num_local_edges() const { return out_targets_.size(); }

  const LocalVertexInfo& vertex(LocalVertexId v) const { return vertices_[v]; }
  const std::vector<LocalVertexInfo>& vertices() const { return vertices_; }

  // Out-edges of local vertex v (targets are local ids in this partition).
  std::span<const LocalVertexId> out_neighbors(LocalVertexId v) const {
    return {out_targets_.data() + out_offsets_[v], out_offsets_[v + 1] - out_offsets_[v]};
  }
  std::span<const Weight> out_weights(LocalVertexId v) const {
    return {out_weights_.data() + out_offsets_[v], out_offsets_[v + 1] - out_offsets_[v]};
  }
  std::span<const LocalVertexId> in_neighbors(LocalVertexId v) const {
    return {in_targets_.data() + in_offsets_[v], in_offsets_[v + 1] - in_offsets_[v]};
  }
  std::span<const Weight> in_weights(LocalVertexId v) const {
    return {in_weights_.data() + in_offsets_[v], in_offsets_[v + 1] - in_offsets_[v]};
  }

  // Mirror replicas of local master v (empty for mirrors and unreplicated masters).
  std::span<const ReplicaRef> mirrors_of(LocalVertexId v) const {
    return {mirror_refs_.data() + mirror_offsets_[v], mirror_offsets_[v + 1] - mirror_offsets_[v]};
  }

  // Mirror index (built once by PartitionedGraphBuilder): the local ids that are mirror
  // replicas, ascending. The Push stage's mirror-delta collection walks exactly these
  // instead of filtering every local vertex.
  std::span<const LocalVertexId> mirror_locals() const { return mirror_locals_; }

  // The local ids that are masters with at least one mirror elsewhere, ascending — the
  // only vertices whose merged values the broadcast phase can need to re-send.
  std::span<const LocalVertexId> replicated_masters() const { return replicated_masters_; }

  // Interior vertices: masters with no replicas anywhere, ascending. Every contribution
  // such a vertex can ever receive is scattered within this partition, so the async
  // trigger stage may consume its delta_next mid-iteration without touching (or racing
  // with) replica synchronization.
  std::span<const LocalVertexId> interior_locals() const { return interior_locals_; }

  // Total mirror replicas of this partition's masters (== sum of mirrors_of() sizes);
  // bounds the mirror->master sync records this partition can receive in one iteration.
  uint64_t num_mirror_refs() const { return mirror_refs_.size(); }

  // Bytes this partition's structure occupies (vertex records + both CSR directions);
  // drives the cache/memory simulation.
  uint64_t structure_bytes() const { return structure_bytes_; }

  // Returns a copy with `num_rewires` out-edges re-pointed to pseudo-random local targets
  // (weights redrawn, in-CSR rebuilt). Vertex membership, master/mirror metadata, and the
  // edge count are preserved, so per-job private-table layouts stay valid across snapshot
  // versions — this is how SnapshotStore materializes a changed partition (section 3.2.1).
  GraphPartition RewireClone(uint64_t num_rewires, uint64_t seed) const;

 private:
  friend class PartitionedGraphBuilder;

  PartitionId id_ = kInvalidPartition;
  bool is_core_ = false;
  double average_degree_ = 0.0;  // D(P) in Eq. 1: mean global degree of local vertices.
  uint64_t structure_bytes_ = 0;

  std::vector<LocalVertexInfo> vertices_;
  std::vector<uint64_t> out_offsets_;
  std::vector<LocalVertexId> out_targets_;
  std::vector<Weight> out_weights_;
  std::vector<uint64_t> in_offsets_;
  std::vector<LocalVertexId> in_targets_;
  std::vector<Weight> in_weights_;
  std::vector<uint64_t> mirror_offsets_;
  std::vector<ReplicaRef> mirror_refs_;
  // Derived indices (not counted in structure_bytes_, which models the paper's layout).
  std::vector<LocalVertexId> mirror_locals_;
  std::vector<LocalVertexId> replicated_masters_;
  std::vector<LocalVertexId> interior_locals_;
};

// How edges are assigned to partitions.
enum class EdgeAssignment {
  // The paper's scheme: sort (optionally core-first) and cut into equal-edge chunks —
  // balanced by construction.
  kChunkedEvenEdges,
  // Hash of the source vertex: keeps each vertex's out-edges together (cheap, stream-
  // friendly) but inherits the power-law imbalance; provided as a comparison point for
  // the partitioning ablation.
  kHashBySource,
};

struct PartitionOptions {
  // Number of partitions (same-sized by edge count under kChunkedEvenEdges).
  uint32_t num_partitions = 8;
  EdgeAssignment assignment = EdgeAssignment::kChunkedEvenEdges;
  // Edge-placement strategy (CLI: --partitioner). Takes precedence over `assignment`
  // unless left at the default kEvenEdge while `assignment` selects kHashBySource, which
  // keeps the historical enum working for the partitioning ablation.
  PartitionerKind partitioner = PartitionerKind::kEvenEdge;
  // Core-subgraph partitioning (paper section 3.3): group edges between high-degree "core"
  // vertices into dedicated partitions so reloading hubs does not drag early-converged
  // low-degree vertices along. Only meaningful under the even_edge strategy.
  bool core_subgraph = true;
  // A vertex is core when its total degree exceeds multiplier * average total degree.
  double core_degree_multiplier = 8.0;
  // Greedy strategy imbalance budget: per-partition edge capacity is
  // ceil(greedy_balance * num_edges / num_partitions). Must be >= 1.0 or greedy
  // placement could run out of room.
  double greedy_balance = 1.05;
};

class PartitionedGraph {
 public:
  VertexId num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }
  uint32_t num_partitions() const { return static_cast<uint32_t>(partitions_.size()); }

  const GraphPartition& partition(PartitionId p) const { return partitions_[p]; }
  const std::vector<GraphPartition>& partitions() const { return partitions_; }

  // Master replica location of a global vertex (every vertex has exactly one master).
  ReplicaRef master_of(VertexId v) const { return masters_[v]; }

  // Sum over vertices of replica count / num_vertices (1.0 = no replication).
  double replication_factor() const;

  uint64_t total_structure_bytes() const;

  // Layout-quality indices measured once at build time (partition_quality.h). Records
  // which strategy produced this layout and what it cost in cut/replication/balance.
  const PartitionQuality& quality() const { return quality_; }

 private:
  friend class PartitionedGraphBuilder;

  VertexId num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  std::vector<GraphPartition> partitions_;
  std::vector<ReplicaRef> masters_;
  PartitionQuality quality_;
};

// Builds a PartitionedGraph from an edge list. Deterministic for fixed inputs/options.
class PartitionedGraphBuilder {
 public:
  // Resolves options.partitioner (and the legacy options.assignment) through
  // MakePartitioner and delegates to the explicit-strategy overload below.
  static PartitionedGraph Build(const EdgeList& edges, const PartitionOptions& options);

  // Builds with an explicit strategy: the partitioner produces the edge-placement plan;
  // the builder constructs CSRs, elects masters, wires the mirror indices, and records
  // quality indices — identically for every strategy. In debug builds the result is
  // checked against the shared invariant checker (partition_debug.h).
  static PartitionedGraph Build(const EdgeList& edges, const PartitionOptions& options,
                                const Partitioner& partitioner);
};

// Paper section 3.2.1 "Suitable Size of Graph Partition": the partition byte size P_g is
// the largest value with P_g + (P_g / s_g) * s_p * num_jobs + reserve <= cache_capacity.
// Returns the resulting number of partitions for a graph of `structure_bytes` total
// (at least 1).
uint32_t SuitablePartitionCount(uint64_t structure_bytes, uint64_t cache_capacity,
                                uint32_t num_jobs, double state_bytes_per_structure_byte,
                                uint64_t reserve_bytes);

}  // namespace cgraph

#endif  // SRC_PARTITION_PARTITIONED_GRAPH_H_
