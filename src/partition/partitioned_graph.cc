#include "src/partition/partitioned_graph.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "src/common/check.h"
#include "src/common/prng.h"
#include "src/partition/partition_debug.h"
#include "src/partition/partitioner.h"

namespace cgraph {

double PartitionedGraph::replication_factor() const {
  if (num_vertices_ == 0) {
    return 1.0;
  }
  uint64_t replicas = 0;
  for (const auto& p : partitions_) {
    replicas += p.num_local_vertices();
  }
  return static_cast<double>(replicas) / static_cast<double>(num_vertices_);
}

uint64_t PartitionedGraph::total_structure_bytes() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) {
    total += p.structure_bytes();
  }
  return total;
}

namespace {

// Per-vertex scratch used while choosing masters: the partition where the vertex has the
// most local edges wins (ties to the lowest partition id), which minimizes synchronization
// traffic from the busiest replica.
struct MasterChoice {
  PartitionId partition = kInvalidPartition;
  uint32_t local_edges = 0;
};

uint64_t ComputeStructureBytes(const GraphPartition& p) {
  // Vertex records + two CSR directions (targets + weights) + offsets + mirror refs.
  return p.num_local_vertices() * static_cast<uint64_t>(sizeof(LocalVertexInfo)) +
         2 * p.num_local_edges() * (sizeof(LocalVertexId) + sizeof(Weight)) +
         2 * (p.num_local_vertices() + 1ULL) * sizeof(uint64_t);
}

}  // namespace

GraphPartition GraphPartition::RewireClone(uint64_t num_rewires, uint64_t seed) const {
  GraphPartition clone = *this;
  const uint64_t m = clone.out_targets_.size();
  const LocalVertexId lv = clone.num_local_vertices();
  if (m == 0 || lv == 0) {
    return clone;
  }
  Xoshiro256 rng(seed);
  for (uint64_t r = 0; r < num_rewires; ++r) {
    const uint64_t e = rng.NextBounded(m);
    clone.out_targets_[e] = static_cast<LocalVertexId>(rng.NextBounded(lv));
    clone.out_weights_[e] = static_cast<Weight>(1.0 + rng.NextDouble() * 15.0);
  }
  // Rebuild the in-direction CSR from the mutated out-direction.
  std::fill(clone.in_offsets_.begin(), clone.in_offsets_.end(), 0);
  for (LocalVertexId v = 0; v < lv; ++v) {
    for (LocalVertexId t : clone.out_neighbors(v)) {
      ++clone.in_offsets_[t + 1];
    }
  }
  for (LocalVertexId v = 0; v < lv; ++v) {
    clone.in_offsets_[v + 1] += clone.in_offsets_[v];
  }
  std::vector<uint64_t> cursor(clone.in_offsets_.begin(), clone.in_offsets_.end() - 1);
  for (LocalVertexId v = 0; v < lv; ++v) {
    const auto targets = clone.out_neighbors(v);
    const auto weights = clone.out_weights(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      const uint64_t pos = cursor[targets[i]]++;
      clone.in_targets_[pos] = v;
      clone.in_weights_[pos] = weights[i];
    }
  }
  return clone;
}

PartitionedGraph PartitionedGraphBuilder::Build(const EdgeList& edges,
                                                const PartitionOptions& options) {
  // The legacy EdgeAssignment enum keeps working: kHashBySource selects the hash_source
  // strategy unless options.partitioner was set to something non-default explicitly.
  PartitionerKind kind = options.partitioner;
  if (kind == PartitionerKind::kEvenEdge &&
      options.assignment == EdgeAssignment::kHashBySource) {
    kind = PartitionerKind::kHashSource;
  }
  return Build(edges, options, *MakePartitioner(kind));
}

PartitionedGraph PartitionedGraphBuilder::Build(const EdgeList& edges,
                                                const PartitionOptions& options,
                                                const Partitioner& partitioner) {
  CGRAPH_CHECK(options.num_partitions > 0);
  CGRAPH_CHECK(options.greedy_balance >= 1.0);
  const VertexId n = edges.num_vertices();
  const uint64_t m = edges.num_edges();
  const uint32_t num_parts =
      m == 0 ? 1 : std::min<uint32_t>(options.num_partitions, static_cast<uint32_t>(m));

  // Global degrees (needed for PageRank and for core detection).
  std::vector<uint32_t> out_degree(n, 0);
  std::vector<uint32_t> total_degree(n, 0);
  std::vector<float> out_weight(n, 0.0f);
  for (const Edge& e : edges.edges()) {
    ++out_degree[e.src];
    ++total_degree[e.src];
    ++total_degree[e.dst];
    out_weight[e.src] += e.weight;
  }

  // Delegate edge placement to the strategy: partition p owns the edges
  // edges()[edge_order[i]] for i in [boundaries[p], boundaries[p+1]), in that order.
  EdgePartitioning plan = partitioner.Partition(edges, num_parts, options);
  const std::vector<uint32_t>& edge_order = plan.edge_order;
  const std::vector<uint64_t>& boundaries = plan.boundaries;
  const std::vector<bool>& is_core_vertex = plan.is_core_vertex;
  CGRAPH_CHECK(edge_order.size() == m);
  CGRAPH_CHECK(boundaries.size() == num_parts + 1ULL);
  CGRAPH_CHECK(boundaries.front() == 0 && boundaries.back() == m);
  for (uint32_t p = 0; p < num_parts; ++p) {
    CGRAPH_CHECK(boundaries[p] <= boundaries[p + 1]);
  }

  PartitionedGraph pg;
  pg.num_vertices_ = n;
  pg.num_edges_ = m;
  pg.partitions_.resize(num_parts);

  std::vector<MasterChoice> master_choice(n);
  // Global vertex -> local id map, reused per partition (reset via epoch stamps).
  std::vector<LocalVertexId> local_id(n, 0);
  std::vector<uint32_t> local_epoch(n, 0);
  uint32_t epoch = 0;

  for (uint32_t pid = 0; pid < num_parts; ++pid) {
    GraphPartition& part = pg.partitions_[pid];
    part.id_ = pid;
    const uint64_t begin = boundaries[pid];
    const uint64_t end = boundaries[pid + 1];
    ++epoch;

    // Pass 1: discover local vertices in first-appearance order.
    auto intern = [&](VertexId v) -> LocalVertexId {
      if (local_epoch[v] != epoch) {
        local_epoch[v] = epoch;
        local_id[v] = static_cast<LocalVertexId>(part.vertices_.size());
        LocalVertexInfo info;
        info.global_id = v;
        info.global_out_degree = out_degree[v];
        info.global_total_degree = total_degree[v];
        info.global_out_weight = out_weight[v];
        part.vertices_.push_back(info);
      }
      return local_id[v];
    };

    const auto& es = edges.edges();
    std::vector<std::pair<LocalVertexId, LocalVertexId>> local_edges;
    std::vector<Weight> local_weights;
    local_edges.reserve(end - begin);
    local_weights.reserve(end - begin);
    bool has_core_edge = false;
    for (uint64_t i = begin; i < end; ++i) {
      const Edge& e = es[edge_order[i]];
      local_edges.emplace_back(intern(e.src), intern(e.dst));
      local_weights.push_back(e.weight);
      if (!is_core_vertex.empty() && is_core_vertex[e.src] && is_core_vertex[e.dst]) {
        has_core_edge = true;
      }
    }
    part.is_core_ = has_core_edge;

    // Pass 2: build local out/in CSR.
    const LocalVertexId lv = part.num_local_vertices();
    part.out_offsets_.assign(lv + 1, 0);
    part.in_offsets_.assign(lv + 1, 0);
    for (const auto& [s, d] : local_edges) {
      ++part.out_offsets_[s + 1];
      ++part.in_offsets_[d + 1];
    }
    for (LocalVertexId v = 0; v < lv; ++v) {
      part.out_offsets_[v + 1] += part.out_offsets_[v];
      part.in_offsets_[v + 1] += part.in_offsets_[v];
    }
    part.out_targets_.resize(local_edges.size());
    part.out_weights_.resize(local_edges.size());
    part.in_targets_.resize(local_edges.size());
    part.in_weights_.resize(local_edges.size());
    std::vector<uint64_t> out_cursor(part.out_offsets_.begin(), part.out_offsets_.end() - 1);
    std::vector<uint64_t> in_cursor(part.in_offsets_.begin(), part.in_offsets_.end() - 1);
    for (size_t i = 0; i < local_edges.size(); ++i) {
      const auto [s, d] = local_edges[i];
      const uint64_t oi = out_cursor[s]++;
      part.out_targets_[oi] = d;
      part.out_weights_[oi] = local_weights[i];
      const uint64_t ii = in_cursor[d]++;
      part.in_targets_[ii] = s;
      part.in_weights_[ii] = local_weights[i];
    }

    // Master election bookkeeping and D(P).
    double degree_sum = 0.0;
    for (LocalVertexId v = 0; v < lv; ++v) {
      const VertexId gid = part.vertices_[v].global_id;
      const uint32_t local_deg = static_cast<uint32_t>(
          (part.out_offsets_[v + 1] - part.out_offsets_[v]) +
          (part.in_offsets_[v + 1] - part.in_offsets_[v]));
      MasterChoice& choice = master_choice[gid];
      if (choice.partition == kInvalidPartition || local_deg > choice.local_edges) {
        choice.partition = pid;
        choice.local_edges = local_deg;
      }
      degree_sum += part.vertices_[v].global_total_degree;
    }
    part.average_degree_ = lv == 0 ? 0.0 : degree_sum / lv;
  }

  // Isolated vertices (no incident edges anywhere) become edge-less masters distributed
  // round-robin so every vertex owns exactly one state slot.
  {
    uint32_t next = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (total_degree[v] == 0) {
        GraphPartition& part = pg.partitions_[next % num_parts];
        ++next;
        LocalVertexInfo info;
        info.global_id = v;
        part.vertices_.push_back(info);
        part.out_offsets_.push_back(part.out_offsets_.back());
        part.in_offsets_.push_back(part.in_offsets_.back());
        master_choice[v] = {part.id_, 0};
      }
    }
  }

  // Resolve masters: record (partition, local) of each vertex's master replica.
  pg.masters_.assign(n, ReplicaRef{});
  for (auto& part : pg.partitions_) {
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      LocalVertexInfo& info = part.vertices_[v];
      const MasterChoice& choice = master_choice[info.global_id];
      info.master_partition = choice.partition;
      info.is_master = choice.partition == part.id_;
      if (info.is_master) {
        pg.masters_[info.global_id] = ReplicaRef{part.id_, v};
      }
    }
  }
  // Second sweep: fill master_local now that every master's local index is known, and
  // gather mirror lists (master -> mirrors CSR) for the broadcast half of Push.
  std::vector<std::vector<ReplicaRef>> mirrors_by_master_partition(num_parts);
  for (auto& part : pg.partitions_) {
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      LocalVertexInfo& info = part.vertices_[v];
      info.master_local = pg.masters_[info.global_id].local;
      CGRAPH_DCHECK(pg.masters_[info.global_id].partition == info.master_partition);
    }
  }
  // Mirror CSR per partition: for each master local vertex, the replicas elsewhere.
  {
    // Collect mirrors grouped by (master partition, master local).
    std::vector<std::vector<std::pair<LocalVertexId, ReplicaRef>>> grouped(num_parts);
    for (const auto& part : pg.partitions_) {
      for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
        const LocalVertexInfo& info = part.vertex(v);
        if (!info.is_master) {
          grouped[info.master_partition].push_back({info.master_local, ReplicaRef{part.id(), v}});
        }
      }
    }
    for (uint32_t pid = 0; pid < num_parts; ++pid) {
      GraphPartition& part = pg.partitions_[pid];
      auto& items = grouped[pid];
      std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) {
          return a.first < b.first;
        }
        return a.second.partition < b.second.partition;
      });
      part.mirror_offsets_.assign(part.num_local_vertices() + 1, 0);
      for (const auto& [master_local, ref] : items) {
        ++part.mirror_offsets_[master_local + 1];
      }
      for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
        part.mirror_offsets_[v + 1] += part.mirror_offsets_[v];
      }
      part.mirror_refs_.resize(items.size());
      std::vector<uint64_t> cursor(part.mirror_offsets_.begin(), part.mirror_offsets_.end() - 1);
      for (const auto& [master_local, ref] : items) {
        part.mirror_refs_[cursor[master_local]++] = ref;
      }
      part.structure_bytes_ = ComputeStructureBytes(part);

      // Mirror index: the sync-only vertex sets, ascending, so the Push stage sweeps
      // replicas instead of every local vertex.
      for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
        if (!part.vertices_[v].is_master) {
          part.mirror_locals_.push_back(v);
        } else if (part.mirror_offsets_[v + 1] > part.mirror_offsets_[v]) {
          part.replicated_masters_.push_back(v);
        } else {
          part.interior_locals_.push_back(v);
        }
      }
    }
  }

  pg.quality_ = ComputePartitionQuality(pg, partitioner.kind());

#ifndef NDEBUG
  // Post-conditions, via the same invariant checker the partitioner_test sweep uses.
  // Compiled out of release bench builds; CGRAPH_DCHECK-style cost model.
  const std::vector<std::string> issues = CheckPartitionInvariants(
      edges, pg, partitioner.EdgeCapacity(m, num_parts, options));
  for (const std::string& issue : issues) {
    std::fprintf(stderr, "partition invariant violated: %s\n", issue.c_str());
  }
  CGRAPH_CHECK(issues.empty());
#endif

  return pg;
}

uint32_t SuitablePartitionCount(uint64_t structure_bytes, uint64_t cache_capacity,
                                uint32_t num_jobs, double state_bytes_per_structure_byte,
                                uint64_t reserve_bytes) {
  CGRAPH_CHECK(cache_capacity > reserve_bytes);
  const double usable = static_cast<double>(cache_capacity - reserve_bytes);
  // P_g * (1 + ratio * jobs) <= usable  =>  P_g <= usable / (1 + ratio * jobs).
  const double denom = 1.0 + state_bytes_per_structure_byte * std::max<uint32_t>(1, num_jobs);
  const double pg_bytes = usable / denom;
  if (pg_bytes <= 0.0 || structure_bytes == 0) {
    return 1;
  }
  const double count = static_cast<double>(structure_bytes) / pg_bytes;
  return std::max<uint32_t>(1, static_cast<uint32_t>(std::ceil(count)));
}

}  // namespace cgraph
