// Shared partition-layout invariant checker (docs/partitioning.md).
//
// Used in two places so the builder and the tests can never drift apart: the
// PartitionedGraphBuilder post-condition check (debug builds) and the partitioner_test
// property sweep both call CheckPartitionInvariants on every built layout.

#ifndef SRC_PARTITION_PARTITION_DEBUG_H_
#define SRC_PARTITION_PARTITION_DEBUG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/edge_list.h"
#include "src/partition/partitioned_graph.h"

namespace cgraph {

// Verifies every structural invariant a vertex-cut layout must satisfy, returning one
// human-readable message per violation (empty = layout is sound):
//   - every input edge appears in exactly one partition's CSR (same multiset, weights
//     included), and the in-CSR mirrors the out-CSR;
//   - every vertex has exactly one master replica, and each local vertex's
//     master_partition / master_local / is_master agree with PartitionedGraph::master_of;
//   - mirrors_of(master) lists exactly that vertex's non-master replicas, and the
//     mirror_locals / replicated_masters / interior_locals index triple is a disjoint,
//     ascending cover of the partition's local vertices consistent with num_mirror_refs;
//   - the stored quality() record matches a recomputation from the layout;
//   - when max_edges_per_partition > 0 (the strategy's EdgeCapacity bound), no
//     partition holds more edges than that.
std::vector<std::string> CheckPartitionInvariants(const EdgeList& edges,
                                                  const PartitionedGraph& graph,
                                                  uint64_t max_edges_per_partition = 0);

// Order-sensitive digest of the complete layout (vertex tables, both CSR directions,
// mirror wiring). Two builds are byte-identical in layout iff their digests match —
// the determinism sweep's equality primitive.
uint64_t PartitionLayoutDigest(const PartitionedGraph& graph);

}  // namespace cgraph

#endif  // SRC_PARTITION_PARTITION_DEBUG_H_
