// Partition-quality indices and the partitioner-strategy enum (docs/partitioning.md).
//
// Kept free of heavy includes: both the partition layer and the metrics layer
// (RunReport) embed these types, so this header is the seam between "how the graph was
// laid out" and "what a run reports about it".

#ifndef SRC_PARTITION_PARTITION_QUALITY_H_
#define SRC_PARTITION_PARTITION_QUALITY_H_

#include <cstdint>
#include <string_view>

namespace cgraph {

class PartitionedGraph;

// Which edge-placement strategy PartitionedGraphBuilder runs (CLI: --partitioner).
// All strategies are vertex-cut: every edge lives in exactly one partition and a vertex
// spanning several partitions is replicated (one master + mirrors). They differ only in
// *which* partition each edge is assigned to — and therefore in how much replication,
// cut, and imbalance the layout carries. See docs/partitioning.md for definitions.
enum class PartitionerKind : uint8_t {
  // The paper's Figure-4 scheme: sort edges (core-subgraph edges first when enabled,
  // then by source) and cut into equal-edge chunks. Balanced by construction; the
  // default, and byte-identical to the pre-partitioner-layer engine.
  kEvenEdge,
  // Hash of the source vertex: keeps each vertex's out-edges together but inherits the
  // power-law imbalance. The historical EdgeAssignment::kHashBySource comparison point.
  kHashSource,
  // Streaming greedy edge placement: each edge (in deterministic stream order) scores
  // candidate partitions by how many of its endpoints are already resident there,
  // breaking ties toward the lighter partition — replication-minimizing, bounded by a
  // per-partition edge capacity (PartitionOptions::greedy_balance).
  kGreedy,
  // Degree-aware placement: every edge follows its lower-total-degree endpoint (hashed),
  // so low-degree vertices keep all their edges local (they never replicate) while only
  // hub vertices — whose replication is amortized over many edges — spread mirrors.
  kDegree,
};

inline const char* PartitionerKindName(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kHashSource:
      return "hash_source";
    case PartitionerKind::kGreedy:
      return "greedy";
    case PartitionerKind::kDegree:
      return "degree";
    case PartitionerKind::kEvenEdge:
    default:
      return "even_edge";
  }
}

// Parses a CLI spelling of PartitionerKind. Returns false (leaving *out untouched) on an
// unknown name so callers can emit a usage error listing the valid values.
inline bool ParsePartitionerName(std::string_view name, PartitionerKind* out) {
  if (name == "even_edge") {
    *out = PartitionerKind::kEvenEdge;
    return true;
  }
  if (name == "hash_source") {
    *out = PartitionerKind::kHashSource;
    return true;
  }
  if (name == "greedy") {
    *out = PartitionerKind::kGreedy;
    return true;
  }
  if (name == "degree") {
    *out = PartitionerKind::kDegree;
    return true;
  }
  return false;
}

// Measured layout-quality indices, computed once at build time and carried by
// PartitionedGraph::quality() (and from there into Report() and BENCH_ltp.json).
// Formulas and degenerate-case conventions are specified in docs/partitioning.md:
//
//   edge_cut_fraction   fraction of edges whose endpoints' *master* partitions differ
//                       (0 when the graph has no edges). Every cut edge forces at least
//                       one replica pair to synchronize.
//   replication_factor  total replicas / vertices (1.0 = no replication; 1.0 for the
//                       empty graph). Push-sync cost is directly proportional to the
//                       mirror population this measures.
//   mirror_count        total non-master replicas (replicas - vertices).
//   edge_balance        max per-partition edges * partitions / total edges (>= 1.0;
//                       1.0 = perfectly even; 1.0 for the empty graph). The classic
//                       edge-partitioning load-balance index ("alpha").
//   vertex_balance      max per-partition local vertices * partitions / total replicas
//                       (>= 1.0; 1.0 when every partition holds the same number of
//                       replicas, and for the empty graph).
struct PartitionQuality {
  PartitionerKind partitioner = PartitionerKind::kEvenEdge;
  double edge_cut_fraction = 0.0;
  double replication_factor = 1.0;
  uint64_t mirror_count = 0;
  double edge_balance = 1.0;
  double vertex_balance = 1.0;
};

// Recomputes the indices from a built layout. PartitionedGraphBuilder calls this once
// per build; the invariant checker (partition_debug.h) calls it again to verify the
// stored quality record matches the layout it describes.
PartitionQuality ComputePartitionQuality(const PartitionedGraph& graph,
                                         PartitionerKind partitioner);

}  // namespace cgraph

#endif  // SRC_PARTITION_PARTITION_QUALITY_H_
