// The edge-placement seam of the partitioned-graph builder (docs/partitioning.md).
//
// A Partitioner decides which partition every edge lands in and in what order the
// edges of a partition are laid out (the order drives local-vertex interning, so it is
// part of the deterministic layout contract). PartitionedGraphBuilder consumes the
// resulting plan to build CSRs, elect masters, and wire the mirror indices — identically
// for every strategy. This is the seam later multi-NUMA / multi-node sharding plugs
// into: a placement policy only ever has to produce an EdgePartitioning.

#ifndef SRC_PARTITION_PARTITIONER_H_
#define SRC_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/partition/partition_quality.h"
#include "src/partition/partitioned_graph.h"

namespace cgraph {

// An edge-placement plan: partition p owns the edges edges()[edge_order[i]] for i in
// [boundaries[p], boundaries[p+1]), in that order. edge_order is a permutation of
// [0, num_edges); boundaries has num_parts + 1 entries, ascending, ending at num_edges.
// is_core_vertex is optional (empty unless the strategy computed core flags) and marks
// the vertices whose core-core edges the leading partitions group (paper section 3.3).
struct EdgePartitioning {
  std::vector<uint32_t> edge_order;
  std::vector<uint64_t> boundaries;
  std::vector<bool> is_core_vertex;
};

// Strategy interface. Implementations must be deterministic: the same edge list,
// partition count, and options always produce the identical plan (asserted by the
// partitioner_test determinism sweep).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual PartitionerKind kind() const = 0;
  std::string_view name() const { return PartitionerKindName(kind()); }

  // Produces the placement plan. `num_parts` is already clamped by the builder to
  // [1, max(1, num_edges)], so implementations never see more partitions than edges.
  virtual EdgePartitioning Partition(const EdgeList& edges, uint32_t num_parts,
                                     const PartitionOptions& options) const = 0;

  // Hard per-partition edge-count bound this strategy guarantees, or 0 when unbounded.
  // The builder's post-condition check (and the partitioner_test capacity sweep) assert
  // every partition respects a non-zero bound.
  virtual uint64_t EdgeCapacity(uint64_t num_edges, uint32_t num_parts,
                                const PartitionOptions& options) const {
    (void)num_edges;
    (void)num_parts;
    (void)options;
    return 0;
  }
};

// Factory for the built-in strategies (see PartitionerKind).
std::unique_ptr<Partitioner> MakePartitioner(PartitionerKind kind);

}  // namespace cgraph

#endif  // SRC_PARTITION_PARTITIONER_H_
