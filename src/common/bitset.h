// Runtime-sized bitset with fast population count, used for per-partition active-vertex
// masks and partition activity tracking.

#ifndef SRC_COMMON_BITSET_H_
#define SRC_COMMON_BITSET_H_

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/check.h"

namespace cgraph {

class DynamicBitset {
 public:
  // Returned by NextSetBit when no set bit remains.
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  DynamicBitset() = default;
  explicit DynamicBitset(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Resize(size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  bool Test(size_t i) const {
    CGRAPH_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void Set(size_t i) {
    CGRAPH_DCHECK(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Clear(size_t i) {
    CGRAPH_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  void ClearAll() {
    for (auto& w : words_) {
      w = 0;
    }
  }

  void SetAll() {
    for (auto& w : words_) {
      w = ~uint64_t{0};
    }
    TrimTail();
  }

  // Number of set bits.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t w : words_) {
      total += static_cast<size_t>(std::popcount(w));
    }
    return total;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) {
        return true;
      }
    }
    return false;
  }

  // In-place union with another bitset of identical size.
  void UnionWith(const DynamicBitset& other) {
    CGRAPH_CHECK_EQ(size_, other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

  // Raw 64-bit word view for word-at-a-time sweeps. Bits at positions >= size() in the
  // last word are guaranteed zero (Set is bounds-checked and SetAll trims the tail), so
  // scanners need no per-bit bounds test.
  std::span<const uint64_t> words() const { return words_; }

  // Number of 64-bit words backing the bitset.
  size_t num_words() const { return words_.size(); }

  // Index of the first set bit at position >= from, or kNpos when none exists. `from` may
  // equal size() (returns kNpos), which makes `for (i = NextSetBit(0); i != kNpos;
  // i = NextSetBit(i + 1))` a complete sparse iteration.
  size_t NextSetBit(size_t from) const {
    CGRAPH_DCHECK(from <= size_);
    size_t w = from >> 6;
    if (w >= words_.size()) {
      return kNpos;
    }
    // Mask off bits below `from` in the first candidate word.
    uint64_t bits = words_[w] & (~uint64_t{0} << (from & 63));
    while (bits == 0) {
      if (++w == words_.size()) {
        return kNpos;
      }
      bits = words_[w];
    }
    return (w << 6) + static_cast<size_t>(std::countr_zero(bits));
  }

  // Invokes fn(i) for every set bit i in ascending order, scanning 64 bits per word so
  // fully inactive words cost one load + compare.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    ForEachSetBitInWords(0, words_.size(), fn);
  }

  // Ascending sparse iteration restricted to words [word_begin, word_end), i.e. bit
  // positions [word_begin * 64, word_end * 64). This is the grain-claiming primitive of
  // the trigger stage: a word-aligned chunk can be swept without touching its neighbours.
  template <typename Fn>
  void ForEachSetBitInWords(size_t word_begin, size_t word_end, Fn&& fn) const {
    CGRAPH_DCHECK(word_end <= words_.size());
    for (size_t w = word_begin; w < word_end; ++w) {
      uint64_t bits = words_[w];
      const size_t base = w << 6;
      while (bits != 0) {
        fn(base + static_cast<size_t>(std::countr_zero(bits)));
        bits &= bits - 1;  // Clear the lowest set bit.
      }
    }
  }

  // Number of bits set in both this and other (sizes must match).
  size_t IntersectCount(const DynamicBitset& other) const {
    CGRAPH_CHECK_EQ(size_, other.size_);
    size_t total = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      total += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
    }
    return total;
  }

 private:
  // Zeroes the bits beyond size_ in the last word so Count() stays exact after SetAll().
  void TrimTail() {
    const size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cgraph

#endif  // SRC_COMMON_BITSET_H_
