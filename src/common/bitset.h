// Runtime-sized bitset with fast population count, used for per-partition active-vertex
// masks and partition activity tracking.

#ifndef SRC_COMMON_BITSET_H_
#define SRC_COMMON_BITSET_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace cgraph {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Resize(size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  bool Test(size_t i) const {
    CGRAPH_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void Set(size_t i) {
    CGRAPH_DCHECK(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Clear(size_t i) {
    CGRAPH_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  void ClearAll() {
    for (auto& w : words_) {
      w = 0;
    }
  }

  void SetAll() {
    for (auto& w : words_) {
      w = ~uint64_t{0};
    }
    TrimTail();
  }

  // Number of set bits.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t w : words_) {
      total += static_cast<size_t>(std::popcount(w));
    }
    return total;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) {
        return true;
      }
    }
    return false;
  }

  // In-place union with another bitset of identical size.
  void UnionWith(const DynamicBitset& other) {
    CGRAPH_CHECK_EQ(size_, other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

  // Number of bits set in both this and other (sizes must match).
  size_t IntersectCount(const DynamicBitset& other) const {
    CGRAPH_CHECK_EQ(size_, other.size_);
    size_t total = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      total += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
    }
    return total;
  }

 private:
  // Zeroes the bits beyond size_ in the last word so Count() stays exact after SetAll().
  void TrimTail() {
    const size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cgraph

#endif  // SRC_COMMON_BITSET_H_
