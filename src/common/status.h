// Lightweight error propagation without exceptions.
//
// Status carries an error code plus a human-readable message; Result<T> is Status-or-value.
// Used at system boundaries (file parsing, configuration validation); internal invariant
// violations use CGRAPH_CHECK.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace cgraph {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

// Returns a stable lowercase name for a status code ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or a non-ok Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` or `return status;`.
  Result(T value) : storage_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    CGRAPH_CHECK(!std::get<Status>(storage_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(storage_);
  }

  const T& value() const& {
    CGRAPH_CHECK(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    CGRAPH_CHECK(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    CGRAPH_CHECK(ok());
    return std::move(std::get<T>(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace cgraph

#endif  // SRC_COMMON_STATUS_H_
