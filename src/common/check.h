// Fatal assertion macros.
//
// CHECK* macros are always on and abort with a message; DCHECK* compile away in NDEBUG
// builds. These guard programmer errors (violated invariants); recoverable conditions use
// cgraph::Status from status.h instead.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace cgraph::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace cgraph::internal

#define CGRAPH_CHECK(expr)                                         \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::cgraph::internal::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                              \
  } while (false)

#define CGRAPH_CHECK_EQ(a, b) CGRAPH_CHECK((a) == (b))
#define CGRAPH_CHECK_NE(a, b) CGRAPH_CHECK((a) != (b))
#define CGRAPH_CHECK_LT(a, b) CGRAPH_CHECK((a) < (b))
#define CGRAPH_CHECK_LE(a, b) CGRAPH_CHECK((a) <= (b))
#define CGRAPH_CHECK_GT(a, b) CGRAPH_CHECK((a) > (b))
#define CGRAPH_CHECK_GE(a, b) CGRAPH_CHECK((a) >= (b))

#ifdef NDEBUG
#define CGRAPH_DCHECK(expr) \
  do {                      \
  } while (false)
#else
#define CGRAPH_DCHECK(expr) CGRAPH_CHECK(expr)
#endif

#endif  // SRC_COMMON_CHECK_H_
