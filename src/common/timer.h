// Wall-clock timing helper for benchmark harnesses.

#ifndef SRC_COMMON_TIMER_H_
#define SRC_COMMON_TIMER_H_

#include <chrono>

namespace cgraph {

// Measures elapsed wall time from construction or the last Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cgraph

#endif  // SRC_COMMON_TIMER_H_
