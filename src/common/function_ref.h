// Non-owning, trivially copyable reference to a callable — two words: an object pointer
// and an invoke thunk. Unlike std::function it never heap-allocates, which is what lets
// ThreadPool::RunBatch dispatch thousands of tasks per second without touching the
// allocator. The referenced callable must outlive every call through the FunctionRef
// (for RunBatch: until the batch completes).

#ifndef SRC_COMMON_FUNCTION_REF_H_
#define SRC_COMMON_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace cgraph {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() = default;

  // Binds any callable by reference. The callable is NOT copied.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor): mirrors std::function_ref.
      : object_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) const { return invoke_(object_, std::forward<Args>(args)...); }

 private:
  void* object_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

}  // namespace cgraph

#endif  // SRC_COMMON_FUNCTION_REF_H_
