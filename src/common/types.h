// Core scalar type aliases shared by every cgraph module.
//
// The library targets graphs with up to ~4 billion vertices; vertex and partition ids are
// therefore 32-bit, while anything that can exceed 2^32 (edge counts, byte totals, cost
// accumulators) is 64-bit.

#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace cgraph {

// Identifier of a vertex in the global (unpartitioned) graph.
using VertexId = uint32_t;

// Index of a vertex inside one partition's local tables.
using LocalVertexId = uint32_t;

// Identifier of a graph-structure partition in the global table.
using PartitionId = uint32_t;

// Identifier of a concurrent iterative graph-processing (CGP) job.
using JobId = uint32_t;

// Logical timestamp used to version graph snapshots (paper section 3.2.1).
using Timestamp = uint64_t;

// Edge weight. Single precision keeps structure partitions compact, mirroring how the paper
// separates small per-edge metadata from (double-precision) per-job vertex state.
using Weight = float;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr PartitionId kInvalidPartition = std::numeric_limits<PartitionId>::max();
inline constexpr JobId kInvalidJob = std::numeric_limits<JobId>::max();

// A directed, weighted edge in the global id space.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 1.0f;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
  }
};

}  // namespace cgraph

#endif  // SRC_COMMON_TYPES_H_
