// Deterministic fault-injection harness (docs/robustness.md).
//
// A FaultInjector holds a fixed plan of FaultSpecs — each "fire kind K at scheduling step
// S, optionally pinned to job J" — and the engine polls it at the handful of sites where a
// per-job failure can originate (stage errors, state corruption, mid-run cancellation).
// Every coordinate is in the repo's determinism currency (scheduling steps, job ids), so an
// injected failure reproduces bit-for-bit across runs, worker counts, and sanitizers:
// tests and CI can assert exact recovery outcomes instead of racing a timeout.
//
// The harness is compiled in always and zero-cost when unarmed: an engine with no specs
// pays one boolean load per poll site guard (`armed()`), nothing else. Specs fire at the
// *first* matching poll with step >= spec.step — ">=" rather than "==" because the exact
// steps at which a given job is polled depend on the schedule; pinning to "at or after S"
// is what stays robust when workloads shift.

#ifndef SRC_COMMON_FAULT_INJECTION_H_
#define SRC_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace cgraph {

// What the injected failure simulates. The first three are per-job stage errors surfaced
// as an engine Status (the paths real invariant violations take); kCorruptState scribbles
// garbage into the job's vertex states *before* failing it, so recovery tests prove a
// checkpoint restore discards the damage; kCancel exercises the mid-run cancellation path
// (the daemon's running-job deadline) rather than an error path.
enum class FaultKind : uint8_t {
  kNone = 0,
  kLoadError,      // Fails the job when the Load stage reaches it.
  kTriggerError,   // Fails the job after its partition trigger.
  kPushError,      // Fails the job at its iteration-boundary push.
  kCorruptState,   // Corrupts one vertex state, then fails the job.
  kCancel,         // Cancels the running job (simulated mid-run deadline expiry).
};

// CLI spelling of a kind ("load", "trigger", "push", "corrupt", "cancel").
const char* FaultKindName(FaultKind kind);

// One planned failure: fire `kind` at the first matching poll with step >= `step`,
// restricted to `job` when set (kInvalidJob = whichever matching job is polled first).
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  uint64_t step = 0;
  JobId job = kInvalidJob;
};

// Parses "KIND@STEP" or "KIND@STEP:JOB" (the --inject-fault grammar). Returns false,
// leaving *out untouched, on an unknown kind or malformed numbers so callers can emit a
// usage error listing the valid spellings.
bool ParseFaultSpec(std::string_view text, FaultSpec* out);

class FaultInjector {
 public:
  FaultInjector() = default;
  // `seed` picks deterministic corruption targets (which vertex gets scribbled).
  FaultInjector(std::vector<FaultSpec> specs, uint64_t seed);

  // False when no spec was configured — the only check hot paths make.
  bool armed() const { return !entries_.empty(); }

  // Fires and returns the first un-fired spec matching (kind, step >= spec.step, job
  // pinned to `job` or unpinned); nullptr when nothing fires. Each spec fires exactly
  // once, so a restarted job does not re-trip the fault that killed it.
  const FaultSpec* Poll(FaultKind kind, uint64_t step, JobId job);

  // Deterministic corruption coordinate for `job`: splitmix64 over (seed, job).
  uint64_t CorruptionPoint(JobId job) const;

  uint64_t seed() const { return seed_; }
  // Specs that have fired so far (fault_tolerance_test asserts exact counts).
  size_t fired() const;

 private:
  struct Entry {
    FaultSpec spec;
    bool fired = false;
  };
  std::vector<Entry> entries_;
  uint64_t seed_ = 0;
};

}  // namespace cgraph

#endif  // SRC_COMMON_FAULT_INJECTION_H_
