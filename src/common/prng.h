// Deterministic pseudo-random number generation.
//
// All randomized components (graph generators, traces, shuffles) draw from these engines so
// that a fixed seed reproduces every experiment bit-for-bit across platforms — std::mt19937
// distributions are not guaranteed identical across standard libraries, so we implement the
// distributions we need ourselves.

#ifndef SRC_COMMON_PRNG_H_
#define SRC_COMMON_PRNG_H_

#include <cstdint>

#include "src/common/check.h"

namespace cgraph {

// SplitMix64: tiny, high-quality 64-bit generator; also used to seed Xoshiro.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256**: the workhorse generator for bulk sampling.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be positive.
  uint64_t NextBounded(uint64_t bound) {
    CGRAPH_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    while (true) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli draw with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace cgraph

#endif  // SRC_COMMON_PRNG_H_
