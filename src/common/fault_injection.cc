#include "src/common/fault_injection.h"

#include <utility>

#include "src/common/strings.h"

namespace cgraph {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLoadError:
      return "load";
    case FaultKind::kTriggerError:
      return "trigger";
    case FaultKind::kPushError:
      return "push";
    case FaultKind::kCorruptState:
      return "corrupt";
    case FaultKind::kCancel:
      return "cancel";
    case FaultKind::kNone:
      break;
  }
  return "none";
}

bool ParseFaultSpec(std::string_view text, FaultSpec* out) {
  const size_t at = text.find('@');
  if (at == std::string_view::npos || at == 0) {
    return false;
  }
  const std::string_view kind_name = text.substr(0, at);
  FaultKind kind = FaultKind::kNone;
  if (kind_name == "load") {
    kind = FaultKind::kLoadError;
  } else if (kind_name == "trigger") {
    kind = FaultKind::kTriggerError;
  } else if (kind_name == "push") {
    kind = FaultKind::kPushError;
  } else if (kind_name == "corrupt") {
    kind = FaultKind::kCorruptState;
  } else if (kind_name == "cancel") {
    kind = FaultKind::kCancel;
  } else {
    return false;
  }
  std::string_view rest = text.substr(at + 1);
  std::string_view step_text = rest;
  std::string_view job_text;
  const size_t colon = rest.find(':');
  if (colon != std::string_view::npos) {
    step_text = rest.substr(0, colon);
    job_text = rest.substr(colon + 1);
    if (job_text.empty()) {
      return false;
    }
  }
  uint64_t step = 0;
  if (!ParseUint64(step_text, &step)) {
    return false;
  }
  JobId job = kInvalidJob;
  if (!job_text.empty()) {
    uint64_t parsed = 0;
    if (!ParseUint64(job_text, &parsed) || parsed >= kInvalidJob) {
      return false;
    }
    job = static_cast<JobId>(parsed);
  }
  out->kind = kind;
  out->step = step;
  out->job = job;
  return true;
}

FaultInjector::FaultInjector(std::vector<FaultSpec> specs, uint64_t seed) : seed_(seed) {
  entries_.reserve(specs.size());
  for (FaultSpec& spec : specs) {
    if (spec.kind != FaultKind::kNone) {
      entries_.push_back(Entry{spec, /*fired=*/false});
    }
  }
}

const FaultSpec* FaultInjector::Poll(FaultKind kind, uint64_t step, JobId job) {
  for (Entry& entry : entries_) {
    if (entry.fired || entry.spec.kind != kind || step < entry.spec.step) {
      continue;
    }
    if (entry.spec.job != kInvalidJob && entry.spec.job != job) {
      continue;
    }
    entry.fired = true;
    return &entry.spec;
  }
  return nullptr;
}

uint64_t FaultInjector::CorruptionPoint(JobId job) const {
  // splitmix64: a well-mixed pure function of (seed, job) — the same job always loses the
  // same vertex, independent of schedule, worker count, or platform.
  uint64_t x = seed_ + 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(job) + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

size_t FaultInjector::fired() const {
  size_t count = 0;
  for (const Entry& entry : entries_) {
    count += entry.fired ? 1 : 0;
  }
  return count;
}

}  // namespace cgraph
