// Clang -Wthread-safety annotation macros (docs/static_analysis.md).
//
// These expand to clang's capability-analysis attributes when the compiler supports
// them and to nothing everywhere else (GCC builds are unaffected: zero code, zero ABI
// impact). The macros let the compiler machine-check two locking disciplines that the
// runtime otherwise enforces only by convention:
//
//   * real mutexes — ThreadPool's queue/batch state is CGRAPH_GUARDED_BY its mutex, so
//     any new access outside the lock is a compile error under clang, not a TSan race
//     that a given run may or may not exercise;
//   * the driver-thread role — everything outside ThreadPool (JobManager, the LTP
//     stages, CheckpointStore, ServiceDriver) is single-threaded *by contract*: exactly
//     one driver thread calls Step(), and worker threads touch only disjoint bitmask
//     words and relaxed atomic counters handed to them through RunBatch. That contract
//     is expressed as a zero-size capability (`ThreadRole` below): driver-only methods
//     are CGRAPH_REQUIRES_DRIVER and the engine's public entry points acquire
//     the role, so a RunBatch worker lambda that strays into driver-only state fails to
//     compile under clang instead of racing under load.
//
// Verify locally (needs clang): cmake --preset tidy && cmake --build --target
// thread_safety_check, or let the static-analysis CI job do it.

#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on GCC and others
#endif

// A type that models a capability (a mutex, or a role like "the driver thread").
#define CGRAPH_CAPABILITY(x) CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// An RAII type that acquires a capability in its constructor and releases it in its
// destructor (std::lock_guard-shaped).
#define CGRAPH_SCOPED_CAPABILITY CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// The annotated field may only be read or written while holding the given capability.
#define CGRAPH_GUARDED_BY(x) CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// The pointee of the annotated pointer is protected by the given capability.
#define CGRAPH_PT_GUARDED_BY(x) CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// The annotated function may only be called while holding the given capabilities.
#define CGRAPH_REQUIRES(...) \
  CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define CGRAPH_REQUIRES_SHARED(...) \
  CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// The annotated function acquires / releases the given capabilities.
#define CGRAPH_ACQUIRE(...) \
  CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define CGRAPH_ACQUIRE_SHARED(...) \
  CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define CGRAPH_RELEASE(...) \
  CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define CGRAPH_RELEASE_SHARED(...) \
  CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

// The annotated function acquires the capability iff it returns the given value.
#define CGRAPH_TRY_ACQUIRE(...) \
  CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// The annotated function must NOT be called while holding the given capabilities
// (deadlock prevention for self-locking functions).
#define CGRAPH_EXCLUDES(...) CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// The annotated function returns a reference to the given capability.
#define CGRAPH_RETURN_CAPABILITY(x) CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Asserts (at runtime, for the analysis) that the calling thread holds the capability.
#define CGRAPH_ASSERT_CAPABILITY(x) \
  CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

// Escape hatch: the annotated function body is exempt from analysis. Every use needs a
// justification comment (docs/static_analysis.md suppression policy).
#define CGRAPH_NO_THREAD_SAFETY_ANALYSIS \
  CGRAPH_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace cgraph {

// A zero-size capability naming a *role* rather than a lock: code annotated
// CGRAPH_REQUIRES_DRIVER may only run on the engine's single driver thread.
// Acquire/Release are no-ops at runtime — the value is purely what the analysis proves:
// a worker-thread lambda (which never acquires the role) calling a driver-only method is
// a compile error under clang. See docs/static_analysis.md for the contract.
class CGRAPH_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Acquire() CGRAPH_ACQUIRE() {}
  void Release() CGRAPH_RELEASE() {}
};

// The process-wide driver-thread role. One logical role suffices even with several
// engines in one process (tests): each engine is driven by exactly one thread at a
// time, and the analysis is per-function, not per-instance. A plain inline variable so
// capability expressions stay simple DeclRefExprs the analysis always resolves.
inline ThreadRole g_driver_role;

// Shorthand for the driver-thread discipline (docs/static_analysis.md): mutating
// methods of the single-driver subsystems are REQUIRES_DRIVER, read-only queries that
// must still not race with the driver are REQUIRES_DRIVER_SHARED, and the engine's
// public entry points (plus ServiceDriver::Run) acquire the role via ScopedThreadRole.
#define CGRAPH_REQUIRES_DRIVER CGRAPH_REQUIRES(::cgraph::g_driver_role)
#define CGRAPH_REQUIRES_DRIVER_SHARED CGRAPH_REQUIRES_SHARED(::cgraph::g_driver_role)
#define CGRAPH_GUARDED_BY_DRIVER CGRAPH_GUARDED_BY(::cgraph::g_driver_role)

// RAII role acquisition for the engine's public entry points (Step, Run, the service
// drivers). Runtime cost: two empty inline calls.
class CGRAPH_SCOPED_CAPABILITY ScopedThreadRole {
 public:
  explicit ScopedThreadRole(ThreadRole& role) CGRAPH_ACQUIRE(role) : role_(role) {
    role_.Acquire();
  }
  ~ScopedThreadRole() CGRAPH_RELEASE() { role_.Release(); }

  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace cgraph

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
