// Small string utilities used by loaders and report printers.

#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cgraph {

// Splits `text` on any of the bytes in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitNonEmpty(std::string_view text, std::string_view delims);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Parses a non-negative integer; returns false on any non-digit or overflow.
bool ParseUint64(std::string_view text, uint64_t* out);

// Parses a double via strtod semantics; returns false if the full token is not consumed.
bool ParseDouble(std::string_view text, double* out);

// Formats `bytes` with binary-unit suffixes, e.g. "1.50 MiB".
std::string HumanBytes(uint64_t bytes);

// Formats a double with `digits` fractional digits.
std::string FormatDouble(double value, int digits);

}  // namespace cgraph

#endif  // SRC_COMMON_STRINGS_H_
