// Annotated mutex / condition-variable wrappers for clang -Wthread-safety.
//
// std::mutex and std::unique_lock carry no capability annotations on libstdc++, so code
// locking them is invisible to clang's analysis. These thin wrappers (zero state beyond
// the wrapped std object, everything inline) restore visibility: Mutex is a capability,
// MutexLock is a scoped capability whose Lock/Unlock members let the analysis follow the
// unlock-run-relock pattern in worker loops, and CondVar::Wait takes the MutexLock so a
// wait cannot be written against the wrong mutex. Behavior is byte-for-byte that of the
// std types; on GCC the annotations vanish and only the forwarding calls remain.

#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <utility>

#include "src/common/thread_annotations.h"

namespace cgraph {

class CGRAPH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CGRAPH_ACQUIRE() { m_.lock(); }
  void Unlock() CGRAPH_RELEASE() { m_.unlock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex m_;
};

// Scoped lock over a Mutex. Constructed locked; Unlock/Lock support the
// "unlock around the callback, relock after" worker-loop idiom under analysis.
class CGRAPH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CGRAPH_ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() CGRAPH_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() CGRAPH_RELEASE() { lock_.unlock(); }
  void Lock() CGRAPH_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  // Atomically releases `lock`, waits, and reacquires before returning. The capability
  // is held on entry and on exit; the temporary release inside is invisible to the
  // analysis by design (same convention as absl::CondVar).
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  // Predicate form. Annotate the predicate CGRAPH_REQUIRES(mu) when it reads guarded
  // fields — it always runs with the lock held.
  template <typename Pred>
  void Wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace cgraph

#endif  // SRC_COMMON_MUTEX_H_
