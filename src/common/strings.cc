#include "src/common/strings.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cgraph {

std::vector<std::string_view> SplitNonEmpty(std::string_view text, std::string_view delims) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    const bool at_delim = i < text.size() && delims.find(text[i]) != std::string_view::npos;
    if (i == text.size() || at_delim) {
      if (i > start) {
        pieces.push_back(text.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return false;  // Overflow.
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty() || text.size() >= 64) {
    return false;
  }
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::string HumanBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  return buf;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace cgraph
