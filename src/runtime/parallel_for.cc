#include "src/runtime/parallel_for.h"

#include <algorithm>

namespace cgraph {

void ParallelFor(ThreadPool& pool, size_t n, const ParallelForOptions& options,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (!options.dynamic || pool.num_workers() == 1 || n <= options.grain) {
    body(0, n);
    return;
  }

  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  const size_t grain = std::max<size_t>(1, options.grain);
  auto drain = [cursor, grain, n, &body] {
    while (true) {
      const size_t begin = cursor->fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) {
        return;
      }
      body(begin, std::min(begin + grain, n));
    }
  };

  // One drain task per worker; each keeps claiming chunks until the range is exhausted.
  std::vector<std::function<void()>> tasks(pool.num_workers(), drain);
  pool.RunAndWait(std::move(tasks));
}

}  // namespace cgraph
