#include "src/runtime/parallel_for.h"

#include <algorithm>

namespace cgraph {

void ParallelFor(ThreadPool& pool, size_t n, const ParallelForOptions& options,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (!options.dynamic || pool.num_workers() == 1 || n <= options.grain) {
    body(0, n);
    return;
  }

  // One batch task per chunk, claimed through RunBatch's atomic cursor: same dynamic
  // load balancing as the old per-worker drain loops, but with no std::function heap
  // traffic and no locked-deque handoff.
  const size_t grain = std::max<size_t>(1, options.grain);
  const size_t chunks = (n + grain - 1) / grain;
  pool.RunBatch(chunks, [&](size_t chunk) {
    const size_t begin = chunk * grain;
    body(begin, std::min(begin + grain, n));
  });
}

}  // namespace cgraph
