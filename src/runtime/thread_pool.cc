#include "src/runtime/thread_pool.h"

#include <utility>

namespace cgraph {

ThreadPool::ThreadPool(size_t num_workers) {
  if (num_workers == 0) {
    num_workers = 1;
  }
  threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::RunAndWait(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) {
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto& t : tasks) {
      queue_.push_back(std::move(t));
    }
  }
  work_available_.notify_all();

  // The caller helps drain the queue, then waits for stragglers.
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (!queue_.empty()) {
      auto task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      lock.unlock();
      task();
      lock.lock();
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        batch_done_.notify_all();
      }
      continue;
    }
    if (in_flight_ == 0) {
      return;
    }
    batch_done_.wait(lock, [this] { return (queue_.empty() && in_flight_ == 0) || !queue_.empty(); });
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
    if (shutting_down_ && queue_.empty()) {
      return;
    }
    auto task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) {
      batch_done_.notify_all();
    }
  }
}

}  // namespace cgraph
