#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace cgraph {

ThreadPool::ThreadPool(size_t num_workers) {
  if (num_workers == 0) {
    num_workers = 1;
  }
  // Oversubscription cap: a pool asked for more threads than the machine has cores
  // spawns only core-count threads. The extra threads could never run concurrently, but
  // each one would still be woken (and then fight for the batch cursor and the mutex) on
  // every RunBatch — on a single-core host that alone made workers=4 slower than
  // workers=1 on the throughput bench. hardware_concurrency() may report 0 (unknown);
  // keep the request untouched then.
  const size_t hw = std::thread::hardware_concurrency();
  if (hw > 0 && num_workers > hw) {
    num_workers = hw;
  }
  // The RunBatch caller drains indices alongside the workers, so lanes = workers + 1,
  // still bounded by the core count.
  parallel_lanes_ = hw > 0 ? std::min(num_workers + 1, hw) : num_workers + 1;
  threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::RunAndWait(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) {
    return;
  }
  {
    MutexLock lock(mutex_);
    for (auto& t : tasks) {
      queue_.push_back(std::move(t));
    }
  }
  work_available_.NotifyAll();

  // The caller helps drain the queue, then waits for stragglers.
  MutexLock lock(mutex_);
  while (true) {
    if (!queue_.empty()) {
      auto task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      lock.Unlock();
      task();
      lock.Lock();
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        batch_done_.NotifyAll();
      }
      continue;
    }
    if (in_flight_ == 0) {
      return;
    }
    batch_done_.Wait(lock, [this]() CGRAPH_REQUIRES(mutex_) {
      return (queue_.empty() && in_flight_ == 0) || !queue_.empty();
    });
  }
}

void ThreadPool::RunBatch(size_t n_tasks, BatchFn fn) {
  if (n_tasks == 0) {
    return;
  }
  if (n_tasks == 1 || !CanRunConcurrently()) {
    // Nothing to share — one task, or one core: run inline without touching the mutex.
    // On single-core hardware a dispatched batch degenerates to the same serial order
    // plus wake-up/contention overhead, so the inline loop is strictly better.
    for (size_t i = 0; i < n_tasks; ++i) {
      fn(i);
    }
    return;
  }
  {
    MutexLock lock(mutex_);
    CGRAPH_CHECK(!batch_open_);  // Single driver thread; RunBatch must not nest.
    batch_fn_ = fn;
    batch_size_ = n_tasks;
    batch_cursor_.store(0, std::memory_order_relaxed);
    batch_completed_.store(0, std::memory_order_relaxed);
    ++batch_epoch_;
    batch_open_ = true;
  }
  work_available_.NotifyAll();

  DrainBatch(fn, n_tasks);  // The caller claims indices like any worker.

  // Wait for completion AND for every worker to leave DrainBatch: a straggler that is
  // about to bump the cursor must not observe the next batch's reset cursor.
  MutexLock lock(mutex_);
  batch_done_.Wait(lock, [this]() CGRAPH_REQUIRES(mutex_) {
    return !batch_open_ && batch_drainers_ == 0;
  });
}

void ThreadPool::DrainBatch(BatchFn fn, size_t n_tasks) {
  while (true) {
    const size_t i = batch_cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_tasks) {
      return;
    }
    fn(i);
    // acq_rel: the thread that retires the last index must observe every other claimer's
    // writes before the RunBatch caller resumes past the batch.
    if (batch_completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_tasks) {
      {
        MutexLock lock(mutex_);
        batch_open_ = false;
      }
      batch_done_.NotifyAll();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t drained_epoch = 0;  // Last batch epoch this worker already pulled from.
  MutexLock lock(mutex_);
  while (true) {
    work_available_.Wait(lock, [this, drained_epoch]() CGRAPH_REQUIRES(mutex_) {
      return shutting_down_ || !queue_.empty() ||
             (batch_open_ && batch_epoch_ != drained_epoch);
    });
    if (batch_open_ && batch_epoch_ != drained_epoch) {
      drained_epoch = batch_epoch_;
      const BatchFn fn = batch_fn_;
      const size_t n = batch_size_;
      ++batch_drainers_;
      lock.Unlock();
      DrainBatch(fn, n);
      lock.Lock();
      --batch_drainers_;
      if (batch_drainers_ == 0 && !batch_open_) {
        batch_done_.NotifyAll();
      }
      continue;
    }
    if (shutting_down_ && queue_.empty()) {
      return;
    }
    if (queue_.empty()) {
      continue;  // Woken for a batch already marked drained; re-wait.
    }
    auto task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.Unlock();
    task();
    lock.Lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) {
      batch_done_.NotifyAll();
    }
  }
}

}  // namespace cgraph
