// Dynamic-chunk parallel loops.
//
// ParallelFor splits [0, n) into chunks claimed from a shared atomic counter (via
// ThreadPool::RunBatch, so dispatch allocates nothing). Because idle workers keep
// claiming chunks until the range is exhausted, a worker stuck on a heavy chunk never
// blocks the others — this is exactly the paper's straggler mitigation (section 3.2.3):
// the private partition of the job with the most unprocessed vertices is logically
// divided into pieces consumed by free cores.

#ifndef SRC_RUNTIME_PARALLEL_FOR_H_
#define SRC_RUNTIME_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "src/runtime/thread_pool.h"

namespace cgraph {

struct ParallelForOptions {
  // Elements claimed per grab. Smaller grains balance better, larger grains amortize the
  // atomic increment.
  size_t grain = 1024;
  // When false the loop runs inline on the calling thread (used to ablate straggler
  // splitting: each task processes its whole range on one worker).
  bool dynamic = true;
};

// Invokes body(begin, end) over disjoint subranges covering [0, n) using the pool.
void ParallelFor(ThreadPool& pool, size_t n, const ParallelForOptions& options,
                 const std::function<void(size_t, size_t)>& body);

// Convenience overload with default options.
inline void ParallelFor(ThreadPool& pool, size_t n,
                        const std::function<void(size_t, size_t)>& body) {
  ParallelFor(pool, n, ParallelForOptions{}, body);
}

}  // namespace cgraph

#endif  // SRC_RUNTIME_PARALLEL_FOR_H_
