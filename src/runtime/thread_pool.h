// Fixed-size worker pool with a shared task queue and an allocation-free batch primitive.
//
// One pool is created per executor run with `num_workers` threads (the paper's "workers",
// one per core). Two dispatch paths exist:
//
//  - Submit()/RunAndWait(): type-erased closures through a locked deque. General-purpose,
//    but every task heap-allocates a std::function and bounces the queue mutex.
//  - RunBatch(n, fn): the hot path. The n task indices are handed out through a single
//    atomic cursor; workers and the caller claim indices lock-free and invoke the borrowed
//    FunctionRef. Nothing is allocated and the mutex is taken only to open/close the
//    batch, so per-partition trigger dispatch stops serializing on the deque lock.

#ifndef SRC_RUNTIME_THREAD_POOL_H_
#define SRC_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/function_ref.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace cgraph {

class ThreadPool {
 public:
  // Invoked once per claimed task index in [0, n_tasks).
  using BatchFn = FunctionRef<void(size_t)>;

  // Spawns `num_workers` threads, capped at the hardware concurrency when the platform
  // reports one: threads beyond the core count cannot run concurrently — they only add
  // wake-ups, context switches, and cursor contention to every batch. num_workers == 0
  // is clamped to 1. The cap changes wall clock only; modeled metrics never depend on
  // how many threads actually execute a batch.
  explicit ThreadPool(size_t num_workers);

  // Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return threads_.size(); }

  // True when a batch dispatched to the pool can actually run on more than one core.
  // When false (single-core hardware), RunBatch executes the whole index range inline on
  // the calling thread: waking parked workers that would only time-slice the same core
  // is pure overhead. Coverage and results are identical either way.
  bool CanRunConcurrently() const { return parallel_lanes_ > 1; }

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Runs all `tasks` on the pool and blocks until every one has finished. The calling
  // thread also participates by draining the batch, so a 1-worker pool still makes
  // progress even when called from the single worker context.
  void RunAndWait(std::vector<std::function<void()>> tasks);

  // Invokes fn(i) exactly once for every i in [0, n_tasks), distributing indices to the
  // calling thread and the pool's workers through an atomic cursor. Blocks until every
  // index has been processed; `fn` is borrowed for exactly that long. No per-task
  // allocation. n_tasks <= 1 runs inline without waking anyone. Not reentrant: fn must
  // not call RunBatch (or RunAndWait) on the same pool, and only one thread may drive
  // batches at a time — in the engine that is the single LTP driver thread.
  void RunBatch(size_t n_tasks, BatchFn fn);

 private:
  void WorkerLoop();

  // Claims batch indices until the cursor passes the end; the claimer of the last
  // completed index closes the batch and wakes the RunBatch caller. Called without the
  // mutex held (it briefly takes it to close the batch).
  void DrainBatch(BatchFn fn, size_t n_tasks) CGRAPH_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar work_available_;
  CondVar batch_done_;
  std::deque<std::function<void()>> queue_ CGRAPH_GUARDED_BY(mutex_);
  // Tasks popped but not yet finished.
  size_t in_flight_ CGRAPH_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ CGRAPH_GUARDED_BY(mutex_) = false;

  // Batch state. fn/size/epoch are written under mutex_ before the batch opens and read
  // by workers after they observe batch_open_ under the same mutex; the cursor and the
  // completion count are the only contended words while a batch runs.
  bool batch_open_ CGRAPH_GUARDED_BY(mutex_) = false;
  // Bumped per batch so a worker that drained an empty cursor sleeps instead of
  // respinning.
  uint64_t batch_epoch_ CGRAPH_GUARDED_BY(mutex_) = 0;
  // Workers currently inside DrainBatch. RunBatch returns only once this is 0, so the
  // next batch cannot reset the cursor under a straggling claimer of the previous one.
  size_t batch_drainers_ CGRAPH_GUARDED_BY(mutex_) = 0;
  // Valid while the batch that published it is open.
  BatchFn batch_fn_ CGRAPH_GUARDED_BY(mutex_);
  size_t batch_size_ CGRAPH_GUARDED_BY(mutex_) = 0;
  std::atomic<size_t> batch_cursor_{0};
  std::atomic<size_t> batch_completed_{0};

  // Distinct cores a batch can occupy: the spawned workers plus the RunBatch caller,
  // bounded by the hardware concurrency (computed once at construction).
  size_t parallel_lanes_ = 1;

  std::vector<std::thread> threads_;
};

}  // namespace cgraph

#endif  // SRC_RUNTIME_THREAD_POOL_H_
