// Fixed-size worker pool with a shared task queue.
//
// One pool is created per executor run with `num_workers` threads (the paper's "workers",
// one per core). Tasks are type-erased closures; RunAndWait() submits a batch and blocks
// until all complete, which is the building block for the trigger stage of the LTP model.

#ifndef SRC_RUNTIME_THREAD_POOL_H_
#define SRC_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cgraph {

class ThreadPool {
 public:
  // Spawns `num_workers` threads. num_workers == 0 is clamped to 1.
  explicit ThreadPool(size_t num_workers);

  // Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return threads_.size(); }

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Runs all `tasks` on the pool and blocks until every one has finished. The calling
  // thread also participates by draining the batch, so a 1-worker pool still makes
  // progress even when called from the single worker context.
  void RunAndWait(std::vector<std::function<void()>> tasks);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // Tasks popped but not yet finished.
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cgraph

#endif  // SRC_RUNTIME_THREAD_POOL_H_
