// Personalized PageRank: random walks with restart at a single seed vertex. Identical
// delta-accumulation machinery to PageRank, but all initial mass sits on the seed — the
// "variants of pagerank" the paper's introduction cites among facebook's daily CGP jobs.

#ifndef SRC_ALGORITHMS_PERSONALIZED_PAGERANK_H_
#define SRC_ALGORITHMS_PERSONALIZED_PAGERANK_H_

#include <cmath>

#include "src/core/vertex_program.h"

namespace cgraph {

class PersonalizedPageRankProgram : public VertexProgram {
 public:
  PersonalizedPageRankProgram(VertexId seed, double damping = 0.85, double epsilon = 1e-9)
      : seed_(seed), damping_(damping), epsilon_(epsilon) {}

  std::string_view name() const override { return "ppr"; }
  AccKind acc_kind() const override { return AccKind::kSum; }
  // Not monotonic(): same epsilon-threshold timing dependence as PageRank.

  VertexState InitialState(const LocalVertexInfo& info) const override {
    VertexState s;
    s.value = 0.0;
    s.delta = info.global_id == seed_ ? 1.0 - damping_ : 0.0;
    return s;
  }

  bool IsActive(const VertexState& state) const override {
    return std::fabs(state.delta) > epsilon_;
  }

  void Compute(const GraphPartition& partition, LocalVertexId v,
               std::span<VertexState> states, ScatterOps& ops) override {
    VertexState& s = states[v];
    s.value += s.delta;
    const uint32_t out_degree = partition.vertex(v).global_out_degree;
    if (out_degree == 0) {
      return;
    }
    const double contribution = damping_ * s.delta / out_degree;
    for (LocalVertexId target : partition.out_neighbors(v)) {
      ops.Accumulate(target, contribution);
    }
  }

 private:
  VertexId seed_;
  double damping_;
  double epsilon_;
};

}  // namespace cgraph

#endif  // SRC_ALGORITHMS_PERSONALIZED_PAGERANK_H_
