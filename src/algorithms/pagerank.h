// Delta-accumulation PageRank (paper Fig. 7(a)).
//
//   IsNotConvergent(v): |v.delta| > epsilon
//   Acc(a, b):          a + b
//   Compute:            value += delta; scatter d * delta / out_degree to out-neighbors
//
// Every vertex starts with delta = 1 - d, so converged values satisfy
// value(v) = (1-d) + d * sum_{u -> v} value(u) / out_degree(u); dangling-vertex mass is
// not redistributed (standard for delta-based engines).

#ifndef SRC_ALGORITHMS_PAGERANK_H_
#define SRC_ALGORITHMS_PAGERANK_H_

#include <cmath>

#include "src/core/vertex_program.h"

namespace cgraph {

class PageRankProgram : public VertexProgram {
 public:
  explicit PageRankProgram(double damping = 0.85, double epsilon = 1e-9)
      : damping_(damping), epsilon_(epsilon) {}

  std::string_view name() const override { return "pagerank"; }
  AccKind acc_kind() const override { return AccKind::kSum; }
  // Not monotonic(): the epsilon convergence test depends on *when* mass arrives —
  // batching deltas changes which sub-epsilon residuals get dropped, so async would
  // converge to (slightly) different values than the BSP oracle.

  VertexState InitialState(const LocalVertexInfo& info) const override {
    (void)info;
    VertexState s;
    s.value = 0.0;
    s.delta = 1.0 - damping_;
    return s;
  }

  bool IsActive(const VertexState& state) const override {
    return std::fabs(state.delta) > epsilon_;
  }

  void Compute(const GraphPartition& partition, LocalVertexId v,
               std::span<VertexState> states, ScatterOps& ops) override {
    VertexState& s = states[v];
    s.value += s.delta;
    const uint32_t out_degree = partition.vertex(v).global_out_degree;
    if (out_degree == 0) {
      return;
    }
    const double contribution = damping_ * s.delta / out_degree;
    for (LocalVertexId target : partition.out_neighbors(v)) {
      ops.Accumulate(target, contribution);
    }
  }

 private:
  double damping_;
  double epsilon_;
};

}  // namespace cgraph

#endif  // SRC_ALGORITHMS_PAGERANK_H_
