// Weakly connected components: min-label propagation over both edge directions (the
// graph is treated as undirected).

#ifndef SRC_ALGORITHMS_WCC_H_
#define SRC_ALGORITHMS_WCC_H_

#include <limits>

#include "src/core/vertex_program.h"

namespace cgraph {

class WccProgram : public VertexProgram {
 public:
  std::string_view name() const override { return "wcc"; }
  AccKind acc_kind() const override { return AccKind::kMin; }

  // Min-label propagation converges to the component-minimum label under any delivery
  // schedule, so async execution is exact.
  bool monotonic() const override { return true; }

  // The scattered value is the label itself — unchanged along any path — so eager
  // intra-partition re-draining only ever floods final candidate labels.
  bool path_independent() const override { return true; }

  VertexState InitialState(const LocalVertexInfo& info) const override {
    VertexState s;
    s.value = std::numeric_limits<double>::infinity();
    s.delta = static_cast<double>(info.global_id);
    return s;
  }

  bool IsActive(const VertexState& state) const override { return state.delta < state.value; }

  void Compute(const GraphPartition& partition, LocalVertexId v,
               std::span<VertexState> states, ScatterOps& ops) override {
    VertexState& s = states[v];
    if (s.delta < s.value) {
      s.value = s.delta;
    }
    for (LocalVertexId target : partition.out_neighbors(v)) {
      ops.Accumulate(target, s.value);
    }
    for (LocalVertexId target : partition.in_neighbors(v)) {
      ops.Accumulate(target, s.value);
    }
  }
};

}  // namespace cgraph

#endif  // SRC_ALGORITHMS_WCC_H_
