// Breadth-first search: hop counts from a source, i.e. SSSP over unit weights.

#ifndef SRC_ALGORITHMS_BFS_H_
#define SRC_ALGORITHMS_BFS_H_

#include <limits>

#include "src/core/vertex_program.h"

namespace cgraph {

class BfsProgram : public VertexProgram {
 public:
  explicit BfsProgram(VertexId source) : source_(source) {}

  std::string_view name() const override { return "bfs"; }
  AccKind acc_kind() const override { return AccKind::kMin; }

  // Min-hop fixpoint — same monotone structure as SSSP over unit weights.
  bool monotonic() const override { return true; }

  VertexState InitialState(const LocalVertexInfo& info) const override {
    VertexState s;
    s.value = std::numeric_limits<double>::infinity();
    s.delta = info.global_id == source_ ? 0.0 : std::numeric_limits<double>::infinity();
    return s;
  }

  bool IsActive(const VertexState& state) const override { return state.delta < state.value; }

  void Compute(const GraphPartition& partition, LocalVertexId v,
               std::span<VertexState> states, ScatterOps& ops) override {
    VertexState& s = states[v];
    if (s.delta < s.value) {
      s.value = s.delta;
    }
    for (LocalVertexId target : partition.out_neighbors(v)) {
      ops.Accumulate(target, s.value + 1.0);
    }
  }

 private:
  VertexId source_;
};

}  // namespace cgraph

#endif  // SRC_ALGORITHMS_BFS_H_
