// Convenience construction of the paper's benchmark job mix.

#ifndef SRC_ALGORITHMS_FACTORY_H_
#define SRC_ALGORITHMS_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/vertex_program.h"
#include "src/graph/edge_list.h"

namespace cgraph {

// Deterministic source pick for SSSP/BFS: the vertex with the highest out-degree (lowest
// id on ties) — mirrors the common practice of rooting traversals at a hub so they reach
// most of a power-law graph.
VertexId PickSourceVertex(const EdgeList& edges);

// Creates a program by name: "pagerank", "sssp", "scc", "bfs", "wcc", "kcore", "ppr",
// "khop". `source` feeds sssp/bfs/ppr/khop; `k` feeds kcore and khop.
std::unique_ptr<VertexProgram> MakeProgram(const std::string& name, VertexId source,
                                           uint32_t k = 4);

// The paper's four-job benchmark mix, in submission order: PageRank, SSSP, SCC, BFS
// (section 4), repeated cyclically to `count` jobs (section 4.4 builds 8 jobs this way).
std::vector<std::string> BenchmarkJobNames(size_t count);

}  // namespace cgraph

#endif  // SRC_ALGORITHMS_FACTORY_H_
