// Convenience construction of the paper's benchmark job mix.

#ifndef SRC_ALGORITHMS_FACTORY_H_
#define SRC_ALGORITHMS_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/vertex_program.h"
#include "src/graph/edge_list.h"

namespace cgraph {

// Deterministic source pick for SSSP/BFS/PPR/k-hop: the vertex with the *smallest
// positive* out-degree (lowest id on ties), or 0 when no vertex has outgoing edges.
// A hub source is replicated into nearly every partition under vertex-cut partitioning,
// which defeats footprint-aware admission (every traversal looks full-graph at
// submission); a low-degree source keeps traversal footprints localized while still
// traversing. Pass an explicit source (CLI --source) to root at a hub instead.
VertexId PickSourceVertex(const EdgeList& edges);

// The `count` vertices with the smallest positive out-degree, ordered by
// (out-degree, id) — a deterministic pool of localized traversal roots for the service
// daemon's trace generator (src/service/trace_gen.h). Returns fewer when the graph has
// fewer vertices with outgoing edges, and {0} when it has none.
std::vector<VertexId> PickSourcePool(const EdgeList& edges, size_t count);

// Creates a program by name: "pagerank", "sssp", "scc", "bfs", "wcc", "kcore", "ppr",
// "khop". `source` feeds sssp/bfs/ppr/khop; `k` feeds kcore and khop.
std::unique_ptr<VertexProgram> MakeProgram(const std::string& name, VertexId source,
                                           uint32_t k = 4);

// The paper's four-job benchmark mix, in submission order: PageRank, SSSP, SCC, BFS
// (section 4), repeated cyclically to `count` jobs (section 4.4 builds 8 jobs this way).
std::vector<std::string> BenchmarkJobNames(size_t count);

}  // namespace cgraph

#endif  // SRC_ALGORITHMS_FACTORY_H_
