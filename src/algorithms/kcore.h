// k-core decomposition membership: iterative peeling of vertices whose (undirected)
// degree falls below k. On convergence aux == 0 marks vertices in the k-core and
// aux == 1 marks peeled vertices; value holds the residual degree.

#ifndef SRC_ALGORITHMS_KCORE_H_
#define SRC_ALGORITHMS_KCORE_H_

#include "src/core/vertex_program.h"

namespace cgraph {

class KCoreProgram : public VertexProgram {
 public:
  explicit KCoreProgram(uint32_t k) : k_(k) {}

  std::string_view name() const override { return "kcore"; }
  AccKind acc_kind() const override { return AccKind::kSum; }

  // Peeling is confluent in *membership* (aux): a vertex scatters exactly once, on its
  // irreversible leave-the-core transition, so any schedule that delivers every -1.0
  // reaches the same core set. The peel-time residual in `value` IS order-dependent
  // (late -1.0s may arrive after a vertex peeled), so k-core equivalence is on aux.
  bool monotonic() const override { return true; }

  VertexState InitialState(const LocalVertexInfo& info) const override {
    VertexState s;
    s.value = static_cast<double>(info.global_total_degree);
    s.delta = 0.0;
    s.aux = 0.0;
    return s;
  }

  bool IsActive(const VertexState& state) const override {
    // Unremoved vertices that lost neighbors must re-check their residual degree.
    return state.delta != 0.0 && state.aux == 0.0;
  }

  // The first sweep must run unconditionally so low-degree vertices peel themselves.
  bool InitiallyActive(const LocalVertexInfo& info, const VertexState& state) const override {
    (void)info;
    return state.aux == 0.0;
  }

  void Compute(const GraphPartition& partition, LocalVertexId v,
               std::span<VertexState> states, ScatterOps& ops) override {
    VertexState& s = states[v];
    s.value += s.delta;  // delta is a (negative) sum of lost neighbors.
    if (s.aux == 0.0 && s.value < static_cast<double>(k_)) {
      s.aux = 1.0;  // Peel: leave the core and notify all neighbors once.
      for (LocalVertexId target : partition.out_neighbors(v)) {
        ops.Accumulate(target, -1.0);
      }
      for (LocalVertexId target : partition.in_neighbors(v)) {
        ops.Accumulate(target, -1.0);
      }
    }
  }

 private:
  uint32_t k_;
};

}  // namespace cgraph

#endif  // SRC_ALGORITHMS_KCORE_H_
