#include "src/algorithms/reference.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <utility>

#include "src/common/check.h"

namespace cgraph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<double> ReferencePageRank(const Graph& graph, double damping, double epsilon,
                                      uint64_t max_iterations) {
  const VertexId n = graph.num_vertices();
  std::vector<double> value(n, 0.0);
  std::vector<double> delta(n, 1.0 - damping);
  std::vector<double> delta_next(n, 0.0);
  for (uint64_t iter = 0; iter < max_iterations; ++iter) {
    bool any = false;
    for (VertexId v = 0; v < n; ++v) {
      if (std::fabs(delta[v]) <= epsilon) {
        continue;
      }
      any = true;
      value[v] += delta[v];
      const uint32_t out_degree = graph.out_degree(v);
      if (out_degree == 0) {
        continue;
      }
      const double contribution = damping * delta[v] / out_degree;
      for (VertexId t : graph.out_neighbors(v)) {
        delta_next[t] += contribution;
      }
    }
    if (!any) {
      break;
    }
    std::swap(delta, delta_next);
    std::fill(delta_next.begin(), delta_next.end(), 0.0);
  }
  return value;
}

std::vector<double> ReferenceSssp(const Graph& graph, VertexId source) {
  const VertexId n = graph.num_vertices();
  std::vector<double> dist(n, kInf);
  if (source >= n) {
    return dist;
  }
  dist[source] = 0.0;
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) {
      continue;
    }
    const auto targets = graph.out_neighbors(v);
    const auto weights = graph.out_weights(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      const double candidate = dist[v] + static_cast<double>(weights[i]);
      if (candidate < dist[targets[i]]) {
        dist[targets[i]] = candidate;
        heap.push({candidate, targets[i]});
      }
    }
  }
  return dist;
}

std::vector<double> ReferenceBfs(const Graph& graph, VertexId source) {
  const VertexId n = graph.num_vertices();
  std::vector<double> level(n, kInf);
  if (source >= n) {
    return level;
  }
  level[source] = 0.0;
  std::queue<VertexId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (VertexId t : graph.out_neighbors(v)) {
      if (level[t] == kInf) {
        level[t] = level[v] + 1.0;
        frontier.push(t);
      }
    }
  }
  return level;
}

std::vector<double> ReferenceWcc(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) {
    parent[v] = v;
  }
  // Union-find with path halving.
  auto find = [&parent](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId t : graph.out_neighbors(v)) {
      const VertexId a = find(v);
      const VertexId b = find(t);
      if (a != b) {
        // Union by min id so roots are the minimum members.
        if (a < b) {
          parent[b] = a;
        } else {
          parent[a] = b;
        }
      }
    }
  }
  std::vector<double> label(n);
  for (VertexId v = 0; v < n; ++v) {
    label[v] = static_cast<double>(find(v));
  }
  return label;
}

std::vector<double> ReferenceKCore(const Graph& graph, uint32_t k) {
  const VertexId n = graph.num_vertices();
  std::vector<int64_t> degree(n);
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<int64_t>(graph.degree(v));
  }
  std::vector<bool> removed(n, false);
  std::queue<VertexId> peel;
  for (VertexId v = 0; v < n; ++v) {
    if (degree[v] < static_cast<int64_t>(k)) {
      peel.push(v);
      removed[v] = true;
    }
  }
  while (!peel.empty()) {
    const VertexId v = peel.front();
    peel.pop();
    auto relax = [&](VertexId t) {
      --degree[t];
      if (!removed[t] && degree[t] < static_cast<int64_t>(k)) {
        removed[t] = true;
        peel.push(t);
      }
    };
    for (VertexId t : graph.out_neighbors(v)) {
      relax(t);
    }
    for (VertexId t : graph.in_neighbors(v)) {
      relax(t);
    }
  }
  std::vector<double> in_core(n);
  for (VertexId v = 0; v < n; ++v) {
    in_core[v] = removed[v] ? 0.0 : 1.0;
  }
  return in_core;
}

std::vector<double> ReferenceScc(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  // Iterative Tarjan.
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> stack;
  std::vector<double> component(n, -1.0);

  struct Frame {
    VertexId v;
    size_t edge = 0;
  };

  uint32_t next_index = 0;
  std::vector<Frame> call_stack;
  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) {
      continue;
    }
    call_stack.push_back({root, 0});
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const VertexId v = frame.v;
      if (frame.edge == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      const auto targets = graph.out_neighbors(v);
      bool descended = false;
      while (frame.edge < targets.size()) {
        const VertexId t = targets[frame.edge];
        ++frame.edge;
        if (index[t] == kUnvisited) {
          call_stack.push_back({t, 0});
          descended = true;
          break;
        }
        if (on_stack[t]) {
          low[v] = std::min(low[v], index[t]);
        }
      }
      if (descended) {
        continue;
      }
      if (low[v] == index[v]) {
        // v is the root of an SCC; pop and label by minimum member id.
        VertexId min_member = v;
        size_t first = stack.size();
        while (true) {
          --first;
          min_member = std::min(min_member, stack[first]);
          if (stack[first] == v) {
            break;
          }
        }
        for (size_t i = first; i < stack.size(); ++i) {
          component[stack[i]] = static_cast<double>(min_member);
          on_stack[stack[i]] = false;
        }
        stack.resize(first);
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        low[call_stack.back().v] = std::min(low[call_stack.back().v], low[v]);
      }
    }
  }
  return component;
}

std::vector<double> ReferencePersonalizedPageRank(const Graph& graph, VertexId seed,
                                                  double damping, double epsilon,
                                                  uint64_t max_iterations) {
  const VertexId n = graph.num_vertices();
  std::vector<double> value(n, 0.0);
  std::vector<double> delta(n, 0.0);
  std::vector<double> delta_next(n, 0.0);
  if (seed < n) {
    delta[seed] = 1.0 - damping;
  }
  for (uint64_t iter = 0; iter < max_iterations; ++iter) {
    bool any = false;
    for (VertexId v = 0; v < n; ++v) {
      if (std::fabs(delta[v]) <= epsilon) {
        continue;
      }
      any = true;
      value[v] += delta[v];
      const uint32_t out_degree = graph.out_degree(v);
      if (out_degree == 0) {
        continue;
      }
      const double contribution = damping * delta[v] / out_degree;
      for (VertexId t : graph.out_neighbors(v)) {
        delta_next[t] += contribution;
      }
    }
    if (!any) {
      break;
    }
    std::swap(delta, delta_next);
    std::fill(delta_next.begin(), delta_next.end(), 0.0);
  }
  return value;
}

std::vector<double> ReferenceKHop(const Graph& graph, VertexId source, uint32_t max_hops) {
  const VertexId n = graph.num_vertices();
  std::vector<double> level(n, kInf);
  if (source >= n) {
    return level;
  }
  level[source] = 0.0;
  std::queue<VertexId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    if (level[v] >= static_cast<double>(max_hops)) {
      continue;
    }
    for (VertexId t : graph.out_neighbors(v)) {
      if (level[t] == kInf) {
        level[t] = level[v] + 1.0;
        frontier.push(t);
      }
    }
  }
  return level;
}

std::vector<double> CanonicalizeLabels(const std::vector<double>& labels) {
  std::map<double, double> representative;  // label -> min vertex id with that label.
  for (size_t v = 0; v < labels.size(); ++v) {
    auto [it, inserted] = representative.try_emplace(labels[v], static_cast<double>(v));
    if (!inserted) {
      it->second = std::min(it->second, static_cast<double>(v));
    }
  }
  std::vector<double> canonical(labels.size());
  for (size_t v = 0; v < labels.size(); ++v) {
    canonical[v] = representative[labels[v]];
  }
  return canonical;
}

}  // namespace cgraph
