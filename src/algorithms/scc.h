// Strongly connected components via forward/backward coloring rounds (Orzan-style, as in
// the paper's citation [16] family of propagation SCC detectors), expressed as a
// multi-phase vertex program.
//
// Each round has two fixpoint phases:
//   Forward  — every unassigned vertex propagates the maximum vertex id that reaches it
//              along out-edges ("color"); fixpoint roots are vertices whose color equals
//              their own id.
//   Backward — roots flood backwards along in-edges, restricted to vertices of the same
//              color; every vertex reached belongs to the root's SCC and is assigned
//              (aux = color + 1; aux == 0 means unassigned).
// Assigned vertices stop participating, and rounds repeat on the shrinking remainder
// until everything is assigned. Phase switches use the engine's kNewPhase protocol.
//
// Replica safety: in the backward phase values (colors) are frozen, so the same-color
// filter may read neighbor values without races; scatters only touch delta_next slots,
// which accumulate atomically.

#ifndef SRC_ALGORITHMS_SCC_H_
#define SRC_ALGORITHMS_SCC_H_

#include <cmath>
#include <limits>

#include "src/core/vertex_program.h"

namespace cgraph {

class SccProgram : public VertexProgram {
 public:
  std::string_view name() const override { return "scc"; }
  AccKind acc_kind() const override { return AccKind::kMax; }
  // Not monotonic(): multi-phase (OnIterationEnd drives kNewPhase re-initializations),
  // which the async push stage's deferred-contribution window cannot replay across.

  VertexState InitialState(const LocalVertexInfo& info) const override {
    VertexState s;
    s.value = -std::numeric_limits<double>::infinity();
    s.delta = static_cast<double>(info.global_id);  // Bootstrap: own color.
    s.aux = 0.0;
    return s;
  }

  bool IsActive(const VertexState& state) const override {
    if (state.aux != 0.0) {
      return false;  // Already assigned to a component.
    }
    if (phase_ == Phase::kForward) {
      return state.delta > state.value;  // An improving color arrived.
    }
    return state.delta == state.value && std::isfinite(state.delta);  // Same-color flood.
  }

  void Compute(const GraphPartition& partition, LocalVertexId v,
               std::span<VertexState> states, ScatterOps& ops) override {
    VertexState& s = states[v];
    if (s.aux != 0.0) {
      return;
    }
    if (phase_ == Phase::kForward) {
      if (s.delta > s.value) {
        s.value = s.delta;
      }
      for (LocalVertexId target : partition.out_neighbors(v)) {
        ops.Accumulate(target, s.value);
      }
      return;
    }
    // Backward: v is reached by its root; join the component and flood to in-neighbors of
    // the same color. Colors are frozen in this phase, so Peek() is safe.
    s.aux = s.value + 1.0;
    for (LocalVertexId target : partition.in_neighbors(v)) {
      if (ops.Peek(target).value == s.value) {
        ops.Accumulate(target, s.value);
      }
    }
  }

  IterationAction OnIterationEnd(const IterationContext& context) override {
    if (context.any_active) {
      return IterationAction::kContinue;
    }
    if (!AnyUnassigned(context)) {
      return IterationAction::kFinished;
    }
    phase_ = phase_ == Phase::kForward ? Phase::kBackward : Phase::kForward;
    ++phase_switches_;
    return IterationAction::kNewPhase;
  }

  void ReinitVertex(const LocalVertexInfo& info, VertexState& state) const override {
    state.delta_next = -std::numeric_limits<double>::infinity();
    if (state.aux != 0.0) {
      state.delta = -std::numeric_limits<double>::infinity();  // Out of the game.
      return;
    }
    if (phase_ == Phase::kBackward) {
      // Roots (color == own id) bootstrap the flood; everyone else waits.
      state.delta = state.value == static_cast<double>(info.global_id)
                        ? state.value
                        : -std::numeric_limits<double>::infinity();
    } else {
      // New forward round on the remaining subgraph: fresh colors.
      state.value = -std::numeric_limits<double>::infinity();
      state.delta = static_cast<double>(info.global_id);
    }
  }

  uint64_t phase_switches() const { return phase_switches_; }

 private:
  enum class Phase { kForward, kBackward };

  static bool AnyUnassigned(const IterationContext& context) {
    const PartitionedGraph& layout = *context.layout;
    for (PartitionId p = 0; p < layout.num_partitions(); ++p) {
      const auto states = context.table->partition(p);
      const GraphPartition& part = layout.partition(p);
      for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
        if (part.vertex(v).is_master && states[v].aux == 0.0) {
          return true;
        }
      }
    }
    return false;
  }

  Phase phase_ = Phase::kForward;
  uint64_t phase_switches_ = 0;
};

}  // namespace cgraph

#endif  // SRC_ALGORITHMS_SCC_H_
