// Single-source shortest paths (paper Fig. 7(b)).
//
//   IsNotConvergent(v): v.delta < v.value (an improving distance arrived)
//   Acc(a, b):          min(a, b)
//   Compute:            value = min(value, delta); scatter value + w(v, t)

#ifndef SRC_ALGORITHMS_SSSP_H_
#define SRC_ALGORITHMS_SSSP_H_

#include <limits>

#include "src/core/vertex_program.h"

namespace cgraph {

class SsspProgram : public VertexProgram {
 public:
  explicit SsspProgram(VertexId source) : source_(source) {}

  std::string_view name() const override { return "sssp"; }
  AccKind acc_kind() const override { return AccKind::kMin; }

  // Min-based distance fixpoint: delivery order/batching never changes the converged
  // distances, so async execution is exact.
  bool monotonic() const override { return true; }

  VertexState InitialState(const LocalVertexInfo& info) const override {
    VertexState s;
    s.value = std::numeric_limits<double>::infinity();
    s.delta = info.global_id == source_ ? 0.0 : std::numeric_limits<double>::infinity();
    return s;
  }

  bool IsActive(const VertexState& state) const override { return state.delta < state.value; }

  void Compute(const GraphPartition& partition, LocalVertexId v,
               std::span<VertexState> states, ScatterOps& ops) override {
    VertexState& s = states[v];
    if (s.delta < s.value) {
      s.value = s.delta;
    }
    const auto targets = partition.out_neighbors(v);
    const auto weights = partition.out_weights(v);
    for (size_t i = 0; i < targets.size(); ++i) {
      ops.Accumulate(targets[i], s.value + weights[i]);
    }
  }

 private:
  VertexId source_;
};

}  // namespace cgraph

#endif  // SRC_ALGORITHMS_SSSP_H_
