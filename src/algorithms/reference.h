// Single-threaded reference implementations on whole-graph CSR.
//
// These are the ground truth that every executor (LTP engine and all baselines) is
// cross-validated against: exact equality for min/max-accumulator algorithms, small
// tolerance for PageRank (floating-point associativity differs across schedules).

#ifndef SRC_ALGORITHMS_REFERENCE_H_
#define SRC_ALGORITHMS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace cgraph {

// Delta-accumulation PageRank with the same semantics as PageRankProgram (no dangling
// redistribution). Returns per-vertex values.
std::vector<double> ReferencePageRank(const Graph& graph, double damping, double epsilon,
                                      uint64_t max_iterations = 10000);

// Dijkstra distances using double arithmetic identical to SsspProgram's relaxations.
// Unreachable vertices hold +infinity.
std::vector<double> ReferenceSssp(const Graph& graph, VertexId source);

// BFS hop counts; unreachable vertices hold +infinity.
std::vector<double> ReferenceBfs(const Graph& graph, VertexId source);

// Weakly connected components labeled by the minimum vertex id in each component.
std::vector<double> ReferenceWcc(const Graph& graph);

// k-core membership: 1.0 if the vertex survives peeling at threshold k (degree counted
// over both directions, self-loops counted twice), else 0.0.
std::vector<double> ReferenceKCore(const Graph& graph, uint32_t k);

// Strongly connected components, labeled by the minimum vertex id in each component
// (iterative Tarjan).
std::vector<double> ReferenceScc(const Graph& graph);

// Personalized PageRank with restart mass on `seed` (same semantics as
// PersonalizedPageRankProgram).
std::vector<double> ReferencePersonalizedPageRank(const Graph& graph, VertexId seed,
                                                  double damping, double epsilon,
                                                  uint64_t max_iterations = 10000);

// Hop distances truncated at max_hops; vertices further away hold +infinity.
std::vector<double> ReferenceKHop(const Graph& graph, VertexId source, uint32_t max_hops);

// Normalizes arbitrary component labels to min-member canonical labels so two labelings
// can be compared for identical partitions.
std::vector<double> CanonicalizeLabels(const std::vector<double>& labels);

}  // namespace cgraph

#endif  // SRC_ALGORITHMS_REFERENCE_H_
