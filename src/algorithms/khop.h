// k-hop reachability: hop distances from a source, truncated at `max_hops`. A bounded
// BFS — the frontier dies once the budget is exhausted, so the job touches only the
// partitions within k hops of the source (an extreme case of the paper's partition
// skipping, section 3.2.2).

#ifndef SRC_ALGORITHMS_KHOP_H_
#define SRC_ALGORITHMS_KHOP_H_

#include <limits>

#include "src/core/vertex_program.h"

namespace cgraph {

class KHopProgram : public VertexProgram {
 public:
  KHopProgram(VertexId source, uint32_t max_hops) : source_(source), max_hops_(max_hops) {}

  std::string_view name() const override { return "khop"; }
  AccKind acc_kind() const override { return AccKind::kMin; }

  // Bounded BFS: still a min-hop fixpoint (the hop budget only prunes scatters whose
  // contributions could never win a min), so async execution is exact.
  bool monotonic() const override { return true; }

  VertexState InitialState(const LocalVertexInfo& info) const override {
    VertexState s;
    s.value = std::numeric_limits<double>::infinity();
    s.delta = info.global_id == source_ ? 0.0 : std::numeric_limits<double>::infinity();
    return s;
  }

  bool IsActive(const VertexState& state) const override { return state.delta < state.value; }

  void Compute(const GraphPartition& partition, LocalVertexId v,
               std::span<VertexState> states, ScatterOps& ops) override {
    VertexState& s = states[v];
    if (s.delta < s.value) {
      s.value = s.delta;
    }
    if (s.value >= static_cast<double>(max_hops_)) {
      return;  // Hop budget exhausted: do not extend the frontier.
    }
    for (LocalVertexId target : partition.out_neighbors(v)) {
      ops.Accumulate(target, s.value + 1.0);
    }
  }

 private:
  VertexId source_;
  uint32_t max_hops_;
};

}  // namespace cgraph

#endif  // SRC_ALGORITHMS_KHOP_H_
