#include "src/algorithms/factory.h"

#include <algorithm>
#include <vector>

#include "src/algorithms/bfs.h"
#include "src/algorithms/kcore.h"
#include "src/algorithms/khop.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/personalized_pagerank.h"
#include "src/algorithms/scc.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/wcc.h"
#include "src/common/check.h"

namespace cgraph {

VertexId PickSourceVertex(const EdgeList& edges) {
  if (edges.num_vertices() == 0) {
    return 0;
  }
  std::vector<uint32_t> out_degree(edges.num_vertices(), 0);
  for (const Edge& e : edges.edges()) {
    ++out_degree[e.src];
  }
  // Smallest *positive* out-degree, lowest id on ties. A hub source is replicated into
  // nearly every partition under vertex-cut partitioning, so traversals rooted at one
  // have near-full initial footprints and footprint-aware admission (overlap/predict)
  // cannot discriminate between them; a low-degree source keeps traversal footprints
  // localized. Zero-out-degree vertices are excluded — a traversal from one never
  // leaves its source.
  VertexId best = kInvalidVertex;
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (out_degree[v] == 0) {
      continue;
    }
    if (best == kInvalidVertex || out_degree[v] < out_degree[best]) {
      best = v;
    }
  }
  return best == kInvalidVertex ? 0 : best;
}

std::vector<VertexId> PickSourcePool(const EdgeList& edges, size_t count) {
  std::vector<uint32_t> out_degree(edges.num_vertices(), 0);
  for (const Edge& e : edges.edges()) {
    ++out_degree[e.src];
  }
  // Same localized-footprint rationale as PickSourceVertex, generalized to the `count`
  // best candidates. A full sort is fine here: pools are small and the call is once per
  // daemon run.
  std::vector<VertexId> candidates;
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (out_degree[v] > 0) {
      candidates.push_back(v);
    }
  }
  if (candidates.empty()) {
    return {0};
  }
  std::sort(candidates.begin(), candidates.end(), [&](VertexId a, VertexId b) {
    return out_degree[a] != out_degree[b] ? out_degree[a] < out_degree[b] : a < b;
  });
  candidates.resize(std::min(candidates.size(), std::max<size_t>(count, 1)));
  return candidates;
}

std::unique_ptr<VertexProgram> MakeProgram(const std::string& name, VertexId source,
                                           uint32_t k) {
  if (name == "pagerank") {
    // Benchmark-grade tolerance: ~35-40 iterations, comparable to the other jobs in the
    // mix so the four jobs stay concurrently active, as they are on the paper's
    // billion-edge graphs (the correctness tests construct PageRankProgram with tighter
    // epsilons explicitly).
    return std::make_unique<PageRankProgram>(0.85, 1e-4);
  }
  if (name == "sssp") {
    return std::make_unique<SsspProgram>(source);
  }
  if (name == "scc") {
    return std::make_unique<SccProgram>();
  }
  if (name == "bfs") {
    return std::make_unique<BfsProgram>(source);
  }
  if (name == "wcc") {
    return std::make_unique<WccProgram>();
  }
  if (name == "kcore") {
    return std::make_unique<KCoreProgram>(k);
  }
  if (name == "ppr") {
    return std::make_unique<PersonalizedPageRankProgram>(source, 0.85, 1e-7);
  }
  if (name == "khop") {
    return std::make_unique<KHopProgram>(source, k);
  }
  CGRAPH_CHECK(false);
  return nullptr;
}

std::vector<std::string> BenchmarkJobNames(size_t count) {
  static const char* kMix[] = {"pagerank", "sssp", "scc", "bfs"};
  std::vector<std::string> names;
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    names.emplace_back(kMix[i % 4]);
  }
  return names;
}

}  // namespace cgraph
