// Incremental snapshot storage for evolving graphs (paper §3.2.1, Fig. 5).
//
// The base PartitionedGraph is timestamp 0. Each later snapshot stores *only* the new
// versions of partitions that changed ("the series of snapshots can be stored in an
// incremental way for low overhead"); unchanged partitions are shared with older
// snapshots. A job submitted at time t resolves each partition to the newest version with
// timestamp <= t, so concurrent jobs bound to different snapshots still share every
// unchanged partition — the mechanism behind the paper's Figures 16–19.
//
// Changes are modeled as edge rewires inside a partition (targets re-pointed among the
// partition's local vertices). This keeps vertex membership and master/mirror routing
// stable across versions, which matches what the experiments need: what is measured is
// how much *loading* is shared between snapshot-bound jobs, not the semantics of graph
// surgery.

#ifndef SRC_STORAGE_SNAPSHOT_STORE_H_
#define SRC_STORAGE_SNAPSHOT_STORE_H_

#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/partition/partitioned_graph.h"

namespace cgraph {

class SnapshotStore {
 public:
  // Takes ownership of the base graph (timestamp 0).
  explicit SnapshotStore(PartitionedGraph base);

  const PartitionedGraph& base() const { return base_; }
  uint32_t num_partitions() const { return base_.num_partitions(); }

  // Creates a snapshot at `timestamp` in which a `change_ratio` fraction of the graph's
  // edges is rewired. Real-world graph updates are localized (a crawl refreshes sites,
  // a social batch touches communities), so the rewires are clustered: roughly
  // ceil(P * 4 * ratio) randomly chosen partitions absorb all of them, and only those
  // get new versions — everything else is shared with the previous snapshot. Timestamps
  // must be strictly increasing. Returns the number of re-versioned partitions.
  uint32_t CreateSnapshot(Timestamp timestamp, double change_ratio, uint64_t seed);

  // Resolves partition p for a job submitted at `job_time`: the newest version with
  // timestamp <= job_time.
  const GraphPartition& Resolve(PartitionId p, Timestamp job_time) const;

  // Dense index of the resolved version (0 = base), used as ItemKey::version so that two
  // jobs bound to the same version share cache/memory items.
  uint32_t ResolveVersionIndex(PartitionId p, Timestamp job_time) const;

  // Number of stored versions of partition p (>= 1).
  uint32_t VersionCount(PartitionId p) const {
    return 1 + static_cast<uint32_t>(versions_[p].size());
  }

  // Total bytes of all stored versions beyond the base (the incremental-storage cost, and
  // what a Version-Traveler-style memory layout keeps resident in addition to the base).
  uint64_t delta_bytes() const;

  Timestamp latest_timestamp() const { return latest_timestamp_; }

 private:
  struct Version {
    Timestamp timestamp;
    std::unique_ptr<GraphPartition> data;
  };

  PartitionedGraph base_;
  std::vector<std::vector<Version>> versions_;  // Per partition, ascending timestamps.
  Timestamp latest_timestamp_ = 0;
};

}  // namespace cgraph

#endif  // SRC_STORAGE_SNAPSHOT_STORE_H_
