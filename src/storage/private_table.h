// One job's private vertex-state table, split per partition (paper Fig. 4(b)).
//
// Layout mirrors the structure partitions: private partition i holds one VertexState per
// local vertex of structure partition i, indexed by local id. The per-partition byte sizes
// feed the cache/memory simulation (private tables are what job batches rotate through
// while a structure partition stays pinned).

#ifndef SRC_STORAGE_PRIVATE_TABLE_H_
#define SRC_STORAGE_PRIVATE_TABLE_H_

#include <span>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/partition/partitioned_graph.h"
#include "src/storage/vertex_state.h"

namespace cgraph {

class PrivateTable {
 public:
  PrivateTable() = default;

  // Allocates state rows matching `graph`'s partition layout.
  explicit PrivateTable(const PartitionedGraph& graph) {
    partitions_.resize(graph.num_partitions());
    for (PartitionId p = 0; p < graph.num_partitions(); ++p) {
      partitions_[p].assign(graph.partition(p).num_local_vertices(), VertexState{});
    }
  }

  uint32_t num_partitions() const { return static_cast<uint32_t>(partitions_.size()); }

  std::span<VertexState> partition(PartitionId p) {
    CGRAPH_DCHECK(p < partitions_.size());
    return partitions_[p];
  }
  std::span<const VertexState> partition(PartitionId p) const {
    CGRAPH_DCHECK(p < partitions_.size());
    return partitions_[p];
  }

  // Bytes of private partition p, as charged to the hierarchy.
  uint64_t partition_bytes(PartitionId p) const {
    return partitions_[p].size() * sizeof(VertexState);
  }

  uint64_t total_bytes() const {
    uint64_t total = 0;
    for (const auto& part : partitions_) {
      total += part.size() * sizeof(VertexState);
    }
    return total;
  }

 private:
  std::vector<std::vector<VertexState>> partitions_;
};

}  // namespace cgraph

#endif  // SRC_STORAGE_PRIVATE_TABLE_H_
