// The global table: one entry per graph-structure partition (paper Fig. 4 and §3.2.2).
//
// Each entry records the partition's size, and — the key to the temporal-correlation
// scheduling — the set of jobs registered to process the partition at the next iteration
// ("the third field stores the IDs of the jobs to process it at the next iteration").
// N(P) of priority Eq. 1 is exactly this set's cardinality. Registration is maintained by
// activation tracing: when a job's iteration ends, the partitions holding its newly active
// vertices are registered for that job.

#ifndef SRC_STORAGE_GLOBAL_TABLE_H_
#define SRC_STORAGE_GLOBAL_TABLE_H_

#include <vector>

#include "src/common/bitset.h"
#include "src/common/check.h"
#include "src/common/types.h"

namespace cgraph {

class GlobalTable {
 public:
  GlobalTable(uint32_t num_partitions, uint32_t max_jobs)
      : max_jobs_(max_jobs), entries_(num_partitions) {
    for (auto& e : entries_) {
      e.registered.Resize(max_jobs);
    }
  }

  uint32_t num_partitions() const { return static_cast<uint32_t>(entries_.size()); }
  uint32_t max_jobs() const { return max_jobs_; }

  // Registers / unregisters job j for partition p's next iteration.
  void Register(PartitionId p, JobId j) {
    CGRAPH_DCHECK(j < max_jobs_);
    Entry& e = entries_[p];
    if (!e.registered.Test(j)) {
      e.registered.Set(j);
      ++e.count;
    }
  }

  void Unregister(PartitionId p, JobId j) {
    Entry& e = entries_[p];
    if (e.registered.Test(j)) {
      e.registered.Clear(j);
      --e.count;
    }
  }

  bool IsRegistered(PartitionId p, JobId j) const { return entries_[p].registered.Test(j); }

  // N(P): how many jobs need partition p — the temporal-correlation term of Eq. 1.
  uint32_t RegisteredCount(PartitionId p) const { return entries_[p].count; }

  // A partition is active when any job needs it; inactive partitions are skipped entirely
  // ("it does not load G_i when there is no job to handle G_i", §3.2.2).
  bool IsActive(PartitionId p) const { return entries_[p].count > 0; }

  // Invokes fn(slot) for each registered job of p in increasing slot order, scanning the
  // registration bitmask word-at-a-time.
  template <typename Fn>
  void ForEachRegistered(PartitionId p, Fn&& fn) const {
    entries_[p].registered.ForEachSetBit([&fn](size_t j) { fn(static_cast<JobId>(j)); });
  }

  // Collects the registered jobs of p in increasing job id order.
  std::vector<JobId> RegisteredJobs(PartitionId p) const {
    std::vector<JobId> jobs;
    jobs.reserve(entries_[p].count);
    ForEachRegistered(p, [&jobs](JobId j) { jobs.push_back(j); });
    return jobs;
  }

  // Removes job j from every partition (job finished or deregistered).
  void UnregisterEverywhere(JobId j) {
    for (PartitionId p = 0; p < num_partitions(); ++p) {
      Unregister(p, j);
    }
  }

  // C(P) bookkeeping: mean normalized state change of P's vertices at the previous
  // iteration, averaged over jobs (the spatial "importance" term of Eq. 1).
  void SetStateChange(PartitionId p, double change) { entries_[p].state_change = change; }
  double StateChange(PartitionId p) const { return entries_[p].state_change; }

 private:
  struct Entry {
    DynamicBitset registered;
    uint32_t count = 0;
    double state_change = 0.0;
  };

  uint32_t max_jobs_;
  std::vector<Entry> entries_;
};

}  // namespace cgraph

#endif  // SRC_STORAGE_GLOBAL_TABLE_H_
