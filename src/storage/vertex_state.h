// Per-job per-vertex state and accumulation semantics.
//
// The paper decouples an algorithm's data as D = (V, S, E, W): the structure (V, E, W) is
// shared; the state S is private to each job. A state entry mirrors the paper's private
// table item (vertex id is implicit via the local index) and carries:
//   value      — the algorithm result (rank, distance, label, ...)
//   delta      — the accumulated neighbor contributions consumed this iteration (Δvalue)
//   delta_next — the double-buffered accumulator that this iteration's scatters target;
//                at the Push stage it is replica-merged and becomes next iteration's delta
//   aux        — algorithm extra (SCC component id, k-core removal flag); not synchronized
// The double buffer makes iteration results independent of partition processing order, so
// all executors in this repo can be bit-compared; with the paper's single Δ the comparison
// would only hold for monotone accumulators.

#ifndef SRC_STORAGE_VERTEX_STATE_H_
#define SRC_STORAGE_VERTEX_STATE_H_

#include <atomic>
#include <limits>

#include "src/common/types.h"

namespace cgraph {

struct VertexState {
  double value = 0.0;
  double delta = 0.0;
  double delta_next = 0.0;
  double aux = 0.0;
};

// The paper's user-supplied Acc() is always a commutative, associative reduction; we
// enumerate the three used by the benchmark algorithms so scatters can accumulate with a
// lock-free compare-exchange loop.
enum class AccKind : uint8_t {
  kSum,
  kMin,
  kMax,
};

inline double AccIdentity(AccKind kind) {
  switch (kind) {
    case AccKind::kSum:
      return 0.0;
    case AccKind::kMin:
      return std::numeric_limits<double>::infinity();
    case AccKind::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

inline double AccApply(AccKind kind, double a, double b) {
  switch (kind) {
    case AccKind::kSum:
      return a + b;
    case AccKind::kMin:
      return a < b ? a : b;
    case AccKind::kMax:
      return a > b ? a : b;
  }
  return a;
}

// Lock-free accumulate of `contribution` into `slot` under `kind`. Correct for any number
// of concurrent writers because the reduction is commutative and associative.
inline void AtomicAccumulate(AccKind kind, double* slot, double contribution) {
  std::atomic_ref<double> cell(*slot);
  double observed = cell.load(std::memory_order_relaxed);
  while (true) {
    const double desired = AccApply(kind, observed, contribution);
    if (desired == observed) {
      return;  // No change (min/max already dominated).
    }
    if (cell.compare_exchange_weak(observed, desired, std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace cgraph

#endif  // SRC_STORAGE_VERTEX_STATE_H_
