#include "src/storage/snapshot_store.h"

#include <algorithm>
#include <cmath>

#include "src/common/prng.h"

namespace cgraph {

SnapshotStore::SnapshotStore(PartitionedGraph base)
    : base_(std::move(base)), versions_(base_.num_partitions()) {}

uint32_t SnapshotStore::CreateSnapshot(Timestamp timestamp, double change_ratio,
                                       uint64_t seed) {
  CGRAPH_CHECK(timestamp > latest_timestamp_);
  CGRAPH_CHECK(change_ratio >= 0.0 && change_ratio <= 1.0);
  latest_timestamp_ = timestamp;
  const uint64_t total_rewires = static_cast<uint64_t>(
      std::llround(change_ratio * static_cast<double>(base_.num_edges())));
  if (total_rewires == 0) {
    return 0;
  }

  // Cluster the rewires into a ratio-scaled subset of the non-empty partitions.
  std::vector<PartitionId> candidates;
  for (PartitionId p = 0; p < base_.num_partitions(); ++p) {
    if (base_.partition(p).num_local_edges() > 0) {
      candidates.push_back(p);
    }
  }
  if (candidates.empty()) {
    return 0;
  }
  Xoshiro256 rng(seed);
  for (size_t i = candidates.size(); i > 1; --i) {
    std::swap(candidates[i - 1], candidates[rng.NextBounded(i)]);
  }
  const size_t affected = std::min<size_t>(
      candidates.size(),
      std::max<size_t>(1, static_cast<size_t>(std::ceil(
                              4.0 * change_ratio * static_cast<double>(candidates.size())))));
  candidates.resize(affected);

  const uint64_t per_partition =
      std::max<uint64_t>(1, total_rewires / static_cast<uint64_t>(affected));
  uint32_t changed = 0;
  for (const PartitionId p : candidates) {
    const GraphPartition& current = Resolve(p, timestamp);  // Newest existing version.
    Version v;
    v.timestamp = timestamp;
    v.data = std::make_unique<GraphPartition>(current.RewireClone(
        per_partition, seed ^ (static_cast<uint64_t>(p) * 0x9e3779b97f4a7c15ULL)));
    versions_[p].push_back(std::move(v));
    ++changed;
  }
  return changed;
}

const GraphPartition& SnapshotStore::Resolve(PartitionId p, Timestamp job_time) const {
  const auto& chain = versions_[p];
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (it->timestamp <= job_time) {
      return *it->data;
    }
  }
  return base_.partition(p);
}

uint32_t SnapshotStore::ResolveVersionIndex(PartitionId p, Timestamp job_time) const {
  const auto& chain = versions_[p];
  for (size_t i = chain.size(); i > 0; --i) {
    if (chain[i - 1].timestamp <= job_time) {
      return static_cast<uint32_t>(i);
    }
  }
  return 0;
}

uint64_t SnapshotStore::delta_bytes() const {
  uint64_t total = 0;
  for (const auto& chain : versions_) {
    for (const auto& v : chain) {
      total += v.data->structure_bytes();
    }
  }
  return total;
}

}  // namespace cgraph
