// Vertex-id reordering (relabeling) utilities.
//
// Partitioning by sorted source id makes vertex locality a function of the id layout, so
// relabeling is the standard preprocessing lever for cache behaviour: degree ordering
// clusters hubs into the same (core) partitions, BFS ordering keeps topologically close
// vertices in the same chunk. Both return a relabeled copy plus the permutation used, so
// results can be mapped back.

#ifndef SRC_GRAPH_REORDER_H_
#define SRC_GRAPH_REORDER_H_

#include <vector>

#include "src/graph/edge_list.h"

namespace cgraph {

struct ReorderResult {
  EdgeList edges;                    // Relabeled copy.
  std::vector<VertexId> new_id;      // old id -> new id.
  std::vector<VertexId> old_id;      // new id -> old id.
};

// Relabels so that vertices are numbered by descending total degree (hubs first, which
// the core-subgraph partitioner then groups into the leading partitions).
ReorderResult ReorderByDegree(const EdgeList& edges);

// Relabels in BFS discovery order from the highest-out-degree vertex (unreached vertices
// keep their relative order after all reached ones).
ReorderResult ReorderByBfs(const EdgeList& edges);

}  // namespace cgraph

#endif  // SRC_GRAPH_REORDER_H_
