#include "src/graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/strings.h"

namespace cgraph {
namespace {

constexpr uint64_t kBinaryMagic = 0x43475245444745ULL;  // "CGREDGE"

std::string LineError(const std::string& path, size_t line, const char* what) {
  std::ostringstream os;
  os << path << ":" << line << ": " << what;
  return os.str();
}

}  // namespace

Result<EdgeList> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  EdgeList list;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    const auto fields = SplitNonEmpty(stripped, " \t,");
    if (fields.size() != 2 && fields.size() != 3) {
      return Status::InvalidArgument(LineError(path, line_no, "expected 'src dst [weight]'"));
    }
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!ParseUint64(fields[0], &src) || !ParseUint64(fields[1], &dst)) {
      return Status::InvalidArgument(LineError(path, line_no, "endpoints must be non-negative integers"));
    }
    if (src > kInvalidVertex - 1 || dst > kInvalidVertex - 1) {
      return Status::OutOfRange(LineError(path, line_no, "vertex id exceeds 32-bit range"));
    }
    double weight = 1.0;
    if (fields.size() == 3 && !ParseDouble(fields[2], &weight)) {
      return Status::InvalidArgument(LineError(path, line_no, "weight must be a number"));
    }
    list.Add(static_cast<VertexId>(src), static_cast<VertexId>(dst), static_cast<Weight>(weight));
  }
  return list;
}

Status SaveEdgeListText(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out << "# cgraph edge list: " << edges.num_vertices() << " vertices, " << edges.num_edges()
      << " edges\n";
  bool weighted = false;
  for (const Edge& e : edges.edges()) {
    if (e.weight != 1.0f) {
      weighted = true;
      break;
    }
  }
  for (const Edge& e : edges.edges()) {
    out << e.src << ' ' << e.dst;
    if (weighted) {
      out << ' ' << e.weight;
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::Internal("write failed for " + path);
  }
  return Status::Ok();
}

Result<EdgeList> LoadEdgeListBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  uint64_t magic = 0;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&num_vertices), sizeof(num_vertices));
  in.read(reinterpret_cast<char*>(&num_edges), sizeof(num_edges));
  if (!in || magic != kBinaryMagic) {
    return Status::InvalidArgument(path + ": not a cgraph binary edge list");
  }
  if (num_vertices > kInvalidVertex) {
    return Status::OutOfRange(path + ": vertex count exceeds 32-bit range");
  }
  std::vector<Edge> edges(num_edges);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(num_edges * sizeof(Edge)));
  if (!in) {
    return Status::InvalidArgument(path + ": truncated edge payload");
  }
  return EdgeList(static_cast<VertexId>(num_vertices), std::move(edges));
}

Status SaveEdgeListBinary(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const uint64_t magic = kBinaryMagic;
  const uint64_t num_vertices = edges.num_vertices();
  const uint64_t num_edges = edges.num_edges();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&num_vertices), sizeof(num_vertices));
  out.write(reinterpret_cast<const char*>(&num_edges), sizeof(num_edges));
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(num_edges * sizeof(Edge)));
  out.flush();
  if (!out) {
    return Status::Internal("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace cgraph
