// Compressed sparse row (CSR) view of a whole graph.
//
// The LTP engine works on PartitionedGraph (src/partition), but whole-graph CSR is needed
// by the reference algorithm implementations, the core-subgraph partitioner (degree
// inspection), and the dataset statistics of Table 1.

#ifndef SRC_GRAPH_GRAPH_H_
#define SRC_GRAPH_GRAPH_H_

#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/graph/edge_list.h"

namespace cgraph {

class Graph {
 public:
  // Builds out- and in-CSR from an edge list (edges are not required to be sorted).
  static Graph FromEdges(const EdgeList& edges);

  VertexId num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return static_cast<uint64_t>(out_targets_.size()); }

  uint32_t out_degree(VertexId v) const { return out_offsets_[v + 1] - out_offsets_[v]; }
  uint32_t in_degree(VertexId v) const { return in_offsets_[v + 1] - in_offsets_[v]; }
  uint32_t degree(VertexId v) const { return out_degree(v) + in_degree(v); }

  std::span<const VertexId> out_neighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v], out_degree(v)};
  }
  std::span<const Weight> out_weights(VertexId v) const {
    return {out_weights_.data() + out_offsets_[v], out_degree(v)};
  }
  std::span<const VertexId> in_neighbors(VertexId v) const {
    return {in_targets_.data() + in_offsets_[v], in_degree(v)};
  }
  std::span<const Weight> in_weights(VertexId v) const {
    return {in_weights_.data() + in_offsets_[v], in_degree(v)};
  }

  double average_degree() const {
    return num_vertices_ == 0 ? 0.0
                              : static_cast<double>(num_edges()) / static_cast<double>(num_vertices_);
  }

  uint32_t max_out_degree() const;
  uint32_t max_total_degree() const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<uint64_t> out_offsets_;  // size num_vertices_ + 1
  std::vector<VertexId> out_targets_;
  std::vector<Weight> out_weights_;
  std::vector<uint64_t> in_offsets_;
  std::vector<VertexId> in_targets_;
  std::vector<Weight> in_weights_;
};

}  // namespace cgraph

#endif  // SRC_GRAPH_GRAPH_H_
