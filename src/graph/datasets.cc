#include "src/graph/datasets.h"

#include "src/common/check.h"
#include "src/common/prng.h"
#include "src/graph/generators.h"

namespace cgraph {

std::vector<DatasetSpec> PaperDatasets(int scale_shift) {
  // Scales chosen so the size ladder matches Table 1's ordering:
  //   Twitter (1.4B edges) < Friendster (1.8B) < uk2007 (3.7B) < uk-union (5.5B)
  //   << hyperlink14 (64.4B).
  // Average degrees approximate the originals (Twitter ~34, Friendster ~28, uk2007 ~35,
  // uk-union ~41, hyperlink14 ~38).
  std::vector<DatasetSpec> specs = {
      {"twitter-sim", "Twitter", 14, 24, 101, 41.7, 1.4, 17.5},
      {"friendster-sim", "Friendster", 15, 20, 102, 65.0, 1.8, 22.7},
      {"uk2007-sim", "uk2007", 15, 28, 103, 105.9, 3.7, 46.2},
      {"ukunion-sim", "uk-union", 16, 24, 104, 133.6, 5.5, 68.3},
      {"hyperlink14-sim", "hyperlink14", 17, 28, 105, 1700.0, 64.4, 480.0},
  };
  for (auto& s : specs) {
    const int scaled = static_cast<int>(s.rmat_scale) + scale_shift;
    CGRAPH_CHECK(scaled >= 4 && scaled <= 26);
    s.rmat_scale = static_cast<uint32_t>(scaled);
  }
  return specs;
}

EdgeList GenerateDataset(const DatasetSpec& spec) {
  RmatOptions options;
  options.scale = spec.rmat_scale;
  options.edge_factor = spec.edge_factor;
  options.seed = spec.seed;
  // A wide weight range makes shortest paths hop-rich, pushing SSSP's iteration count
  // toward the long-running regime it has on the full-size graphs.
  options.max_weight = 64.0;
  const EdgeList raw = GenerateRmat(options);
  const VertexId n = raw.num_vertices();
  constexpr VertexId kChain = 16;
  if (n <= 4 * kChain) {
    return raw;
  }

  // Deep periphery: web graphs are power-law *and* deep (uk2007/hyperlink14 have BFS
  // depths in the hundreds) while pure R-MAT has a diameter of ~6. The top quarter of the
  // id space becomes a periphery reachable only along chains: R-MAT edges pointing into
  // it are re-targeted into the core, and the periphery is woven into 64-vertex chains of
  // consecutive ids (so each chain stays inside a few src-sorted partitions), each
  // entered by one edge from a random core vertex. Traversal jobs (BFS/SSSP/SCC) then
  // run for dozens-to-hundreds of iterations, as they do at the paper's scale, and the
  // intra-partition chains are the structure CLIP-style reentry exploits.
  const VertexId core = n - n / 4;
  EdgeList list;
  list.set_num_vertices(n);
  for (const Edge& e : raw.edges()) {
    const VertexId dst = e.dst >= core ? e.dst % core : e.dst;
    if (e.src == dst) {
      continue;
    }
    list.Add(e.src, dst, e.weight);
  }
  // Chains run in ascending id order: SCC's forward/backward coloring settles them in a
  // single round (each chain vertex is its own singleton root), so the chain depth shows
  // up where it should — in the traversal algorithms' iteration counts.
  Xoshiro256 rng(spec.seed ^ 0xBACBACULL);
  for (VertexId start = core; start + kChain <= n; start += kChain) {
    list.Add(static_cast<VertexId>(rng.NextBounded(core)), start, 1.0f);  // Chain entry.
    for (VertexId i = 0; i + 1 < kChain; ++i) {
      list.Add(start + i, start + i + 1, 1.0f);
    }
  }
  list.SortAndDedup();
  return list;
}

uint64_t EstimateStructureBytes(const EdgeList& edges) {
  return edges.num_edges() * 12ULL + edges.num_vertices() * 8ULL;
}

}  // namespace cgraph
