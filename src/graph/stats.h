// Degree statistics for Table 1 and for the core-subgraph threshold selection.

#ifndef SRC_GRAPH_STATS_H_
#define SRC_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace cgraph {

struct DegreeStats {
  double average_out_degree = 0.0;
  uint32_t max_out_degree = 0;
  uint32_t max_total_degree = 0;
  // Fraction of edges incident (as source) to the top `hub_fraction` of vertices by
  // out-degree — a skew measure; power-law graphs concentrate most edges on few hubs.
  double edges_on_top_percent_hubs = 0.0;
  double hub_fraction = 0.01;
};

DegreeStats ComputeDegreeStats(const Graph& graph, double hub_fraction = 0.01);

// Out-degree histogram with log2 buckets: bucket[i] counts vertices with out-degree in
// [2^i, 2^(i+1)). bucket[0] also counts degree-0 and degree-1 vertices.
std::vector<uint64_t> DegreeHistogramLog2(const Graph& graph);

}  // namespace cgraph

#endif  // SRC_GRAPH_STATS_H_
