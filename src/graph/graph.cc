#include "src/graph/graph.h"

#include <algorithm>

namespace cgraph {

Graph Graph::FromEdges(const EdgeList& edges) {
  Graph g;
  g.num_vertices_ = edges.num_vertices();
  const size_t m = edges.num_edges();
  g.out_offsets_.assign(g.num_vertices_ + 1, 0);
  g.in_offsets_.assign(g.num_vertices_ + 1, 0);
  for (const Edge& e : edges.edges()) {
    ++g.out_offsets_[e.src + 1];
    ++g.in_offsets_[e.dst + 1];
  }
  for (VertexId v = 0; v < g.num_vertices_; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.out_targets_.resize(m);
  g.out_weights_.resize(m);
  g.in_targets_.resize(m);
  g.in_weights_.resize(m);
  std::vector<uint64_t> out_cursor(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const Edge& e : edges.edges()) {
    const uint64_t oi = out_cursor[e.src]++;
    g.out_targets_[oi] = e.dst;
    g.out_weights_[oi] = e.weight;
    const uint64_t ii = in_cursor[e.dst]++;
    g.in_targets_[ii] = e.src;
    g.in_weights_[ii] = e.weight;
  }
  return g;
}

uint32_t Graph::max_out_degree() const {
  uint32_t best = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    best = std::max(best, out_degree(v));
  }
  return best;
}

uint32_t Graph::max_total_degree() const {
  uint32_t best = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    best = std::max(best, degree(v));
  }
  return best;
}

}  // namespace cgraph
