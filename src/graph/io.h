// Edge-list file formats.
//
// Text format: one `src dst [weight]` triple per line, `#`-prefixed comment lines, blank
// lines ignored. Binary format: little-endian header {magic, num_vertices, num_edges}
// followed by packed Edge records — the format our dataset cache uses to avoid re-parsing.

#ifndef SRC_GRAPH_IO_H_
#define SRC_GRAPH_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/graph/edge_list.h"

namespace cgraph {

// Parses the text format described above. Fails with line-numbered diagnostics.
Result<EdgeList> LoadEdgeListText(const std::string& path);

// Writes the text format (weights included when any differs from 1).
Status SaveEdgeListText(const EdgeList& edges, const std::string& path);

// Binary round-trip.
Result<EdgeList> LoadEdgeListBinary(const std::string& path);
Status SaveEdgeListBinary(const EdgeList& edges, const std::string& path);

}  // namespace cgraph

#endif  // SRC_GRAPH_IO_H_
