#include "src/graph/edge_list.h"

#include <algorithm>

namespace cgraph {

void EdgeList::Add(VertexId src, VertexId dst, Weight weight) {
  edges_.push_back(Edge{src, dst, weight});
  const VertexId needed = std::max(src, dst) + 1;
  if (needed > num_vertices_) {
    num_vertices_ = needed;
  }
}

void EdgeList::SortAndDedup() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) {
      return a.src < b.src;
    }
    return a.dst < b.dst;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               edges_.end());
}

void EdgeList::RemoveSelfLoops() {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
}

void EdgeList::FitNumVertices() {
  VertexId max_id = 0;
  bool any = false;
  for (const Edge& e : edges_) {
    max_id = std::max({max_id, e.src, e.dst});
    any = true;
  }
  num_vertices_ = any ? max_id + 1 : 0;
}

}  // namespace cgraph
