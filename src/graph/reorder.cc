#include "src/graph/reorder.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "src/common/check.h"

namespace cgraph {
namespace {

ReorderResult ApplyPermutation(const EdgeList& edges, std::vector<VertexId> old_id) {
  const VertexId n = edges.num_vertices();
  CGRAPH_CHECK_EQ(old_id.size(), n);
  ReorderResult result;
  result.old_id = std::move(old_id);
  result.new_id.assign(n, 0);
  for (VertexId new_v = 0; new_v < n; ++new_v) {
    result.new_id[result.old_id[new_v]] = new_v;
  }
  std::vector<Edge> relabeled;
  relabeled.reserve(edges.num_edges());
  for (const Edge& e : edges.edges()) {
    relabeled.push_back(Edge{result.new_id[e.src], result.new_id[e.dst], e.weight});
  }
  result.edges = EdgeList(n, std::move(relabeled));
  return result;
}

std::vector<uint32_t> TotalDegrees(const EdgeList& edges) {
  std::vector<uint32_t> degree(edges.num_vertices(), 0);
  for (const Edge& e : edges.edges()) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  return degree;
}

}  // namespace

ReorderResult ReorderByDegree(const EdgeList& edges) {
  const VertexId n = edges.num_vertices();
  const std::vector<uint32_t> degree = TotalDegrees(edges);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&degree](VertexId a, VertexId b) {
    return degree[a] > degree[b];
  });
  return ApplyPermutation(edges, std::move(order));
}

ReorderResult ReorderByBfs(const EdgeList& edges) {
  const VertexId n = edges.num_vertices();
  // Adjacency (out-direction) for the traversal.
  std::vector<uint32_t> out_degree(n, 0);
  for (const Edge& e : edges.edges()) {
    ++out_degree[e.src];
  }
  std::vector<uint64_t> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + out_degree[v];
  }
  std::vector<VertexId> targets(edges.num_edges());
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges.edges()) {
    targets[cursor[e.src]++] = e.dst;
  }

  VertexId root = 0;
  for (VertexId v = 1; v < n; ++v) {
    if (out_degree[v] > out_degree[root]) {
      root = v;
    }
  }

  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  if (n > 0) {
    std::queue<VertexId> frontier;
    frontier.push(root);
    visited[root] = true;
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      order.push_back(v);
      for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        if (!visited[targets[i]]) {
          visited[targets[i]] = true;
          frontier.push(targets[i]);
        }
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (!visited[v]) {
        order.push_back(v);
      }
    }
  }
  return ApplyPermutation(edges, std::move(order));
}

}  // namespace cgraph
