// Edge-list container: the interchange format between generators, loaders and the
// partitioner.

#ifndef SRC_GRAPH_EDGE_LIST_H_
#define SRC_GRAPH_EDGE_LIST_H_

#include <vector>

#include "src/common/types.h"

namespace cgraph {

// A bag of directed edges plus the vertex-id universe size. `num_vertices` is always
// greater than every endpoint id (isolated trailing vertices are representable).
class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(VertexId num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

  void set_num_vertices(VertexId n) { num_vertices_ = n; }

  // Appends an edge, growing the vertex universe if needed.
  void Add(VertexId src, VertexId dst, Weight weight = 1.0f);

  // Sorts edges by (src, dst) and removes exact (src, dst) duplicates, keeping the first
  // weight encountered. Self-loops are retained (algorithms ignore or use them).
  void SortAndDedup();

  // Removes self-loop edges.
  void RemoveSelfLoops();

  // Recomputes num_vertices as 1 + max endpoint (0 when empty).
  void FitNumVertices();

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace cgraph

#endif  // SRC_GRAPH_EDGE_LIST_H_
