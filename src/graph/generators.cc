#include "src/graph/generators.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/common/check.h"
#include "src/common/prng.h"

namespace cgraph {
namespace {

// Fisher–Yates permutation of [0, n) driven by our deterministic PRNG.
std::vector<VertexId> RandomPermutation(VertexId n, Xoshiro256& rng) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  for (VertexId i = n; i > 1; --i) {
    const uint64_t j = rng.NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Weight DrawWeight(double max_weight, Xoshiro256& rng) {
  if (max_weight <= 1.0) {
    return 1.0f;
  }
  return static_cast<Weight>(1.0 + rng.NextDouble() * (max_weight - 1.0));
}

}  // namespace

EdgeList GenerateRmat(const RmatOptions& options) {
  CGRAPH_CHECK(options.a + options.b + options.c <= 1.0 + 1e-9);
  const VertexId n = VertexId{1} << options.scale;
  const uint64_t m = static_cast<uint64_t>(options.edge_factor) * n;
  Xoshiro256 rng(options.seed);
  const std::vector<VertexId> perm = RandomPermutation(n, rng);

  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    VertexId src = 0;
    VertexId dst = 0;
    for (uint32_t bit = 0; bit < options.scale; ++bit) {
      const double r = rng.NextDouble();
      // Quadrant selection with slight per-level noise is unnecessary for our purposes;
      // plain R-MAT already yields the heavy-tailed degrees we need.
      uint32_t quadrant;
      if (r < options.a) {
        quadrant = 0;
      } else if (r < options.a + options.b) {
        quadrant = 1;
      } else if (r < options.a + options.b + options.c) {
        quadrant = 2;
      } else {
        quadrant = 3;
      }
      src = (src << 1) | (quadrant >> 1);
      dst = (dst << 1) | (quadrant & 1);
    }
    edges.push_back(Edge{perm[src], perm[dst], DrawWeight(options.max_weight, rng)});
  }

  EdgeList list(n, std::move(edges));
  if (options.remove_self_loops) {
    list.RemoveSelfLoops();
  }
  if (options.dedup) {
    list.SortAndDedup();
  }
  return list;
}

EdgeList GenerateErdosRenyi(VertexId n, uint64_t m, uint64_t seed) {
  CGRAPH_CHECK(n > 0);
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    const VertexId src = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId dst = static_cast<VertexId>(rng.NextBounded(n));
    edges.push_back(Edge{src, dst, DrawWeight(8.0, rng)});
  }
  EdgeList list(n, std::move(edges));
  list.RemoveSelfLoops();
  list.SortAndDedup();
  return list;
}

EdgeList GenerateRing(VertexId n) {
  EdgeList list;
  list.set_num_vertices(n);
  for (VertexId v = 0; v < n; ++v) {
    list.Add(v, (v + 1) % n);
  }
  return list;
}

EdgeList GeneratePath(VertexId n) {
  EdgeList list;
  list.set_num_vertices(n);
  for (VertexId v = 0; v + 1 < n; ++v) {
    list.Add(v, v + 1);
  }
  return list;
}

EdgeList GenerateStar(VertexId n) {
  EdgeList list;
  list.set_num_vertices(n);
  for (VertexId v = 1; v < n; ++v) {
    list.Add(0, v);
    list.Add(v, 0);
  }
  return list;
}

EdgeList GenerateGrid(VertexId rows, VertexId cols) {
  EdgeList list;
  list.set_num_vertices(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        list.Add(id(r, c), id(r, c + 1));
        list.Add(id(r, c + 1), id(r, c));
      }
      if (r + 1 < rows) {
        list.Add(id(r, c), id(r + 1, c));
        list.Add(id(r + 1, c), id(r, c));
      }
    }
  }
  return list;
}

EdgeList GenerateComplete(VertexId n) {
  EdgeList list;
  list.set_num_vertices(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = 0; j < n; ++j) {
      if (i != j) {
        list.Add(i, j);
      }
    }
  }
  return list;
}

}  // namespace cgraph
