// Deterministic synthetic graph generators.
//
// R-MAT produces the skewed power-law degree distributions the paper's datasets exhibit
// (section 3.2.1 cites PowerGraph's observation); the structured generators (ring, star,
// grid, ...) are used by tests where exact expected results are easy to state.

#ifndef SRC_GRAPH_GENERATORS_H_
#define SRC_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/graph/edge_list.h"

namespace cgraph {

struct RmatOptions {
  uint32_t scale = 14;        // num_vertices = 2^scale
  uint32_t edge_factor = 16;  // num_edges = edge_factor * num_vertices
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;            // d = 1 - a - b - c
  uint64_t seed = 1;
  bool remove_self_loops = true;
  bool dedup = true;
  // Random edge weights in [1, max_weight]; 1.0 means unweighted.
  double max_weight = 16.0;
};

// Kronecker/R-MAT generator (Chakrabarti et al.). Vertex ids are permuted so that low ids
// are not systematically the hubs.
EdgeList GenerateRmat(const RmatOptions& options);

// G(n, m) uniform random directed multigraph (deduped).
EdgeList GenerateErdosRenyi(VertexId n, uint64_t m, uint64_t seed);

// 0 -> 1 -> ... -> n-1 -> 0.
EdgeList GenerateRing(VertexId n);

// 0 -> 1 -> ... -> n-1.
EdgeList GeneratePath(VertexId n);

// Hub 0 with spokes both ways: 0 <-> i for i in [1, n).
EdgeList GenerateStar(VertexId n);

// rows x cols 4-neighbor mesh, edges in both directions.
EdgeList GenerateGrid(VertexId rows, VertexId cols);

// All ordered pairs (i, j), i != j.
EdgeList GenerateComplete(VertexId n);

}  // namespace cgraph

#endif  // SRC_GRAPH_GENERATORS_H_
