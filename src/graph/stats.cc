#include "src/graph/stats.h"

#include <algorithm>
#include <bit>

namespace cgraph {

DegreeStats ComputeDegreeStats(const Graph& graph, double hub_fraction) {
  DegreeStats stats;
  stats.hub_fraction = hub_fraction;
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return stats;
  }
  stats.average_out_degree = graph.average_degree();
  stats.max_out_degree = graph.max_out_degree();
  stats.max_total_degree = graph.max_total_degree();

  std::vector<uint32_t> degrees(n);
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = graph.out_degree(v);
  }
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  const size_t hubs = std::max<size_t>(1, static_cast<size_t>(hub_fraction * n));
  uint64_t hub_edges = 0;
  for (size_t i = 0; i < hubs; ++i) {
    hub_edges += degrees[i];
  }
  const uint64_t m = graph.num_edges();
  stats.edges_on_top_percent_hubs = m == 0 ? 0.0 : static_cast<double>(hub_edges) / static_cast<double>(m);
  return stats;
}

std::vector<uint64_t> DegreeHistogramLog2(const Graph& graph) {
  std::vector<uint64_t> hist(33, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const uint32_t d = graph.out_degree(v);
    const unsigned bucket = d <= 1 ? 0 : static_cast<unsigned>(std::bit_width(d) - 1);
    ++hist[bucket];
  }
  while (hist.size() > 1 && hist.back() == 0) {
    hist.pop_back();
  }
  return hist;
}

}  // namespace cgraph
