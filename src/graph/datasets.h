// Scaled synthetic stand-ins for the paper's five datasets (Table 1).
//
// The originals (Twitter, Friendster, uk2007, uk-union, hyperlink14) are 17–480 GB web
// downloads that are unavailable offline, so each is replaced by an R-MAT graph whose
// *shape* — relative size ordering, average degree, degree skew — matches the original.
// Simulated cache/memory capacities elsewhere are scaled with these sizes, preserving the
// in-memory vs out-of-core split of the paper's Figure 13 (the first three fit in simulated
// memory; uk-union and hyperlink14 do not).

#ifndef SRC_GRAPH_DATASETS_H_
#define SRC_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "src/graph/edge_list.h"

namespace cgraph {

struct DatasetSpec {
  std::string name;          // e.g. "twitter-sim"
  std::string paper_name;    // e.g. "Twitter"
  uint32_t rmat_scale;       // 2^scale vertices
  uint32_t edge_factor;      // edges per vertex
  uint64_t seed;
  // Paper-reported properties of the original, for Table 1 side-by-side output.
  double paper_vertices_m;   // millions
  double paper_edges_b;      // billions
  double paper_size_gb;
};

// The five stand-ins, ordered as in Table 1. `scale_shift` uniformly shrinks (negative) or
// grows every dataset, letting benches trade fidelity for runtime.
std::vector<DatasetSpec> PaperDatasets(int scale_shift = 0);

// Generates the graph for a spec (deterministic in the spec's seed).
EdgeList GenerateDataset(const DatasetSpec& spec);

// Approximate in-memory bytes of the structure data for an edge list (CSR-like: one
// 12-byte record per edge plus 8 bytes per vertex), used to size simulated tiers.
uint64_t EstimateStructureBytes(const EdgeList& edges);

}  // namespace cgraph

#endif  // SRC_GRAPH_DATASETS_H_
