#include "src/cache/memory_hierarchy.h"

#include <algorithm>
#include <cmath>

namespace cgraph {

uint32_t ExpectedTouchedSegments(uint64_t item_bytes, uint64_t segment_bytes, uint32_t active,
                                 uint32_t total) {
  if (item_bytes == 0 || active == 0 || total == 0) {
    return 0;
  }
  const uint32_t segments =
      static_cast<uint32_t>((item_bytes + segment_bytes - 1) / segment_bytes);
  if (active >= total) {
    return segments;
  }
  const double per_segment = std::max(1.0, static_cast<double>(total) / segments);
  const double fraction = static_cast<double>(active) / static_cast<double>(total);
  const double touch_probability = 1.0 - std::pow(1.0 - fraction, per_segment);
  return std::min(
      segments, std::max<uint32_t>(1, static_cast<uint32_t>(
                                          std::ceil(touch_probability * segments))));
}

AccessCharge MemoryHierarchy::AccessSegment(const ItemKey& item, uint64_t item_bytes,
                                            uint32_t segment_index) {
  AccessCharge charge;
  const uint32_t segments = cache_.SegmentsFor(item_bytes);
  if (segments == 0) {
    return charge;
  }
  const uint32_t index = segment_index % segments;
  const uint64_t seg_bytes =
      index + 1 == segments ? item_bytes - static_cast<uint64_t>(index) * cache_.segment_bytes()
                            : cache_.segment_bytes();
  ++charge.segment_touches;
  if (cache_.TouchSegment(item, index, seg_bytes, /*pin=*/false)) {
    charge.hit_bytes += seg_bytes;
  } else {
    ++charge.segment_misses;
    const uint64_t from_disk = memory_.ServeMiss(item, item_bytes, seg_bytes);
    if (from_disk > 0) {
      charge.disk_bytes += from_disk;
    } else {
      charge.mem_bytes += seg_bytes;
    }
  }
  return charge;
}

AccessCharge MemoryHierarchy::AccessPrefix(const ItemKey& item, uint64_t item_bytes,
                                           uint32_t max_segments, bool pin) {
  AccessCharge charge;
  const uint32_t segments = std::min(cache_.SegmentsFor(item_bytes), max_segments);
  uint64_t remaining = item_bytes;
  for (uint32_t i = 0; i < segments; ++i) {
    const uint64_t seg = std::min<uint64_t>(remaining, cache_.segment_bytes());
    remaining -= seg;
    ++charge.segment_touches;
    if (cache_.TouchSegment(item, i, seg, pin)) {
      charge.hit_bytes += seg;
    } else {
      ++charge.segment_misses;
      const uint64_t from_disk = memory_.ServeMiss(item, item_bytes, seg);
      if (from_disk > 0) {
        charge.disk_bytes += from_disk;
      } else {
        charge.mem_bytes += seg;
      }
    }
  }
  return charge;
}

AccessCharge MemoryHierarchy::Access(const ItemKey& item, uint64_t item_bytes, bool pin) {
  AccessCharge charge;
  const uint32_t segments = cache_.SegmentsFor(item_bytes);
  uint64_t remaining = item_bytes;
  for (uint32_t i = 0; i < segments; ++i) {
    const uint64_t seg = std::min<uint64_t>(remaining, cache_.segment_bytes());
    remaining -= seg;
    ++charge.segment_touches;
    if (cache_.TouchSegment(item, i, seg, pin)) {
      charge.hit_bytes += seg;
    } else {
      ++charge.segment_misses;
      const uint64_t from_disk = memory_.ServeMiss(item, item_bytes, seg);
      if (from_disk > 0) {
        charge.disk_bytes += from_disk;  // Full item fault.
      } else {
        charge.mem_bytes += seg;
      }
    }
  }
  return charge;
}

}  // namespace cgraph
