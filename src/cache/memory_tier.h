// Main-memory tier of the simulated hierarchy.
//
// Tracks which items (structure copies, private tables, snapshot deltas) are resident in a
// fixed-capacity main memory. A cache miss whose item is resident costs memory bandwidth;
// a miss on a non-resident item faults the item in from disk (charging disk bytes once per
// fault) and evicts LRU items. This reproduces the paper's Figure 13 split: datasets whose
// working set fits in memory show no I/O, larger ones are dominated by it — and systems
// that keep one shared structure copy (Seraph, CGraph) fault less than those with per-job
// copies (CLIP, Nxgraph).

#ifndef SRC_CACHE_MEMORY_TIER_H_
#define SRC_CACHE_MEMORY_TIER_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/cache/cache_sim.h"

namespace cgraph {

struct MemoryStats {
  uint64_t mem_bytes = 0;    // Cache-miss bytes served from resident memory.
  uint64_t disk_bytes = 0;   // Bytes faulted in from disk (the paper's "I/O overhead").
  uint64_t faults = 0;       // Item faults.
  uint64_t evictions = 0;    // Items evicted to make room.
};

class MemoryTier {
 public:
  explicit MemoryTier(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  uint64_t capacity() const { return capacity_; }
  uint64_t occupancy() const { return occupancy_; }
  const MemoryStats& stats() const { return stats_; }

  // Serves `bytes` of a cache miss belonging to `item` (total item size `item_bytes`).
  // Returns the number of those bytes that came from disk (0 when the item was resident).
  uint64_t ServeMiss(const ItemKey& item, uint64_t item_bytes, uint64_t bytes);

  // Pre-loads an item (e.g., the shared structure at start-up); charges disk bytes.
  void Preload(const ItemKey& item, uint64_t item_bytes);

  // Removes an item (e.g., a finished job's private table).
  void Drop(const ItemKey& item);

  // Drops every resident item without touching the counters (models restarting the
  // system, e.g. between the jobs of a sequential-execution baseline).
  void Clear();

  bool IsResident(const ItemKey& item) const { return entries_.contains(PackItemKey(item)); }

 private:
  struct Entry {
    std::list<uint64_t>::iterator lru_pos;
    uint64_t bytes = 0;
  };

  void FaultIn(uint64_t key, uint64_t item_bytes);
  void EvictUntilFits(uint64_t needed);

  uint64_t capacity_;
  uint64_t occupancy_ = 0;
  MemoryStats stats_;
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, Entry> entries_;
};

}  // namespace cgraph

#endif  // SRC_CACHE_MEMORY_TIER_H_
