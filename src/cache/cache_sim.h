// Deterministic last-level-cache simulation.
//
// The paper's evaluation measures LLC miss rate (Cachegrind), volume of data swapped into
// the cache, and disk I/O. Real hardware counters are neither portable nor attributable
// per job, so executors in this repo drive this exact-LRU, segment-granular model with
// their true access sequences: a partition's structure and each job's private table are
// items made of fixed-size segments; processing a partition touches its segments in order.
// Cache interference, sharing, and amortization then emerge from the access interleavings
// that distinguish CGraph from the baselines — which is precisely the paper's mechanism.

#ifndef SRC_CACHE_CACHE_SIM_H_
#define SRC_CACHE_CACHE_SIM_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace cgraph {

// What an item holds. Structure items can be shared across jobs (CGraph/Seraph) or owned
// per job (CLIP/Nxgraph); private items are always per job.
enum class DataKind : uint8_t {
  kStructure = 0,
  kPrivate = 1,
};

// Identity of a cacheable item (a partition's structure copy or one job's private
// partition). `owner` is a copy-owner id: kSharedOwner for the single shared structure
// copy, or a job id for per-job copies and private tables. `version` is the snapshot
// version of the partition (0 for the base snapshot).
struct ItemKey {
  DataKind kind = DataKind::kStructure;
  uint32_t owner = 0;
  PartitionId partition = 0;
  uint32_t version = 0;

  friend bool operator==(const ItemKey& a, const ItemKey& b) {
    return a.kind == b.kind && a.owner == b.owner && a.partition == b.partition &&
           a.version == b.version;
  }
};

inline constexpr uint32_t kSharedOwner = 0xFFFFu;

// Packs an item key (and a segment index) into a 64-bit map key. Field widths bound the
// supported universe; CHECKed so overflow cannot silently alias.
inline uint64_t PackItemKey(const ItemKey& key) {
  CGRAPH_DCHECK(key.owner <= 0xFFFFu);
  CGRAPH_DCHECK(key.partition < (1u << 20));
  CGRAPH_DCHECK(key.version < (1u << 10));
  return (static_cast<uint64_t>(key.kind) << 62) | (static_cast<uint64_t>(key.owner) << 46) |
         (static_cast<uint64_t>(key.partition) << 26) | (static_cast<uint64_t>(key.version) << 16);
}

inline uint64_t PackSegmentKey(const ItemKey& key, uint32_t segment_index) {
  CGRAPH_DCHECK(segment_index < (1u << 16));
  return PackItemKey(key) | segment_index;
}

struct CacheStats {
  uint64_t touches = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t miss_bytes = 0;  // "Volume of data swapped into the cache" (paper Fig. 12).
  uint64_t evictions = 0;
  // Touches that had to exceed capacity because everything else was pinned.
  uint64_t pinned_overflows = 0;

  double miss_rate() const {
    return touches == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(touches);
  }
};

// Eviction policy. The paper's section 2.2 observes that plain LRU "may load the
// infrequently-used data into the cache ... and swap out the frequently-used data";
// kFrequencyAware answers that: the victim is the least-touched entry within a small
// window at the LRU tail, so hot segments survive bursts of cold streaming.
enum class EvictionPolicy {
  kLru,
  kFrequencyAware,
};

// Exact-LRU (or frequency-aware) cache of fixed-size segments with pin support.
//
// Pinning models the paper's section 3.2.3: while a loaded graph-structure partition is
// being processed by batches of jobs, the structure stays in cache and only the private
// tables rotate; a structure partition "is swapped out of the cache only when it has been
// processed by the related jobs within the current iteration".
class CacheSim {
 public:
  CacheSim(uint64_t capacity_bytes, uint64_t segment_bytes,
           EvictionPolicy policy = EvictionPolicy::kLru)
      : capacity_(capacity_bytes), segment_bytes_(segment_bytes), policy_(policy) {
    CGRAPH_CHECK(segment_bytes > 0);
  }

  uint64_t capacity() const { return capacity_; }
  uint64_t segment_bytes() const { return segment_bytes_; }
  uint64_t occupancy() const { return occupancy_; }
  const CacheStats& stats() const { return stats_; }

  // Touches one segment. Returns true on hit. On miss the segment is brought in, evicting
  // unpinned LRU segments as needed; `pin` keeps it resident until UnpinItem/UnpinAll.
  bool TouchSegment(const ItemKey& item, uint32_t segment_index, uint64_t bytes, bool pin);

  // Touches every segment of an item of `total_bytes`, in index order. Returns the number
  // of missed bytes. `out_misses`, when non-null, receives the number of missed segments.
  uint64_t TouchItem(const ItemKey& item, uint64_t total_bytes, bool pin,
                     uint64_t* out_misses = nullptr);

  // Number of segments an item of `total_bytes` occupies (>= 1 for non-empty items).
  uint32_t SegmentsFor(uint64_t total_bytes) const {
    return total_bytes == 0 ? 0 : static_cast<uint32_t>((total_bytes + segment_bytes_ - 1) / segment_bytes_);
  }

  // Unpins all segments of an item / all pinned segments.
  void UnpinItem(const ItemKey& item, uint64_t total_bytes);
  void UnpinAll();

  // Drops every resident segment (used between sequential jobs) without touching stats.
  void Flush();

  bool IsResident(const ItemKey& item, uint32_t segment_index) const {
    return entries_.contains(PackSegmentKey(item, segment_index));
  }

 private:
  struct Entry {
    std::list<uint64_t>::iterator lru_pos;
    uint64_t bytes = 0;
    uint32_t touches = 0;
    bool pinned = false;
  };

  void EvictUntilFits(uint64_t needed);
  // Evicts one unpinned entry per the policy; returns false when nothing is evictable.
  bool EvictOne();

  // Entries inspected at the LRU tail under kFrequencyAware.
  static constexpr size_t kFrequencyWindow = 8;

  uint64_t capacity_;
  uint64_t segment_bytes_;
  EvictionPolicy policy_;
  uint64_t occupancy_ = 0;
  CacheStats stats_;
  std::list<uint64_t> lru_;  // Front = most recent.
  std::unordered_map<uint64_t, Entry> entries_;
  std::vector<uint64_t> pinned_keys_;
};

}  // namespace cgraph

#endif  // SRC_CACHE_CACHE_SIM_H_
