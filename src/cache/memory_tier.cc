#include "src/cache/memory_tier.h"

namespace cgraph {

uint64_t MemoryTier::ServeMiss(const ItemKey& item, uint64_t item_bytes, uint64_t bytes) {
  const uint64_t key = PackItemKey(item);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    stats_.mem_bytes += bytes;
    return 0;
  }
  // Item fault: the whole item streams in from disk, so the full item size is charged
  // (and returned for per-job attribution); later segment misses of the now-resident item
  // cost only memory bandwidth.
  FaultIn(key, item_bytes);
  stats_.disk_bytes += item_bytes;
  return item_bytes;
}

void MemoryTier::Preload(const ItemKey& item, uint64_t item_bytes) {
  const uint64_t key = PackItemKey(item);
  if (entries_.contains(key)) {
    return;
  }
  FaultIn(key, item_bytes);
}

void MemoryTier::Drop(const ItemKey& item) {
  const uint64_t key = PackItemKey(item);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  occupancy_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void MemoryTier::Clear() {
  lru_.clear();
  entries_.clear();
  occupancy_ = 0;
}

void MemoryTier::FaultIn(uint64_t key, uint64_t item_bytes) {
  ++stats_.faults;
  EvictUntilFits(item_bytes);
  lru_.push_front(key);
  Entry entry;
  entry.lru_pos = lru_.begin();
  entry.bytes = item_bytes;
  entries_.emplace(key, entry);
  occupancy_ += item_bytes;
}

void MemoryTier::EvictUntilFits(uint64_t needed) {
  while (occupancy_ + needed > capacity_ && !lru_.empty()) {
    const uint64_t victim = lru_.back();
    auto it = entries_.find(victim);
    CGRAPH_DCHECK(it != entries_.end());
    occupancy_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace cgraph
