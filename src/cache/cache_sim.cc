#include "src/cache/cache_sim.h"

#include <algorithm>

namespace cgraph {

bool CacheSim::TouchSegment(const ItemKey& item, uint32_t segment_index, uint64_t bytes,
                            bool pin) {
  const uint64_t key = PackSegmentKey(item, segment_index);
  ++stats_.touches;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    ++it->second.touches;
    if (pin && !it->second.pinned) {
      it->second.pinned = true;
      pinned_keys_.push_back(key);
    }
    return true;
  }

  ++stats_.misses;
  stats_.miss_bytes += bytes;
  EvictUntilFits(bytes);
  lru_.push_front(key);
  Entry entry;
  entry.lru_pos = lru_.begin();
  entry.bytes = bytes;
  entry.touches = 1;
  entry.pinned = pin;
  entries_.emplace(key, entry);
  occupancy_ += bytes;
  if (pin) {
    pinned_keys_.push_back(key);
  }
  if (occupancy_ > capacity_) {
    ++stats_.pinned_overflows;
  }
  return false;
}

uint64_t CacheSim::TouchItem(const ItemKey& item, uint64_t total_bytes, bool pin,
                             uint64_t* out_misses) {
  uint64_t missed_bytes = 0;
  uint64_t missed_segments = 0;
  const uint32_t segments = SegmentsFor(total_bytes);
  uint64_t remaining = total_bytes;
  for (uint32_t i = 0; i < segments; ++i) {
    const uint64_t seg = std::min(remaining, segment_bytes_);
    remaining -= seg;
    if (!TouchSegment(item, i, seg, pin)) {
      missed_bytes += seg;
      ++missed_segments;
    }
  }
  if (out_misses != nullptr) {
    *out_misses += missed_segments;
  }
  return missed_bytes;
}

void CacheSim::UnpinItem(const ItemKey& item, uint64_t total_bytes) {
  const uint32_t segments = SegmentsFor(total_bytes);
  for (uint32_t i = 0; i < segments; ++i) {
    auto it = entries_.find(PackSegmentKey(item, i));
    if (it != entries_.end()) {
      it->second.pinned = false;
    }
  }
  // Lazy cleanup of the pinned-key list; entries whose pin flag is already false are
  // skipped when unpinning all.
}

void CacheSim::UnpinAll() {
  for (uint64_t key : pinned_keys_) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.pinned = false;
    }
  }
  pinned_keys_.clear();
}

void CacheSim::Flush() {
  lru_.clear();
  entries_.clear();
  pinned_keys_.clear();
  occupancy_ = 0;
}

void CacheSim::EvictUntilFits(uint64_t needed) {
  if (needed > capacity_) {
    // A single segment larger than the cache: evict everything unpinned and overflow.
    needed = capacity_;
  }
  while (occupancy_ + needed > capacity_) {
    if (!EvictOne()) {
      return;  // Everything left is pinned; the caller overflows.
    }
  }
}

bool CacheSim::EvictOne() {
  // Candidate selection: plain LRU takes the oldest unpinned entry; the frequency-aware
  // policy inspects up to kFrequencyWindow unpinned tail entries and evicts the one with
  // the fewest touches (ties to the older entry), so repeatedly-reused segments are not
  // displaced by one-shot streaming data (paper section 2.2's critique of LRU).
  auto victim = lru_.end();
  uint32_t victim_touches = 0;
  size_t inspected = 0;
  const size_t window = policy_ == EvictionPolicy::kLru ? 1 : kFrequencyWindow;
  for (auto it = lru_.end(); it != lru_.begin() && inspected < window;) {
    --it;
    auto entry_it = entries_.find(*it);
    CGRAPH_DCHECK(entry_it != entries_.end());
    if (entry_it->second.pinned) {
      continue;  // Pinned entries are invisible to eviction and don't count as inspected.
    }
    ++inspected;
    if (victim == lru_.end() || entry_it->second.touches < victim_touches) {
      victim = it;
      victim_touches = entry_it->second.touches;
    }
  }
  if (victim == lru_.end()) {
    return false;
  }
  auto entry_it = entries_.find(*victim);
  occupancy_ -= entry_it->second.bytes;
  entries_.erase(entry_it);
  lru_.erase(victim);
  ++stats_.evictions;
  return true;
}

}  // namespace cgraph
