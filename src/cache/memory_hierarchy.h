// Facade combining the LLC model and the memory tier.
//
// Executors describe every data touch as (item, bytes, pin); the hierarchy resolves it to
// cache-hit bytes, memory bytes, and disk bytes, which the metrics module converts into
// modeled time. All executors in a comparison share identical hierarchy parameters.

#ifndef SRC_CACHE_MEMORY_HIERARCHY_H_
#define SRC_CACHE_MEMORY_HIERARCHY_H_

#include <cstdint>

#include "src/cache/cache_sim.h"
#include "src/cache/memory_tier.h"

namespace cgraph {

struct HierarchyOptions {
  uint64_t cache_capacity_bytes = 4ull << 20;   // Simulated LLC size.
  uint64_t cache_segment_bytes = 64ull << 10;   // Touch granularity.
  uint64_t memory_capacity_bytes = 256ull << 20;
  EvictionPolicy eviction_policy = EvictionPolicy::kLru;
};

// Byte-level outcome of one item access.
struct AccessCharge {
  uint64_t hit_bytes = 0;
  uint64_t mem_bytes = 0;
  uint64_t disk_bytes = 0;
  uint64_t segment_touches = 0;
  uint64_t segment_misses = 0;

  AccessCharge& operator+=(const AccessCharge& other) {
    hit_bytes += other.hit_bytes;
    mem_bytes += other.mem_bytes;
    disk_bytes += other.disk_bytes;
    segment_touches += other.segment_touches;
    segment_misses += other.segment_misses;
    return *this;
  }

  uint64_t total_bytes() const { return hit_bytes + mem_bytes + disk_bytes; }
};

// Expected number of an item's segments that hold at least one of `active` out of
// `total` uniformly-spread vertices: ceil(segments * (1 - (1-f)^(vertices/segment))).
// This models the paper's skipping of inactive data (section 3.2.2): sparse frontiers
// touch few segments, dense ones effectively all.
uint32_t ExpectedTouchedSegments(uint64_t item_bytes, uint64_t segment_bytes, uint32_t active,
                                 uint32_t total);

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyOptions& options)
      : cache_(options.cache_capacity_bytes, options.cache_segment_bytes,
               options.eviction_policy),
        memory_(options.memory_capacity_bytes) {}

  // Touches all segments of `item` (total size `item_bytes`), optionally pinning them.
  AccessCharge Access(const ItemKey& item, uint64_t item_bytes, bool pin);

  // Touches a single segment of `item` (used to model stray accesses such as CLIP's
  // beyond-neighborhood reads). `segment_index` is clamped into the item's range.
  AccessCharge AccessSegment(const ItemKey& item, uint64_t item_bytes, uint32_t segment_index);

  // Touches only the first `max_segments` segments of the item (selective loading of the
  // data that holds active vertices, paper section 3.2.2).
  AccessCharge AccessPrefix(const ItemKey& item, uint64_t item_bytes, uint32_t max_segments,
                            bool pin);

  // Pin management passthroughs (see CacheSim).
  void UnpinAll() { cache_.UnpinAll(); }
  void UnpinItem(const ItemKey& item, uint64_t item_bytes) { cache_.UnpinItem(item, item_bytes); }

  // Drops cache contents (between sequentially-run jobs).
  void FlushCache() { cache_.Flush(); }

  // Memory-tier management.
  void PreloadToMemory(const ItemKey& item, uint64_t item_bytes) {
    memory_.Preload(item, item_bytes);
  }
  void DropFromMemory(const ItemKey& item) { memory_.Drop(item); }
  void ClearMemory() { memory_.Clear(); }

  const CacheSim& cache() const { return cache_; }
  const MemoryTier& memory() const { return memory_; }
  CacheSim& mutable_cache() { return cache_; }

 private:
  CacheSim cache_;
  MemoryTier memory_;
};

}  // namespace cgraph

#endif  // SRC_CACHE_MEMORY_HIERARCHY_H_
