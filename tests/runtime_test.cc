// Unit tests for the thread pool and dynamic-chunk parallel loops.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/runtime/parallel_for.h"
#include "src/runtime/thread_pool.h"

namespace cgraph {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.RunAndWait({[&] { counter.fetch_add(1); }});
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::atomic<int> counter{0};
  pool.RunAndWait({[&] { counter.fetch_add(1); }});
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, RunAndWaitCompletesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&] { counter.fetch_add(1); });
  }
  pool.RunAndWait(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SequentialBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 7; ++i) {
      tasks.push_back([&] { counter.fetch_add(1); });
    }
    pool.RunAndWait(std::move(tasks));
    EXPECT_EQ(counter.load(), (round + 1) * 7);
  }
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.RunAndWait({});  // Must not hang.
}

TEST(ThreadPoolTest, SubmitIsAsynchronousButEventuallyRuns) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  // Drain by running a waiting batch afterwards; the submitted task must have run too
  // because RunAndWait waits for a globally empty queue.
  pool.RunAndWait({[] {}});
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, RunBatchCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.RunBatch(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, RunBatchZeroAndOneTasks) {
  ThreadPool pool(2);
  pool.RunBatch(0, [](size_t) { FAIL() << "no task should run"; });
  int calls = 0;
  size_t seen = 99;
  pool.RunBatch(1, [&](size_t i) {
    ++calls;
    seen = i;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, 0u);
}

TEST(ThreadPoolTest, RunBatchSequentialBatchesDoNotInterfere) {
  // Back-to-back batches through the same cursor: a straggling claimer of batch k must
  // never consume an index of batch k+1.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> counter{0};
    const size_t n = 1 + static_cast<size_t>(round % 7);
    pool.RunBatch(n, [&](size_t) { counter.fetch_add(1); });
    ASSERT_EQ(counter.load(), static_cast<int>(n)) << "round " << round;
  }
}

TEST(ThreadPoolTest, RunBatchManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  const size_t n = 10000;
  pool.RunBatch(n, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPoolTest, RunBatchInterleavesWithQueueTasks) {
  ThreadPool pool(3);
  std::atomic<int> queued{0};
  pool.Submit([&] { queued.fetch_add(1); });
  std::atomic<int> batched{0};
  pool.RunBatch(50, [&](size_t) { batched.fetch_add(1); });
  EXPECT_EQ(batched.load(), 50);
  pool.RunAndWait({[] {}});  // Drain: the queued task must have run by now.
  EXPECT_EQ(queued.load(), 1);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  ParallelForOptions options;
  options.grain = 64;
  ParallelFor(pool, hits.size(), options, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ZeroElements) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(pool, 0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, NonDynamicRunsInline) {
  ThreadPool pool(4);
  ParallelForOptions options;
  options.dynamic = false;
  int calls = 0;
  ParallelFor(pool, 100, options, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SumMatchesSerial) {
  ThreadPool pool(8);
  const size_t n = 100000;
  std::atomic<uint64_t> total{0};
  ParallelFor(pool, n, [&](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) {
      local += i;
    }
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  ThreadPool pool(4);
  ParallelForOptions options;
  options.grain = 1024;
  int calls = 0;
  ParallelFor(pool, 10, options, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace cgraph
