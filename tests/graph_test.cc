// Unit tests for src/graph: edge lists, CSR, generators, file I/O, datasets, stats.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "src/graph/datasets.h"
#include "src/graph/edge_list.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/io.h"
#include "src/graph/stats.h"
#include "tests/testing/temp_files.h"

namespace cgraph {
namespace {

using test_support::TempPath;

TEST(EdgeListTest, AddGrowsUniverse) {
  EdgeList list;
  list.Add(3, 7);
  EXPECT_EQ(list.num_vertices(), 8u);
  EXPECT_EQ(list.num_edges(), 1u);
  list.Add(1, 2);
  EXPECT_EQ(list.num_vertices(), 8u);
}

TEST(EdgeListTest, SortAndDedupKeepsFirstWeight) {
  EdgeList list;
  list.Add(1, 2, 5.0f);
  list.Add(0, 1, 1.0f);
  list.Add(1, 2, 9.0f);
  list.SortAndDedup();
  ASSERT_EQ(list.num_edges(), 2u);
  EXPECT_EQ(list.edges()[0].src, 0u);
  EXPECT_EQ(list.edges()[1].src, 1u);
  EXPECT_FLOAT_EQ(list.edges()[1].weight, 5.0f);
}

TEST(EdgeListTest, RemoveSelfLoops) {
  EdgeList list;
  list.Add(0, 0);
  list.Add(0, 1);
  list.Add(1, 1);
  list.RemoveSelfLoops();
  ASSERT_EQ(list.num_edges(), 1u);
  EXPECT_EQ(list.edges()[0].dst, 1u);
}

TEST(EdgeListTest, FitNumVertices) {
  EdgeList list(100, {Edge{1, 2, 1.0f}});
  list.FitNumVertices();
  EXPECT_EQ(list.num_vertices(), 3u);
  EdgeList empty;
  empty.FitNumVertices();
  EXPECT_EQ(empty.num_vertices(), 0u);
}

TEST(GraphTest, CsrDegreesAndNeighbors) {
  EdgeList list;
  list.Add(0, 1, 2.0f);
  list.Add(0, 2, 3.0f);
  list.Add(2, 1, 4.0f);
  const Graph g = Graph::FromEdges(list);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(1), 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
  const auto n0 = g.out_neighbors(0);
  EXPECT_EQ(std::set<VertexId>(n0.begin(), n0.end()), (std::set<VertexId>{1, 2}));
  const auto w2 = g.out_weights(2);
  ASSERT_EQ(w2.size(), 1u);
  EXPECT_FLOAT_EQ(w2[0], 4.0f);
  const auto in1 = g.in_neighbors(1);
  EXPECT_EQ(std::set<VertexId>(in1.begin(), in1.end()), (std::set<VertexId>{0, 2}));
}

TEST(GraphTest, EmptyGraph) {
  EdgeList list;
  const Graph g = Graph::FromEdges(list);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(GeneratorsTest, RingShape) {
  const EdgeList ring = GenerateRing(5);
  EXPECT_EQ(ring.num_vertices(), 5u);
  EXPECT_EQ(ring.num_edges(), 5u);
  const Graph g = Graph::FromEdges(ring);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.out_degree(v), 1u);
    EXPECT_EQ(g.in_degree(v), 1u);
  }
}

TEST(GeneratorsTest, PathShape) {
  const EdgeList path = GeneratePath(4);
  EXPECT_EQ(path.num_edges(), 3u);
}

TEST(GeneratorsTest, StarShape) {
  const EdgeList star = GenerateStar(6);
  const Graph g = Graph::FromEdges(star);
  EXPECT_EQ(g.out_degree(0), 5u);
  EXPECT_EQ(g.in_degree(0), 5u);
  for (VertexId v = 1; v < 6; ++v) {
    EXPECT_EQ(g.out_degree(v), 1u);
  }
}

TEST(GeneratorsTest, GridShape) {
  const EdgeList grid = GenerateGrid(3, 4);
  EXPECT_EQ(grid.num_vertices(), 12u);
  // Horizontal: 3 rows x 3 pairs x 2 dirs; vertical: 2 rows x 4 cols x 2 dirs.
  EXPECT_EQ(grid.num_edges(), 3u * 3u * 2u + 2u * 4u * 2u);
}

TEST(GeneratorsTest, CompleteShape) {
  const EdgeList complete = GenerateComplete(5);
  EXPECT_EQ(complete.num_edges(), 20u);
}

TEST(GeneratorsTest, RmatDeterministicInSeed) {
  RmatOptions options;
  options.scale = 8;
  options.edge_factor = 4;
  const EdgeList a = GenerateRmat(options);
  const EdgeList b = GenerateRmat(options);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edges(), b.edges());
  options.seed = 2;
  const EdgeList c = GenerateRmat(options);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(GeneratorsTest, RmatHasNoSelfLoopsOrDuplicates) {
  RmatOptions options;
  options.scale = 9;
  options.edge_factor = 8;
  const EdgeList g = GenerateRmat(options);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.insert({e.src, e.dst}).second);
  }
}

TEST(GeneratorsTest, RmatIsSkewed) {
  RmatOptions options;
  options.scale = 12;
  options.edge_factor = 8;
  const EdgeList list = GenerateRmat(options);
  const Graph g = Graph::FromEdges(list);
  const DegreeStats stats = ComputeDegreeStats(g);
  // Power-law: the top 1% of vertices should hold far more than 1% of the edges.
  EXPECT_GT(stats.edges_on_top_percent_hubs, 0.1);
  EXPECT_GT(stats.max_out_degree, 20u * static_cast<uint32_t>(stats.average_out_degree + 1));
}

TEST(GeneratorsTest, ErdosRenyiRoughlyUniform) {
  const EdgeList list = GenerateErdosRenyi(1000, 8000, 3);
  const Graph g = Graph::FromEdges(list);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_LT(stats.edges_on_top_percent_hubs, 0.1);  // No hubs.
}

TEST(IoTest, TextRoundTrip) {
  EdgeList list;
  list.Add(0, 1, 2.5f);
  list.Add(1, 2, 1.0f);
  const std::string path = TempPath("cgraph_io_text.el");
  ASSERT_TRUE(SaveEdgeListText(list, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), 2u);
  EXPECT_FLOAT_EQ(loaded->edges()[0].weight, 2.5f);
  std::remove(path.c_str());
}

TEST(IoTest, TextParsesCommentsAndBlankLines) {
  const std::string path = TempPath("cgraph_io_comments.el");
  {
    std::ofstream out(path);
    out << "# header\n\n0 1\n  2\t3  \n";
  }
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(IoTest, TextRejectsMalformedLines) {
  const std::string path = TempPath("cgraph_io_bad.el");
  {
    std::ofstream out(path);
    out << "0 1\nxyz 3\n";
  }
  auto loaded = LoadEdgeListText(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, TextRejectsWrongFieldCount) {
  const std::string path = TempPath("cgraph_io_fields.el");
  {
    std::ofstream out(path);
    out << "0 1 2 3\n";
  }
  EXPECT_FALSE(LoadEdgeListText(path).ok());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsNotFound) {
  auto loaded = LoadEdgeListText("/nonexistent/definitely/missing.el");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(IoTest, BinaryRoundTrip) {
  RmatOptions options;
  options.scale = 8;
  const EdgeList original = GenerateRmat(options);
  const std::string path = TempPath("cgraph_io_bin.bel");
  ASSERT_TRUE(SaveEdgeListBinary(original, path).ok());
  auto loaded = LoadEdgeListBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), original.num_vertices());
  EXPECT_EQ(loaded->edges(), original.edges());
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRejectsGarbage) {
  const std::string path = TempPath("cgraph_io_garbage.bel");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a cgraph file at all, definitely too short of a header";
  }
  auto loaded = LoadEdgeListBinary(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(DatasetsTest, FiveDatasetsOrderedBySize) {
  const auto specs = PaperDatasets(-4);
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "twitter-sim");
  EXPECT_EQ(specs[4].name, "hyperlink14-sim");
  uint64_t prev_edges = 0;
  for (const auto& spec : specs) {
    const EdgeList g = GenerateDataset(spec);
    EXPECT_GT(g.num_edges(), prev_edges);
    prev_edges = g.num_edges();
  }
}

TEST(DatasetsTest, ScaleShiftApplies) {
  const auto base = PaperDatasets(0);
  const auto shifted = PaperDatasets(-2);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(shifted[i].rmat_scale + 2, base[i].rmat_scale);
  }
}

TEST(DatasetsTest, StructureBytesEstimatePositive) {
  const auto specs = PaperDatasets(-6);
  const EdgeList g = GenerateDataset(specs[0]);
  EXPECT_GT(EstimateStructureBytes(g), g.num_edges() * 12ull);
}

TEST(StatsTest, HistogramBucketsSumToVertexCount) {
  RmatOptions options;
  options.scale = 10;
  const EdgeList list = GenerateRmat(options);
  const Graph g = Graph::FromEdges(list);
  const auto hist = DegreeHistogramLog2(g);
  uint64_t total = 0;
  for (uint64_t c : hist) {
    total += c;
  }
  EXPECT_EQ(total, g.num_vertices());
}

}  // namespace
}  // namespace cgraph
