// Unit tests for src/common: status/result, string utilities, bitset, PRNG.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "src/common/bitset.h"
#include "src/common/prng.h"
#include "src/common/status.h"
#include "src/common/strings.h"

namespace cgraph {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "out_of_range");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition), "failed_precondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(StringsTest, SplitNonEmptyDropsEmptyPieces) {
  const auto pieces = SplitNonEmpty("  a\tb  c ", " \t");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringsTest, SplitEmptyInput) { EXPECT_TRUE(SplitNonEmpty("", " ").empty()); }

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, ParseUint64Valid) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(StringsTest, ParseUint64Invalid) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // Overflow.
}

TEST(StringsTest, ParseDouble) {
  double d = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_TRUE(ParseDouble("-1e3", &d));
  EXPECT_DOUBLE_EQ(d, -1000.0);
  EXPECT_FALSE(ParseDouble("1.2.3", &d));
  EXPECT_FALSE(ParseDouble("", &d));
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KiB");
  EXPECT_EQ(HumanBytes(3ull << 20), "3.00 MiB");
}

TEST(BitsetTest, SetTestClear) {
  DynamicBitset b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, SetAllRespectsSize) {
  DynamicBitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  b.ClearAll();
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_FALSE(b.Any());
}

TEST(BitsetTest, UnionAndIntersect) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  EXPECT_EQ(a.IntersectCount(b), 1u);
  a.UnionWith(b);
  EXPECT_EQ(a.Count(), 3u);
}

TEST(BitsetTest, AssignToggles) {
  DynamicBitset b(8);
  b.Assign(3, true);
  EXPECT_TRUE(b.Test(3));
  b.Assign(3, false);
  EXPECT_FALSE(b.Test(3));
}

// Reference: the bits a naive Test(i) loop finds, in ascending order.
std::vector<size_t> NaiveSetBits(const DynamicBitset& b) {
  std::vector<size_t> bits;
  for (size_t i = 0; i < b.size(); ++i) {
    if (b.Test(i)) {
      bits.push_back(i);
    }
  }
  return bits;
}

std::vector<size_t> ScanSetBits(const DynamicBitset& b) {
  std::vector<size_t> bits;
  b.ForEachSetBit([&bits](size_t i) { bits.push_back(i); });
  return bits;
}

std::vector<size_t> NextSetBits(const DynamicBitset& b) {
  std::vector<size_t> bits;
  for (size_t i = b.NextSetBit(0); i != DynamicBitset::kNpos; i = b.NextSetBit(i + 1)) {
    bits.push_back(i);
  }
  return bits;
}

TEST(BitsetScanTest, WordScansMatchNaiveOnRandomPatterns) {
  // Sizes straddle word boundaries: empty tail, full tail, one-word, sub-word.
  for (const size_t size : {1ul, 63ul, 64ul, 65ul, 127ul, 128ul, 300ul, 1024ul, 1031ul}) {
    SplitMix64 rng(size * 7919);
    DynamicBitset b(size);
    for (size_t i = 0; i < size; ++i) {
      if (rng.Next() % 3 == 0) {
        b.Set(i);
      }
    }
    const std::vector<size_t> expected = NaiveSetBits(b);
    EXPECT_EQ(ScanSetBits(b), expected) << "ForEachSetBit size=" << size;
    EXPECT_EQ(NextSetBits(b), expected) << "NextSetBit size=" << size;
    EXPECT_EQ(b.Count(), expected.size()) << "size=" << size;
  }
}

TEST(BitsetScanTest, EmptyAndFullPatterns) {
  for (const size_t size : {1ul, 64ul, 70ul, 192ul}) {
    DynamicBitset b(size);
    EXPECT_TRUE(ScanSetBits(b).empty()) << size;
    EXPECT_EQ(b.NextSetBit(0), DynamicBitset::kNpos) << size;
    // SetAll must trim the tail word: the scan must never visit a bit >= size.
    b.SetAll();
    const std::vector<size_t> expected = NaiveSetBits(b);
    EXPECT_EQ(expected.size(), size);
    EXPECT_EQ(ScanSetBits(b), expected) << size;
    EXPECT_EQ(NextSetBits(b), expected) << size;
  }
}

TEST(BitsetScanTest, TailWordBitIsFound) {
  DynamicBitset b(130);
  b.Set(129);  // Last representable bit lives in a 2-bit tail word.
  EXPECT_EQ(b.NextSetBit(0), 129u);
  EXPECT_EQ(b.NextSetBit(129), 129u);
  EXPECT_EQ(b.NextSetBit(130), DynamicBitset::kNpos);
  EXPECT_EQ(ScanSetBits(b), (std::vector<size_t>{129}));
}

TEST(BitsetScanTest, NextSetBitSkipsBelowFrom) {
  DynamicBitset b(256);
  b.Set(3);
  b.Set(64);
  b.Set(200);
  EXPECT_EQ(b.NextSetBit(0), 3u);
  EXPECT_EQ(b.NextSetBit(4), 64u);
  EXPECT_EQ(b.NextSetBit(64), 64u);
  EXPECT_EQ(b.NextSetBit(65), 200u);
  EXPECT_EQ(b.NextSetBit(201), DynamicBitset::kNpos);
}

TEST(BitsetScanTest, WordRangeRestrictsScan) {
  DynamicBitset b(256);
  for (size_t i = 0; i < 256; i += 5) {
    b.Set(i);
  }
  // Word range [1, 3) covers bit positions [64, 192).
  std::vector<size_t> got;
  b.ForEachSetBitInWords(1, 3, [&got](size_t i) { got.push_back(i); });
  std::vector<size_t> expected;
  for (size_t i = 0; i < 256; i += 5) {
    if (i >= 64 && i < 192) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(got, expected);

  // The words() view agrees with Test() word by word.
  const auto words = b.words();
  ASSERT_EQ(words.size(), b.num_words());
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ((words[i >> 6] >> (i & 63)) & 1u, b.Test(i) ? 1u : 0u) << i;
  }
}

TEST(PrngTest, SplitMixDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(PrngTest, XoshiroDeterministicAndSeedSensitive) {
  Xoshiro256 a(1);
  Xoshiro256 b(1);
  Xoshiro256 c(2);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const uint64_t av = a.Next();
    EXPECT_EQ(av, b.Next());
    if (av != c.Next()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(PrngTest, NextBoundedStaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, NextBoundedCoversValues) {
  Xoshiro256 rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.NextBounded(10));
  }
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace cgraph
