// Unit tests for the cost model, run reports (makespan/overlap/utilization), table
// printing, and CSV serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/metrics/cost_model.h"
#include "src/metrics/csv_writer.h"
#include "src/metrics/run_report.h"
#include "src/metrics/table_printer.h"
#include "tests/testing/temp_files.h"

namespace cgraph {
namespace {

CostModel SimpleModel() {
  CostModel model;
  model.cost_per_compute_unit = 1.0;
  model.cost_per_hit_byte = 0.0;
  model.cost_per_mem_byte = 1.0;
  model.cost_per_disk_byte = 10.0;
  model.bandwidth_channels = 2;
  return model;
}

TEST(CostModelTest, ComputeAndAccessCosts) {
  const CostModel model = SimpleModel();
  EXPECT_DOUBLE_EQ(model.ComputeCost(100), 100.0);
  AccessCharge charge;
  charge.hit_bytes = 50;
  charge.mem_bytes = 30;
  charge.disk_bytes = 2;
  EXPECT_DOUBLE_EQ(model.AccessCost(charge), 30.0 + 20.0);
}

TEST(CostModelTest, ModeledTimeRespectsChannelSaturation) {
  const CostModel model = SimpleModel();
  AccessCharge charge;
  charge.mem_bytes = 100;
  // 8 workers but only 2 channels: access divides by 2, compute by 8.
  EXPECT_DOUBLE_EQ(model.ModeledTime(80, charge, 8), 80.0 / 8 + 100.0 / 2);
  // 1 worker: both divide by 1.
  EXPECT_DOUBLE_EQ(model.ModeledTime(80, charge, 1), 80.0 + 100.0);
}

RunReport TwoJobReport() {
  RunReport report;
  report.executor_name = "test";
  report.workers = 2;
  JobStats a;
  a.job_name = "a";
  a.compute_units = 100;
  a.charge.mem_bytes = 50;
  JobStats b;
  b.job_name = "b";
  b.compute_units = 300;
  b.charge.mem_bytes = 150;
  report.jobs = {a, b};
  return report;
}

TEST(RunReportTest, TotalsAggregate) {
  const RunReport report = TwoJobReport();
  EXPECT_EQ(report.TotalComputeUnits(), 400u);
  EXPECT_EQ(report.TotalCharge().mem_bytes, 200u);
  EXPECT_EQ(report.BytesBelowCache(), 200u);
}

TEST(RunReportTest, MakespanOverlapsAcrossJobs) {
  const CostModel model = SimpleModel();
  RunReport report = TwoJobReport();
  // compute = 400/2 = 200; access = 200/2 = 100. Two jobs: the smaller component is half
  // hidden: 200 + 100/2 = 250.
  EXPECT_DOUBLE_EQ(report.ModeledMakespan(model), 250.0);
  // A single job cannot hide anything: plain sum.
  report.jobs.resize(1);
  // compute = 100/2 = 50; access = 50/2 = 25 -> 50 + 25.
  EXPECT_DOUBLE_EQ(report.ModeledMakespan(model), 75.0);
}

TEST(RunReportTest, CpuUtilizationBounds) {
  const CostModel model = SimpleModel();
  const RunReport report = TwoJobReport();
  const double utilization = report.CpuUtilization(model);
  EXPECT_GT(utilization, 0.0);
  EXPECT_LE(utilization, 1.0);
  EXPECT_DOUBLE_EQ(utilization, 200.0 / 250.0);
}

TEST(RunReportTest, EmptyReportUtilizationIsOne) {
  const CostModel model = SimpleModel();
  RunReport report;
  EXPECT_DOUBLE_EQ(report.CpuUtilization(model), 1.0);
}

TEST(JobStatsTest, ModeledTimesSplit) {
  const CostModel model = SimpleModel();
  JobStats stats;
  stats.compute_units = 40;
  stats.charge.mem_bytes = 10;
  EXPECT_DOUBLE_EQ(stats.ModeledComputeTime(model, 4), 10.0);
  EXPECT_DOUBLE_EQ(stats.ModeledAccessTime(model, 4), 5.0);
  EXPECT_DOUBLE_EQ(stats.ModeledTime(model, 4), 15.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.ToString();
  std::istringstream lines(out);
  std::string line;
  std::vector<size_t> lengths;
  while (std::getline(lines, line)) {
    lengths.push_back(line.size());
  }
  ASSERT_EQ(lengths.size(), 4u);  // Header + separator + two rows.
  EXPECT_EQ(lengths[0], lengths[1]);
  EXPECT_EQ(lengths[0], lengths[2]);
  EXPECT_EQ(lengths[0], lengths[3]);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"A", "B", "C"});
  table.AddRow({"only-one"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("only-one"), std::string::npos);
  // Three separators per row (one per column) plus the trailing one.
  const std::string last_line = out.substr(out.rfind("| only-one"));
  EXPECT_EQ(std::count(last_line.begin(), last_line.end(), '|'), 4);
}

TEST(CsvWriterTest, ContainsHeaderAndTotalRow) {
  const CostModel model = SimpleModel();
  const RunReport report = TwoJobReport();
  const std::string csv = RunReportToCsv(report, model);
  EXPECT_NE(csv.find("executor,job,iterations"), std::string::npos);
  EXPECT_NE(csv.find("test,a,"), std::string::npos);
  EXPECT_NE(csv.find("test,b,"), std::string::npos);
  EXPECT_NE(csv.find("test,total,"), std::string::npos);
  // Header + 2 jobs + total = 4 lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(CsvWriterTest, RoundTripThroughFile) {
  const CostModel model = SimpleModel();
  const RunReport report = TwoJobReport();
  const std::string path = test_support::TempPath("cgraph_report.csv");
  ASSERT_TRUE(WriteRunReportCsv(report, model, path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), RunReportToCsv(report, model));
  std::remove(path.c_str());
}

TEST(CsvWriterTest, UnwritablePathFails) {
  const CostModel model = SimpleModel();
  const RunReport report = TwoJobReport();
  EXPECT_FALSE(WriteRunReportCsv(report, model, "/nonexistent/dir/report.csv").ok());
}

}  // namespace
}  // namespace cgraph
