// Cross-cutting integration tests: the full executor x algorithm matrix against the
// references, runtime job arrival, hash partitioning end to end, and the cache-economics
// invariants the paper's evaluation rests on.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "src/algorithms/factory.h"
#include "src/algorithms/reference.h"
#include "src/algorithms/wcc.h"
#include "src/baselines/baseline_executor.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/partition/partitioned_graph.h"
#include "tests/testing/graph_fixtures.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

EngineOptions SmallCacheOptions() { return test_support::TestEngineOptions(/*cache_kib=*/48); }

struct MatrixCase {
  std::string executor;  // "ltp" or a baseline system name.
  std::string algorithm;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name = info.param.executor + "_" + info.param.algorithm;
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

// Runs `algorithm` on `executor` over the fixed test graph and compares to references.
class ExecutorAlgorithmMatrixTest : public ::testing::TestWithParam<MatrixCase> {
 protected:
  static const EdgeList& Edges() {
    static const EdgeList edges = test_support::FixedRmat(9, 6, 99);
    return edges;
  }

  static const PartitionedGraph& Partitioned() {
    static const PartitionedGraph pg = [] {
      PartitionOptions popts;
      popts.num_partitions = 7;
      return PartitionedGraphBuilder::Build(Edges(), popts);
    }();
    return pg;
  }
};

TEST_P(ExecutorAlgorithmMatrixTest, MatchesReference) {
  const auto& [executor_name, algorithm] = GetParam();
  const EdgeList& edges = Edges();
  const Graph g = Graph::FromEdges(edges);
  const VertexId source = PickSourceVertex(edges);

  std::vector<double> values;
  std::vector<double> aux;
  if (executor_name == "ltp") {
    LtpEngine engine(&Partitioned(), SmallCacheOptions());
    const JobId id = engine.AddJob(MakeProgram(algorithm, source));
    engine.Run();
    values = engine.FinalValues(id);
    aux = engine.FinalAux(id);
  } else {
    BaselineOptions options;
    options.engine = SmallCacheOptions();
    for (const auto system :
         {BaselineSystem::kSequential, BaselineSystem::kSeraph, BaselineSystem::kSeraphVt,
          BaselineSystem::kNxgraph, BaselineSystem::kClip}) {
      if (BaselineSystemName(system) == executor_name) {
        options.system = system;
      }
    }
    BaselineExecutor executor(&Partitioned(), options);
    const JobId id = executor.AddJob(MakeProgram(algorithm, source));
    executor.Run();
    values = executor.FinalValues(id);
    aux = executor.FinalAux(id);
  }

  if (algorithm == "pagerank") {
    const auto expected = ReferencePageRank(g, 0.85, 1e-4);
    for (size_t v = 0; v < expected.size(); ++v) {
      // Loose epsilon: the engine and reference may settle within different sub-epsilon
      // remainders of each other.
      EXPECT_NEAR(values[v], expected[v], 2e-3) << v;
    }
  } else if (algorithm == "ppr") {
    const auto expected = ReferencePersonalizedPageRank(g, source, 0.85, 1e-7);
    for (size_t v = 0; v < expected.size(); ++v) {
      EXPECT_NEAR(values[v], expected[v], 2e-5) << v;
    }
  } else if (algorithm == "sssp") {
    const auto expected = ReferenceSssp(g, source);
    for (size_t v = 0; v < expected.size(); ++v) {
      if (std::isinf(expected[v])) {
        EXPECT_TRUE(std::isinf(values[v])) << v;
      } else {
        EXPECT_DOUBLE_EQ(values[v], expected[v]) << v;
      }
    }
  } else if (algorithm == "bfs") {
    const auto expected = ReferenceBfs(g, source);
    for (size_t v = 0; v < expected.size(); ++v) {
      if (std::isinf(expected[v])) {
        EXPECT_TRUE(std::isinf(values[v])) << v;
      } else {
        EXPECT_DOUBLE_EQ(values[v], expected[v]) << v;
      }
    }
  } else if (algorithm == "khop") {
    const auto expected = ReferenceKHop(g, source, 4);
    for (size_t v = 0; v < expected.size(); ++v) {
      if (std::isinf(expected[v])) {
        EXPECT_TRUE(std::isinf(values[v])) << v;
      } else {
        EXPECT_DOUBLE_EQ(values[v], expected[v]) << v;
      }
    }
  } else if (algorithm == "wcc") {
    EXPECT_EQ(values, ReferenceWcc(g));
  } else if (algorithm == "scc") {
    for (double& l : aux) {
      l -= 1.0;
    }
    EXPECT_EQ(CanonicalizeLabels(aux), CanonicalizeLabels(ReferenceScc(g)));
  } else if (algorithm == "kcore") {
    const auto expected = ReferenceKCore(g, 4);
    for (size_t v = 0; v < expected.size(); ++v) {
      EXPECT_EQ(aux[v] == 0.0, expected[v] == 1.0) << v;
    }
  } else {
    FAIL() << "unknown algorithm " << algorithm;
  }
}

std::vector<MatrixCase> MatrixCases() {
  std::vector<MatrixCase> cases;
  for (const char* executor :
       {"ltp", "sequential", "seraph", "seraph-vt", "nxgraph", "clip"}) {
    for (const char* algorithm :
         {"pagerank", "sssp", "scc", "bfs", "wcc", "kcore", "ppr", "khop"}) {
      cases.push_back({executor, algorithm});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ExecutorAlgorithmMatrixTest,
                         ::testing::ValuesIn(MatrixCases()), CaseName);

TEST(RuntimeArrivalTest, LateJobComputesCorrectly) {
  const EdgeList edges = GenerateErdosRenyi(300, 2400, 47);
  const Graph g = Graph::FromEdges(edges);
  PartitionOptions popts;
  popts.num_partitions = 6;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);

  LtpEngine engine(&pg, SmallCacheOptions());
  engine.AddJob(MakeProgram("pagerank", 0));
  const JobId late_wcc = engine.ScheduleJob(std::make_unique<WccProgram>(),
                                            /*arrival_step=*/25);
  const RunReport report = engine.Run();
  EXPECT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(engine.FinalValues(late_wcc), ReferenceWcc(g));
}

TEST(RuntimeArrivalTest, ArrivalAfterEveryoneFinished) {
  const EdgeList edges = GenerateRing(64);
  PartitionOptions popts;
  popts.num_partitions = 2;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);

  LtpEngine engine(&pg, SmallCacheOptions());
  engine.AddJob(MakeProgram("bfs", 0));
  // Arrives long after BFS converges; the engine must idle forward and still run it.
  const JobId late = engine.ScheduleJob(std::make_unique<WccProgram>(),
                                        /*arrival_step=*/100000);
  engine.Run();
  const Graph g = Graph::FromEdges(edges);
  EXPECT_EQ(engine.FinalValues(late), ReferenceWcc(g));
}

TEST(RuntimeArrivalTest, ManyStaggeredArrivals) {
  const EdgeList edges = GenerateErdosRenyi(200, 1500, 53);
  const Graph g = Graph::FromEdges(edges);
  PartitionOptions popts;
  popts.num_partitions = 5;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  const VertexId source = PickSourceVertex(edges);

  LtpEngine engine(&pg, SmallCacheOptions());
  engine.AddJob(MakeProgram("pagerank", source));
  std::vector<JobId> arrivals;
  for (uint64_t step : {5u, 10u, 20u, 40u}) {
    arrivals.push_back(engine.ScheduleJob(MakeProgram("bfs", source), step));
  }
  engine.Run();
  const auto expected = ReferenceBfs(g, source);
  for (const JobId id : arrivals) {
    const auto actual = engine.FinalValues(id);
    for (size_t v = 0; v < expected.size(); ++v) {
      if (std::isinf(expected[v])) {
        EXPECT_TRUE(std::isinf(actual[v]));
      } else {
        EXPECT_DOUBLE_EQ(actual[v], expected[v]);
      }
    }
  }
}

TEST(HashPartitioningTest, EndToEndCorrectness) {
  const EdgeList edges = GenerateErdosRenyi(250, 2000, 61);
  const Graph g = Graph::FromEdges(edges);
  PartitionOptions popts;
  popts.num_partitions = 6;
  popts.assignment = EdgeAssignment::kHashBySource;
  popts.core_subgraph = false;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  EXPECT_EQ(pg.num_edges(), edges.num_edges());

  LtpEngine engine(&pg, SmallCacheOptions());
  const JobId id = engine.AddJob(std::make_unique<WccProgram>());
  engine.Run();
  EXPECT_EQ(engine.FinalValues(id), ReferenceWcc(g));
}

TEST(HashPartitioningTest, OutEdgesOfAVertexStayTogether) {
  const EdgeList edges = GenerateErdosRenyi(200, 1600, 67);
  PartitionOptions popts;
  popts.num_partitions = 8;
  popts.assignment = EdgeAssignment::kHashBySource;
  popts.core_subgraph = false;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  // Every vertex's out-edges live in exactly one partition.
  std::vector<int> out_partition(edges.num_vertices(), -1);
  for (const auto& part : pg.partitions()) {
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      if (part.out_neighbors(v).empty()) {
        continue;
      }
      const VertexId gid = part.vertex(v).global_id;
      EXPECT_TRUE(out_partition[gid] == -1 ||
                  out_partition[gid] == static_cast<int>(part.id()));
      out_partition[gid] = static_cast<int>(part.id());
    }
  }
}

TEST(CacheEconomicsTest, SharingGrowsWithJobCount) {
  // The paper's core claim (Figs. 18/19): CGraph's per-job data traffic falls as more
  // jobs share each load, while an individual-access system's per-job traffic does not.
  const EdgeList edges = test_support::FixedRmat(10, 8, 21);
  PartitionOptions popts;
  popts.num_partitions = 12;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);

  auto cgraph_bytes_per_job = [&](size_t jobs) {
    LtpEngine engine(&pg, SmallCacheOptions());
    for (size_t i = 0; i < jobs; ++i) {
      engine.AddJob(MakeProgram("pagerank", 0));
    }
    const RunReport report = engine.Run();
    return static_cast<double>(report.cache.miss_bytes) / jobs;
  };
  const double one = cgraph_bytes_per_job(1);
  const double four = cgraph_bytes_per_job(4);
  // Structure loads amortize ~4x for identical jobs; private-table traffic (one table
  // per job) cannot, so the per-job total lands well below solo but above total/4.
  EXPECT_LT(four, 0.7 * one);
}

TEST(CacheEconomicsTest, CgraphMissRateDropsWithJobs) {
  const EdgeList edges = test_support::FixedRmat(10, 8, 22);
  PartitionOptions popts;
  popts.num_partitions = 12;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);

  auto miss_rate = [&](size_t jobs) {
    LtpEngine engine(&pg, SmallCacheOptions());
    for (size_t i = 0; i < jobs; ++i) {
      engine.AddJob(MakeProgram("pagerank", 0));
    }
    return engine.Run().cache.miss_rate();
  };
  EXPECT_LT(miss_rate(8), miss_rate(1));
}

}  // namespace
}  // namespace cgraph
