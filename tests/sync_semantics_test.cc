// White-box tests of the Push synchronization semantics (paper Algorithms 1-2) on
// hand-crafted graphs whose replica layout is known exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/wcc.h"
#include "src/core/ltp_engine.h"
#include "src/graph/edge_list.h"
#include "src/partition/partitioned_graph.h"

namespace cgraph {
namespace {

EngineOptions Opts() {
  EngineOptions options;
  options.num_workers = 2;
  return options;
}

// Path 0 -> 1 -> 2 cut into two single-edge partitions: vertex 1 is replicated (one
// replica per partition), so every hop crosses the replica boundary through Push.
class TwoPartitionPathTest : public ::testing::Test {
 protected:
  TwoPartitionPathTest() {
    EdgeList edges;
    edges.Add(0, 1, 1.0f);
    edges.Add(1, 2, 1.0f);
    PartitionOptions popts;
    popts.num_partitions = 2;
    popts.core_subgraph = false;
    pg_ = PartitionedGraphBuilder::Build(edges, popts);
  }
  PartitionedGraph pg_;
};

TEST_F(TwoPartitionPathTest, LayoutIsAsExpected) {
  ASSERT_EQ(pg_.num_partitions(), 2u);
  EXPECT_EQ(pg_.partition(0).num_local_edges(), 1u);
  EXPECT_EQ(pg_.partition(1).num_local_edges(), 1u);
  // Vertex 1 appears in both partitions; exactly one replica is the master.
  uint32_t replicas = 0;
  uint32_t masters = 0;
  for (PartitionId p = 0; p < 2; ++p) {
    for (LocalVertexId v = 0; v < pg_.partition(p).num_local_vertices(); ++v) {
      if (pg_.partition(p).vertex(v).global_id == 1) {
        ++replicas;
        masters += pg_.partition(p).vertex(v).is_master ? 1 : 0;
      }
    }
  }
  EXPECT_EQ(replicas, 2u);
  EXPECT_EQ(masters, 1u);
  EXPECT_DOUBLE_EQ(pg_.replication_factor(), 4.0 / 3.0);
}

TEST_F(TwoPartitionPathTest, SsspCrossesReplicaBoundary) {
  LtpEngine engine(&pg_, Opts());
  const JobId id = engine.AddJob(std::make_unique<SsspProgram>(0));
  const RunReport report = engine.Run();
  const auto dist = engine.FinalValues(id);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);
  // Iteration 1 relaxes 0->1, iteration 2 relaxes 1->2 (in whichever partition holds the
  // edge), iteration 3 finds nothing active.
  EXPECT_EQ(report.jobs[0].iterations, 3u);
  // Exactly one sync record flows: 0 scatters into vertex 1 in the partition holding its
  // *master*, so no mirror->master record exists and the Push stage emits a single
  // master->mirror broadcast that activates the replica owning edge 1->2.
  EXPECT_EQ(report.jobs[0].push_updates, 1u);
}

TEST_F(TwoPartitionPathTest, PageRankMassConserved) {
  LtpEngine engine(&pg_, Opts());
  const JobId id = engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-12));
  engine.Run();
  const auto rank = engine.FinalValues(id);
  // Closed form for the 3-vertex path with damping d and base (1-d):
  //   r0 = 0.15, r1 = 0.15 + d*r0, r2 = 0.15 + d*r1.
  EXPECT_NEAR(rank[0], 0.15, 1e-9);
  EXPECT_NEAR(rank[1], 0.15 + 0.85 * rank[0], 1e-9);
  EXPECT_NEAR(rank[2], 0.15 + 0.85 * rank[1], 1e-9);
}

// Diamond 0 -> {1, 2} -> 3 split so that vertex 3 receives contributions in two
// partitions within the same iteration: the mirror's buffered delta and the master's
// in-place delta must merge through Acc, not overwrite each other.
TEST(SyncMergeTest, ContributionsFromTwoPartitionsMerge) {
  EdgeList edges;
  edges.Add(0, 1, 1.0f);
  edges.Add(1, 3, 1.0f);
  edges.Add(0, 2, 1.0f);
  edges.Add(2, 3, 5.0f);
  PartitionOptions popts;
  popts.num_partitions = 2;
  popts.core_subgraph = false;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);

  LtpEngine engine(&pg, Opts());
  const JobId sssp = engine.AddJob(std::make_unique<SsspProgram>(0));
  engine.Run();
  const auto dist = engine.FinalValues(sssp);
  EXPECT_DOUBLE_EQ(dist[3], 2.0);  // min(1+1, 1+5): the Acc-min across partitions.

  // And for a sum accumulator both contributions must arrive.
  LtpEngine pr_engine(&pg, Opts());
  const JobId pr = pr_engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-12));
  pr_engine.Run();
  const auto rank = pr_engine.FinalValues(pr);
  // Vertex 3 receives damped mass from both 1 and 2.
  EXPECT_NEAR(rank[3], 0.15 + 0.85 * rank[1] + 0.85 * rank[2], 1e-9);
}

// A vertex replicated across MANY partitions (star hub cut into several chunks): the
// hub's delta must broadcast identically to every replica.
TEST(SyncMergeTest, HubReplicaConsistencyAcrossManyPartitions) {
  EdgeList edges;
  const VertexId kLeaves = 32;
  for (VertexId v = 1; v <= kLeaves; ++v) {
    edges.Add(0, v, 1.0f);  // Hub out-edges.
    edges.Add(v, 0, 1.0f);  // Leaf back-edges.
  }
  PartitionOptions popts;
  popts.num_partitions = 8;
  popts.core_subgraph = false;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);

  LtpEngine engine(&pg, Opts());
  const JobId id = engine.AddJob(std::make_unique<WccProgram>());
  engine.Run();
  const auto labels = engine.FinalValues(id);
  for (VertexId v = 0; v <= kLeaves; ++v) {
    EXPECT_DOUBLE_EQ(labels[v], 0.0) << v;  // One component, min id 0.
  }
}

// Convergence bookkeeping: after the run no partition may remain registered, and the
// result of re-running on the same partitioned graph must be identical (the engine does
// not mutate the structure).
TEST(SyncMergeTest, StructureIsImmutableAcrossRuns) {
  const EdgeList edges = [] {
    EdgeList e;
    e.Add(0, 1, 2.0f);
    e.Add(1, 2, 3.0f);
    e.Add(2, 0, 4.0f);
    return e;
  }();
  PartitionOptions popts;
  popts.num_partitions = 3;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  std::vector<double> first;
  for (int run = 0; run < 2; ++run) {
    LtpEngine engine(&pg, Opts());
    const JobId id = engine.AddJob(std::make_unique<SsspProgram>(0));
    engine.Run();
    const auto dist = engine.FinalValues(id);
    if (run == 0) {
      first = dist;
    } else {
      EXPECT_EQ(dist, first);
    }
  }
}

}  // namespace
}  // namespace cgraph
