// Executor behaviour over evolving-graph snapshots: the sharing mechanics behind the
// paper's Figures 16-19, at test scale.

#include <gtest/gtest.h>

#include <memory>

#include "src/algorithms/factory.h"
#include "src/baselines/baseline_executor.h"
#include "src/cache/memory_hierarchy.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/partition/partitioned_graph.h"
#include "src/storage/snapshot_store.h"
#include "tests/testing/graph_fixtures.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

EngineOptions SmallOptions() {
  EngineOptions options = test_support::TestEngineOptions(/*cache_kib=*/48);
  options.num_workers = 2;
  return options;
}

std::unique_ptr<SnapshotStore> MakeStore(double change_ratio, size_t snapshots) {
  const EdgeList edges = test_support::FixedRmat(10, 8, 77);
  PartitionOptions popts;
  popts.num_partitions = 10;
  auto store =
      std::make_unique<SnapshotStore>(PartitionedGraphBuilder::Build(edges, popts));
  for (size_t i = 1; i <= snapshots; ++i) {
    store->CreateSnapshot(static_cast<Timestamp>(i) * 10, change_ratio, 1000 + i);
  }
  return store;
}

// Options with a memory tier sized relative to the store's structure: `memory_factor` of
// 1.5 holds one shared copy plus private tables but not per-snapshot duplicates.
EngineOptions TightMemoryOptions(const SnapshotStore& store, double memory_factor) {
  EngineOptions options = SmallOptions();
  options.hierarchy.memory_capacity_bytes = static_cast<uint64_t>(
      memory_factor * static_cast<double>(store.base().total_structure_bytes()));
  return options;
}

// Runs `jobs` jobs, one per snapshot timestamp, on the LTP engine; returns the report.
RunReport RunCgraphOnStore(const SnapshotStore& store, size_t jobs,
                           double memory_factor = 1e6) {
  LtpEngine engine(&store, TightMemoryOptions(store, memory_factor));
  const auto names = BenchmarkJobNames(jobs);
  for (size_t i = 0; i < jobs; ++i) {
    engine.AddJob(MakeProgram(names[i], 0), static_cast<Timestamp>(i) * 10);
  }
  return engine.Run();
}

RunReport RunBaselineOnStore(const SnapshotStore& store, BaselineSystem system, size_t jobs,
                             double memory_factor = 1e6) {
  BaselineOptions options;
  options.system = system;
  options.engine = TightMemoryOptions(store, memory_factor);
  BaselineExecutor executor(&store, options);
  const auto names = BenchmarkJobNames(jobs);
  for (size_t i = 0; i < jobs; ++i) {
    executor.AddJob(MakeProgram(names[i], 0), static_cast<Timestamp>(i) * 10);
  }
  return executor.Run();
}

TEST(SnapshotExecutorTest, ZeroChangeRatioBehavesLikeOneSnapshot) {
  const auto changed = MakeStore(0.0, 3);
  // With nothing changed, every job resolves to version 0 of every partition: the cache
  // traffic must equal the same mix bound to a single snapshot.
  const RunReport multi = RunCgraphOnStore(*changed, 4);
  LtpEngine single(&*changed, SmallOptions());
  const auto names = BenchmarkJobNames(4);
  for (size_t i = 0; i < 4; ++i) {
    single.AddJob(MakeProgram(names[i], 0), /*submit_time=*/0);
  }
  const RunReport base = single.Run();
  EXPECT_EQ(multi.cache.miss_bytes, base.cache.miss_bytes);
  EXPECT_EQ(multi.cache.touches, base.cache.touches);
}

TEST(SnapshotExecutorTest, MoreChangesMeanMoreTraffic) {
  // Higher change ratios reduce cross-snapshot sharing, so CGraph's cache volume rises
  // (the paper's Fig. 16 trend).
  const RunReport low = RunCgraphOnStore(*MakeStore(0.001, 3), 4);
  const RunReport high = RunCgraphOnStore(*MakeStore(0.5, 3), 4);
  EXPECT_GT(high.cache.miss_bytes, low.cache.miss_bytes);
}

TEST(SnapshotExecutorTest, PlainSeraphDuplicatesUnchangedPartitions) {
  // Plain Seraph materializes each snapshot as a full copy; Version-Traveler-style
  // storage shares unchanged partitions. With a tight memory tier, the full copies fault
  // more bytes from disk.
  auto store = MakeStore(0.01, 3);
  BaselineOptions options;
  // Memory fits one shared structure copy plus state, not four per-snapshot copies.
  options.engine = TightMemoryOptions(*store, 2.0);

  options.system = BaselineSystem::kSeraph;
  BaselineExecutor seraph(&*store, options);
  options.system = BaselineSystem::kSeraphVt;
  BaselineExecutor seraph_vt(&*store, options);
  const auto names = BenchmarkJobNames(4);
  for (size_t i = 0; i < 4; ++i) {
    seraph.AddJob(MakeProgram(names[i], 0), static_cast<Timestamp>(i) * 10);
    seraph_vt.AddJob(MakeProgram(names[i], 0), static_cast<Timestamp>(i) * 10);
  }
  const RunReport plain = seraph.Run();
  const RunReport vt = seraph_vt.Run();
  EXPECT_GT(plain.memory.disk_bytes, vt.memory.disk_bytes);
}

TEST(SnapshotExecutorTest, CgraphBeatsSeraphVtOnSnapshots) {
  // The Fig. 16 headline at test scale: same snapshot chain, same jobs — CGraph's shared
  // loads move less data than Seraph-VT's individual streams.
  auto store = MakeStore(0.05, 7);
  const RunReport cgraph = RunCgraphOnStore(*store, 8);
  const RunReport vt = RunBaselineOnStore(*store, BaselineSystem::kSeraphVt, 8);
  EXPECT_LT(cgraph.cache.miss_bytes, vt.cache.miss_bytes);
  EXPECT_LT(cgraph.cache.miss_rate(), vt.cache.miss_rate());
}

TEST(SnapshotExecutorTest, SparedAccessesGrowWithJobs) {
  // Fig. 19's trend: relative to sequential execution (which re-streams the graph from
  // disk per job), CGraph's savings grow with the number of concurrent jobs. A tight
  // memory tier keeps the runs in the paper's out-of-core regime.
  // memory_factor 0.5: no single job's working set fits, so even the sequential runs
  // stream from disk every iteration — the paper's regime, where hyperlink14 exceeds
  // the testbed's memory severalfold.
  auto spared = [](size_t jobs) {
    auto store = MakeStore(0.05, jobs > 1 ? jobs - 1 : 0);
    const RunReport seq =
        RunBaselineOnStore(*store, BaselineSystem::kSequential, jobs, /*memory_factor=*/0.5);
    const RunReport cgraph = RunCgraphOnStore(*store, jobs, /*memory_factor=*/0.5);
    const double seq_bytes =
        static_cast<double>(seq.cache.miss_bytes + seq.memory.disk_bytes);
    const double cg_bytes =
        static_cast<double>(cgraph.cache.miss_bytes + cgraph.memory.disk_bytes);
    return 1.0 - cg_bytes / seq_bytes;
  };
  const double at_two = spared(2);
  const double at_eight = spared(8);
  EXPECT_GT(at_eight, at_two);
  EXPECT_GT(at_eight, 0.0);
}

TEST(SnapshotExecutorTest, RuntimeArrivalOnSnapshotBindsItsVersion) {
  // A job that arrives mid-run with a later submit time must compute on *its* snapshot,
  // not on whatever the already-running jobs are bound to.
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 0);
  edges.Add(2, 3);
  edges.Add(3, 2);
  PartitionOptions popts;
  popts.num_partitions = 2;
  popts.core_subgraph = false;
  SnapshotStore store(PartitionedGraphBuilder::Build(edges, popts));
  store.CreateSnapshot(10, 1.0, 9);

  LtpEngine engine(&store, SmallOptions());
  const JobId early = engine.AddJob(MakeProgram("wcc", 0), /*submit_time=*/0);
  const JobId late =
      engine.ScheduleJob(MakeProgram("wcc", 0), /*arrival_step=*/3, /*submit_time=*/10);
  engine.Run();
  // The early job sees the base graph: components {0,1} and {2,3} labeled by min id.
  const auto early_labels = engine.FinalValues(early);
  EXPECT_DOUBLE_EQ(early_labels[0], 0.0);
  EXPECT_DOUBLE_EQ(early_labels[1], 0.0);
  EXPECT_DOUBLE_EQ(early_labels[2], 2.0);
  EXPECT_DOUBLE_EQ(early_labels[3], 2.0);
  // The late job ran on the rewired snapshot; its labeling must still be a valid
  // min-label fixpoint (label <= own id).
  const auto late_labels = engine.FinalValues(late);
  for (size_t v = 0; v < late_labels.size(); ++v) {
    EXPECT_LE(late_labels[v], static_cast<double>(v));
  }
}

TEST(ExpectedTouchedSegmentsTest, Boundaries) {
  // 16 segments of 1 KiB, 1600 vertices -> 100 vertices per segment.
  EXPECT_EQ(ExpectedTouchedSegments(16 << 10, 1 << 10, 0, 1600), 0u);
  EXPECT_EQ(ExpectedTouchedSegments(16 << 10, 1 << 10, 1600, 1600), 16u);
  EXPECT_EQ(ExpectedTouchedSegments(0, 1 << 10, 100, 1600), 0u);
  // A single active vertex touches at least one segment but not all.
  const uint32_t one = ExpectedTouchedSegments(16 << 10, 1 << 10, 1, 1600);
  EXPECT_GE(one, 1u);
  EXPECT_LT(one, 16u);
  // Monotone in the active count.
  uint32_t prev = 0;
  for (uint32_t active : {1u, 10u, 100u, 400u, 1600u}) {
    const uint32_t touched = ExpectedTouchedSegments(16 << 10, 1 << 10, active, 1600);
    EXPECT_GE(touched, prev);
    prev = touched;
  }
}

}  // namespace
}  // namespace cgraph
