// Fault-injection harness, per-job failure isolation, and checkpoint/restart recovery
// (docs/robustness.md). The contract under test: an injected per-job fault never aborts
// the process, the faulted job lands in a terminal Failed/Cancelled state through the
// normal finalization path, co-running jobs produce exactly the results of an
// undisturbed run, and a checkpoint-restored job converges to the same final values as
// if the fault never happened. The daemon's retry-with-backoff policy on top must be
// byte-deterministic across runs and worker counts.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/algorithms/factory.h"
#include "src/common/fault_injection.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/partition/partitioned_graph.h"
#include "src/service/daemon.h"
#include "src/service/trace_gen.h"
#include "tests/testing/graph_fixtures.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

PartitionedGraph Partition(const EdgeList& edges, uint32_t parts = 8) {
  PartitionOptions options;
  options.num_partitions = parts;
  options.core_subgraph = true;
  return PartitionedGraphBuilder::Build(edges, options);
}

EngineOptions BaseOptions(uint32_t workers, ExecutionMode mode) {
  EngineOptions options = test_support::TestEngineOptions();
  options.num_workers = workers;
  options.execution_mode = mode;
  if (mode == ExecutionMode::kAsync) {
    // A wide window with unconditional deferral keeps non-empty deferred buffers at
    // checkpoint boundaries, so restores must rebuild them correctly.
    options.staleness = 8;
    options.async_defer_divisor = 0;
  }
  return options;
}

// The min-accumulator job mix: exactly order-independent final values, so recovered and
// undisturbed runs can be compared for bit equality (docs/robustness.md).
const std::vector<std::string>& JobMix() {
  static const std::vector<std::string> mix = {"sssp", "wcc", "bfs"};
  return mix;
}

struct BatchRun {
  std::vector<JobStats> stats;
  std::vector<std::vector<double>> values;  // Empty vector for non-completed jobs.
  uint64_t final_step = 0;
};

// Submits the mix up front and drives to idle; when `restart_faulted` is set, jobs that
// failed with a checkpoint are restarted until nothing recoverable remains (the CLI's
// batch recovery loop).
BatchRun RunBatch(const PartitionedGraph& graph, const EngineOptions& options,
                  bool restart_faulted = false) {
  LtpEngine engine(&graph, options);
  for (const std::string& name : JobMix()) {
    engine.Submit(MakeProgram(name, 1));
  }
  engine.RunUntilIdle();
  if (restart_faulted) {
    for (int round = 0; round < 8; ++round) {
      bool restarted = false;
      for (JobId id = 0; id < static_cast<JobId>(engine.num_jobs()); ++id) {
        const JobStats& stats = engine.job(id).stats();
        if ((stats.failed || stats.cancelled) && engine.HasCheckpoint(id) &&
            engine.RestartFromCheckpoint(id, engine.current_step()).ok()) {
          restarted = true;
        }
      }
      if (!restarted) {
        break;
      }
      engine.RunUntilIdle();
    }
  }
  BatchRun run;
  run.final_step = engine.current_step();
  for (JobId id = 0; id < static_cast<JobId>(engine.num_jobs()); ++id) {
    run.stats.push_back(engine.job(id).stats());
    const Result<std::vector<double>> values = engine.TryFinalValues(id);
    run.values.push_back(values.ok() ? values.value() : std::vector<double>());
  }
  return run;
}

// The schedule-invariant compute columns (docs/robustness.md): equal for a job whose
// own execution was undisturbed, whatever happened to its co-runners.
void ExpectSameComputeColumns(const JobStats& a, const JobStats& b,
                              const std::string& what) {
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.vertex_computes, b.vertex_computes) << what;
  EXPECT_EQ(a.edge_traversals, b.edge_traversals) << what;
  EXPECT_EQ(a.push_updates, b.push_updates) << what;
  EXPECT_EQ(a.compute_units, b.compute_units) << what;
}

void ExpectIdenticalValues(const std::vector<double>& a, const std::vector<double>& b,
                           const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a[v], b[v]) << what << " vertex " << v;
  }
}

// --- Fault-spec grammar -------------------------------------------------------------

TEST(FaultSpecTest, ParsesEveryKindWithAndWithoutJobPin) {
  const struct {
    const char* text;
    FaultKind kind;
    uint64_t step;
    JobId job;
  } cases[] = {
      {"load@0", FaultKind::kLoadError, 0, kInvalidJob},
      {"trigger@17", FaultKind::kTriggerError, 17, kInvalidJob},
      {"push@40:2", FaultKind::kPushError, 40, 2},
      {"corrupt@9:0", FaultKind::kCorruptState, 9, 0},
      {"cancel@123456789", FaultKind::kCancel, 123456789, kInvalidJob},
  };
  for (const auto& c : cases) {
    FaultSpec spec;
    ASSERT_TRUE(ParseFaultSpec(c.text, &spec)) << c.text;
    EXPECT_EQ(spec.kind, c.kind) << c.text;
    EXPECT_EQ(spec.step, c.step) << c.text;
    EXPECT_EQ(spec.job, c.job) << c.text;
    // Round trip through the canonical kind spelling.
    EXPECT_STREQ(FaultKindName(spec.kind), std::string(c.text).substr(0, std::string(c.text).find('@')).c_str());
  }
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  FaultSpec spec;
  for (const char* text : {"", "load", "@4", "load@", "load@x", "oom@4", "none@4",
                           "load@4:", "load@4:x", "load@4:4294967295", "load@-1"}) {
    EXPECT_FALSE(ParseFaultSpec(text, &spec)) << "'" << text << "'";
  }
}

TEST(FaultInjectorTest, SpecsFireOnceAtTheFirstMatchingPoll) {
  FaultInjector injector({{FaultKind::kPushError, 10, kInvalidJob},
                          {FaultKind::kPushError, 10, 3}},
                         7);
  EXPECT_TRUE(injector.armed());
  EXPECT_EQ(injector.fired(), 0u);
  // Below the step threshold: nothing fires.
  EXPECT_EQ(injector.Poll(FaultKind::kPushError, 9, 3), nullptr);
  // Kind mismatch: nothing fires.
  EXPECT_EQ(injector.Poll(FaultKind::kLoadError, 10, 3), nullptr);
  // The unpinned spec matches any job at step >= 10 and fires exactly once.
  EXPECT_NE(injector.Poll(FaultKind::kPushError, 12, 0), nullptr);
  EXPECT_EQ(injector.fired(), 1u);
  // The pinned spec ignores other jobs, then fires for job 3.
  EXPECT_EQ(injector.Poll(FaultKind::kPushError, 12, 0), nullptr);
  EXPECT_NE(injector.Poll(FaultKind::kPushError, 12, 3), nullptr);
  EXPECT_EQ(injector.fired(), 2u);
  // Everything spent: polls are no-ops from here on.
  EXPECT_EQ(injector.Poll(FaultKind::kPushError, 100, 3), nullptr);

  // Unarmed injector: the zero-cost fast path.
  FaultInjector unarmed;
  EXPECT_FALSE(unarmed.armed());
  EXPECT_EQ(unarmed.Poll(FaultKind::kPushError, 0, 0), nullptr);
}

TEST(FaultInjectorTest, CorruptionPointIsAPureFunctionOfSeedAndJob) {
  FaultInjector a({{FaultKind::kCorruptState, 0, 0}}, 42);
  FaultInjector b({{FaultKind::kCorruptState, 0, 0}}, 42);
  FaultInjector c({{FaultKind::kCorruptState, 0, 0}}, 43);
  EXPECT_EQ(a.CorruptionPoint(0), b.CorruptionPoint(0));
  EXPECT_EQ(a.CorruptionPoint(7), b.CorruptionPoint(7));
  EXPECT_NE(a.CorruptionPoint(0), a.CorruptionPoint(1));
  EXPECT_NE(a.CorruptionPoint(0), c.CorruptionPoint(0));
}

// --- Per-job failure isolation ------------------------------------------------------

// Every stage fault kind, under both execution modes and at 1 and 4 workers: the
// process survives, the faulted job is terminally Failed, and the co-running jobs'
// compute columns and converged values are exactly those of an undisturbed run.
TEST(FaultIsolationTest, InjectedFaultsNeverDisturbCoRunningJobs) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  const JobId victim = 1;  // wcc in the mix.

  for (ExecutionMode mode : {ExecutionMode::kBsp, ExecutionMode::kAsync}) {
    for (uint32_t workers : {1u, 4u}) {
      const EngineOptions clean_options = BaseOptions(workers, mode);
      const BatchRun clean = RunBatch(graph, clean_options);
      ASSERT_EQ(clean.stats.size(), JobMix().size());
      // Fire mid-flight: halfway to the victim's completion it is still running.
      const uint64_t fault_step = clean.stats[victim].finish_step / 2;

      for (FaultKind kind : {FaultKind::kLoadError, FaultKind::kTriggerError,
                             FaultKind::kPushError, FaultKind::kCorruptState}) {
        const std::string what = std::string(FaultKindName(kind)) + " mode=" +
                                 std::string(ExecutionModeName(mode)) +
                                 " workers=" + std::to_string(workers);
        EngineOptions options = clean_options;
        options.fault_specs = {{kind, fault_step, victim}};
        const BatchRun faulted = RunBatch(graph, options);

        ASSERT_EQ(faulted.stats.size(), clean.stats.size()) << what;
        EXPECT_TRUE(faulted.stats[victim].failed) << what;
        EXPECT_FALSE(faulted.stats[victim].fail_message.empty()) << what;
        EXPECT_TRUE(faulted.values[victim].empty()) << what;
        for (JobId id = 0; id < static_cast<JobId>(clean.stats.size()); ++id) {
          if (id == victim) {
            continue;
          }
          const std::string job_what = what + " job " + std::to_string(id);
          EXPECT_FALSE(faulted.stats[id].failed) << job_what;
          ExpectSameComputeColumns(faulted.stats[id], clean.stats[id], job_what);
          ExpectIdenticalValues(faulted.values[id], clean.values[id], job_what);
        }
      }
    }
  }
}

TEST(FaultIsolationTest, InjectedCancelRetiresTheJobAsCancelled) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  EngineOptions options = BaseOptions(2, ExecutionMode::kBsp);
  options.fault_specs = {{FaultKind::kCancel, 10, 0}};
  const BatchRun run = RunBatch(graph, options);
  EXPECT_TRUE(run.stats[0].cancelled);
  EXPECT_FALSE(run.stats[0].failed);
  EXPECT_TRUE(run.values[0].empty());
  // Co-runners still complete.
  EXPECT_FALSE(run.values[1].empty());
  EXPECT_FALSE(run.values[2].empty());
}

TEST(FaultIsolationTest, StepBudgetCancelsLongRunningJobs) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  const BatchRun clean = RunBatch(graph, BaseOptions(2, ExecutionMode::kBsp));

  // A budget below every job's clean runtime cancels them all.
  EngineOptions options = BaseOptions(2, ExecutionMode::kBsp);
  options.job_step_budget = 4;
  const BatchRun budgeted = RunBatch(graph, options);
  for (JobId id = 0; id < static_cast<JobId>(budgeted.stats.size()); ++id) {
    EXPECT_TRUE(budgeted.stats[id].cancelled) << id;
  }
  // A budget far past the whole clean run cancels nothing.
  options.job_step_budget = clean.final_step * 4 + 1000;
  const BatchRun roomy = RunBatch(graph, options);
  for (JobId id = 0; id < static_cast<JobId>(roomy.stats.size()); ++id) {
    EXPECT_FALSE(roomy.stats[id].cancelled) << id;
    ExpectIdenticalValues(roomy.values[id], clean.values[id], std::to_string(id));
  }
}

TEST(CancelApiTest, CancelCoversWaitingRunningAndFinishedStates) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  EngineOptions options = BaseOptions(2, ExecutionMode::kBsp);
  options.max_jobs = 1;  // The second submission must queue.
  LtpEngine engine(&graph, options);
  const JobId running = engine.Submit(MakeProgram("sssp", 1)).id();
  const JobId waiting = engine.Submit(MakeProgram("wcc", 1)).id();
  ASSERT_TRUE(engine.Step());
  ASSERT_TRUE(engine.job(running).started());
  ASSERT_FALSE(engine.job(waiting).started());

  // Waiting: shed, never computes.
  EXPECT_TRUE(engine.Cancel(waiting));
  EXPECT_TRUE(engine.job(waiting).stats().shed);
  // Running: terminal mid-run cancellation; the slot frees for nothing else here.
  EXPECT_TRUE(engine.Cancel(running));
  EXPECT_TRUE(engine.job(running).stats().cancelled);
  // Wait() on a terminal job returns immediately instead of driving or hanging.
  engine.Wait(running);
  engine.Wait(waiting);
  // Finished: refused.
  EXPECT_FALSE(engine.Cancel(running));
  EXPECT_FALSE(engine.Cancel(waiting));
  engine.RunUntilIdle();
}

TEST(WaitSemanticsTest, TryFinalValuesNamesEveryTerminalState) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  EngineOptions options = BaseOptions(2, ExecutionMode::kBsp);
  options.max_jobs = 1;
  options.fault_specs = {{FaultKind::kTriggerError, 4, 0}};
  LtpEngine engine(&graph, options);
  const JobId doomed = engine.Submit(MakeProgram("sssp", 1)).id();
  const JobId queued = engine.Submit(MakeProgram("wcc", 1)).id();

  // Still pending: kFailedPrecondition, not a hang or a recycled-slot readback.
  EXPECT_EQ(engine.TryFinalValues(doomed).status().code(), StatusCode::kFailedPrecondition);
  engine.Cancel(queued);
  engine.RunUntilIdle();

  EXPECT_TRUE(engine.job(doomed).stats().failed);
  const Result<std::vector<double>> failed = engine.TryFinalValues(doomed);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kFailedPrecondition);
  // The failure message travels to the caller.
  EXPECT_NE(failed.status().ToString().find("injected trigger-stage fault"),
            std::string::npos);
  EXPECT_EQ(engine.TryFinalValues(queued).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.TryFinalValues(999).status().code(), StatusCode::kNotFound);
}

// --- Checkpoint / restart -----------------------------------------------------------

TEST(CheckpointTest, RestoredJobConvergesToTheUndisturbedValues) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);

  for (ExecutionMode mode : {ExecutionMode::kBsp, ExecutionMode::kAsync}) {
    for (uint32_t workers : {1u, 4u}) {
      const std::string what = std::string(ExecutionModeName(mode)) +
                               " workers=" + std::to_string(workers);
      const EngineOptions clean_options = BaseOptions(workers, mode);
      const BatchRun clean = RunBatch(graph, clean_options);

      for (JobId victim = 0; victim < static_cast<JobId>(JobMix().size()); ++victim) {
        EngineOptions options = clean_options;
        options.checkpoint_every = 1;  // A restart point at every iteration boundary.
        // Late enough that the victim passed a checkpoint, early enough to be running.
        const uint64_t fault_step = clean.stats[victim].finish_step * 3 / 4;
        options.fault_specs = {{FaultKind::kTriggerError, fault_step, victim}};
        const BatchRun recovered = RunBatch(graph, options, /*restart_faulted=*/true);

        const std::string job_what = what + " victim " + std::to_string(victim);
        EXPECT_FALSE(recovered.stats[victim].failed) << job_what;
        EXPECT_EQ(recovered.stats[victim].recoveries, 1u) << job_what;
        for (JobId id = 0; id < static_cast<JobId>(clean.stats.size()); ++id) {
          const std::string each = job_what + " job " + std::to_string(id);
          ExpectSameComputeColumns(recovered.stats[id], clean.stats[id], each);
          ExpectIdenticalValues(recovered.values[id], clean.values[id], each);
        }
      }
    }
  }
}

TEST(CheckpointTest, RestoreDiscardsCorruptedState) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  const BatchRun clean = RunBatch(graph, BaseOptions(2, ExecutionMode::kBsp));

  EngineOptions options = BaseOptions(2, ExecutionMode::kBsp);
  options.checkpoint_every = 1;
  options.fault_specs = {
      {FaultKind::kCorruptState, clean.stats[0].finish_step * 3 / 4, 0}};
  const BatchRun recovered = RunBatch(graph, options, /*restart_faulted=*/true);
  // The NaN scribbled into the victim's table must not survive the restore.
  ASSERT_FALSE(recovered.values[0].empty());
  for (double value : recovered.values[0]) {
    EXPECT_FALSE(std::isnan(value));
  }
  ExpectIdenticalValues(recovered.values[0], clean.values[0], "corrupt-restore");
}

TEST(CheckpointTest, CheckpointAccountingAndDropSemantics) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  EngineOptions options = BaseOptions(2, ExecutionMode::kBsp);
  options.checkpoint_every = 2;
  LtpEngine engine(&graph, options);
  std::vector<JobId> ids;
  for (const std::string& name : JobMix()) {
    ids.push_back(engine.Submit(MakeProgram(name, 1)).id());
  }
  engine.RunUntilIdle();
  for (JobId id : ids) {
    const JobStats& stats = engine.job(id).stats();
    // Every job with >= 2 completed iterations snapshotted, and paid bytes for it.
    if (stats.iterations >= 2) {
      EXPECT_GT(stats.checkpoints_taken, 0u) << id;
      EXPECT_GT(stats.checkpoint_bytes, 0u) << id;
    }
    // Clean completion drops the restart point — nothing to restore afterwards.
    EXPECT_FALSE(engine.HasCheckpoint(id)) << id;
    EXPECT_EQ(engine.RestartFromCheckpoint(id, 0).code(), StatusCode::kFailedPrecondition)
        << id;
  }
  EXPECT_EQ(engine.RestartFromCheckpoint(999, 0).code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, FailureBeforeFirstBoundaryHasNoRestartPoint) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  EngineOptions options = BaseOptions(2, ExecutionMode::kBsp);
  options.checkpoint_every = 1000;  // No job reaches iteration 1000.
  options.fault_specs = {{FaultKind::kPushError, 8, 0}};
  LtpEngine engine(&graph, options);
  for (const std::string& name : JobMix()) {
    engine.Submit(MakeProgram(name, 1));
  }
  engine.RunUntilIdle();
  ASSERT_TRUE(engine.job(0).stats().failed);
  EXPECT_FALSE(engine.HasCheckpoint(0));
  EXPECT_EQ(engine.RestartFromCheckpoint(0, 0).code(), StatusCode::kNotFound);
}

// Checkpoints must not change what the engine computes or charges: the modeled stats of
// a checkpointing run match a non-checkpointing run bit for bit (the snapshot cost is
// modeled analytically from checkpoint_bytes instead; docs/robustness.md).
TEST(CheckpointTest, CheckpointingAddsNoHierarchyCharge) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  const BatchRun plain = RunBatch(graph, BaseOptions(2, ExecutionMode::kBsp));
  EngineOptions options = BaseOptions(2, ExecutionMode::kBsp);
  options.checkpoint_every = 1;
  const BatchRun checkpointed = RunBatch(graph, options);
  ASSERT_EQ(plain.stats.size(), checkpointed.stats.size());
  EXPECT_EQ(plain.final_step, checkpointed.final_step);
  for (size_t id = 0; id < plain.stats.size(); ++id) {
    const std::string what = "job " + std::to_string(id);
    ExpectSameComputeColumns(checkpointed.stats[id], plain.stats[id], what);
    EXPECT_EQ(checkpointed.stats[id].charge.hit_bytes, plain.stats[id].charge.hit_bytes)
        << what;
    EXPECT_EQ(checkpointed.stats[id].charge.mem_bytes, plain.stats[id].charge.mem_bytes)
        << what;
    EXPECT_EQ(checkpointed.stats[id].charge.disk_bytes, plain.stats[id].charge.disk_bytes)
        << what;
    ExpectIdenticalValues(checkpointed.values[id], plain.values[id], what);
  }
}

// --- Daemon retry-with-backoff ------------------------------------------------------

ServiceReport RunDaemon(const PartitionedGraph& graph, const EdgeList& edges,
                        uint32_t workers, const ServiceOptions& sopts,
                        const EngineOptions& base) {
  EngineOptions options = base;
  options.num_workers = workers;
  LtpEngine engine(&graph, options);
  TraceGenOptions tgen;
  tgen.num_requests = 48;
  tgen.mean_gap = 3;
  tgen.programs = JobMix();
  tgen.sources = PickSourcePool(edges, 4);
  ServiceDriver driver(&engine, sopts);
  return driver.Run(GenerateArrivalTrace(tgen));
}

TEST(RetryTest, RetriedFaultsCompleteEveryRequestDeterministically) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  EngineOptions base = test_support::TestEngineOptions();
  base.checkpoint_every = 2;
  base.fault_specs = {{FaultKind::kTriggerError, 40, kInvalidJob},
                      {FaultKind::kPushError, 90, kInvalidJob}};
  ServiceOptions sopts;
  sopts.retry_limit = 3;
  sopts.retry_backoff = 4;

  std::vector<ServiceReport> reports;
  for (uint32_t workers : {1u, 4u, 4u}) {  // Twice at 4: run-to-run determinism too.
    reports.push_back(RunDaemon(graph, edges, workers, sopts, base));
  }
  const ServiceReport& first = reports.front();
  // Both injected faults fired and were absorbed: nothing terminal-failed, every
  // request completed, and at least one retry path (resume or resubmit) exercised.
  EXPECT_EQ(first.failed_requests, 0u);
  EXPECT_EQ(first.completed_requests + first.shed_requests, first.total_requests);
  EXPECT_EQ(first.failed_jobs, 2u);
  EXPECT_GT(first.retried_jobs + first.recovered_jobs, 0u);
  // Accounting: every submitted job either executed, was shed terminally, or hit
  // failure/cancellation events not absorbed by a checkpoint resume. Resumes keep the
  // JobId (no new submission, one more fail/cancel event later), so they subtract;
  // resubmissions add one submission AND one later event each, so they cancel out.
  EXPECT_EQ(first.submitted_jobs,
            first.executed_jobs + first.shed_jobs + first.failed_jobs +
                first.cancelled_jobs - first.recovered_jobs);

  for (size_t r = 1; r < reports.size(); ++r) {
    const ServiceReport& other = reports[r];
    EXPECT_EQ(other.final_step, first.final_step) << r;
    EXPECT_EQ(other.completed_requests, first.completed_requests) << r;
    EXPECT_EQ(other.retried_jobs, first.retried_jobs) << r;
    EXPECT_EQ(other.recovered_jobs, first.recovered_jobs) << r;
    ASSERT_EQ(other.outcomes.size(), first.outcomes.size()) << r;
    for (size_t i = 0; i < first.outcomes.size(); ++i) {
      EXPECT_EQ(other.outcomes[i].job, first.outcomes[i].job) << r << " req " << i;
      EXPECT_EQ(other.outcomes[i].finish_step, first.outcomes[i].finish_step)
          << r << " req " << i;
      EXPECT_EQ(other.outcomes[i].shed, first.outcomes[i].shed) << r << " req " << i;
      EXPECT_EQ(other.outcomes[i].failed, first.outcomes[i].failed) << r << " req " << i;
    }
  }
}

TEST(RetryTest, ExhaustedRetriesFailTheCallersWithoutAborting) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  EngineOptions base = test_support::TestEngineOptions();
  // No checkpoints, and a budget so tight every attempt is cancelled: retries burn out.
  base.job_step_budget = 4;
  ServiceOptions sopts;
  sopts.retry_limit = 2;
  sopts.retry_backoff = 4;
  const ServiceReport report = RunDaemon(graph, edges, 2, sopts, base);
  EXPECT_EQ(report.completed_requests, 0u);
  EXPECT_EQ(report.failed_requests + report.shed_requests, report.total_requests);
  EXPECT_GT(report.failed_requests, 0u);
  EXPECT_GT(report.retried_jobs, 0u);
  EXPECT_EQ(report.recovered_jobs, 0u);
  // The accounting identity in the retried > 0, recovered == 0 regime: every
  // resubmission contributes one submission and one later cancellation event.
  EXPECT_EQ(report.submitted_jobs,
            report.executed_jobs + report.shed_jobs + report.failed_jobs +
                report.cancelled_jobs - report.recovered_jobs);
  for (const RequestOutcome& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.failed || outcome.shed);
  }
}

TEST(RetryTest, NoRetryPolicyLeavesFaultedCallersFailed) {
  const EdgeList edges = test_support::FixedRmat(8, 8, 7);
  const PartitionedGraph graph = Partition(edges);
  EngineOptions base = test_support::TestEngineOptions();
  base.fault_specs = {{FaultKind::kTriggerError, 40, kInvalidJob}};
  const ServiceReport report =
      RunDaemon(graph, edges, 2, ServiceOptions(), base);
  EXPECT_EQ(report.failed_jobs, 1u);
  EXPECT_GT(report.failed_requests, 0u);
  EXPECT_EQ(report.retried_jobs + report.recovered_jobs, 0u);
  EXPECT_EQ(report.completed_requests + report.shed_requests + report.failed_requests,
            report.total_requests);
}

}  // namespace
}  // namespace cgraph
