// Failure-injection tests for the file loaders: malformed, truncated, and adversarial
// inputs must produce Status errors, never crashes or silent misparses.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/common/prng.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "tests/testing/temp_files.h"

namespace cgraph {
namespace {

using test_support::ScopedFile;
using test_support::TempPath;

TEST(IoRobustnessTest, NegativeEndpointRejected) {
  ScopedFile f("neg.el", "0 1\n-3 4\n");
  EXPECT_FALSE(LoadEdgeListText(f.path()).ok());
}

TEST(IoRobustnessTest, FloatEndpointRejected) {
  ScopedFile f("float.el", "0.5 1\n");
  EXPECT_FALSE(LoadEdgeListText(f.path()).ok());
}

TEST(IoRobustnessTest, HugeVertexIdRejected) {
  ScopedFile f("huge.el", "0 99999999999999\n");
  auto result = LoadEdgeListText(f.path());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(IoRobustnessTest, GarbageWeightRejected) {
  ScopedFile f("badw.el", "0 1 heavy\n");
  EXPECT_FALSE(LoadEdgeListText(f.path()).ok());
}

TEST(IoRobustnessTest, WeightOnlySomeLinesAccepted) {
  ScopedFile f("mixed.el", "0 1 2.5\n1 2\n");
  auto result = LoadEdgeListText(f.path());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_edges(), 2u);
  EXPECT_FLOAT_EQ(result->edges()[1].weight, 1.0f);
}

TEST(IoRobustnessTest, ErrorMessageCarriesLineNumber) {
  ScopedFile f("lineno.el", "0 1\n1 2\nbroken line here extra\n");
  auto result = LoadEdgeListText(f.path());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":3:"), std::string::npos);
}

TEST(IoRobustnessTest, EmptyFileYieldsEmptyGraph) {
  ScopedFile f("empty.el", "");
  auto result = LoadEdgeListText(f.path());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_edges(), 0u);
  EXPECT_EQ(result->num_vertices(), 0u);
}

TEST(IoRobustnessTest, BinaryTruncatedHeader) {
  ScopedFile f("trunc.bel", std::string("\x45\x47", 2), /*binary=*/true);
  EXPECT_FALSE(LoadEdgeListBinary(f.path()).ok());
}

TEST(IoRobustnessTest, BinaryTruncatedPayload) {
  // Valid header claiming more edges than the payload holds.
  const EdgeList graph = GenerateRing(16);
  const std::string path = TempPath("trunc_payload.bel");
  ASSERT_TRUE(SaveEdgeListBinary(graph, path).ok());
  // Chop the file.
  std::error_code ec;
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 8, ec);
  ASSERT_FALSE(ec);
  EXPECT_FALSE(LoadEdgeListBinary(path).ok());
  std::remove(path.c_str());
}

TEST(IoRobustnessTest, RandomBytesNeverCrashTheBinaryLoader) {
  Xoshiro256 rng(2024);
  for (int round = 0; round < 20; ++round) {
    std::string bytes(16 + rng.NextBounded(256), '\0');
    for (char& c : bytes) {
      c = static_cast<char>(rng.Next() & 0xFF);
    }
    ScopedFile f("fuzz.bel", bytes, /*binary=*/true);
    auto result = LoadEdgeListBinary(f.path());
    // Either a clean parse failure or (vanishingly unlikely) a valid tiny file; both are
    // acceptable — the property under test is "no crash, no CHECK".
    if (result.ok()) {
      EXPECT_LE(result->num_edges(), bytes.size());
    }
  }
}

TEST(IoRobustnessTest, TextRandomLinesNeverCrash) {
  Xoshiro256 rng(77);
  static constexpr char kAlphabet[] = "0123456789 .-abc#\t";
  for (int round = 0; round < 20; ++round) {
    std::string contents;
    for (int line = 0; line < 20; ++line) {
      const size_t len = rng.NextBounded(30);
      for (size_t i = 0; i < len; ++i) {
        contents += kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)];
      }
      contents += '\n';
    }
    ScopedFile f("fuzz.el", contents);
    (void)LoadEdgeListText(f.path());  // Must not crash; status is free to be an error.
  }
}

}  // namespace
}  // namespace cgraph
