// Lifetime-footprint forecasting: profile accumulation and decay, bucket-grid edge
// cases (short, uneven, and long traces), runner projection, prediction fallback when a
// program type has no completed history, and determinism of learned profiles across
// repeated runs and worker counts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/algorithms/bfs.h"
#include "src/algorithms/factory.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/wcc.h"
#include "src/core/footprint_history.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/partition/partitioned_graph.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

using Trace = std::vector<std::vector<PartitionId>>;

TEST(FootprintHistoryTest, SingleJobProfileMatchesItsTrace) {
  FootprintHistory history(/*num_partitions=*/3, /*buckets=*/4, /*decay=*/0.5);
  EXPECT_FALSE(history.HasProfile("bfs"));
  // Four iterations onto four buckets: iteration i is bucket i exactly.
  history.RecordCompletion("bfs", Trace{{0}, {0, 1}, {1}, {2}}, /*iterations=*/4);
  ASSERT_TRUE(history.HasProfile("bfs"));
  EXPECT_EQ(history.num_profiles(), 1u);
  EXPECT_DOUBLE_EQ(history.ExpectedLifetime("bfs"), 4.0);
  EXPECT_DOUBLE_EQ(history.Occupancy("bfs", 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(history.Occupancy("bfs", 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(history.Occupancy("bfs", 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(history.Occupancy("bfs", 2, 0), 0.0);
  EXPECT_DOUBLE_EQ(history.Occupancy("bfs", 3, 2), 1.0);
  // Lifetime weight = occupancy integrated over buckets.
  EXPECT_DOUBLE_EQ(history.LifetimeWeight("bfs", 0), 0.5);
  EXPECT_DOUBLE_EQ(history.LifetimeWeight("bfs", 1), 0.5);
  EXPECT_DOUBLE_EQ(history.LifetimeWeight("bfs", 2), 0.25);
}

TEST(FootprintHistoryTest, DecayWeighsRecentJobsHigher) {
  FootprintHistory history(/*num_partitions=*/2, /*buckets=*/2, /*decay=*/0.5);
  // First job lives on partition 0, second on partition 1. With decay 0.5 the older
  // job's contribution is halved before the newer folds in: weight = 0.5 + 1 = 1.5,
  // so p0 occupancy = 0.5/1.5 and p1 = 1/1.5.
  history.RecordCompletion("job", Trace{{0}, {0}}, /*iterations=*/2);
  history.RecordCompletion("job", Trace{{1}, {1}}, /*iterations=*/2);
  EXPECT_DOUBLE_EQ(history.Occupancy("job", 0, 0), 0.5 / 1.5);
  EXPECT_DOUBLE_EQ(history.Occupancy("job", 0, 1), 1.0 / 1.5);
  // Lifetimes decay the same way: (2 * 0.5 + 6) / 1.5.
  history.RecordCompletion("life", Trace{{0}, {0}}, 2);
  history.RecordCompletion("life", Trace{{0}, {0}, {0}, {0}, {0}, {0}}, 6);
  EXPECT_DOUBLE_EQ(history.ExpectedLifetime("life"), (2.0 * 0.5 + 6.0) / 1.5);

  // decay = 0 keeps only the latest job.
  FootprintHistory latest_only(/*num_partitions=*/2, /*buckets=*/2, /*decay=*/0.0);
  latest_only.RecordCompletion("job", Trace{{0}, {0}}, 2);
  latest_only.RecordCompletion("job", Trace{{1}, {1}}, 2);
  EXPECT_DOUBLE_EQ(latest_only.Occupancy("job", 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(latest_only.Occupancy("job", 0, 1), 1.0);

  // decay = 1 is the plain mean.
  FootprintHistory mean(/*num_partitions=*/2, /*buckets=*/2, /*decay=*/1.0);
  mean.RecordCompletion("job", Trace{{0}, {0}}, 2);
  mean.RecordCompletion("job", Trace{{1}, {1}}, 2);
  EXPECT_DOUBLE_EQ(mean.Occupancy("job", 0, 0), 0.5);
  EXPECT_DOUBLE_EQ(mean.Occupancy("job", 0, 1), 0.5);
}

TEST(FootprintHistoryTest, ShortTraceStretchesAcrossBuckets) {
  // One iteration, four buckets: the single iteration covers the whole lifetime, so
  // every bucket sees its partitions at full occupancy.
  FootprintHistory history(/*num_partitions=*/2, /*buckets=*/4, /*decay=*/0.5);
  history.RecordCompletion("one", Trace{{0, 1}}, /*iterations=*/1);
  for (uint32_t b = 0; b < 4; ++b) {
    EXPECT_DOUBLE_EQ(history.Occupancy("one", b, 0), 1.0) << b;
    EXPECT_DOUBLE_EQ(history.Occupancy("one", b, 1), 1.0) << b;
  }
}

TEST(FootprintHistoryTest, UnevenTraceSplitsBucketsFractionally) {
  // Three iterations over two buckets: iteration 1 (active on p0 only) spans the bucket
  // boundary. Bucket 0 = iter 0 (2/3 of it) + first half of iter 1 -> p0 occupancy 1;
  // bucket 1 = second half of iter 1 (1/3) + iter 2 (2/3, on p1).
  FootprintHistory history(/*num_partitions=*/2, /*buckets=*/2, /*decay=*/0.5);
  history.RecordCompletion("mix", Trace{{0}, {0}, {1}}, /*iterations=*/3);
  EXPECT_DOUBLE_EQ(history.Occupancy("mix", 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(history.Occupancy("mix", 0, 1), 0.0);
  EXPECT_NEAR(history.Occupancy("mix", 1, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(history.Occupancy("mix", 1, 1), 2.0 / 3.0, 1e-12);
}

TEST(FootprintHistoryTest, LongTraceAveragesWithinBuckets) {
  // Eight iterations over two buckets: partition 0 is active in 2 of bucket 0's 4
  // iterations and in none of bucket 1's.
  FootprintHistory history(/*num_partitions=*/1, /*buckets=*/2, /*decay=*/0.5);
  history.RecordCompletion("long", Trace{{0}, {0}, {}, {}, {}, {}, {}, {}},
                           /*iterations=*/8);
  EXPECT_DOUBLE_EQ(history.Occupancy("long", 0, 0), 0.5);
  EXPECT_DOUBLE_EQ(history.Occupancy("long", 1, 0), 0.0);
}

TEST(FootprintHistoryTest, RowsBeyondIterationsAndZeroIterationJobsAreIgnored) {
  FootprintHistory history(/*num_partitions=*/2, /*buckets=*/2, /*decay=*/0.5);
  // A job's final activation refresh registers an iteration that never runs; that row
  // must not contribute.
  history.RecordCompletion("job", Trace{{0}, {0}, {1}}, /*iterations=*/2);
  EXPECT_DOUBLE_EQ(history.Occupancy("job", 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(history.Occupancy("job", 1, 0), 1.0);
  // Zero-iteration completions (nothing initially active) carry no signal at all.
  history.RecordCompletion("instant", Trace{}, /*iterations=*/0);
  EXPECT_FALSE(history.HasProfile("instant"));
}

TEST(FootprintHistoryTest, PredictOverlapProjectsRunnersThroughTheirProfiles) {
  FootprintHistory history(/*num_partitions=*/2, /*buckets=*/4, /*decay=*/0.5);
  // Waiter type: 8 iterations, always on partition 0. Runner type: 2 iterations,
  // always on partition 0.
  history.RecordCompletion("w", Trace(8, {0}), 8);
  history.RecordCompletion("short", Trace(2, {0}), 2);
  const std::vector<uint32_t> on_p0 = {5, 0};

  // A runner with a profile is projected forward through it: at waiter bucket
  // midpoints (iteration offsets 1, 3, 5, 7 of the waiter's 8-iteration lifetime), a
  // "short" runner already at iteration 1 of an expected 2 is predicted finished
  // everywhere -> overlap 0.
  const std::vector<PredictedRunner> late = {{"short", 1, &on_p0}};
  EXPECT_DOUBLE_EQ(history.PredictOverlap("w", late), 0.0);
  // At iteration 0 it still covers the first midpoint (offset 1 -> position 0.5 of its
  // lifetime) and is predicted gone for the rest: overlap = 1 of 4 buckets.
  const std::vector<PredictedRunner> fresh = {{"short", 0, &on_p0}};
  EXPECT_DOUBLE_EQ(history.PredictOverlap("w", fresh), 0.25);
  // A runner with no profile persists on its current active set for good.
  const std::vector<PredictedRunner> persistent = {{"unknown", 0, &on_p0}};
  EXPECT_DOUBLE_EQ(history.PredictOverlap("w", persistent), 1.0);
  // No runners: nothing to share with.
  EXPECT_DOUBLE_EQ(history.PredictOverlap("w", {}), 0.0);
}

TEST(FootprintHistoryTest, OverlapWithSetWeighsByLifetime) {
  FootprintHistory history(/*num_partitions=*/3, /*buckets=*/4, /*decay=*/0.5);
  // Partition 0 active for the whole lifetime, partition 1 for the last quarter.
  history.RecordCompletion("t", Trace{{0}, {0}, {0}, {0, 1}}, 4);
  std::vector<bool> needs_p0 = {true, false, false};
  std::vector<bool> needs_p1 = {false, true, false};
  std::vector<bool> nothing = {false, false, false};
  EXPECT_DOUBLE_EQ(history.OverlapWithSet("t", needs_p0), 1.0 / 1.25);
  EXPECT_DOUBLE_EQ(history.OverlapWithSet("t", needs_p1), 0.25 / 1.25);
  EXPECT_DOUBLE_EQ(history.OverlapWithSet("t", nothing), 0.0);
}

// --- Engine integration: history is fed by real completions, deterministically -------

PartitionedGraph Partition(const EdgeList& edges, uint32_t parts) {
  PartitionOptions options;
  options.num_partitions = parts;
  options.core_subgraph = true;
  return PartitionedGraphBuilder::Build(edges, options);
}

TEST(FootprintHistoryEngineTest, CompletedJobsPopulateProfilesAndReleaseTraces) {
  const EdgeList edges = GenerateErdosRenyi(250, 2000, 71);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 5);

  EngineOptions options = test_support::TestEngineOptions();
  options.admission_policy = AdmissionPolicyKind::kPredict;
  LtpEngine engine(&pg, options);
  const LtpEngine::JobHandle pr = engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-8));
  const LtpEngine::JobHandle bfs = engine.Submit(std::make_unique<BfsProgram>(source));
  engine.RunUntilIdle();

  const FootprintHistory& history = engine.footprint_history();
  ASSERT_TRUE(history.HasProfile("pagerank"));
  ASSERT_TRUE(history.HasProfile("bfs"));
  EXPECT_DOUBLE_EQ(history.ExpectedLifetime("pagerank"),
                   static_cast<double>(pr.stats().iterations));
  EXPECT_DOUBLE_EQ(history.ExpectedLifetime("bfs"),
                   static_cast<double>(bfs.stats().iterations));
  // PageRank sweeps the whole graph every iteration: full occupancy everywhere.
  for (uint32_t b = 0; b < history.buckets(); ++b) {
    for (PartitionId p = 0; p < pg.num_partitions(); ++p) {
      EXPECT_DOUBLE_EQ(history.Occupancy("pagerank", b, p), 1.0) << b << "," << p;
    }
  }
  // Traces are folded into the profile and released at completion.
  EXPECT_TRUE(engine.job(pr.id()).activity_trace().empty());
  EXPECT_TRUE(engine.job(bfs.id()).activity_trace().empty());
}

TEST(FootprintHistoryEngineTest, ProfilesAreIdenticalAcrossRunsAndWorkerCounts) {
  const EdgeList edges = GenerateErdosRenyi(400, 3600, 73);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 8);

  // Profiles are learned from modeled activation traces, so they must not depend on
  // worker interleaving. Force the pooled bookkeeping sweeps (threshold 0) so the
  // parallel path really runs at workers > 1.
  auto profile_dump = [&](uint32_t workers) {
    EngineOptions options = test_support::TestEngineOptions();
    options.admission_policy = AdmissionPolicyKind::kPredict;
    options.parallel_sweep_threshold = 0;
    options.num_workers = workers;
    options.max_jobs = 2;
    LtpEngine engine(&pg, options);
    engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-8));
    engine.Submit(std::make_unique<WccProgram>());
    engine.SubmitAt(std::make_unique<BfsProgram>(source), 3);
    engine.SubmitAt(std::make_unique<WccProgram>(), 6);
    engine.SubmitAt(std::make_unique<BfsProgram>(source), 9);
    engine.RunUntilIdle();
    const FootprintHistory& history = engine.footprint_history();
    std::vector<double> dump;
    for (const char* type : {"pagerank", "wcc", "bfs"}) {
      EXPECT_TRUE(history.HasProfile(type)) << type;
      dump.push_back(history.ExpectedLifetime(type));
      for (uint32_t b = 0; b < history.buckets(); ++b) {
        for (PartitionId p = 0; p < pg.num_partitions(); ++p) {
          dump.push_back(history.Occupancy(type, b, p));
        }
      }
    }
    for (JobId id = 0; id < engine.num_jobs(); ++id) {
      dump.push_back(static_cast<double>(engine.job(id).stats().wait_steps));
      dump.push_back(engine.job(id).stats().admit_overlap);
      dump.push_back(engine.job(id).stats().predicted_overlap);
    }
    return dump;
  };
  const std::vector<double> baseline = profile_dump(1);
  EXPECT_EQ(baseline, profile_dump(1)) << "same worker count, repeated run";
  EXPECT_EQ(baseline, profile_dump(4)) << "different worker count";
}

}  // namespace
}  // namespace cgraph
