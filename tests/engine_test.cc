// End-to-end correctness of the LTP engine: every algorithm, on a family of graph
// shapes, must reproduce the single-threaded reference results. Also covers engine
// behaviours: iteration counting, partition skipping, determinism, ablation toggles.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "src/algorithms/bfs.h"
#include "src/algorithms/factory.h"
#include "src/algorithms/kcore.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/reference.h"
#include "src/algorithms/scc.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/wcc.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/metrics/csv_writer.h"
#include "src/graph/graph.h"
#include "src/partition/partitioned_graph.h"
#include "tests/testing/graph_fixtures.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

using test_support::GraphCase;
using test_support::StandardGraphCases;

PartitionedGraph Partition(const EdgeList& edges, uint32_t parts = 6) {
  PartitionOptions options;
  options.num_partitions = parts;
  options.core_subgraph = true;
  return PartitionedGraphBuilder::Build(edges, options);
}

class EngineAlgorithmTest : public ::testing::TestWithParam<size_t> {
 protected:
  static const GraphCase& Case() { return StandardGraphCases()[GetParam()]; }
};

TEST_P(EngineAlgorithmTest, PageRankMatchesReference) {
  const GraphCase& c = Case();
  const PartitionedGraph pg = Partition(c.edges);
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const JobId id = engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-10));
  engine.Run();
  const auto expected = ReferencePageRank(Graph::FromEdges(c.edges), 0.85, 1e-10);
  test_support::ExpectNearValues(engine.FinalValues(id), expected, 1e-6, c.name + "/pagerank");
}

TEST_P(EngineAlgorithmTest, SsspMatchesDijkstra) {
  const GraphCase& c = Case();
  const VertexId source = PickSourceVertex(c.edges);
  const PartitionedGraph pg = Partition(c.edges);
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const JobId id = engine.AddJob(std::make_unique<SsspProgram>(source));
  engine.Run();
  const auto expected = ReferenceSssp(Graph::FromEdges(c.edges), source);
  test_support::ExpectNearValues(engine.FinalValues(id), expected, 1e-12, c.name + "/sssp");
}

TEST_P(EngineAlgorithmTest, BfsMatchesReference) {
  const GraphCase& c = Case();
  const VertexId source = PickSourceVertex(c.edges);
  const PartitionedGraph pg = Partition(c.edges);
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const JobId id = engine.AddJob(std::make_unique<BfsProgram>(source));
  engine.Run();
  const auto expected = ReferenceBfs(Graph::FromEdges(c.edges), source);
  test_support::ExpectNearValues(engine.FinalValues(id), expected, 0.0, c.name + "/bfs");
}

TEST_P(EngineAlgorithmTest, WccMatchesUnionFind) {
  const GraphCase& c = Case();
  if (c.edges.num_vertices() == 0) {
    return;
  }
  const PartitionedGraph pg = Partition(c.edges);
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const JobId id = engine.AddJob(std::make_unique<WccProgram>());
  engine.Run();
  const auto expected = ReferenceWcc(Graph::FromEdges(c.edges));
  // Min-label propagation converges to the minimum member id — identical to union-by-min.
  test_support::ExpectNearValues(engine.FinalValues(id), expected, 0.0, c.name + "/wcc");
}

TEST_P(EngineAlgorithmTest, SccMatchesTarjan) {
  const GraphCase& c = Case();
  const PartitionedGraph pg = Partition(c.edges);
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const JobId id = engine.AddJob(std::make_unique<SccProgram>());
  engine.Run();
  std::vector<double> labels = engine.FinalAux(id);
  for (double& l : labels) {
    l -= 1.0;  // aux stores component + 1.
  }
  const auto expected = ReferenceScc(Graph::FromEdges(c.edges));
  EXPECT_EQ(CanonicalizeLabels(labels), CanonicalizeLabels(expected)) << c.name << "/scc";
}

TEST_P(EngineAlgorithmTest, KCoreMatchesPeeling) {
  const GraphCase& c = Case();
  const PartitionedGraph pg = Partition(c.edges);
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const JobId id = engine.AddJob(std::make_unique<KCoreProgram>(3));
  engine.Run();
  const auto aux = engine.FinalAux(id);  // 1.0 = peeled.
  const auto expected = ReferenceKCore(Graph::FromEdges(c.edges), 3);  // 1.0 = in core.
  ASSERT_EQ(aux.size(), expected.size());
  for (size_t v = 0; v < aux.size(); ++v) {
    EXPECT_EQ(aux[v] == 0.0, expected[v] == 1.0) << c.name << "/kcore vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, EngineAlgorithmTest,
                         ::testing::Range<size_t>(0, StandardGraphCases().size()),
                         [](const ::testing::TestParamInfo<size_t>& param_info) {
                           return StandardGraphCases()[param_info.param].name;
                         });

TEST(EngineTest, ConcurrentJobMixAllCorrect) {
  RmatOptions rmat;
  rmat.scale = 10;
  rmat.edge_factor = 8;
  rmat.seed = 5;
  const EdgeList edges = GenerateRmat(rmat);
  const Graph g = Graph::FromEdges(edges);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 12);

  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const JobId pr = engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-10));
  const JobId ss = engine.AddJob(std::make_unique<SsspProgram>(source));
  const JobId sc = engine.AddJob(std::make_unique<SccProgram>());
  const JobId bf = engine.AddJob(std::make_unique<BfsProgram>(source));
  const JobId wc = engine.AddJob(std::make_unique<WccProgram>());
  const JobId kc = engine.AddJob(std::make_unique<KCoreProgram>(4));
  const RunReport report = engine.Run();
  EXPECT_EQ(report.jobs.size(), 6u);

  test_support::ExpectNearValues(engine.FinalValues(pr), ReferencePageRank(g, 0.85, 1e-10), 1e-6, "mix/pr");
  test_support::ExpectNearValues(engine.FinalValues(ss), ReferenceSssp(g, source), 1e-12, "mix/sssp");
  test_support::ExpectNearValues(engine.FinalValues(bf), ReferenceBfs(g, source), 0.0, "mix/bfs");
  test_support::ExpectNearValues(engine.FinalValues(wc), ReferenceWcc(g), 0.0, "mix/wcc");
  std::vector<double> scc_labels = engine.FinalAux(sc);
  for (double& l : scc_labels) {
    l -= 1.0;
  }
  EXPECT_EQ(CanonicalizeLabels(scc_labels), CanonicalizeLabels(ReferenceScc(g)));
  const auto kcore_aux = engine.FinalAux(kc);
  const auto kcore_ref = ReferenceKCore(g, 4);
  for (size_t v = 0; v < kcore_aux.size(); ++v) {
    ASSERT_EQ(kcore_aux[v] == 0.0, kcore_ref[v] == 1.0) << v;
  }
}

TEST(EngineTest, SchedulerAblationStillCorrect) {
  const EdgeList edges = GenerateErdosRenyi(300, 2500, 91);
  const Graph g = Graph::FromEdges(edges);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 8);
  EngineOptions options = test_support::TestEngineOptions();
  options.use_scheduler = false;
  options.straggler_split = false;
  LtpEngine engine(&pg, options);
  const JobId id = engine.AddJob(std::make_unique<SsspProgram>(source));
  engine.Run();
  test_support::ExpectNearValues(engine.FinalValues(id), ReferenceSssp(g, source), 1e-12, "ablation/sssp");
}

TEST(EngineTest, SingleWorkerCorrect) {
  const EdgeList edges = GenerateErdosRenyi(200, 1500, 17);
  const Graph g = Graph::FromEdges(edges);
  const PartitionedGraph pg = Partition(edges, 4);
  EngineOptions options = test_support::TestEngineOptions();
  options.num_workers = 1;
  LtpEngine engine(&pg, options);
  const JobId id = engine.AddJob(std::make_unique<WccProgram>());
  engine.Run();
  test_support::ExpectNearValues(engine.FinalValues(id), ReferenceWcc(g), 0.0, "single-worker/wcc");
}

TEST(EngineTest, BfsIterationsTrackFrontierDepth) {
  // On a 40-vertex path partitioned into one partition, BFS from vertex 0 needs about one
  // iteration per hop (intra-partition propagation is one hop per iteration in LTP).
  EdgeList path = GeneratePath(40);
  const PartitionedGraph pg = Partition(path, 1);
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const JobId id = engine.AddJob(std::make_unique<BfsProgram>(0));
  const RunReport report = engine.Run();
  EXPECT_GE(report.jobs[0].iterations, 39u);
  (void)id;
}

TEST(EngineTest, InactivePartitionsAreSkipped) {
  // A star with the hub as BFS source converges in ~2 iterations; PageRank sweeps many
  // more times. BFS must therefore charge far fewer structure bytes than PageRank.
  const EdgeList star = GenerateStar(512);
  const PartitionedGraph pg = Partition(star, 8);
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const JobId bfs = engine.AddJob(std::make_unique<BfsProgram>(0));
  const JobId pr = engine.AddJob(std::make_unique<PageRankProgram>());
  const RunReport report = engine.Run();
  EXPECT_LT(report.jobs[bfs].iterations, report.jobs[pr].iterations);
  EXPECT_LT(report.jobs[bfs].charge.total_bytes(), report.jobs[pr].charge.total_bytes());
}

TEST(EngineTest, DeterministicReportsForExactAlgorithms) {
  const EdgeList edges = GenerateErdosRenyi(300, 2500, 23);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 8);
  RunReport first;
  RunReport second;
  for (RunReport* out : {&first, &second}) {
    LtpEngine engine(&pg, test_support::TestEngineOptions());
    engine.AddJob(std::make_unique<BfsProgram>(source));
    engine.AddJob(std::make_unique<WccProgram>());
    *out = engine.Run();
  }
  EXPECT_EQ(first.cache.touches, second.cache.touches);
  EXPECT_EQ(first.cache.misses, second.cache.misses);
  EXPECT_EQ(first.memory.disk_bytes, second.memory.disk_bytes);
  ASSERT_EQ(first.jobs.size(), second.jobs.size());
  for (size_t j = 0; j < first.jobs.size(); ++j) {
    EXPECT_EQ(first.jobs[j].iterations, second.jobs[j].iterations);
    EXPECT_EQ(first.jobs[j].compute_units, second.jobs[j].compute_units);
    EXPECT_EQ(first.jobs[j].charge.total_bytes(), second.jobs[j].charge.total_bytes());
  }
}

TEST(EngineTest, EmptyGraphFinishesImmediately) {
  EdgeList empty;
  const PartitionedGraph pg = Partition(empty, 4);
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  engine.AddJob(std::make_unique<WccProgram>());
  const RunReport report = engine.Run();
  EXPECT_EQ(report.jobs[0].vertex_computes, 0u);
}

TEST(EngineTest, SourceOutsideGraphConvergesInstantly) {
  const EdgeList edges = GenerateRing(16);
  const PartitionedGraph pg = Partition(edges, 2);
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const JobId id = engine.AddJob(std::make_unique<SsspProgram>(999));
  const RunReport report = engine.Run();
  EXPECT_EQ(report.jobs[0].vertex_computes, 0u);
  for (double d : engine.FinalValues(id)) {
    EXPECT_TRUE(std::isinf(d));
  }
}

TEST(EngineTest, MaxIterationSafetyValve) {
  const EdgeList ring = GenerateRing(32);
  const PartitionedGraph pg = Partition(ring, 2);
  EngineOptions options = test_support::TestEngineOptions();
  options.max_iterations_per_job = 3;
  LtpEngine engine(&pg, options);
  // PageRank on a ring takes many iterations; the valve must stop it at 3.
  engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-15));
  const RunReport report = engine.Run();
  EXPECT_EQ(report.jobs[0].iterations, 3u);
}

TEST(EngineTest, JobStatsArePopulated) {
  const EdgeList edges = GenerateErdosRenyi(200, 1600, 3);
  const PartitionedGraph pg = Partition(edges, 4);
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  engine.AddJob(std::make_unique<PageRankProgram>());
  const RunReport report = engine.Run();
  const JobStats& stats = report.jobs[0];
  EXPECT_EQ(stats.job_name, "pagerank");
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.vertex_computes, 0u);
  EXPECT_GT(stats.edge_traversals, 0u);
  EXPECT_GT(stats.compute_units, 0u);
  EXPECT_GT(stats.charge.total_bytes(), 0u);
  EXPECT_GT(report.cache.touches, 0u);
}

TEST(EngineTest, SnapshotJobsSeeTheirVersions) {
  // Two WCC jobs on different snapshots must compute components of *their* graph.
  EdgeList edges;
  // Two components: {0,1} and {2,3}.
  edges.Add(0, 1);
  edges.Add(1, 0);
  edges.Add(2, 3);
  edges.Add(3, 2);
  PartitionOptions popts;
  popts.num_partitions = 2;
  popts.core_subgraph = false;
  SnapshotStore store(PartitionedGraphBuilder::Build(edges, popts));
  // Rewiring at 100% change ratio alters edges within partitions; job at t=0 must still
  // see the base graph.
  store.CreateSnapshot(10, 1.0, 3);
  LtpEngine engine(&store, test_support::TestEngineOptions());
  const JobId old_job = engine.AddJob(std::make_unique<WccProgram>(), /*submit_time=*/0);
  const JobId new_job = engine.AddJob(std::make_unique<WccProgram>(), /*submit_time=*/10);
  engine.Run();
  const Graph base_graph = Graph::FromEdges(edges);
  test_support::ExpectNearValues(engine.FinalValues(old_job), ReferenceWcc(base_graph), 0.0, "snapshot/old");
  // The new job ran on the rewired graph; just verify it converged to a valid labeling
  // (labels are min ids, so every label <= vertex id).
  for (size_t v = 0; v < 4; ++v) {
    EXPECT_LE(engine.FinalValues(new_job)[v], static_cast<double>(v));
  }
}

// The frontier-aware word-scan sweep is an execution strategy, not a semantics change:
// with a single worker the whole run is deterministic, so sparse and dense sweeps must
// produce byte-identical reports (all modeled columns; wall clock excluded).
TEST(EngineTest, SparseAndDenseTriggerSweepsProduceIdenticalReports) {
  RmatOptions rmat;
  rmat.scale = 10;
  rmat.edge_factor = 8;
  rmat.seed = 11;
  const EdgeList edges = GenerateRmat(rmat);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 12);
  const CostModel cost;

  auto run = [&](bool sparse) {
    EngineOptions options = test_support::TestEngineOptions();
    options.num_workers = 1;  // Single worker: fully deterministic float accumulation.
    options.sparse_trigger = sparse;
    LtpEngine engine(&pg, options);
    engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-10));
    engine.AddJob(std::make_unique<SsspProgram>(source));
    engine.AddJob(std::make_unique<WccProgram>());
    engine.AddJob(std::make_unique<BfsProgram>(source));
    engine.AddJob(std::make_unique<KCoreProgram>(4));
    RunReport report = engine.Run();
    for (JobStats& job : report.jobs) {
      job.wall_seconds = 0.0;  // Wall clock is the one legitimately varying column.
    }
    report.wall_seconds = 0.0;
    return RunReportToCsv(report, cost);
  };

  EXPECT_EQ(run(/*sparse=*/true), run(/*sparse=*/false));
}

// Forcing every bookkeeping sweep through the pool's batch dispatch (threshold 0) must
// not change any modeled metric: counts are integer sums and the active bitmask is
// written in disjoint words, so chunk order cannot matter.
TEST(EngineTest, ParallelSweepThresholdZeroMatchesDefault) {
  const EdgeList edges = GenerateErdosRenyi(500, 4000, 37);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 8);
  const CostModel cost;

  auto run = [&](uint32_t threshold) {
    EngineOptions options = test_support::TestEngineOptions();
    options.parallel_sweep_threshold = threshold;
    LtpEngine engine(&pg, options);
    // Min-accumulator and exact-sum jobs only: deterministic even with 4 workers.
    engine.AddJob(std::make_unique<SsspProgram>(source));
    engine.AddJob(std::make_unique<BfsProgram>(source));
    engine.AddJob(std::make_unique<WccProgram>());
    engine.AddJob(std::make_unique<KCoreProgram>(3));
    RunReport report = engine.Run();
    for (JobStats& job : report.jobs) {
      job.wall_seconds = 0.0;
    }
    report.wall_seconds = 0.0;
    return RunReportToCsv(report, cost);
  };

  EXPECT_EQ(run(0), run(test_support::TestEngineOptions().parallel_sweep_threshold));
}

TEST(EngineTest, ThetaDominanceSchedulerPrefersMoreJobs) {
  const EdgeList edges = GenerateErdosRenyi(200, 1600, 29);
  const PartitionedGraph pg = Partition(edges, 8);
  Scheduler scheduler(pg, /*use_priorities=*/true);
  GlobalTable table(pg.num_partitions(), 4);
  // Partition 3 needed by two jobs, partition 5 by one with maximal D*C.
  table.Register(3, 0);
  table.Register(3, 1);
  table.Register(5, 2);
  scheduler.SetStateChange(3, 0.0);
  scheduler.SetStateChange(5, 1.0);
  std::vector<bool> eligible(pg.num_partitions(), true);
  EXPECT_EQ(scheduler.PickNext(table, eligible), 3u);
}

}  // namespace
}  // namespace cgraph
