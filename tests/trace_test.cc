// Tests for the synthetic CGP-job trace generator (Fig. 1 regeneration).

#include <gtest/gtest.h>

#include "src/trace/job_trace.h"

namespace cgraph {
namespace {

TEST(JobTraceTest, Deterministic) {
  TraceOptions options;
  const TraceSummary a = GenerateJobTrace(options);
  const TraceSummary b = GenerateJobTrace(options);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].concurrent_jobs, b.points[i].concurrent_jobs);
    EXPECT_EQ(a.points[i].shared_ratio, b.points[i].shared_ratio);
  }
}

TEST(JobTraceTest, SeedChangesTrace) {
  TraceOptions options;
  const TraceSummary a = GenerateJobTrace(options);
  options.seed += 1;
  const TraceSummary b = GenerateJobTrace(options);
  bool differs = false;
  for (size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].concurrent_jobs != b.points[i].concurrent_jobs) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(JobTraceTest, HourlySamplesCoverRequestedSpan) {
  TraceOptions options;
  options.hours = 48;
  const TraceSummary summary = GenerateJobTrace(options);
  EXPECT_EQ(summary.points.size(), 48u);
  EXPECT_DOUBLE_EQ(summary.points.front().hour, 0.0);
  EXPECT_DOUBLE_EQ(summary.points.back().hour, 47.0);
}

TEST(JobTraceTest, SharedRatiosAreMonotoneInThreshold) {
  const TraceSummary summary = GenerateJobTrace(TraceOptions{});
  for (const TracePoint& p : summary.points) {
    for (size_t i = 1; i < p.shared_ratio.size(); ++i) {
      EXPECT_LE(p.shared_ratio[i], p.shared_ratio[i - 1]);
    }
    for (const double r : p.shared_ratio) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

TEST(JobTraceTest, PaperLikeRegime) {
  // The defaults should land in the paper's qualitative regime: double-digit peak
  // concurrency and most in-use partitions shared by more than one job.
  const TraceSummary summary = GenerateJobTrace(TraceOptions{});
  EXPECT_GE(summary.peak_concurrent_jobs, 10u);
  EXPECT_GT(summary.mean_shared_by_more_than_one, 0.5);
}

TEST(JobTraceTest, SummaryStatsConsistent) {
  const TraceSummary summary = GenerateJobTrace(TraceOptions{});
  uint32_t peak = 0;
  double sum = 0.0;
  for (const TracePoint& p : summary.points) {
    peak = std::max(peak, p.concurrent_jobs);
    sum += p.concurrent_jobs;
  }
  EXPECT_EQ(summary.peak_concurrent_jobs, peak);
  EXPECT_DOUBLE_EQ(summary.mean_concurrent_jobs, sum / summary.points.size());
}

}  // namespace
}  // namespace cgraph
