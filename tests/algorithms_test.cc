// Program-level unit tests: initial states, activation predicates, accumulator kinds,
// and the newer algorithms (personalized PageRank, k-hop) end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "src/algorithms/bfs.h"
#include "src/algorithms/factory.h"
#include "src/algorithms/kcore.h"
#include "src/algorithms/khop.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/personalized_pagerank.h"
#include "src/algorithms/reference.h"
#include "src/algorithms/scc.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/wcc.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/partition/partitioned_graph.h"
#include "tests/testing/graph_fixtures.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

LocalVertexInfo Info(VertexId id, uint32_t out_degree = 3, uint32_t total_degree = 5) {
  LocalVertexInfo info;
  info.global_id = id;
  info.global_out_degree = out_degree;
  info.global_total_degree = total_degree;
  return info;
}

TEST(ProgramContractTest, PageRank) {
  PageRankProgram program(0.85, 1e-9);
  EXPECT_EQ(program.acc_kind(), AccKind::kSum);
  const VertexState s = program.InitialState(Info(7));
  EXPECT_DOUBLE_EQ(s.value, 0.0);
  EXPECT_DOUBLE_EQ(s.delta, 0.15);
  EXPECT_TRUE(program.IsActive(s));
  VertexState converged = s;
  converged.delta = 1e-12;
  EXPECT_FALSE(program.IsActive(converged));
}

TEST(ProgramContractTest, SsspSourceOnlyActive) {
  SsspProgram program(3);
  EXPECT_EQ(program.acc_kind(), AccKind::kMin);
  EXPECT_TRUE(program.IsActive(program.InitialState(Info(3))));
  EXPECT_FALSE(program.IsActive(program.InitialState(Info(4))));
}

TEST(ProgramContractTest, BfsMirrorsSssp) {
  BfsProgram program(1);
  EXPECT_EQ(program.acc_kind(), AccKind::kMin);
  EXPECT_TRUE(program.IsActive(program.InitialState(Info(1))));
  EXPECT_FALSE(program.IsActive(program.InitialState(Info(0))));
}

TEST(ProgramContractTest, WccEveryVertexActive) {
  WccProgram program;
  const VertexState s = program.InitialState(Info(9));
  EXPECT_DOUBLE_EQ(s.delta, 9.0);
  EXPECT_TRUE(program.IsActive(s));
}

TEST(ProgramContractTest, SccStartsInForwardPhase) {
  SccProgram program;
  EXPECT_EQ(program.acc_kind(), AccKind::kMax);
  const VertexState s = program.InitialState(Info(5));
  EXPECT_TRUE(program.IsActive(s));  // delta (own id) > value (-inf).
  VertexState assigned = s;
  assigned.aux = 6.0;
  EXPECT_FALSE(program.IsActive(assigned));
}

TEST(ProgramContractTest, KCoreInitiallyActiveEvenWithZeroDelta) {
  KCoreProgram program(3);
  const VertexState s = program.InitialState(Info(2, 3, 7));
  EXPECT_DOUBLE_EQ(s.value, 7.0);
  EXPECT_FALSE(program.IsActive(s));                      // No pending decrement...
  EXPECT_TRUE(program.InitiallyActive(Info(2, 3, 7), s));  // ...but first sweep runs.
  VertexState peeled = s;
  peeled.aux = 1.0;
  EXPECT_FALSE(program.InitiallyActive(Info(2, 3, 7), peeled));
}

TEST(ProgramContractTest, KHopBudget) {
  KHopProgram program(0, 2);
  EXPECT_EQ(program.acc_kind(), AccKind::kMin);
  EXPECT_TRUE(program.IsActive(program.InitialState(Info(0))));
  EXPECT_FALSE(program.IsActive(program.InitialState(Info(5))));
}

TEST(ProgramContractTest, PprSeedCarriesAllMass) {
  PersonalizedPageRankProgram program(4, 0.85, 1e-9);
  EXPECT_DOUBLE_EQ(program.InitialState(Info(4)).delta, 0.15);
  EXPECT_DOUBLE_EQ(program.InitialState(Info(5)).delta, 0.0);
}

TEST(FactoryTest, AllNamesConstruct) {
  for (const char* name : {"pagerank", "sssp", "scc", "bfs", "wcc", "kcore", "ppr", "khop"}) {
    const auto program = MakeProgram(name, 0);
    ASSERT_NE(program, nullptr) << name;
    // Factory names may be canonical short forms of the program's own name.
    EXPECT_FALSE(program->name().empty());
  }
}

TEST(FactoryTest, BenchmarkMixCyclesPaperOrder) {
  const auto names = BenchmarkJobNames(6);
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "pagerank");
  EXPECT_EQ(names[1], "sssp");
  EXPECT_EQ(names[2], "scc");
  EXPECT_EQ(names[3], "bfs");
  EXPECT_EQ(names[4], "pagerank");
  EXPECT_EQ(names[5], "sssp");
}

TEST(FactoryTest, PickSourceIsLowestPositiveOutDegree) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(2, 0);
  edges.Add(2, 1);
  edges.Add(2, 3);
  // Out-degrees: v0 = 1, v1 = 0, v2 = 3, v3 = 0. The hub (v2) is skipped — a low-degree
  // source keeps traversal footprints localized — and so are the zero-out-degree sinks.
  EXPECT_EQ(PickSourceVertex(edges), 0u);
  // Ties break toward the lowest id.
  EdgeList tied;
  tied.Add(1, 0);
  tied.Add(2, 0);
  EXPECT_EQ(PickSourceVertex(tied), 1u);
  // No vertex has outgoing edges: fall back to 0.
  EXPECT_EQ(PickSourceVertex(EdgeList{}), 0u);
}

class NewAlgorithmEngineTest : public ::testing::Test {
 protected:
  NewAlgorithmEngineTest() {
    edges_ = test_support::FixedRmat(9, 8, 13);
    graph_ = Graph::FromEdges(edges_);
    PartitionOptions popts;
    popts.num_partitions = 6;
    pg_ = PartitionedGraphBuilder::Build(edges_, popts);
    options_ = test_support::TestEngineOptions();
    // Only cache contention is test-sized here; the memory tier stays at the
    // hierarchy default so no structure ever spills to disk.
    options_.hierarchy.memory_capacity_bytes = HierarchyOptions().memory_capacity_bytes;
  }

  EdgeList edges_;
  Graph graph_;
  PartitionedGraph pg_;
  EngineOptions options_;
};

TEST_F(NewAlgorithmEngineTest, PersonalizedPageRankMatchesReference) {
  const VertexId seed = PickSourceVertex(edges_);
  LtpEngine engine(&pg_, options_);
  const JobId id =
      engine.AddJob(std::make_unique<PersonalizedPageRankProgram>(seed, 0.85, 1e-11));
  engine.Run();
  const auto expected = ReferencePersonalizedPageRank(graph_, seed, 0.85, 1e-11);
  const auto actual = engine.FinalValues(id);
  for (size_t v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(actual[v], expected[v], 1e-7) << v;
  }
}

TEST_F(NewAlgorithmEngineTest, KHopMatchesReferenceAndTruncates) {
  const VertexId source = PickSourceVertex(edges_);
  for (const uint32_t hops : {0u, 1u, 2u, 4u}) {
    LtpEngine engine(&pg_, options_);
    const JobId id = engine.AddJob(std::make_unique<KHopProgram>(source, hops));
    engine.Run();
    const auto expected = ReferenceKHop(graph_, source, hops);
    const auto actual = engine.FinalValues(id);
    for (size_t v = 0; v < expected.size(); ++v) {
      if (std::isinf(expected[v])) {
        EXPECT_TRUE(std::isinf(actual[v])) << "hops=" << hops << " v=" << v;
      } else {
        EXPECT_DOUBLE_EQ(actual[v], expected[v]) << "hops=" << hops << " v=" << v;
        EXPECT_LE(actual[v], static_cast<double>(hops));
      }
    }
  }
}

TEST_F(NewAlgorithmEngineTest, KHopTouchesLessDataThanBfs) {
  const VertexId source = PickSourceVertex(edges_);
  LtpEngine khop_engine(&pg_, options_);
  khop_engine.AddJob(std::make_unique<KHopProgram>(source, 1));
  const RunReport khop = khop_engine.Run();

  LtpEngine bfs_engine(&pg_, options_);
  bfs_engine.AddJob(std::make_unique<BfsProgram>(source));
  const RunReport bfs = bfs_engine.Run();

  EXPECT_LT(khop.jobs[0].charge.total_bytes(), bfs.jobs[0].charge.total_bytes());
  EXPECT_LE(khop.jobs[0].iterations, bfs.jobs[0].iterations);
}

TEST_F(NewAlgorithmEngineTest, PprMassBounded) {
  const VertexId seed = PickSourceVertex(edges_);
  LtpEngine engine(&pg_, options_);
  const JobId id = engine.AddJob(std::make_unique<PersonalizedPageRankProgram>(seed));
  engine.Run();
  double total = 0.0;
  for (const double v : engine.FinalValues(id)) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_LE(total, 1.0 + 1e-9);  // Mass only leaks through dangling vertices.
}

}  // namespace
}  // namespace cgraph
