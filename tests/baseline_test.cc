// Cross-validation of the baseline executors: every system must produce results
// identical to the references (and hence to the LTP engine), and the systems'
// data-access policies must exhibit the relationships the paper attributes to them.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/algorithms/bfs.h"
#include "src/algorithms/factory.h"
#include "src/algorithms/kcore.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/reference.h"
#include "src/algorithms/scc.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/wcc.h"
#include "src/baselines/baseline_executor.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "tests/testing/graph_fixtures.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

BaselineOptions MakeOptions(BaselineSystem system) {
  BaselineOptions options;
  options.system = system;
  options.engine = test_support::TestEngineOptions();
  return options;
}

class BaselineSystemTest : public ::testing::TestWithParam<BaselineSystem> {
 protected:
  static EdgeList Edges() { return test_support::FixedRmat(9, 8, 31); }
};

TEST_P(BaselineSystemTest, FourJobMixMatchesReferences) {
  const EdgeList edges = Edges();
  const Graph g = Graph::FromEdges(edges);
  const VertexId source = PickSourceVertex(edges);
  PartitionOptions popts;
  popts.num_partitions = 8;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);

  BaselineExecutor executor(&pg, MakeOptions(GetParam()));
  const JobId pr = executor.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-10));
  const JobId ss = executor.AddJob(std::make_unique<SsspProgram>(source));
  const JobId sc = executor.AddJob(std::make_unique<SccProgram>());
  const JobId bf = executor.AddJob(std::make_unique<BfsProgram>(source));
  const RunReport report = executor.Run();
  EXPECT_EQ(report.executor_name, BaselineSystemName(GetParam()));

  test_support::ExpectNearValues(executor.FinalValues(pr), ReferencePageRank(g, 0.85, 1e-10), 1e-6, "pr");
  test_support::ExpectNearValues(executor.FinalValues(ss), ReferenceSssp(g, source), 1e-12, "sssp");
  test_support::ExpectNearValues(executor.FinalValues(bf), ReferenceBfs(g, source), 0.0, "bfs");
  std::vector<double> labels = executor.FinalAux(sc);
  for (double& l : labels) {
    l -= 1.0;
  }
  EXPECT_EQ(CanonicalizeLabels(labels), CanonicalizeLabels(ReferenceScc(g)));
}

TEST_P(BaselineSystemTest, WccAndKcoreMatchReferences) {
  const EdgeList edges = GenerateErdosRenyi(300, 2400, 71);
  const Graph g = Graph::FromEdges(edges);
  PartitionOptions popts;
  popts.num_partitions = 6;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);

  BaselineExecutor executor(&pg, MakeOptions(GetParam()));
  const JobId wc = executor.AddJob(std::make_unique<WccProgram>());
  const JobId kc = executor.AddJob(std::make_unique<KCoreProgram>(4));
  executor.Run();
  test_support::ExpectNearValues(executor.FinalValues(wc), ReferenceWcc(g), 0.0, "wcc");
  const auto aux = executor.FinalAux(kc);
  const auto expected = ReferenceKCore(g, 4);
  for (size_t v = 0; v < aux.size(); ++v) {
    ASSERT_EQ(aux[v] == 0.0, expected[v] == 1.0) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, BaselineSystemTest,
                         ::testing::Values(BaselineSystem::kSequential,
                                           BaselineSystem::kSeraph,
                                           BaselineSystem::kSeraphVt,
                                           BaselineSystem::kNxgraph, BaselineSystem::kClip),
                         [](const ::testing::TestParamInfo<BaselineSystem>& param_info) {
                           std::string name = BaselineSystemName(param_info.param);
                           name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
                           return name;
                         });

// --- Policy property tests: the access-pattern differences the paper describes. ---

struct MixRunner {
  static RunReport RunMix(const PartitionedGraph& pg, BaselineSystem system,
                          size_t num_jobs = 4) {
    BaselineOptions options = MakeOptions(system);
    BaselineExecutor executor(&pg, options);
    AddMix(executor, pg, num_jobs);
    return executor.Run();
  }

  template <typename ExecutorT>
  static void AddMix(ExecutorT& executor, const PartitionedGraph& pg, size_t num_jobs) {
    // Highest-degree master vertex as traversal source.
    VertexId source = 0;
    uint32_t best = 0;
    for (const auto& part : pg.partitions()) {
      for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
        if (part.vertex(v).global_out_degree > best) {
          best = part.vertex(v).global_out_degree;
          source = part.vertex(v).global_id;
        }
      }
    }
    const auto names = BenchmarkJobNames(num_jobs);
    for (const auto& name : names) {
      executor.AddJob(MakeProgram(name, source));
    }
  }
};

class BaselinePolicyTest : public ::testing::Test {
 protected:
  BaselinePolicyTest() {
    edges_ = test_support::FixedRmat(10, 8, 9);
    PartitionOptions popts;
    popts.num_partitions = 16;
    pg_ = PartitionedGraphBuilder::Build(edges_, popts);
  }

  EdgeList edges_;
  PartitionedGraph pg_;
};

TEST_F(BaselinePolicyTest, CGraphSharesLoadsBetterThanSeraph) {
  const RunReport seraph = MixRunner::RunMix(pg_, BaselineSystem::kSeraph);

  LtpEngine engine(&pg_, test_support::TestEngineOptions());
  MixRunner::AddMix(engine, pg_, 4);
  const RunReport cgraph = engine.Run();

  // The LTP engine amortizes structure loads across jobs: less volume swapped into the
  // cache and a lower miss rate than Seraph's individual traversals.
  EXPECT_LT(cgraph.cache.miss_bytes, seraph.cache.miss_bytes);
  EXPECT_LT(cgraph.cache.miss_rate(), seraph.cache.miss_rate());
}

TEST_F(BaselinePolicyTest, ClipReentryReducesIterations) {
  // Reentry pays off when propagation chains live inside a partition: on a long path cut
  // into contiguous segments, plain iteration needs one pass per hop while CLIP's local
  // re-iteration consumes a whole segment per load.
  const EdgeList path = GeneratePath(1000);
  PartitionOptions popts;
  popts.num_partitions = 4;
  popts.core_subgraph = false;
  const PartitionedGraph path_pg = PartitionedGraphBuilder::Build(path, popts);

  BaselineOptions seraph_options = MakeOptions(BaselineSystem::kSeraph);
  BaselineExecutor seraph(&path_pg, seraph_options);
  seraph.AddJob(std::make_unique<SsspProgram>(0));
  const RunReport seraph_report = seraph.Run();

  BaselineOptions clip_options = MakeOptions(BaselineSystem::kClip);
  clip_options.clip_reentry_limit = 2000;
  BaselineExecutor clip(&path_pg, clip_options);
  clip.AddJob(std::make_unique<SsspProgram>(0));
  const RunReport clip_report = clip.Run();

  EXPECT_LT(clip_report.jobs[0].iterations, seraph_report.jobs[0].iterations / 10);
  // And correctness still holds.
  const auto expected = ReferenceSssp(Graph::FromEdges(path), 0);
  const auto actual = clip.FinalValues(0);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_DOUBLE_EQ(actual[v], expected[v]) << v;
  }
}

TEST_F(BaselinePolicyTest, PerJobCopiesIncreaseMemoryPressure) {
  // Shrink memory so that per-job structure copies (Nxgraph) cannot all stay resident,
  // while the single shared copy (Seraph) can.
  const uint64_t structure = pg_.total_structure_bytes();
  BaselineOptions seraph_options = MakeOptions(BaselineSystem::kSeraph);
  seraph_options.engine.hierarchy.memory_capacity_bytes = structure * 2;
  BaselineOptions nx_options = MakeOptions(BaselineSystem::kNxgraph);
  nx_options.engine.hierarchy.memory_capacity_bytes = structure * 2;

  BaselineExecutor seraph(&pg_, seraph_options);
  MixRunner::AddMix(seraph, pg_, 4);
  const RunReport seraph_report = seraph.Run();

  BaselineExecutor nxgraph(&pg_, nx_options);
  MixRunner::AddMix(nxgraph, pg_, 4);
  const RunReport nx_report = nxgraph.Run();

  EXPECT_GT(nx_report.memory.disk_bytes, seraph_report.memory.disk_bytes);
}

TEST_F(BaselinePolicyTest, SequentialMatchesConcurrentResults) {
  BaselineExecutor sequential(&pg_, MakeOptions(BaselineSystem::kSequential));
  MixRunner::AddMix(sequential, pg_, 4);
  sequential.Run();

  BaselineExecutor seraph(&pg_, MakeOptions(BaselineSystem::kSeraph));
  MixRunner::AddMix(seraph, pg_, 4);
  seraph.Run();

  for (JobId j = 0; j < 4; ++j) {
    const auto a = sequential.FinalValues(j);
    const auto b = seraph.FinalValues(j);
    ASSERT_EQ(a.size(), b.size());
    for (size_t v = 0; v < a.size(); ++v) {
      if (std::isinf(a[v]) || std::isinf(b[v])) {
        EXPECT_EQ(std::isinf(a[v]), std::isinf(b[v]));
      } else {
        EXPECT_NEAR(a[v], b[v], 1e-7);
      }
    }
  }
}

TEST_F(BaselinePolicyTest, MoreJobsRaiseSeraphPerJobAccessCost) {
  // Paper Fig. 2: under Seraph, the average per-job data volume grows with the number of
  // concurrent jobs (cache interference), while sharing would keep it flat.
  const RunReport two = MixRunner::RunMix(pg_, BaselineSystem::kSeraph, 2);
  const RunReport eight = MixRunner::RunMix(pg_, BaselineSystem::kSeraph, 8);
  // Compare the same job (PageRank, index 0) across runs: its own converged work is
  // identical, but with 8 jobs interfering its misses grow.
  EXPECT_GT(static_cast<double>(eight.jobs[0].charge.mem_bytes + eight.jobs[0].charge.disk_bytes),
            static_cast<double>(two.jobs[0].charge.mem_bytes + two.jobs[0].charge.disk_bytes));
}

TEST_F(BaselinePolicyTest, DeterministicReports) {
  const RunReport a = MixRunner::RunMix(pg_, BaselineSystem::kSeraph, 2);
  const RunReport b = MixRunner::RunMix(pg_, BaselineSystem::kSeraph, 2);
  EXPECT_EQ(a.cache.touches, b.cache.touches);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
}

}  // namespace
}  // namespace cgraph
