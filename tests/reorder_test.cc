// Tests for vertex relabeling utilities.

#include <gtest/gtest.h>

#include <set>

#include "src/algorithms/reference.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/reorder.h"

namespace cgraph {
namespace {

void ExpectValidPermutation(const ReorderResult& result, VertexId n) {
  ASSERT_EQ(result.new_id.size(), n);
  ASSERT_EQ(result.old_id.size(), n);
  std::set<VertexId> seen(result.old_id.begin(), result.old_id.end());
  EXPECT_EQ(seen.size(), n);
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(result.new_id[result.old_id[v]], v);
    EXPECT_EQ(result.old_id[result.new_id[v]], v);
  }
}

TEST(ReorderTest, DegreeOrderIsValidPermutationAndSorted) {
  const EdgeList edges = GenerateErdosRenyi(200, 1500, 3);
  const ReorderResult result = ReorderByDegree(edges);
  ExpectValidPermutation(result, edges.num_vertices());
  // New ids must be ordered by non-increasing total degree of the original vertices.
  std::vector<uint32_t> degree(edges.num_vertices(), 0);
  for (const Edge& e : edges.edges()) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  for (VertexId v = 0; v + 1 < edges.num_vertices(); ++v) {
    EXPECT_GE(degree[result.old_id[v]], degree[result.old_id[v + 1]]);
  }
}

TEST(ReorderTest, RelabeledGraphIsIsomorphic) {
  const EdgeList edges = GenerateErdosRenyi(150, 1200, 7);
  const ReorderResult result = ReorderByBfs(edges);
  ExpectValidPermutation(result, edges.num_vertices());
  EXPECT_EQ(result.edges.num_edges(), edges.num_edges());
  // Degree multiset preserved.
  const Graph original = Graph::FromEdges(edges);
  const Graph relabeled = Graph::FromEdges(result.edges);
  std::multiset<uint32_t> a;
  std::multiset<uint32_t> b;
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    a.insert(original.out_degree(v));
    b.insert(relabeled.out_degree(v));
  }
  EXPECT_EQ(a, b);
  // Per-vertex mapping preserves degrees exactly.
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    EXPECT_EQ(original.out_degree(v), relabeled.out_degree(result.new_id[v]));
    EXPECT_EQ(original.in_degree(v), relabeled.in_degree(result.new_id[v]));
  }
}

TEST(ReorderTest, BfsOrderPutsRootFirstAndNeighborsEarly) {
  // Star from hub 0: BFS order must start at the hub.
  const EdgeList star = GenerateStar(50);
  const ReorderResult result = ReorderByBfs(star);
  EXPECT_EQ(result.old_id[0], 0u);
}

TEST(ReorderTest, ComponentStructurePreserved) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 0);
  edges.Add(2, 3);
  edges.Add(3, 2);
  edges.set_num_vertices(5);  // Vertex 4 isolated.
  const ReorderResult result = ReorderByDegree(edges);
  const auto original = ReferenceWcc(Graph::FromEdges(edges));
  const auto relabeled = ReferenceWcc(Graph::FromEdges(result.edges));
  // Map the relabeled labels back and compare component *partitions*.
  std::vector<double> mapped(original.size());
  for (VertexId v = 0; v < original.size(); ++v) {
    mapped[v] = relabeled[result.new_id[v]];
  }
  EXPECT_EQ(CanonicalizeLabels(mapped), CanonicalizeLabels(original));
}

TEST(ReorderTest, EmptyGraph) {
  EdgeList empty;
  const ReorderResult by_degree = ReorderByDegree(empty);
  EXPECT_EQ(by_degree.edges.num_vertices(), 0u);
  const ReorderResult by_bfs = ReorderByBfs(empty);
  EXPECT_EQ(by_bfs.edges.num_edges(), 0u);
}

}  // namespace
}  // namespace cgraph
