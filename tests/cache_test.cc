// Unit tests for the simulated cache / memory / disk hierarchy.

#include <gtest/gtest.h>

#include "src/cache/cache_sim.h"
#include "src/cache/memory_hierarchy.h"
#include "src/cache/memory_tier.h"

namespace cgraph {
namespace {

ItemKey Structure(PartitionId p, uint32_t owner = kSharedOwner, uint32_t version = 0) {
  return ItemKey{DataKind::kStructure, owner, p, version};
}

ItemKey Private(JobId job, PartitionId p) { return ItemKey{DataKind::kPrivate, job, p, 0}; }

TEST(PackKeyTest, DistinctKeysDistinctPacks) {
  EXPECT_NE(PackItemKey(Structure(0)), PackItemKey(Structure(1)));
  EXPECT_NE(PackItemKey(Structure(0)), PackItemKey(Private(0, 0)));
  EXPECT_NE(PackItemKey(Structure(0, 1)), PackItemKey(Structure(0, 2)));
  EXPECT_NE(PackItemKey(Structure(0, kSharedOwner, 1)), PackItemKey(Structure(0, kSharedOwner, 2)));
  EXPECT_NE(PackSegmentKey(Structure(0), 0), PackSegmentKey(Structure(0), 1));
}

TEST(CacheSimTest, MissThenHit) {
  CacheSim cache(1024, 256);
  EXPECT_FALSE(cache.TouchSegment(Structure(0), 0, 256, false));
  EXPECT_TRUE(cache.TouchSegment(Structure(0), 0, 256, false));
  EXPECT_EQ(cache.stats().touches, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().miss_bytes, 256u);
}

TEST(CacheSimTest, ExactLruEviction) {
  CacheSim cache(512, 256);  // Two segments fit.
  cache.TouchSegment(Structure(0), 0, 256, false);  // A
  cache.TouchSegment(Structure(1), 0, 256, false);  // B
  cache.TouchSegment(Structure(0), 0, 256, false);  // Touch A: now B is LRU.
  cache.TouchSegment(Structure(2), 0, 256, false);  // C evicts B.
  EXPECT_TRUE(cache.IsResident(Structure(0), 0));
  EXPECT_FALSE(cache.IsResident(Structure(1), 0));
  EXPECT_TRUE(cache.IsResident(Structure(2), 0));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheSimTest, PinnedSegmentsSurviveEviction) {
  CacheSim cache(512, 256);
  cache.TouchSegment(Structure(0), 0, 256, /*pin=*/true);
  cache.TouchSegment(Structure(1), 0, 256, false);
  cache.TouchSegment(Structure(2), 0, 256, false);  // Must evict partition 1, not pinned 0.
  EXPECT_TRUE(cache.IsResident(Structure(0), 0));
  EXPECT_FALSE(cache.IsResident(Structure(1), 0));
  cache.UnpinAll();
  cache.TouchSegment(Structure(3), 0, 256, false);
  cache.TouchSegment(Structure(4), 0, 256, false);
  EXPECT_FALSE(cache.IsResident(Structure(0), 0));  // Unpinned, now evictable.
}

TEST(CacheSimTest, PinnedOverflowCounted) {
  CacheSim cache(256, 256);
  cache.TouchSegment(Structure(0), 0, 256, /*pin=*/true);
  cache.TouchSegment(Structure(1), 0, 256, /*pin=*/true);  // Cannot evict pinned: overflow.
  EXPECT_GE(cache.stats().pinned_overflows, 1u);
  EXPECT_GT(cache.occupancy(), cache.capacity());
}

TEST(CacheSimTest, TouchItemSplitsIntoSegments) {
  CacheSim cache(4096, 256);
  uint64_t misses = 0;
  const uint64_t missed_bytes = cache.TouchItem(Structure(0), 1000, false, &misses);
  EXPECT_EQ(misses, 4u);  // ceil(1000/256)
  EXPECT_EQ(missed_bytes, 1000u);
  EXPECT_EQ(cache.SegmentsFor(1000), 4u);
  EXPECT_EQ(cache.SegmentsFor(0), 0u);
  EXPECT_EQ(cache.SegmentsFor(256), 1u);
}

TEST(CacheSimTest, FlushDropsEverythingWithoutStats) {
  CacheSim cache(4096, 256);
  cache.TouchItem(Structure(0), 1024, false);
  const CacheStats before = cache.stats();
  cache.Flush();
  EXPECT_EQ(cache.occupancy(), 0u);
  EXPECT_FALSE(cache.IsResident(Structure(0), 0));
  EXPECT_EQ(cache.stats().touches, before.touches);
}

TEST(CacheSimTest, UnpinItemAllowsEviction) {
  CacheSim cache(512, 256);
  cache.TouchItem(Structure(0), 512, /*pin=*/true);
  cache.UnpinItem(Structure(0), 512);
  cache.TouchSegment(Structure(1), 0, 256, false);
  cache.TouchSegment(Structure(2), 0, 256, false);
  EXPECT_FALSE(cache.IsResident(Structure(0), 0));
}

TEST(CacheSimTest, MissRateComputation) {
  CacheSim cache(4096, 256);
  cache.TouchSegment(Structure(0), 0, 256, false);
  cache.TouchSegment(Structure(0), 0, 256, false);
  cache.TouchSegment(Structure(0), 0, 256, false);
  cache.TouchSegment(Structure(0), 0, 256, false);
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.25);
}

TEST(MemoryTierTest, ResidentItemServesFromMemory) {
  MemoryTier memory(1 << 20);
  memory.Preload(Structure(0), 4096);
  EXPECT_TRUE(memory.IsResident(Structure(0)));
  const uint64_t disk = memory.ServeMiss(Structure(0), 4096, 256);
  EXPECT_EQ(disk, 0u);
  EXPECT_EQ(memory.stats().mem_bytes, 256u);
  EXPECT_EQ(memory.stats().disk_bytes, 0u);
}

TEST(MemoryTierTest, NonResidentFaultsWholeItemFromDisk) {
  MemoryTier memory(1 << 20);
  const uint64_t disk = memory.ServeMiss(Structure(0), 4096, 256);
  EXPECT_EQ(disk, 4096u);  // The whole item streams in on a fault.
  EXPECT_EQ(memory.stats().disk_bytes, 4096u);
  EXPECT_EQ(memory.stats().faults, 1u);
  EXPECT_TRUE(memory.IsResident(Structure(0)));
  // Second miss of same item: now memory-resident.
  EXPECT_EQ(memory.ServeMiss(Structure(0), 4096, 256), 0u);
}

TEST(MemoryTierTest, LruEvictionAcrossItems) {
  MemoryTier memory(8192);
  memory.Preload(Structure(0), 4096);
  memory.Preload(Structure(1), 4096);
  memory.ServeMiss(Structure(0), 4096, 100);  // Touch 0: 1 becomes LRU.
  memory.Preload(Structure(2), 4096);         // Evicts 1.
  EXPECT_TRUE(memory.IsResident(Structure(0)));
  EXPECT_FALSE(memory.IsResident(Structure(1)));
  EXPECT_TRUE(memory.IsResident(Structure(2)));
  EXPECT_EQ(memory.stats().evictions, 1u);
}

TEST(MemoryTierTest, DropRemovesItem) {
  MemoryTier memory(8192);
  memory.Preload(Structure(0), 4096);
  memory.Drop(Structure(0));
  EXPECT_FALSE(memory.IsResident(Structure(0)));
  EXPECT_EQ(memory.occupancy(), 0u);
  memory.Drop(Structure(0));  // Idempotent.
}

TEST(MemoryHierarchyTest, AccessChargesSplitByResidence) {
  HierarchyOptions options;
  options.cache_capacity_bytes = 1024;
  options.cache_segment_bytes = 256;
  options.memory_capacity_bytes = 1 << 20;
  MemoryHierarchy hierarchy(options);
  hierarchy.PreloadToMemory(Structure(0), 1024);

  // First access: all misses served from memory.
  AccessCharge first = hierarchy.Access(Structure(0), 1024, false);
  EXPECT_EQ(first.mem_bytes, 1024u);
  EXPECT_EQ(first.disk_bytes, 0u);
  EXPECT_EQ(first.hit_bytes, 0u);
  EXPECT_EQ(first.segment_touches, 4u);
  EXPECT_EQ(first.segment_misses, 4u);

  // Second access: all hits.
  AccessCharge second = hierarchy.Access(Structure(0), 1024, false);
  EXPECT_EQ(second.hit_bytes, 1024u);
  EXPECT_EQ(second.segment_misses, 0u);
}

TEST(MemoryHierarchyTest, NonPreloadedItemComesFromDisk) {
  HierarchyOptions options;
  options.cache_capacity_bytes = 4096;
  options.cache_segment_bytes = 256;
  options.memory_capacity_bytes = 1 << 20;
  MemoryHierarchy hierarchy(options);
  AccessCharge charge = hierarchy.Access(Structure(5), 512, false);
  EXPECT_EQ(charge.disk_bytes, 512u);
}

TEST(MemoryHierarchyTest, AccessChargeAccumulates) {
  AccessCharge a;
  a.hit_bytes = 10;
  a.mem_bytes = 20;
  AccessCharge b;
  b.disk_bytes = 30;
  b.segment_touches = 2;
  a += b;
  EXPECT_EQ(a.total_bytes(), 60u);
  EXPECT_EQ(a.segment_touches, 2u);
}

TEST(MemoryHierarchyTest, AccessSegmentTouchesOnlyOne) {
  HierarchyOptions options;
  options.cache_capacity_bytes = 4096;
  options.cache_segment_bytes = 256;
  MemoryHierarchy hierarchy(options);
  const AccessCharge charge = hierarchy.AccessSegment(Structure(0), 1000, 3);
  EXPECT_EQ(charge.segment_touches, 1u);
  // The item was not resident: the fault streams the whole 1000-byte item from disk.
  EXPECT_EQ(charge.disk_bytes, 1000u);
  // Out-of-range index wraps to the same last segment, now cached: 1000 - 3*256 bytes.
  const AccessCharge wrapped = hierarchy.AccessSegment(Structure(0), 1000, 7);
  EXPECT_EQ(wrapped.total_bytes(), 232u);
  EXPECT_EQ(wrapped.hit_bytes, 232u);
}

TEST(MemoryHierarchyTest, EmptyItemAccessIsFree) {
  HierarchyOptions options;
  MemoryHierarchy hierarchy(options);
  const AccessCharge charge = hierarchy.Access(Structure(0), 0, false);
  EXPECT_EQ(charge.total_bytes(), 0u);
  EXPECT_EQ(charge.segment_touches, 0u);
}

TEST(MemoryHierarchyTest, SharedVsPerJobOwnershipSeparatesItems) {
  HierarchyOptions options;
  options.cache_capacity_bytes = 64 << 10;
  options.cache_segment_bytes = 1 << 10;
  MemoryHierarchy hierarchy(options);
  hierarchy.Access(Structure(0, kSharedOwner), 4096, false);
  // Same partition, shared owner: hits.
  EXPECT_EQ(hierarchy.Access(Structure(0, kSharedOwner), 4096, false).hit_bytes, 4096u);
  // Same partition, per-job owner: distinct item, misses again.
  EXPECT_EQ(hierarchy.Access(Structure(0, /*owner=*/3), 4096, false).hit_bytes, 0u);
}

}  // namespace
}  // namespace cgraph
