// Unit tests for vertex-state accumulation, private tables, the global table, and the
// snapshot store.

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "src/graph/generators.h"
#include "src/partition/partitioned_graph.h"
#include "src/storage/global_table.h"
#include "src/storage/private_table.h"
#include "src/storage/snapshot_store.h"
#include "src/storage/vertex_state.h"

namespace cgraph {
namespace {

TEST(VertexStateTest, AccIdentities) {
  EXPECT_EQ(AccIdentity(AccKind::kSum), 0.0);
  EXPECT_EQ(AccIdentity(AccKind::kMin), std::numeric_limits<double>::infinity());
  EXPECT_EQ(AccIdentity(AccKind::kMax), -std::numeric_limits<double>::infinity());
}

TEST(VertexStateTest, AccApplySemantics) {
  EXPECT_DOUBLE_EQ(AccApply(AccKind::kSum, 2.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(AccApply(AccKind::kMin, 2.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(AccApply(AccKind::kMax, 2.0, 3.0), 3.0);
}

TEST(VertexStateTest, AccumulateFromIdentityYieldsValue) {
  for (AccKind kind : {AccKind::kSum, AccKind::kMin, AccKind::kMax}) {
    double slot = AccIdentity(kind);
    AtomicAccumulate(kind, &slot, 7.5);
    EXPECT_DOUBLE_EQ(slot, 7.5);
  }
}

TEST(VertexStateTest, ConcurrentSumAccumulateIsExactForIntegers) {
  double slot = 0.0;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&slot] {
      for (int i = 0; i < kPerThread; ++i) {
        AtomicAccumulate(AccKind::kSum, &slot, 1.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_DOUBLE_EQ(slot, kThreads * kPerThread);
}

TEST(VertexStateTest, ConcurrentMinAccumulate) {
  double slot = AccIdentity(AccKind::kMin);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&slot, t] {
      for (int i = 0; i < 1000; ++i) {
        AtomicAccumulate(AccKind::kMin, &slot, static_cast<double>(t * 1000 + i));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_DOUBLE_EQ(slot, 0.0);
}

TEST(PrivateTableTest, LayoutMatchesGraph) {
  const EdgeList list = GenerateErdosRenyi(100, 700, 11);
  const PartitionedGraph pg =
      PartitionedGraphBuilder::Build(list, PartitionOptions{.num_partitions = 5});
  PrivateTable table(pg);
  EXPECT_EQ(table.num_partitions(), pg.num_partitions());
  uint64_t total = 0;
  for (PartitionId p = 0; p < pg.num_partitions(); ++p) {
    EXPECT_EQ(table.partition(p).size(), pg.partition(p).num_local_vertices());
    EXPECT_EQ(table.partition_bytes(p),
              pg.partition(p).num_local_vertices() * sizeof(VertexState));
    total += table.partition_bytes(p);
  }
  EXPECT_EQ(table.total_bytes(), total);
}

TEST(GlobalTableTest, RegisterUnregisterCounts) {
  GlobalTable table(4, 8);
  EXPECT_FALSE(table.IsActive(0));
  table.Register(0, 3);
  table.Register(0, 5);
  table.Register(0, 3);  // Idempotent.
  EXPECT_EQ(table.RegisteredCount(0), 2u);
  EXPECT_TRUE(table.IsRegistered(0, 3));
  EXPECT_EQ(table.RegisteredJobs(0), (std::vector<JobId>{3, 5}));
  table.Unregister(0, 3);
  EXPECT_EQ(table.RegisteredCount(0), 1u);
  table.Unregister(0, 3);  // Idempotent.
  EXPECT_EQ(table.RegisteredCount(0), 1u);
}

TEST(GlobalTableTest, UnregisterEverywhere) {
  GlobalTable table(3, 4);
  table.Register(0, 1);
  table.Register(1, 1);
  table.Register(2, 1);
  table.Register(2, 2);
  table.UnregisterEverywhere(1);
  EXPECT_EQ(table.RegisteredCount(0), 0u);
  EXPECT_EQ(table.RegisteredCount(1), 0u);
  EXPECT_EQ(table.RegisteredCount(2), 1u);
}

TEST(GlobalTableTest, StateChangeStored) {
  GlobalTable table(2, 2);
  table.SetStateChange(1, 0.75);
  EXPECT_DOUBLE_EQ(table.StateChange(1), 0.75);
}

class SnapshotStoreTest : public ::testing::Test {
 protected:
  SnapshotStoreTest() {
    const EdgeList list = GenerateErdosRenyi(200, 2000, 13);
    store_ = std::make_unique<SnapshotStore>(
        PartitionedGraphBuilder::Build(list, PartitionOptions{.num_partitions = 8}));
  }
  std::unique_ptr<SnapshotStore> store_;
};

TEST_F(SnapshotStoreTest, BaseResolvesEverywhere) {
  for (PartitionId p = 0; p < store_->num_partitions(); ++p) {
    EXPECT_EQ(&store_->Resolve(p, 0), &store_->base().partition(p));
    EXPECT_EQ(store_->ResolveVersionIndex(p, 0), 0u);
  }
  EXPECT_EQ(store_->delta_bytes(), 0u);
}

TEST_F(SnapshotStoreTest, SnapshotCreatesVersionsOnlyForChangedPartitions) {
  const uint32_t changed = store_->CreateSnapshot(10, 0.01, 42);
  EXPECT_GT(changed, 0u);
  EXPECT_GT(store_->delta_bytes(), 0u);
  // Jobs older than the snapshot see the base.
  for (PartitionId p = 0; p < store_->num_partitions(); ++p) {
    EXPECT_EQ(store_->ResolveVersionIndex(p, 5), 0u);
  }
  // Jobs at/after the snapshot see the new version where one exists.
  uint32_t versioned = 0;
  for (PartitionId p = 0; p < store_->num_partitions(); ++p) {
    if (store_->ResolveVersionIndex(p, 10) == 1) {
      ++versioned;
      EXPECT_NE(&store_->Resolve(p, 10), &store_->base().partition(p));
    } else {
      EXPECT_EQ(&store_->Resolve(p, 10), &store_->base().partition(p));
    }
  }
  EXPECT_EQ(versioned, changed);
}

TEST_F(SnapshotStoreTest, ZeroChangeRatioSharesEverything) {
  const uint32_t changed = store_->CreateSnapshot(10, 0.0, 1);
  EXPECT_EQ(changed, 0u);
  for (PartitionId p = 0; p < store_->num_partitions(); ++p) {
    EXPECT_EQ(store_->ResolveVersionIndex(p, 10), 0u);
  }
}

TEST_F(SnapshotStoreTest, ChainOfSnapshotsResolvesNewestNotNewer) {
  store_->CreateSnapshot(10, 0.5, 1);
  store_->CreateSnapshot(20, 0.5, 2);
  for (PartitionId p = 0; p < store_->num_partitions(); ++p) {
    const uint32_t v0 = store_->ResolveVersionIndex(p, 0);
    const uint32_t v1 = store_->ResolveVersionIndex(p, 15);
    const uint32_t v2 = store_->ResolveVersionIndex(p, 25);
    EXPECT_EQ(v0, 0u);
    EXPECT_LE(v1, v2);
  }
  EXPECT_EQ(store_->latest_timestamp(), 20u);
}

TEST_F(SnapshotStoreTest, HighChangeRatioTouchesAllNonEmptyPartitions) {
  const uint32_t changed = store_->CreateSnapshot(10, 1.0, 3);
  uint32_t non_empty = 0;
  for (PartitionId p = 0; p < store_->num_partitions(); ++p) {
    if (store_->base().partition(p).num_local_edges() > 0) {
      ++non_empty;
    }
  }
  EXPECT_EQ(changed, non_empty);
}

TEST_F(SnapshotStoreTest, VersionCountTracksChain) {
  EXPECT_EQ(store_->VersionCount(0), 1u);
  store_->CreateSnapshot(10, 1.0, 4);
  EXPECT_EQ(store_->VersionCount(0), 2u);
}

}  // namespace
}  // namespace cgraph
