// Partitioner-layer suite (docs/partitioning.md): structural invariants every
// vertex-cut strategy must satisfy on every fixture graph, hand-computed quality
// indices, build determinism, and the two engine-level contracts — even_edge modeled
// CSVs byte-identical to the pre-partitioner-layer goldens, and every alternative
// strategy converging to the same final values as the references in bsp and async.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/algorithms/factory.h"
#include "src/algorithms/kcore.h"
#include "src/algorithms/reference.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/wcc.h"
#include "src/core/ltp_engine.h"
#include "src/graph/graph.h"
#include "src/metrics/csv_writer.h"
#include "src/partition/partition_debug.h"
#include "src/partition/partitioner.h"
#include "src/partition/partitioned_graph.h"
#include "tests/testing/graph_fixtures.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

using test_support::FixedRmat;
using test_support::GraphCase;
using test_support::StandardGraphCases;

constexpr PartitionerKind kAllPartitioners[] = {
    PartitionerKind::kEvenEdge, PartitionerKind::kHashSource, PartitionerKind::kGreedy,
    PartitionerKind::kDegree};

PartitionOptions OptionsFor(PartitionerKind kind, uint32_t parts) {
  PartitionOptions options;
  options.num_partitions = parts;
  options.partitioner = kind;
  return options;
}

PartitionedGraph BuildWith(const EdgeList& edges, PartitionerKind kind, uint32_t parts) {
  return PartitionedGraphBuilder::Build(edges, OptionsFor(kind, parts));
}

EdgeList TinyGraph(VertexId n, std::vector<std::pair<VertexId, VertexId>> pairs) {
  EdgeList edges;
  edges.set_num_vertices(n);
  for (const auto& [s, d] : pairs) {
    edges.Add(s, d);
  }
  edges.set_num_vertices(n);  // Keep trailing isolated vertices representable.
  return edges;
}

TEST(PartitionerNamesTest, NameParseRoundTrip) {
  for (const PartitionerKind kind : kAllPartitioners) {
    PartitionerKind parsed = PartitionerKind::kEvenEdge;
    EXPECT_TRUE(ParsePartitionerName(PartitionerKindName(kind), &parsed))
        << PartitionerKindName(kind);
    EXPECT_EQ(parsed, kind);
    EXPECT_EQ(MakePartitioner(kind)->kind(), kind);
    EXPECT_EQ(MakePartitioner(kind)->name(), PartitionerKindName(kind));
  }
  PartitionerKind untouched = PartitionerKind::kGreedy;
  EXPECT_FALSE(ParsePartitionerName("metis", &untouched));
  EXPECT_FALSE(ParsePartitionerName("", &untouched));
  EXPECT_EQ(untouched, PartitionerKind::kGreedy);
}

// The property sweep: every strategy, every fixture shape (paths, cycles, stars, grids,
// complete, R-MAT, Erdos-Renyi, disconnected-with-isolated-vertices), partition counts
// from trivial through more-partitions-than-edges. The shared invariant checker asserts
// each layout holds exactly the input edges, elects exactly one master per vertex,
// wires the mirror indices consistently, respects the strategy's capacity bound, and
// stores a quality record that matches recomputation.
TEST(PartitionerInvariantsTest, SweepAllStrategiesFixturesAndCounts) {
  for (const GraphCase& c : StandardGraphCases()) {
    for (const PartitionerKind kind : kAllPartitioners) {
      for (const uint32_t parts : {1u, 2u, 3u, 7u, 16u, 64u}) {
        const PartitionOptions options = OptionsFor(kind, parts);
        const std::unique_ptr<Partitioner> strategy = MakePartitioner(kind);
        const PartitionedGraph pg =
            PartitionedGraphBuilder::Build(c.edges, options, *strategy);
        EXPECT_EQ(pg.quality().partitioner, kind);
        const uint64_t capacity =
            strategy->EdgeCapacity(c.edges.num_edges(), pg.num_partitions(), options);
        const std::vector<std::string> issues =
            CheckPartitionInvariants(c.edges, pg, capacity);
        EXPECT_TRUE(issues.empty())
            << c.name << "/" << PartitionerKindName(kind) << "/p" << parts << ": "
            << (issues.empty() ? "" : issues.front());
      }
    }
  }
}

TEST(PartitionerInvariantsTest, BuildIsDeterministic) {
  const EdgeList edges = FixedRmat(8, 8, 5);
  for (const PartitionerKind kind : kAllPartitioners) {
    const uint64_t first = PartitionLayoutDigest(BuildWith(edges, kind, 7));
    const uint64_t second = PartitionLayoutDigest(BuildWith(edges, kind, 7));
    EXPECT_EQ(first, second) << PartitionerKindName(kind);
  }
}

TEST(PartitionerInvariantsTest, GreedyRespectsCapacityBound) {
  const EdgeList edges = FixedRmat(9, 8, 2);
  const PartitionOptions options = OptionsFor(PartitionerKind::kGreedy, 8);
  const std::unique_ptr<Partitioner> greedy = MakePartitioner(PartitionerKind::kGreedy);
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, options, *greedy);
  const uint64_t capacity =
      greedy->EdgeCapacity(edges.num_edges(), pg.num_partitions(), options);
  ASSERT_GT(capacity, 0u);
  for (const GraphPartition& part : pg.partitions()) {
    EXPECT_LE(part.num_local_edges(), capacity) << "partition " << part.id();
  }
}

TEST(PartitionerInvariantsTest, EvenEdgeChunksDifferByAtMostOne) {
  const EdgeList edges = FixedRmat(8, 8, 11);
  const PartitionedGraph pg = BuildWith(edges, PartitionerKind::kEvenEdge, 7);
  uint64_t lo = edges.num_edges();
  uint64_t hi = 0;
  for (const GraphPartition& part : pg.partitions()) {
    lo = std::min(lo, part.num_local_edges());
    hi = std::max(hi, part.num_local_edges());
  }
  EXPECT_LE(hi - lo, 1u);
}

// The builder must produce the identical layout whether the strategy arrives through
// PartitionOptions::partitioner, the explicit Partitioner& overload, or (for
// hash_source) the legacy EdgeAssignment enum.
TEST(PartitionerInvariantsTest, OptionsAndExplicitOverloadAgree) {
  const EdgeList edges = FixedRmat(8, 8, 5);
  for (const PartitionerKind kind : kAllPartitioners) {
    const PartitionOptions options = OptionsFor(kind, 6);
    const uint64_t via_options =
        PartitionLayoutDigest(PartitionedGraphBuilder::Build(edges, options));
    const uint64_t via_overload = PartitionLayoutDigest(
        PartitionedGraphBuilder::Build(edges, options, *MakePartitioner(kind)));
    EXPECT_EQ(via_options, via_overload) << PartitionerKindName(kind);
  }
}

TEST(PartitionerInvariantsTest, LegacyHashAssignmentSelectsHashSource) {
  const EdgeList edges = FixedRmat(8, 8, 5);
  PartitionOptions legacy;
  legacy.num_partitions = 6;
  legacy.assignment = EdgeAssignment::kHashBySource;
  const PartitionedGraph via_legacy = PartitionedGraphBuilder::Build(edges, legacy);
  EXPECT_EQ(via_legacy.quality().partitioner, PartitionerKind::kHashSource);
  EXPECT_EQ(PartitionLayoutDigest(via_legacy),
            PartitionLayoutDigest(BuildWith(edges, PartitionerKind::kHashSource, 6)));
}

// Hand-computed worked example: 4 vertices, edges (0,1),(0,2),(2,3),(3,0), two
// even_edge chunks of 2. Partition 0 holds {0,1,2}, partition 1 holds {2,3,0};
// masters 0,1,2 -> partition 0 (vertex 2 ties 1-1, first partition wins), 3 -> 1.
// Replicas 6 over 4 vertices; edges (2,3) and (3,0) cross master partitions.
TEST(PartitionQualityTest, HandComputedTinyGraph) {
  const EdgeList edges = TinyGraph(4, {{0, 1}, {0, 2}, {2, 3}, {3, 0}});
  const PartitionedGraph pg = BuildWith(edges, PartitionerKind::kEvenEdge, 2);
  ASSERT_EQ(pg.num_partitions(), 2u);
  const PartitionQuality& q = pg.quality();
  EXPECT_EQ(q.partitioner, PartitionerKind::kEvenEdge);
  EXPECT_DOUBLE_EQ(q.replication_factor, 1.5);
  EXPECT_EQ(q.mirror_count, 2u);
  EXPECT_DOUBLE_EQ(q.edge_cut_fraction, 0.5);
  EXPECT_DOUBLE_EQ(q.edge_balance, 1.0);
  EXPECT_DOUBLE_EQ(q.vertex_balance, 1.0);
  EXPECT_DOUBLE_EQ(pg.replication_factor(), q.replication_factor);
}

// Two disjoint edges in two chunks: a perfectly separable layout scores perfect
// indices — nothing replicates, nothing is cut, both balances exactly 1.
TEST(PartitionQualityTest, HandComputedDisjointEdges) {
  const EdgeList edges = TinyGraph(4, {{0, 1}, {2, 3}});
  const PartitionedGraph pg = BuildWith(edges, PartitionerKind::kEvenEdge, 2);
  ASSERT_EQ(pg.num_partitions(), 2u);
  const PartitionQuality& q = pg.quality();
  EXPECT_DOUBLE_EQ(q.replication_factor, 1.0);
  EXPECT_EQ(q.mirror_count, 0u);
  EXPECT_DOUBLE_EQ(q.edge_cut_fraction, 0.0);
  EXPECT_DOUBLE_EQ(q.edge_balance, 1.0);
  EXPECT_DOUBLE_EQ(q.vertex_balance, 1.0);
}

TEST(PartitionQualityTest, OnePartitionIsPerfect) {
  const GraphCase c = test_support::RandomCase(32, 64, 9);
  for (const PartitionerKind kind : kAllPartitioners) {
    const PartitionedGraph pg = BuildWith(c.edges, kind, 1);
    const PartitionQuality& q = pg.quality();
    EXPECT_DOUBLE_EQ(q.replication_factor, 1.0) << PartitionerKindName(kind);
    EXPECT_EQ(q.mirror_count, 0u);
    EXPECT_DOUBLE_EQ(q.edge_cut_fraction, 0.0);
    EXPECT_DOUBLE_EQ(q.edge_balance, 1.0);
    EXPECT_DOUBLE_EQ(q.vertex_balance, 1.0);
  }
}

TEST(PartitionQualityTest, PartitionCountClampsToEdges) {
  // 3 vertices, 2 edges, 16 requested partitions: the builder clamps to 2, and the
  // invariants (including partitions > vertices per partition) still hold.
  const EdgeList edges = TinyGraph(3, {{0, 1}, {1, 2}});
  for (const PartitionerKind kind : kAllPartitioners) {
    const PartitionedGraph pg = BuildWith(edges, kind, 16);
    EXPECT_LE(pg.num_partitions(), 2u) << PartitionerKindName(kind);
    EXPECT_TRUE(CheckPartitionInvariants(edges, pg).empty());
  }
}

TEST(PartitionQualityTest, EmptyGraphDegenerates) {
  const EdgeList edges;
  for (const PartitionerKind kind : kAllPartitioners) {
    const PartitionedGraph pg = BuildWith(edges, kind, 4);
    EXPECT_EQ(pg.num_partitions(), 1u);
    const PartitionQuality& q = pg.quality();
    EXPECT_DOUBLE_EQ(q.replication_factor, 1.0) << PartitionerKindName(kind);
    EXPECT_EQ(q.mirror_count, 0u);
    EXPECT_DOUBLE_EQ(q.edge_cut_fraction, 0.0);
    EXPECT_DOUBLE_EQ(q.edge_balance, 1.0);
    EXPECT_DOUBLE_EQ(q.vertex_balance, 1.0);
    EXPECT_TRUE(CheckPartitionInvariants(edges, pg).empty());
  }
}

TEST(PartitionQualityTest, SingleEdgeDegenerates) {
  const EdgeList edges = TinyGraph(2, {{0, 1}});
  for (const PartitionerKind kind : kAllPartitioners) {
    const PartitionedGraph pg = BuildWith(edges, kind, 4);
    EXPECT_EQ(pg.num_partitions(), 1u);
    const PartitionQuality& q = pg.quality();
    EXPECT_DOUBLE_EQ(q.replication_factor, 1.0) << PartitionerKindName(kind);
    EXPECT_EQ(q.mirror_count, 0u);
    EXPECT_DOUBLE_EQ(q.edge_cut_fraction, 0.0);
  }
}

// The headline claim the bench SMOKE gate also asserts: on a power-law graph the
// greedy placement replicates strictly less than the equal-chunk default.
TEST(PartitionQualityTest, GreedyReplicatesLessThanEvenEdge) {
  const EdgeList edges = FixedRmat(10, 8, 3);
  const double even = BuildWith(edges, PartitionerKind::kEvenEdge, 8)
                          .quality().replication_factor;
  const double greedy = BuildWith(edges, PartitionerKind::kGreedy, 8)
                            .quality().replication_factor;
  EXPECT_LT(greedy, even);
}

// --- Engine-level contracts. ---

// Wall time is the one machine-dependent CSV column; drop it (and the trailing comma)
// from every row so the comparison is over the modeled, deterministic columns 1-13.
std::string StripWallColumn(const std::string& csv) {
  std::ostringstream out;
  std::istringstream in(csv);
  std::string line;
  while (std::getline(in, line)) {
    const size_t comma = line.rfind(',');
    out << line.substr(0, comma) << '\n';
  }
  return out.str();
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

// Reproduces the exact pre-PR CLI workload (--rmat=10,8,3 --jobs=pagerank,sssp,wcc,
// kcore --partitions=8) whose modeled CSV was captured before the partitioner layer
// existed. The default even_edge strategy must reproduce it byte-for-byte — the
// contract that keeps the whole bench trajectory comparable across this refactor.
TEST(EvenEdgeByteIdentityTest, ModeledCsvMatchesPrePartitionerGolden) {
  const EdgeList edges = FixedRmat(10, 8, 3);
  const VertexId source = PickSourceVertex(edges);
  PartitionOptions popts;
  popts.num_partitions = 8;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  for (const uint32_t workers : {1u, 4u}) {
    EngineOptions options;  // CLI defaults, not the cache-starved test options.
    options.num_workers = workers;
    LtpEngine engine(&pg, options);
    for (const char* job : {"pagerank", "sssp", "wcc", "kcore"}) {
      engine.Submit(MakeProgram(job, source));
    }
    engine.RunUntilIdle();
    const std::string csv = StripWallColumn(RunReportToCsv(engine.Report(), CostModel{}));
    const std::string golden = ReadFileOrDie(
        std::string(CGRAPH_TEST_SRCDIR) + "/tests/golden/even_edge_rmat10_w" +
        std::to_string(workers) + ".csv");
    EXPECT_EQ(csv, golden) << "workers=" << workers;
  }
}

// Every alternative layout must converge to the same answers: the layout moves work
// around, never changes results. Checked against the reference implementations for the
// monotonic trio in both execution modes.
class PartitionerEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<PartitionerKind, ExecutionMode>> {};

TEST_P(PartitionerEquivalenceTest, FinalValuesMatchReferences) {
  const auto [kind, mode] = GetParam();
  const EdgeList edges = FixedRmat(8, 8, 5);
  const VertexId source = PickSourceVertex(edges);
  const Graph g = Graph::FromEdges(edges);
  const auto want_dist = ReferenceSssp(g, source);
  const auto want_labels = ReferenceWcc(g);
  const auto want_core = ReferenceKCore(g, 3);
  const PartitionedGraph pg = BuildWith(edges, kind, 6);
  for (const uint32_t workers : {1u, 4u}) {
    EngineOptions options = test_support::TestEngineOptions();
    options.num_workers = workers;
    options.execution_mode = mode;
    LtpEngine engine(&pg, options);
    const JobId sssp = engine.AddJob(std::make_unique<SsspProgram>(source));
    const JobId wcc = engine.AddJob(std::make_unique<WccProgram>());
    const JobId kcore = engine.AddJob(std::make_unique<KCoreProgram>(3));
    engine.Run();
    const std::string what = std::string(PartitionerKindName(kind)) + "/" +
                             ExecutionModeName(mode) + "/w" + std::to_string(workers);
    test_support::ExpectNearValues(engine.FinalValues(sssp), want_dist, 1e-12,
                                   what + "/sssp");
    test_support::ExpectNearValues(engine.FinalValues(wcc), want_labels, 0.0,
                                   what + "/wcc");
    // k-core equivalence is on membership (aux == 0 <=> in-core); the residual degree
    // in value is peel-order-dependent by design.
    const std::vector<double> aux = engine.FinalAux(kcore);
    ASSERT_EQ(aux.size(), want_core.size()) << what;
    for (VertexId v = 0; v < aux.size(); ++v) {
      EXPECT_EQ(aux[v] == 0.0, want_core[v] == 1.0) << what << "/kcore vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlternatives, PartitionerEquivalenceTest,
    ::testing::Combine(::testing::Values(PartitionerKind::kHashSource,
                                         PartitionerKind::kGreedy,
                                         PartitionerKind::kDegree),
                       ::testing::Values(ExecutionMode::kBsp, ExecutionMode::kAsync)),
    [](const auto& info) {
      return std::string(PartitionerKindName(std::get<0>(info.param))) + "_" +
             ExecutionModeName(std::get<1>(info.param));
    });

}  // namespace
}  // namespace cgraph
