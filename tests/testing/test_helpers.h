// Assertion and configuration helpers shared by the engine, baseline, and
// integration suites.

#ifndef TESTS_TESTING_TEST_HELPERS_H_
#define TESTS_TESTING_TEST_HELPERS_H_

#include <string>
#include <vector>

#include "src/core/engine_options.h"

namespace cgraph {
namespace test_support {

// EngineOptions sized so that test-graph working sets contend for cache:
// `cache_kib` KiB of cache in 4 KiB segments over 64 MiB of memory, 4 workers.
EngineOptions TestEngineOptions(uint64_t cache_kib = 64);

// Element-wise parity check used by every engine-vs-reference suite.
// Infinities must match exactly (unreached vertices); finite values must agree
// within `tolerance`. `what` prefixes every failure message.
void ExpectNearValues(const std::vector<double>& actual,
                      const std::vector<double>& expected, double tolerance,
                      const std::string& what);

}  // namespace test_support
}  // namespace cgraph

#endif  // TESTS_TESTING_TEST_HELPERS_H_
