#include "tests/testing/test_helpers.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cgraph {
namespace test_support {

EngineOptions TestEngineOptions(uint64_t cache_kib) {
  EngineOptions options;
  options.num_workers = 4;
  options.hierarchy.cache_capacity_bytes = cache_kib << 10;
  options.hierarchy.cache_segment_bytes = 4ull << 10;
  options.hierarchy.memory_capacity_bytes = 64ull << 20;
  return options;
}

void ExpectNearValues(const std::vector<double>& actual,
                      const std::vector<double>& expected, double tolerance,
                      const std::string& what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (size_t v = 0; v < actual.size(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(actual[v])) << what << " vertex " << v;
    } else {
      EXPECT_NEAR(actual[v], expected[v], tolerance) << what << " vertex " << v;
    }
  }
}

}  // namespace test_support
}  // namespace cgraph
