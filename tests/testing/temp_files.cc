#include "tests/testing/temp_files.h"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace cgraph {
namespace test_support {

namespace {

int CurrentPid() {
#ifdef _WIN32
  return ::_getpid();
#else
  return ::getpid();
#endif
}

// Owns the per-process temp directory; best-effort removal at process exit so
// repeated runs don't accumulate cgraph-test-* directories.
struct TempDirOwner {
  std::filesystem::path dir;
  TempDirOwner()
      : dir(std::filesystem::temp_directory_path() /
            ("cgraph-test-" + std::to_string(CurrentPid()))) {
    std::filesystem::create_directories(dir);
  }
  ~TempDirOwner() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

}  // namespace

std::string TempPath(const std::string& name) {
  // Per-process subdirectory: concurrent runs of the same suite (e.g. ctest in
  // two build trees) must not collide on fixed file names.
  static TempDirOwner owner;
  return (owner.dir / name).string();
}

ScopedFile::ScopedFile(const std::string& name, const std::string& contents, bool binary)
    : path_(TempPath(name)) {
  std::ofstream out(path_, binary ? std::ios::binary : std::ios::out);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

ScopedFile::~ScopedFile() { std::remove(path_.c_str()); }

}  // namespace test_support
}  // namespace cgraph
