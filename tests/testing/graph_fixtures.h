// Shared graph fixtures for the test suites.
//
// Every generator here is deterministic: random cases take explicit seeds and the
// structured cases are pure functions of their size arguments, so any two test
// binaries (or two runs of one binary) that name the same case operate on the
// identical edge list.

#ifndef TESTS_TESTING_GRAPH_FIXTURES_H_
#define TESTS_TESTING_GRAPH_FIXTURES_H_

#include <string>
#include <vector>

#include "src/graph/edge_list.h"
#include "src/graph/generators.h"

namespace cgraph {
namespace test_support {

// A named graph, the unit the parameterized engine/baseline suites iterate over.
struct GraphCase {
  std::string name;
  EdgeList edges;
};

// Individual shapes. Names encode the size so failure messages identify the case.
GraphCase PathCase(VertexId n);
GraphCase CycleCase(VertexId n);
GraphCase StarCase(VertexId n);
GraphCase GridCase(VertexId rows, VertexId cols);
GraphCase CompleteCase(VertexId n);

// Two 2-cycles, a self-loop, a dangling edge, and isolated vertices — exercises
// disconnected components, zero-degree vertices, and self-loop handling.
GraphCase DisconnectedCase();

// Uniform G(n, m) with a fixed seed.
GraphCase RandomCase(VertexId n, uint64_t m, uint64_t seed);

// Skewed power-law R-MAT with a fixed seed.
GraphCase RmatCase(uint32_t scale, uint32_t edge_factor, uint64_t seed);

// Plain edge-list version of RmatCase for suites that need only the edges.
EdgeList FixedRmat(uint32_t scale, uint32_t edge_factor, uint64_t seed);

// The canonical family used by the engine-vs-reference parity suites: path,
// cycle, star, grid, complete, R-MAT, Erdos-Renyi, and the disconnected case.
const std::vector<GraphCase>& StandardGraphCases();

}  // namespace test_support
}  // namespace cgraph

#endif  // TESTS_TESTING_GRAPH_FIXTURES_H_
