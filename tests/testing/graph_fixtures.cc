#include "tests/testing/graph_fixtures.h"

#include <utility>

namespace cgraph {
namespace test_support {

GraphCase PathCase(VertexId n) { return {"path" + std::to_string(n), GeneratePath(n)}; }

GraphCase CycleCase(VertexId n) { return {"ring" + std::to_string(n), GenerateRing(n)}; }

GraphCase StarCase(VertexId n) { return {"star" + std::to_string(n), GenerateStar(n)}; }

GraphCase GridCase(VertexId rows, VertexId cols) {
  return {"grid" + std::to_string(rows) + "x" + std::to_string(cols), GenerateGrid(rows, cols)};
}

GraphCase CompleteCase(VertexId n) {
  return {"complete" + std::to_string(n), GenerateComplete(n)};
}

GraphCase DisconnectedCase() {
  EdgeList odd;
  odd.Add(0, 1);
  odd.Add(1, 0);
  odd.Add(2, 2);
  odd.Add(3, 4);
  odd.set_num_vertices(8);
  return {"disconnected", std::move(odd)};
}

GraphCase RandomCase(VertexId n, uint64_t m, uint64_t seed) {
  return {"erdos" + std::to_string(n) + "m" + std::to_string(m) + "s" + std::to_string(seed),
          GenerateErdosRenyi(n, m, seed)};
}

EdgeList FixedRmat(uint32_t scale, uint32_t edge_factor, uint64_t seed) {
  RmatOptions rmat;
  rmat.scale = scale;
  rmat.edge_factor = edge_factor;
  rmat.seed = seed;
  return GenerateRmat(rmat);
}

GraphCase RmatCase(uint32_t scale, uint32_t edge_factor, uint64_t seed) {
  return {"rmat" + std::to_string(scale) + "f" + std::to_string(edge_factor) + "s" +
              std::to_string(seed),
          FixedRmat(scale, edge_factor, seed)};
}

const std::vector<GraphCase>& StandardGraphCases() {
  static const std::vector<GraphCase>* cases = [] {
    auto* v = new std::vector<GraphCase>();
    v->push_back(CycleCase(50));
    v->push_back(PathCase(40));
    v->push_back(StarCase(64));
    v->push_back(GridCase(8, 8));
    v->push_back(CompleteCase(12));
    v->push_back(RmatCase(9, 8, 77));
    v->push_back(RandomCase(400, 3000, 55));
    v->push_back(DisconnectedCase());
    return v;
  }();
  return *cases;
}

}  // namespace test_support
}  // namespace cgraph
