// Temporary-file helpers shared by the I/O, metrics, and graph suites.

#ifndef TESTS_TESTING_TEMP_FILES_H_
#define TESTS_TESTING_TEMP_FILES_H_

#include <string>

namespace cgraph {
namespace test_support {

// Absolute path for `name` under the system temp directory.
std::string TempPath(const std::string& name);

// Writes `contents` to TempPath(name) on construction, removes it on
// destruction.
class ScopedFile {
 public:
  ScopedFile(const std::string& name, const std::string& contents, bool binary = false);
  ~ScopedFile();

  ScopedFile(const ScopedFile&) = delete;
  ScopedFile& operator=(const ScopedFile&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace test_support
}  // namespace cgraph

#endif  // TESTS_TESTING_TEMP_FILES_H_
