// cgraph-lint rule engine tests (tools/lint/): every rule positive + negative,
// suppression behavior, and output-ordering determinism, driven by the fixture
// trees under tests/lint_fixtures/ plus inline content for lexer edge cases.

#include "tools/lint/lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"

namespace cgraph::lint {
namespace {

std::string FixtureRoot(const char* tree) {
  return std::string(CGRAPH_TEST_SRCDIR) + "/tests/lint_fixtures/" + tree;
}

std::string ReadRepoFile(const std::string& rel) {
  std::ifstream in(std::string(CGRAPH_TEST_SRCDIR) + "/" + rel);
  EXPECT_TRUE(in.good()) << rel;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The committed config, exactly as cgraph_lint loads it.
Config RepoConfig() {
  Config config;
  config.allowed_stage_checks =
      ParseAllowlistFile(ReadRepoFile("tools/lint/stage_check_allowlist.txt"));
  std::string error;
  EXPECT_TRUE(ParseSuppressionFile(ReadRepoFile("tools/lint/lint_suppressions.txt"),
                                   &config.suppressions, &error))
      << error;
  config.suppression_file = "tools/lint/lint_suppressions.txt";
  return config;
}

std::vector<std::tuple<std::string, int, std::string>> Triples(
    const std::vector<Finding>& findings) {
  std::vector<std::tuple<std::string, int, std::string>> out;
  for (const Finding& f : findings) {
    out.emplace_back(f.file, f.line, f.rule);
  }
  return out;
}

// --- lexer ---------------------------------------------------------------------------

TEST(StripCommentsAndStrings, RemovesProseButKeepsLineStructure) {
  const std::string input =
      "// mt19937 in a line comment\n"
      "/* rand() in a block\n"
      "   comment spanning lines */\n"
      "const char* s = \"std::thread inside a string\";\n"
      "const char* r = R\"x(system_clock in a raw string)x\";\n"
      "char c = '\\'';\n"
      "int code = 1;\n";
  const std::string stripped = StripCommentsAndStrings(input);
  EXPECT_EQ(std::count(input.begin(), input.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("mt19937"), std::string::npos);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("thread"), std::string::npos);
  EXPECT_EQ(stripped.find("system_clock"), std::string::npos);
  EXPECT_NE(stripped.find("int code = 1;"), std::string::npos);
}

TEST(StripCommentsAndStrings, DigitSeparatorIsNotACharLiteral) {
  // If 1'000'000 opened a char literal the mt19937 on the next line would be
  // swallowed as literal content and the rule would miss it.
  const std::string input = "int n = 1'000'000;\nstd::mt19937 g;\n";
  const std::vector<Finding> findings = LintContent("src/x.cc", input, Config{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "determinism-rand");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(NormalizeWhitespace, CollapsesRunsAndTrims) {
  EXPECT_EQ(NormalizeWhitespace("  a \t  b\n c  "), "a b c");
  EXPECT_EQ(NormalizeWhitespace(""), "");
}

// --- config parsing ------------------------------------------------------------------

TEST(ParseSuppressionFile, ParsesEntriesAndRejectsMalformed) {
  std::vector<Suppression> out;
  std::string error;
  EXPECT_TRUE(ParseSuppressionFile(
      "# comment\n\nsrc/a.cc:determinism-clock:steady_clock\n", &out, &error));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].file, "src/a.cc");
  EXPECT_EQ(out[0].rule, "determinism-clock");
  EXPECT_EQ(out[0].needle, "steady_clock");
  EXPECT_EQ(out[0].line, 3);

  out.clear();
  EXPECT_FALSE(ParseSuppressionFile("# fine\nnot-an-entry\n", &out, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(ParseAllowlistFile, SkipsCommentsAndNormalizes) {
  const std::vector<std::string> entries = ParseAllowlistFile(
      "# why\nCGRAPH_CHECK( pool   != nullptr )\n\nCGRAPH_CHECK(x)\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], "CGRAPH_CHECK( pool != nullptr )");
  EXPECT_EQ(entries[1], "CGRAPH_CHECK(x)");
}

// --- rule unit cases -----------------------------------------------------------------

TEST(LintContent, AllowlistComparisonIsWhitespaceInsensitive) {
  Config config;
  config.allowed_stage_checks = {"CGRAPH_CHECK(hierarchy != nullptr)"};
  const std::vector<Finding> findings = LintContent(
      "src/core/push_stage.cc",
      "void F() { CGRAPH_CHECK( hierarchy\n      != nullptr ); }\n", config);
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LintContent, RangeForOverCallResultIsNotFlagged) {
  // The rule targets direct iteration of a declared unordered container; a call
  // expression yields no trailing identifier to match.
  const std::string input =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m_;\n"
      "void F() {\n"
      "  for (auto& kv : Sorted(m_)) { (void)kv; }\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/x.cc", input, Config{}).empty());
}

TEST(LintContent, ClassicForAndScopedColonAreNotRangeFor) {
  const std::string input =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m_;\n"
      "void F() {\n"
      "  for (size_t i = 0; i < m_.size(); ++i) {\n"
      "  }\n"
      "  for (auto it = std::begin(m_); it != std::end(m_); ++it) {\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/x.cc", input, Config{}).empty());
}

TEST(LintContent, HeaderGuardAcceptsCanonicalAndRejectsPragmaOnce) {
  const std::string good =
      "#ifndef SRC_COMMON_FOO_H_\n#define SRC_COMMON_FOO_H_\n#endif\n";
  EXPECT_TRUE(LintContent("src/common/foo.h", good, Config{}).empty());

  const std::vector<Finding> findings =
      LintContent("src/common/foo.h", "#pragma once\nint x;\n", Config{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header-guard");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintContent, PrngPathIsExemptFromRandOnly) {
  const std::string engines = "using mt19937 = unsigned;\n";
  EXPECT_TRUE(LintContent("src/common/prng.h",
                          "#ifndef SRC_COMMON_PRNG_H_\n#define SRC_COMMON_PRNG_H_\n" +
                              engines + "#endif\n",
                          Config{})
                  .empty());
  const std::vector<Finding> elsewhere =
      LintContent("src/core/x.cc", engines, Config{});
  ASSERT_EQ(elsewhere.size(), 1u);
  EXPECT_EQ(elsewhere[0].rule, "determinism-rand");

  // The clock rule has no path exemption — even prng.h may not read wall time.
  const std::vector<Finding> clock_findings = LintContent(
      "src/common/prng.h",
      "#ifndef SRC_COMMON_PRNG_H_\n#define SRC_COMMON_PRNG_H_\n"
      "auto t = std::chrono::steady_clock::now();\n#endif\n",
      Config{});
  ASSERT_EQ(clock_findings.size(), 1u);
  EXPECT_EQ(clock_findings[0].rule, "determinism-clock");
}

TEST(LintContent, SiblingHeaderNamesReachTheCc) {
  const std::string cc =
      "#include \"src/t.h\"\n"
      "int F(const T& t) {\n"
      "  int s = 0;\n"
      "  for (auto& kv : t.entries_) { s += kv.second; }\n"
      "  return s;\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/t.cc", cc, Config{}).empty());
  const std::vector<Finding> with_sibling =
      LintContent("src/t.cc", cc, Config{}, {"entries_"});
  ASSERT_EQ(with_sibling.size(), 1u);
  EXPECT_EQ(with_sibling[0].rule, "unordered-iter");
  EXPECT_EQ(with_sibling[0].line, 4);
}

// --- fixture trees -------------------------------------------------------------------

TEST(LintTree, BadTreeTripsEveryRuleInDeterministicOrder) {
  Config config;
  config.allowed_stage_checks =
      ParseAllowlistFile(ReadRepoFile("tools/lint/stage_check_allowlist.txt"));

  const std::vector<Finding> findings =
      LintTree(FixtureRoot("bad"), {"src"}, config);

  using T = std::tuple<std::string, int, std::string>;
  const std::vector<T> expected = {
      T{"src/alias_iter.cc", 8, "unordered-iter"},
      T{"src/clock_use.cc", 5, "determinism-clock"},
      T{"src/clock_use.cc", 7, "determinism-clock"},
      T{"src/core/trigger_stage.cc", 4, "check-allowlist"},
      T{"src/missing_define.h", 1, "header-guard"},
      T{"src/rand_use.cc", 5, "determinism-rand"},
      T{"src/rand_use.cc", 7, "determinism-rand"},
      T{"src/table.cc", 9, "unordered-iter"},
      T{"src/table.cc", 12, "unordered-iter"},
      T{"src/thread_use.cc", 4, "naked-thread"},
      T{"src/wrong_guard.h", 1, "header-guard"},
  };
  EXPECT_EQ(Triples(findings), expected) << FormatFindings(findings);

  // Determinism: a second scan of the same tree is byte-identical.
  EXPECT_EQ(FormatFindings(LintTree(FixtureRoot("bad"), {"src"}, config)),
            FormatFindings(findings));
}

TEST(LintTree, GoodTreeIsCleanUnderTheRepoConfig) {
  const std::vector<Finding> findings =
      LintTree(FixtureRoot("good"), {"src"}, RepoConfig());
  // The repo baseline suppression targets src/common/timer.h, which does not exist
  // in the good tree — so it surfaces as the only finding, proving unused entries
  // cannot hide. With it accounted for, the tree is clean.
  ASSERT_EQ(findings.size(), 1u) << FormatFindings(findings);
  EXPECT_EQ(findings[0].rule, "unused-suppression");
  EXPECT_EQ(findings[0].file, "tools/lint/lint_suppressions.txt");
}

TEST(LintTree, SuppressionsFilterMatchesAndReportUnusedEntries) {
  Config config;
  config.allowed_stage_checks =
      ParseAllowlistFile(ReadRepoFile("tools/lint/stage_check_allowlist.txt"));
  std::string error;
  ASSERT_TRUE(ParseSuppressionFile(
      "src/clock_use.cc:determinism-clock:system_clock\n"
      "src/never.cc:determinism-rand:nope\n",
      &config.suppressions, &error))
      << error;
  config.suppression_file = "suppressions.txt";

  const std::vector<Finding> findings =
      LintTree(FixtureRoot("bad"), {"src"}, config);

  // The system_clock finding (line 5) is suppressed; the time() finding on line 7
  // survives because the needle matches only the line the finding is on.
  for (const Finding& f : findings) {
    EXPECT_FALSE(f.file == "src/clock_use.cc" && f.line == 5) << FormatFindings(findings);
  }
  EXPECT_NE(std::find_if(findings.begin(), findings.end(),
                         [](const Finding& f) {
                           return f.file == "src/clock_use.cc" && f.line == 7;
                         }),
            findings.end());
  const auto unused = std::find_if(findings.begin(), findings.end(),
                                   [](const Finding& f) {
                                     return f.rule == "unused-suppression";
                                   });
  ASSERT_NE(unused, findings.end());
  EXPECT_EQ(unused->file, "suppressions.txt");
  EXPECT_EQ(unused->line, 2);
  EXPECT_NE(unused->message.find("src/never.cc"), std::string::npos);
}

// The enforcement test: the real tree must be clean under the committed config.
// This is what the static-analysis CI job runs; having it in tier-1 means a lint
// violation fails `ctest` locally too, not just in CI.
TEST(LintTree, RealRepoIsCleanUnderCommittedConfig) {
  const std::vector<Finding> findings =
      LintTree(CGRAPH_TEST_SRCDIR, {"src", "tools"}, RepoConfig());
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

}  // namespace
}  // namespace cgraph::lint
