// The job-service runtime: online submission while the engine runs, admission beyond
// max_jobs queuing instead of crashing, deterministic arrival interleavings matching the
// legacy ScheduleJob path, and the Submit/Step/RunUntilIdle/Wait lifecycle.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/algorithms/bfs.h"
#include "src/algorithms/factory.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/reference.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/wcc.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/partition/partitioned_graph.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

PartitionedGraph Partition(const EdgeList& edges, uint32_t parts) {
  PartitionOptions options;
  options.num_partitions = parts;
  options.core_subgraph = true;
  return PartitionedGraphBuilder::Build(edges, options);
}

TEST(JobManagerTest, SubmitWhileRunningExecutesAndCompletes) {
  const EdgeList edges = GenerateErdosRenyi(250, 2000, 7);
  const Graph g = Graph::FromEdges(edges);
  const PartitionedGraph pg = Partition(edges, 6);

  LtpEngine engine(&pg, test_support::TestEngineOptions());
  engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
  // Let PageRank make real progress before the newcomer shows up.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Step());
  }
  const LtpEngine::JobHandle late = engine.Submit(std::make_unique<WccProgram>());
  EXPECT_FALSE(late.done());
  engine.RunUntilIdle();
  EXPECT_TRUE(late.done());
  test_support::ExpectNearValues(engine.FinalValues(late.id()), ReferenceWcc(g), 0.0,
                                 "midrun/wcc");
}

TEST(JobManagerTest, AdmissionBeyondMaxJobsQueuesInsteadOfCrashing) {
  const EdgeList edges = GenerateErdosRenyi(200, 1500, 11);
  const Graph g = Graph::FromEdges(edges);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 5);

  EngineOptions options = test_support::TestEngineOptions();
  options.max_jobs = 2;  // Two concurrency slots for four submissions.
  LtpEngine engine(&pg, options);
  std::vector<LtpEngine::JobHandle> handles;
  handles.push_back(engine.Submit(std::make_unique<WccProgram>()));
  handles.push_back(engine.Submit(std::make_unique<SsspProgram>(source)));
  handles.push_back(engine.Submit(std::make_unique<WccProgram>()));
  handles.push_back(engine.Submit(std::make_unique<BfsProgram>(source)));
  EXPECT_EQ(engine.num_jobs(), 4u);
  engine.RunUntilIdle();
  for (const auto& handle : handles) {
    EXPECT_TRUE(handle.done());
  }
  test_support::ExpectNearValues(engine.FinalValues(handles[0].id()), ReferenceWcc(g), 0.0,
                                 "queued/wcc0");
  test_support::ExpectNearValues(engine.FinalValues(handles[1].id()),
                                 ReferenceSssp(g, source), 1e-12, "queued/sssp");
  test_support::ExpectNearValues(engine.FinalValues(handles[2].id()), ReferenceWcc(g), 0.0,
                                 "queued/wcc2");
  test_support::ExpectNearValues(engine.FinalValues(handles[3].id()),
                                 ReferenceBfs(g, source), 0.0, "queued/bfs");
}

TEST(JobManagerTest, QueuedJobsAdmittedInSubmissionOrder) {
  const EdgeList edges = GenerateErdosRenyi(150, 1200, 13);
  const PartitionedGraph pg = Partition(edges, 4);

  EngineOptions options = test_support::TestEngineOptions();
  options.max_jobs = 1;  // Strictly serial admission.
  LtpEngine engine(&pg, options);
  engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-8));
  engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-8));
  engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-8));
  EXPECT_TRUE(engine.job(0).started());
  EXPECT_FALSE(engine.job(1).started());
  EXPECT_FALSE(engine.job(2).started());

  while (!engine.job(0).finished()) {
    ASSERT_TRUE(engine.Step());
  }
  // The freed slot admits the next waiter in FIFO order, not the newest submission.
  EXPECT_TRUE(engine.job(1).started());
  EXPECT_FALSE(engine.job(2).started());
  engine.RunUntilIdle();
  EXPECT_TRUE(engine.job(2).finished());
}

TEST(JobManagerTest, OnlineSubmissionMatchesLegacyScheduleJob) {
  const EdgeList edges = GenerateErdosRenyi(300, 2400, 17);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 6);
  constexpr uint64_t kArrival = 12;

  // Legacy path: the arrival is registered up front and injected by the run loop.
  LtpEngine legacy(&pg, test_support::TestEngineOptions());
  legacy.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-10));
  const JobId legacy_late = legacy.ScheduleJob(std::make_unique<BfsProgram>(source), kArrival);
  const RunReport legacy_report = legacy.Run();

  // Service path: the same arrival submitted online, mid-drive, at the same step.
  LtpEngine online(&pg, test_support::TestEngineOptions());
  online.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
  while (online.current_step() < kArrival) {
    ASSERT_TRUE(online.Step());
  }
  const LtpEngine::JobHandle online_late = online.Submit(std::make_unique<BfsProgram>(source));
  online.RunUntilIdle();
  const RunReport online_report = online.Report();

  // The interleavings must be identical: same iteration counts, same work, same charge
  // attribution, same cache behavior.
  ASSERT_EQ(legacy_report.jobs.size(), online_report.jobs.size());
  for (size_t j = 0; j < legacy_report.jobs.size(); ++j) {
    EXPECT_EQ(legacy_report.jobs[j].iterations, online_report.jobs[j].iterations) << j;
    EXPECT_EQ(legacy_report.jobs[j].compute_units, online_report.jobs[j].compute_units) << j;
    EXPECT_EQ(legacy_report.jobs[j].push_updates, online_report.jobs[j].push_updates) << j;
    EXPECT_EQ(legacy_report.jobs[j].charge.total_bytes(),
              online_report.jobs[j].charge.total_bytes())
        << j;
  }
  EXPECT_EQ(legacy_report.cache.touches, online_report.cache.touches);
  EXPECT_EQ(legacy_report.cache.misses, online_report.cache.misses);
  EXPECT_EQ(legacy_report.memory.disk_bytes, online_report.memory.disk_bytes);
  EXPECT_EQ(legacy.FinalValues(legacy_late), online.FinalValues(online_late.id()));
}

TEST(JobManagerTest, SubmitAfterIdleMatchesUpFrontRegistration) {
  const EdgeList edges = GenerateErdosRenyi(200, 1600, 19);
  const Graph g = Graph::FromEdges(edges);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 5);

  // First batch runs to idle; a job submitted afterwards must start executing on the next
  // drive and complete with results identical to up-front registration.
  LtpEngine engine(&pg, test_support::TestEngineOptions());
  engine.Submit(std::make_unique<BfsProgram>(source));
  engine.RunUntilIdle();
  const LtpEngine::JobHandle late = engine.Submit(std::make_unique<WccProgram>());
  EXPECT_FALSE(late.done());
  engine.RunUntilIdle();
  EXPECT_TRUE(late.done());

  LtpEngine upfront(&pg, test_support::TestEngineOptions());
  const JobId reference = upfront.AddJob(std::make_unique<WccProgram>());
  upfront.Run();
  EXPECT_EQ(engine.FinalValues(late.id()), upfront.FinalValues(reference));
  test_support::ExpectNearValues(engine.FinalValues(late.id()), ReferenceWcc(g), 0.0,
                                 "postidle/wcc");
}

TEST(JobManagerTest, WaitDrivesOneJobToCompletion) {
  const EdgeList edges = GenerateErdosRenyi(200, 1500, 23);
  const Graph g = Graph::FromEdges(edges);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 5);

  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const LtpEngine::JobHandle bfs = engine.Submit(std::make_unique<BfsProgram>(source));
  const LtpEngine::JobHandle pr = engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
  bfs.Wait();
  EXPECT_TRUE(bfs.done());
  test_support::ExpectNearValues(engine.FinalValues(bfs.id()), ReferenceBfs(g, source), 0.0,
                                 "wait/bfs");
  engine.RunUntilIdle();
  EXPECT_TRUE(pr.done());
  EXPECT_GT(pr.stats().iterations, 0u);
}

TEST(JobManagerTest, WaitOnCompletedJobReturnsImmediately) {
  const EdgeList edges = GenerateErdosRenyi(150, 1200, 31);
  const PartitionedGraph pg = Partition(edges, 4);

  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const LtpEngine::JobHandle wcc = engine.Submit(std::make_unique<WccProgram>());
  engine.RunUntilIdle();
  ASSERT_TRUE(wcc.done());
  // Wait on an already-finished job must return without driving the engine — a Wait
  // that stepped here would CHECK-fail (the engine is idle, Step() returns false).
  const uint64_t step_before = engine.current_step();
  engine.Wait(wcc.id());
  EXPECT_EQ(engine.current_step(), step_before);
}

TEST(JobManagerTest, WaitOnCompletedJobSurvivesSlotRecycling) {
  const EdgeList edges = GenerateErdosRenyi(150, 1200, 37);
  const PartitionedGraph pg = Partition(edges, 4);

  EngineOptions options = test_support::TestEngineOptions();
  options.max_jobs = 1;  // Every job recycles the single slot.
  LtpEngine engine(&pg, options);
  const LtpEngine::JobHandle first = engine.Submit(std::make_unique<WccProgram>());
  const LtpEngine::JobHandle second =
      engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-8));
  const LtpEngine::JobHandle third = engine.Submit(std::make_unique<WccProgram>());

  engine.Wait(first.id());
  ASSERT_TRUE(first.done());
  // The slot first held now belongs to second (still running). Waiting on first's id
  // again must key off the *job*, not the recycled slot: it returns immediately instead
  // of driving until the slot's current occupant finishes.
  const uint64_t step_before = engine.current_step();
  engine.Wait(first.id());
  EXPECT_EQ(engine.current_step(), step_before);
  EXPECT_FALSE(second.done());

  engine.RunUntilIdle();
  EXPECT_TRUE(second.done());
  EXPECT_TRUE(third.done());
  // Re-waiting on any completed id after further recycling is still a no-op.
  const uint64_t final_step = engine.current_step();
  engine.Wait(second.id());
  engine.Wait(first.id());
  EXPECT_EQ(engine.current_step(), final_step);
}

TEST(JobManagerTest, ScheduledArrivalBeyondConvergenceStillRuns) {
  const EdgeList edges = GenerateRing(64);
  const Graph g = Graph::FromEdges(edges);
  const PartitionedGraph pg = Partition(edges, 2);

  LtpEngine engine(&pg, test_support::TestEngineOptions());
  engine.Submit(std::make_unique<BfsProgram>(0));
  // Runnable long after BFS converges; the drive loop must fast-forward and admit it.
  const LtpEngine::JobHandle late =
      engine.SubmitAt(std::make_unique<WccProgram>(), /*arrival_step=*/100000);
  engine.RunUntilIdle();
  EXPECT_TRUE(late.done());
  EXPECT_GE(engine.current_step(), 100000u);
  test_support::ExpectNearValues(engine.FinalValues(late.id()), ReferenceWcc(g), 0.0,
                                 "deferred/wcc");
}

TEST(JobManagerTest, ReportIsReadableMidRunAndFinalizesPerJob) {
  const EdgeList edges = GenerateErdosRenyi(200, 1600, 29);
  const PartitionedGraph pg = Partition(edges, 4);

  LtpEngine engine(&pg, test_support::TestEngineOptions());
  const LtpEngine::JobHandle pr = engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Step());
  }
  const RunReport midrun = engine.Report();
  ASSERT_EQ(midrun.jobs.size(), 1u);
  EXPECT_GT(midrun.jobs[0].vertex_computes, 0u);
  EXPECT_FALSE(pr.done());
  engine.RunUntilIdle();
  const RunReport final_report = engine.Report();
  EXPECT_GT(final_report.jobs[0].compute_units, midrun.jobs[0].compute_units);
  EXPECT_GT(final_report.jobs[0].iterations, 0u);
}

}  // namespace
}  // namespace cgraph
