// The graph-service daemon: arrival-trace generation, deterministic replay across
// worker counts, query fan-in (coalescing) correctness, queue-wait deadlines with
// shed-on-expiry, bounded-queue backpressure, and the streaming latency reservoir.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "src/algorithms/factory.h"
#include "src/algorithms/reference.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/metrics/latency_reservoir.h"
#include "src/partition/partitioned_graph.h"
#include "src/service/daemon.h"
#include "src/service/request_table.h"
#include "src/service/trace_gen.h"
#include "tests/testing/temp_files.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

PartitionedGraph Partition(const EdgeList& edges, uint32_t parts) {
  PartitionOptions options;
  options.num_partitions = parts;
  options.core_subgraph = true;
  return PartitionedGraphBuilder::Build(edges, options);
}

TraceGenOptions SmallTraceOptions(const EdgeList& edges) {
  TraceGenOptions tgen;
  tgen.num_requests = 60;
  tgen.mean_gap = 3;
  tgen.programs = {"pagerank", "sssp", "bfs", "wcc"};
  tgen.sources = PickSourcePool(edges, 4);
  return tgen;
}

// --- Trace generation --------------------------------------------------------------

TEST(TraceGenTest, SameSeedReproducesTheTraceExactly) {
  const EdgeList edges = GenerateErdosRenyi(120, 900, 3);
  TraceGenOptions tgen = SmallTraceOptions(edges);
  for (ArrivalPattern pattern :
       {ArrivalPattern::kUniform, ArrivalPattern::kBursty, ArrivalPattern::kDiurnal}) {
    tgen.pattern = pattern;
    const auto a = GenerateArrivalTrace(tgen);
    const auto b = GenerateArrivalTrace(tgen);
    ASSERT_EQ(a.size(), b.size()) << ArrivalPatternName(pattern);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].arrival_step, b[i].arrival_step);
      EXPECT_EQ(a[i].program, b[i].program);
      EXPECT_EQ(a[i].source, b[i].source);
    }
    // A different seed must actually change something.
    tgen.seed += 1;
    const auto c = GenerateArrivalTrace(tgen);
    bool differs = false;
    for (size_t i = 0; i < a.size() && !differs; ++i) {
      differs = a[i].arrival_step != c[i].arrival_step || a[i].program != c[i].program ||
                a[i].source != c[i].source;
    }
    EXPECT_TRUE(differs) << ArrivalPatternName(pattern);
    tgen.seed -= 1;
  }
}

TEST(TraceGenTest, ArrivalsAreSortedAndPatternsShapeThem) {
  const EdgeList edges = GenerateErdosRenyi(120, 900, 3);
  TraceGenOptions tgen = SmallTraceOptions(edges);
  tgen.num_requests = 256;
  tgen.burst_size = 16;

  for (ArrivalPattern pattern :
       {ArrivalPattern::kUniform, ArrivalPattern::kBursty, ArrivalPattern::kDiurnal}) {
    tgen.pattern = pattern;
    const auto trace = GenerateArrivalTrace(tgen);
    ASSERT_EQ(trace.size(), tgen.num_requests);
    EXPECT_EQ(trace.front().arrival_step, 0u);
    for (size_t i = 1; i < trace.size(); ++i) {
      EXPECT_LE(trace[i - 1].arrival_step, trace[i].arrival_step);
    }
  }

  // Bursty: every clump of burst_size requests shares one arrival step.
  tgen.pattern = ArrivalPattern::kBursty;
  const auto bursty = GenerateArrivalTrace(tgen);
  for (size_t i = 0; i < bursty.size(); i += tgen.burst_size) {
    for (size_t j = i + 1; j < std::min(i + tgen.burst_size, bursty.size()); ++j) {
      EXPECT_EQ(bursty[j].arrival_step, bursty[i].arrival_step) << i;
    }
  }
  // And the mean rate still roughly matches uniform at the same mean_gap: total span
  // within 2x either way (jitter, but the clump gap carries the whole clump's budget).
  tgen.pattern = ArrivalPattern::kUniform;
  const auto uniform = GenerateArrivalTrace(tgen);
  const double bursty_span = static_cast<double>(bursty.back().arrival_step);
  const double uniform_span = static_cast<double>(uniform.back().arrival_step);
  EXPECT_GT(bursty_span, uniform_span * 0.5);
  EXPECT_LT(bursty_span, uniform_span * 2.0);
}

TEST(TraceGenTest, TraceFileRoundTripsExactly) {
  const EdgeList edges = GenerateErdosRenyi(120, 900, 3);
  TraceGenOptions tgen = SmallTraceOptions(edges);
  tgen.pattern = ArrivalPattern::kBursty;
  const auto trace = GenerateArrivalTrace(tgen);

  const std::string path = test_support::TempPath("service_trace_roundtrip.txt");
  ASSERT_TRUE(SaveTrace(trace, path));
  std::vector<ServiceRequest> loaded;
  ASSERT_TRUE(LoadTrace(path, &loaded));
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].arrival_step, trace[i].arrival_step);
    EXPECT_EQ(loaded[i].program, trace[i].program);
    EXPECT_EQ(loaded[i].source, trace[i].source);
  }
}

// --- Coalesce keys -----------------------------------------------------------------

TEST(RequestTableTest, CoalesceKeyNormalizesSourceFreePrograms) {
  // Source-free programs merge regardless of the caller's source field...
  EXPECT_EQ(CoalesceKey("pagerank", 3), CoalesceKey("pagerank", 9));
  EXPECT_EQ(CoalesceKey("wcc", 0), CoalesceKey("wcc", 17));
  // ...source-rooted programs only merge on the same root...
  EXPECT_EQ(CoalesceKey("sssp", 5), CoalesceKey("sssp", 5));
  EXPECT_NE(CoalesceKey("sssp", 5), CoalesceKey("sssp", 6));
  // ...and programs never merge across types.
  EXPECT_NE(CoalesceKey("sssp", 5), CoalesceKey("bfs", 5));
  EXPECT_NE(CoalesceKey("pagerank", 0), CoalesceKey("wcc", 0));
}

TEST(RequestTableTest, RegisterFindRetireLifecycle) {
  RequestTable table;
  const std::string key = CoalesceKey("bfs", 7);
  EXPECT_EQ(table.Find(key), kInvalidJob);
  table.Register(key, 3);
  EXPECT_EQ(table.Find(key), 3u);
  // Retire with a stale id is a no-op; with the live id it clears the entry.
  table.Retire(key, 8);
  EXPECT_EQ(table.Find(key), 3u);
  table.Retire(key, 3);
  EXPECT_EQ(table.Find(key), kInvalidJob);
  EXPECT_EQ(table.size(), 0u);
}

// --- Latency reservoir -------------------------------------------------------------

TEST(LatencyReservoirTest, ExactPercentilesWhileWithinCapacity) {
  LatencyReservoir reservoir(128);
  for (int i = 100; i >= 1; --i) {
    reservoir.Add(static_cast<double>(i));  // 1..100, descending insert order.
  }
  EXPECT_TRUE(reservoir.exact());
  EXPECT_EQ(reservoir.count(), 100u);
  EXPECT_DOUBLE_EQ(reservoir.Percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(reservoir.Percentile(95.0), 95.0);
  EXPECT_DOUBLE_EQ(reservoir.Percentile(99.0), 99.0);
  EXPECT_DOUBLE_EQ(reservoir.Percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(reservoir.Percentile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(reservoir.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(reservoir.Max(), 100.0);
}

TEST(LatencyReservoirTest, SamplingPastCapacityStaysDeterministicAndBounded) {
  LatencyReservoir a(64, /*seed=*/7);
  LatencyReservoir b(64, /*seed=*/7);
  for (int i = 0; i < 10000; ++i) {
    a.Add(static_cast<double>(i % 1000));
    b.Add(static_cast<double>(i % 1000));
  }
  EXPECT_FALSE(a.exact());
  EXPECT_EQ(a.count(), 10000u);
  // Same seed, same stream => identical percentiles; mean/max stay exact regardless.
  EXPECT_DOUBLE_EQ(a.Percentile(50.0), b.Percentile(50.0));
  EXPECT_DOUBLE_EQ(a.Percentile(99.0), b.Percentile(99.0));
  EXPECT_DOUBLE_EQ(a.Mean(), 499.5);
  EXPECT_DOUBLE_EQ(a.Max(), 999.0);
  // The sampled median of a uniform 0..999 stream lands near 500.
  EXPECT_GT(a.Percentile(50.0), 300.0);
  EXPECT_LT(a.Percentile(50.0), 700.0);
}

// --- Daemon end-to-end -------------------------------------------------------------

// Scheduling-step metrics of a replay, with the hardware-dependent fields dropped.
struct ModeledServiceSummary {
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t coalesced = 0;
  uint64_t submitted = 0;
  uint64_t executed = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  uint64_t final_step = 0;
  std::vector<uint64_t> finish_steps;  // Per request, trace order (0 for door sheds).

  static ModeledServiceSummary From(const ServiceReport& report) {
    ModeledServiceSummary s;
    s.completed = report.completed_requests;
    s.shed = report.shed_requests;
    s.coalesced = report.coalesced_requests;
    s.submitted = report.submitted_jobs;
    s.executed = report.executed_jobs;
    s.p50 = report.p50_latency_steps;
    s.p95 = report.p95_latency_steps;
    s.p99 = report.p99_latency_steps;
    s.mean = report.mean_latency_steps;
    s.final_step = report.final_step;
    for (const RequestOutcome& outcome : report.outcomes) {
      s.finish_steps.push_back(outcome.finish_step);
    }
    return s;
  }

  friend bool operator==(const ModeledServiceSummary& x, const ModeledServiceSummary& y) {
    return x.completed == y.completed && x.shed == y.shed && x.coalesced == y.coalesced &&
           x.submitted == y.submitted && x.executed == y.executed && x.p50 == y.p50 &&
           x.p95 == y.p95 && x.p99 == y.p99 && x.mean == y.mean &&
           x.final_step == y.final_step && x.finish_steps == y.finish_steps;
  }
};

TEST(ServiceDriverTest, ReplayIsDeterministicAcrossRunsAndWorkerCounts) {
  const EdgeList edges = GenerateErdosRenyi(200, 1600, 5);
  const PartitionedGraph pg = Partition(edges, 5);
  TraceGenOptions tgen = SmallTraceOptions(edges);
  tgen.pattern = ArrivalPattern::kBursty;
  tgen.num_requests = 80;
  const auto trace = GenerateArrivalTrace(tgen);

  std::vector<ModeledServiceSummary> summaries;
  for (uint32_t workers : {1u, 4u, 1u}) {  // Repeat workers=1 to cover run-to-run too.
    EngineOptions options = test_support::TestEngineOptions();
    options.num_workers = workers;
    options.max_jobs = 4;
    LtpEngine engine(&pg, options);
    ServiceOptions sopts;
    sopts.queue_bound = 16;
    sopts.deadline_steps = 200;
    ServiceDriver driver(&engine, sopts);
    summaries.push_back(ModeledServiceSummary::From(driver.Run(trace)));
  }
  // Latency, admission order, shed decisions, and percentiles are modeled quantities:
  // identical across worker counts and across repeated runs.
  EXPECT_TRUE(summaries[0] == summaries[1]);
  EXPECT_TRUE(summaries[0] == summaries[2]);
  EXPECT_EQ(summaries[0].completed + summaries[0].shed, 80u);
}

TEST(ServiceDriverTest, CoalescedCallersShareOneExecutionAndItsResults) {
  const EdgeList edges = GenerateErdosRenyi(200, 1600, 7);
  const Graph g = Graph::FromEdges(edges);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 5);

  // Five identical BFS requests while the first is still in flight, plus one WCC: the
  // four later BFS callers must attach to the first's job.
  std::vector<ServiceRequest> trace;
  for (int i = 0; i < 5; ++i) {
    trace.push_back({/*arrival_step=*/static_cast<uint64_t>(i), "bfs", source});
  }
  trace.push_back({/*arrival_step=*/2, "wcc", 0});
  std::sort(trace.begin(), trace.end(), [](const auto& a, const auto& b) {
    return a.arrival_step < b.arrival_step;
  });

  LtpEngine engine(&pg, test_support::TestEngineOptions());
  ServiceDriver driver(&engine, ServiceOptions{});
  const ServiceReport report = driver.Run(trace);

  EXPECT_EQ(report.completed_requests, 6u);
  EXPECT_EQ(report.coalesced_requests, 4u);
  EXPECT_EQ(report.submitted_jobs, 2u);  // One BFS execution + one WCC.
  EXPECT_EQ(report.executed_jobs, 2u);
  EXPECT_NEAR(report.dedup_ratio, 4.0 / 6.0, 1e-12);

  // All five BFS callers observe the same job and its finish step (the WCC request
  // interleaves somewhere in the sorted trace, so match outcomes by program)...
  JobId bfs_job = kInvalidJob;
  uint64_t bfs_finish = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].program != "bfs") {
      continue;
    }
    const RequestOutcome& outcome = report.outcomes[i];
    EXPECT_FALSE(outcome.shed);
    if (bfs_job == kInvalidJob) {
      bfs_job = outcome.job;
      bfs_finish = outcome.finish_step;
      EXPECT_FALSE(outcome.coalesced);
    } else {
      EXPECT_EQ(outcome.job, bfs_job);
      EXPECT_TRUE(outcome.coalesced);
      EXPECT_EQ(outcome.finish_step, bfs_finish);
    }
  }
  // ...the engine really ran it once, with the fan-in recorded on the job's stats...
  EXPECT_EQ(engine.job(bfs_job).stats().coalesced_callers, 4u);
  // ...and the shared readback is the correct converged answer for every caller.
  test_support::ExpectNearValues(engine.FinalValues(bfs_job), ReferenceBfs(g, source),
                                 0.0, "fanin/bfs");
}

TEST(ServiceDriverTest, DisablingCoalescingRunsEveryRequestAlone) {
  const EdgeList edges = GenerateErdosRenyi(150, 1200, 9);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 4);

  std::vector<ServiceRequest> trace;
  for (int i = 0; i < 4; ++i) {
    trace.push_back({0, "bfs", source});
  }

  LtpEngine engine(&pg, test_support::TestEngineOptions());
  ServiceOptions sopts;
  sopts.coalesce = false;
  ServiceDriver driver(&engine, sopts);
  const ServiceReport report = driver.Run(trace);

  EXPECT_EQ(report.coalesced_requests, 0u);
  EXPECT_EQ(report.submitted_jobs, 4u);
  EXPECT_EQ(report.executed_jobs, 4u);
  EXPECT_EQ(report.completed_requests, 4u);
  EXPECT_DOUBLE_EQ(report.dedup_ratio, 0.0);
  // Four distinct jobs, not one shared.
  std::set<JobId> jobs;
  for (const RequestOutcome& outcome : report.outcomes) {
    jobs.insert(outcome.job);
  }
  EXPECT_EQ(jobs.size(), 4u);
}

TEST(ServiceDriverTest, DeadlineShedsOnlyQueuedJobsAndRecordsThem) {
  const EdgeList edges = GenerateErdosRenyi(200, 1600, 11);
  const PartitionedGraph pg = Partition(edges, 5);

  // One slot, three slow jobs at once, a deadline shorter than any execution: the first
  // job runs (deadlines never touch running jobs); the other two expire in the queue.
  std::vector<ServiceRequest> trace;
  trace.push_back({0, "pagerank", 0});
  trace.push_back({0, "wcc", 0});
  trace.push_back({0, "scc", 0});

  EngineOptions options = test_support::TestEngineOptions();
  options.max_jobs = 1;
  LtpEngine engine(&pg, options);
  ServiceOptions sopts;
  sopts.coalesce = false;
  sopts.deadline_steps = 3;
  ServiceDriver driver(&engine, sopts);
  const ServiceReport report = driver.Run(trace);

  EXPECT_EQ(report.completed_requests, 1u);
  EXPECT_EQ(report.shed_requests, 2u);
  EXPECT_EQ(report.shed_jobs, 2u);
  EXPECT_EQ(report.executed_jobs, 1u);
  EXPECT_FALSE(report.outcomes[0].shed);
  EXPECT_TRUE(report.outcomes[1].shed);
  EXPECT_TRUE(report.outcomes[2].shed);
  // Shed jobs are marked on their engine-side stats and did zero work.
  for (size_t i = 1; i < 3; ++i) {
    const JobStats& stats = engine.job(report.outcomes[i].job).stats();
    EXPECT_TRUE(stats.shed);
    EXPECT_EQ(stats.iterations, 0u);
    EXPECT_EQ(stats.compute_units, 0u);
  }
}

TEST(ServiceDriverTest, QueueBoundShedsAtTheDoorWithoutCreatingJobs) {
  const EdgeList edges = GenerateErdosRenyi(200, 1600, 13);
  const PartitionedGraph pg = Partition(edges, 5);

  // Twelve simultaneous distinct arrivals against a queue bound of 3. All twelve land
  // before the first scheduling step, so none has been admitted yet when the bound is
  // checked: exactly 3 enter the queue and the other 9 shed at the door.
  const std::vector<VertexId> sources = PickSourcePool(edges, 12);
  ASSERT_EQ(sources.size(), 12u);
  std::vector<ServiceRequest> trace;
  for (VertexId s : sources) {
    trace.push_back({0, "bfs", s});
  }

  EngineOptions options = test_support::TestEngineOptions();
  options.max_jobs = 1;
  LtpEngine engine(&pg, options);
  ServiceOptions sopts;
  sopts.coalesce = false;
  sopts.queue_bound = 3;
  ServiceDriver driver(&engine, sopts);
  const ServiceReport report = driver.Run(trace);

  EXPECT_EQ(report.submitted_jobs, 3u);
  EXPECT_EQ(report.executed_jobs, 3u);
  EXPECT_EQ(report.completed_requests, 3u);
  EXPECT_EQ(report.shed_requests, 9u);
  EXPECT_EQ(report.shed_jobs, 0u);  // Door sheds never became jobs.
  EXPECT_EQ(engine.num_jobs(), 3u);
  for (size_t i = 3; i < 12; ++i) {
    EXPECT_TRUE(report.outcomes[i].shed) << i;
    EXPECT_EQ(report.outcomes[i].job, kInvalidJob) << i;
  }
  // Coalesce-attaches bypass the bound: a 13th request identical to an in-flight one
  // would still be served — covered by the fan-in test; here every request is distinct.
}

TEST(ServiceDriverTest, PassthroughReplayMatchesDirectEngineExecution) {
  const EdgeList edges = GenerateErdosRenyi(200, 1600, 15);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 5);

  std::vector<ServiceRequest> trace;
  trace.push_back({0, "pagerank", source});
  trace.push_back({4, "sssp", source});
  trace.push_back({9, "bfs", source});

  // Daemon with every service policy off: unbounded queue, no deadlines, no fan-in.
  LtpEngine daemon_engine(&pg, test_support::TestEngineOptions());
  ServiceOptions sopts;
  sopts.queue_bound = 0;
  sopts.deadline_steps = 0;
  sopts.coalesce = false;
  ServiceDriver driver(&daemon_engine, sopts);
  driver.Run(trace);
  const RunReport daemon_report = daemon_engine.Report();

  // The same arrivals driven through the engine directly.
  LtpEngine direct(&pg, test_support::TestEngineOptions());
  for (const ServiceRequest& req : trace) {
    direct.SubmitAt(MakeProgram(req.program, req.source), req.arrival_step);
  }
  direct.RunUntilIdle();
  const RunReport direct_report = direct.Report();

  // The daemon is a pure driver: modeled execution is identical to direct replay.
  ASSERT_EQ(daemon_report.jobs.size(), direct_report.jobs.size());
  for (size_t j = 0; j < direct_report.jobs.size(); ++j) {
    EXPECT_EQ(daemon_report.jobs[j].iterations, direct_report.jobs[j].iterations) << j;
    EXPECT_EQ(daemon_report.jobs[j].compute_units, direct_report.jobs[j].compute_units)
        << j;
    EXPECT_EQ(daemon_report.jobs[j].charge.total_bytes(),
              direct_report.jobs[j].charge.total_bytes())
        << j;
  }
  EXPECT_EQ(daemon_report.cache.touches, direct_report.cache.touches);
  EXPECT_EQ(daemon_report.cache.misses, direct_report.cache.misses);
  EXPECT_EQ(daemon_report.memory.disk_bytes, direct_report.memory.disk_bytes);
}

TEST(ServiceDriverTest, LargeMixedTraceDrainsCompletely) {
  const EdgeList edges = GenerateErdosRenyi(150, 1200, 17);
  const PartitionedGraph pg = Partition(edges, 4);
  TraceGenOptions tgen = SmallTraceOptions(edges);
  tgen.pattern = ArrivalPattern::kDiurnal;
  tgen.num_requests = 300;
  tgen.mean_gap = 2;
  const auto trace = GenerateArrivalTrace(tgen);

  EngineOptions options = test_support::TestEngineOptions();
  options.max_jobs = 8;
  LtpEngine engine(&pg, options);
  ServiceOptions sopts;
  sopts.queue_bound = 32;
  sopts.deadline_steps = 500;
  ServiceDriver driver(&engine, sopts);
  const ServiceReport report = driver.Run(trace);

  // Every request is accounted for exactly once, and the fan-in actually fired on a
  // 4-program x 4-source mix.
  EXPECT_EQ(report.total_requests, 300u);
  EXPECT_EQ(report.completed_requests + report.shed_requests, 300u);
  EXPECT_GT(report.coalesced_requests, 0u);
  EXPECT_GT(report.dedup_ratio, 0.0);
  EXPECT_GT(report.executed_jobs, 0u);
  EXPECT_LE(report.p50_latency_steps, report.p95_latency_steps);
  EXPECT_LE(report.p95_latency_steps, report.p99_latency_steps);
  EXPECT_LE(report.p99_latency_steps, report.max_latency_steps);
  // Completed-request latencies all came from real finish steps.
  for (const RequestOutcome& outcome : report.outcomes) {
    if (!outcome.shed) {
      EXPECT_GE(outcome.finish_step, outcome.arrival_step);
    }
  }
}

}  // namespace
}  // namespace cgraph
