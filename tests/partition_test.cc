// Unit and property tests for vertex-cut partitioning, master/mirror routing, the
// core-subgraph layout, and snapshot rewiring.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "src/graph/generators.h"
#include "src/partition/partitioned_graph.h"

namespace cgraph {
namespace {

PartitionOptions Opts(uint32_t parts, bool core = false) {
  PartitionOptions o;
  o.num_partitions = parts;
  o.core_subgraph = core;
  return o;
}

// Multiset of global edges reconstructed from all partitions' local CSRs.
std::multiset<std::tuple<VertexId, VertexId, float>> GlobalEdges(const PartitionedGraph& pg) {
  std::multiset<std::tuple<VertexId, VertexId, float>> edges;
  for (const auto& part : pg.partitions()) {
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      const auto targets = part.out_neighbors(v);
      const auto weights = part.out_weights(v);
      for (size_t i = 0; i < targets.size(); ++i) {
        edges.insert({part.vertex(v).global_id, part.vertex(targets[i]).global_id, weights[i]});
      }
    }
  }
  return edges;
}

TEST(PartitionTest, EdgesPreservedExactly) {
  const EdgeList list = GenerateErdosRenyi(200, 1500, 17);
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(7));
  EXPECT_EQ(pg.num_edges(), list.num_edges());
  std::multiset<std::tuple<VertexId, VertexId, float>> expected;
  for (const Edge& e : list.edges()) {
    expected.insert({e.src, e.dst, e.weight});
  }
  EXPECT_EQ(GlobalEdges(pg), expected);
}

TEST(PartitionTest, EdgeCountsBalancedWithinOne) {
  const EdgeList list = GenerateErdosRenyi(300, 4000, 5);
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(8));
  const uint64_t lo = list.num_edges() / 8;
  for (const auto& part : pg.partitions()) {
    EXPECT_GE(part.num_local_edges(), lo);
    EXPECT_LE(part.num_local_edges(), lo + 1);
  }
}

TEST(PartitionTest, EveryVertexHasExactlyOneMaster) {
  const EdgeList list = GenerateErdosRenyi(150, 900, 3);
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(6));
  std::vector<uint32_t> master_count(list.num_vertices(), 0);
  for (const auto& part : pg.partitions()) {
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      if (part.vertex(v).is_master) {
        ++master_count[part.vertex(v).global_id];
      }
    }
  }
  for (VertexId v = 0; v < list.num_vertices(); ++v) {
    EXPECT_EQ(master_count[v], 1u) << "vertex " << v;
    const ReplicaRef master = pg.master_of(v);
    EXPECT_NE(master.partition, kInvalidPartition);
    EXPECT_EQ(pg.partition(master.partition).vertex(master.local).global_id, v);
  }
}

TEST(PartitionTest, MirrorRoutingIsConsistent) {
  const EdgeList list = GenerateErdosRenyi(120, 1200, 23);
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(5));
  // Every non-master replica must point at the true master; every master's mirror list
  // must contain exactly its replicas.
  std::map<VertexId, std::set<std::pair<PartitionId, LocalVertexId>>> mirrors;
  for (const auto& part : pg.partitions()) {
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      const LocalVertexInfo& info = part.vertex(v);
      const ReplicaRef master = pg.master_of(info.global_id);
      EXPECT_EQ(info.master_partition, master.partition);
      EXPECT_EQ(info.master_local, master.local);
      if (!info.is_master) {
        mirrors[info.global_id].insert({part.id(), v});
      }
    }
  }
  for (const auto& part : pg.partitions()) {
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      const LocalVertexInfo& info = part.vertex(v);
      if (!info.is_master) {
        continue;
      }
      std::set<std::pair<PartitionId, LocalVertexId>> listed;
      for (const ReplicaRef& ref : part.mirrors_of(v)) {
        listed.insert({ref.partition, ref.local});
      }
      EXPECT_EQ(listed, mirrors[info.global_id]) << "vertex " << info.global_id;
    }
  }
}

TEST(PartitionTest, GlobalDegreesRecordedOnEveryReplica) {
  const EdgeList list = GenerateErdosRenyi(80, 600, 29);
  std::vector<uint32_t> out_degree(list.num_vertices(), 0);
  for (const Edge& e : list.edges()) {
    ++out_degree[e.src];
  }
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(4));
  for (const auto& part : pg.partitions()) {
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      EXPECT_EQ(part.vertex(v).global_out_degree, out_degree[part.vertex(v).global_id]);
    }
  }
}

TEST(PartitionTest, IsolatedVerticesGetMasters) {
  EdgeList list;
  list.Add(0, 1);
  list.set_num_vertices(10);  // Vertices 2..9 are isolated.
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(3));
  for (VertexId v = 0; v < 10; ++v) {
    const ReplicaRef master = pg.master_of(v);
    ASSERT_NE(master.partition, kInvalidPartition) << "vertex " << v;
    EXPECT_TRUE(pg.partition(master.partition).vertex(master.local).is_master);
  }
}

TEST(PartitionTest, EmptyGraph) {
  EdgeList list;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(4));
  EXPECT_EQ(pg.num_partitions(), 1u);
  EXPECT_EQ(pg.num_edges(), 0u);
}

TEST(PartitionTest, MorePartitionsThanEdgesClamps) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(1, 2);
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(64));
  EXPECT_EQ(pg.num_partitions(), 2u);
}

TEST(PartitionTest, CoreSubgraphGroupsHubEdges) {
  // Star: hub 0 with bidirectional spokes — only vertex 0 is core, so no core-core edges;
  // add a second hub to create core edges.
  EdgeList list = GenerateStar(100);
  list.Add(0, 99);  // 99 already has degree 2; keep graph mostly star.
  // Create a heavy 2-clique between two hubs: many parallel-ish edges via neighbors.
  PartitionOptions options = Opts(4, /*core=*/true);
  options.core_degree_multiplier = 4.0;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, options);
  // The partitioning must still preserve edges and masters.
  EXPECT_EQ(pg.num_edges(), list.num_edges());
}

TEST(PartitionTest, CoreSubgraphPutsCoreEdgesFirst) {
  // Two hubs connected to each other and to many leaves: the hub-hub edges are the core
  // subgraph and must land in the leading partition(s).
  EdgeList list;
  const VertexId kLeaves = 60;
  for (VertexId i = 2; i < 2 + kLeaves; ++i) {
    list.Add(0, i);
    list.Add(i, 1);
  }
  list.Add(0, 1);
  list.Add(1, 0);
  PartitionOptions options = Opts(4, /*core=*/true);
  options.core_degree_multiplier = 3.0;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, options);
  // Hub-hub edges (0->1, 1->0) must be in partition 0 and it must be flagged core.
  const auto& p0 = pg.partition(0);
  EXPECT_TRUE(p0.is_core());
  bool found01 = false;
  bool found10 = false;
  for (LocalVertexId v = 0; v < p0.num_local_vertices(); ++v) {
    for (LocalVertexId t : p0.out_neighbors(v)) {
      const VertexId s = p0.vertex(v).global_id;
      const VertexId d = p0.vertex(t).global_id;
      found01 |= (s == 0 && d == 1);
      found10 |= (s == 1 && d == 0);
    }
  }
  EXPECT_TRUE(found01);
  EXPECT_TRUE(found10);
  // Later partitions hold only leaf edges.
  EXPECT_FALSE(pg.partition(pg.num_partitions() - 1).is_core());
}

TEST(PartitionTest, ReplicationFactorAtLeastOne) {
  const EdgeList list = GenerateErdosRenyi(100, 2000, 31);
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(8));
  EXPECT_GE(pg.replication_factor(), 1.0);
  EXPECT_GT(pg.total_structure_bytes(), 0u);
}

TEST(PartitionTest, SinglePartitionHasNoMirrors) {
  const EdgeList list = GenerateErdosRenyi(64, 500, 37);
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(1));
  EXPECT_DOUBLE_EQ(pg.replication_factor(), 1.0);
  for (LocalVertexId v = 0; v < pg.partition(0).num_local_vertices(); ++v) {
    EXPECT_TRUE(pg.partition(0).vertex(v).is_master);
  }
}

TEST(PartitionTest, RewireClonePreservesLayout) {
  const EdgeList list = GenerateErdosRenyi(100, 800, 41);
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(4));
  const GraphPartition& original = pg.partition(1);
  const GraphPartition clone = original.RewireClone(50, 99);
  EXPECT_EQ(clone.num_local_vertices(), original.num_local_vertices());
  EXPECT_EQ(clone.num_local_edges(), original.num_local_edges());
  EXPECT_EQ(clone.structure_bytes(), original.structure_bytes());
  for (LocalVertexId v = 0; v < clone.num_local_vertices(); ++v) {
    EXPECT_EQ(clone.vertex(v).global_id, original.vertex(v).global_id);
    EXPECT_EQ(clone.vertex(v).is_master, original.vertex(v).is_master);
  }
  // In-CSR must stay consistent with out-CSR: total edges match per direction.
  uint64_t in_edges = 0;
  for (LocalVertexId v = 0; v < clone.num_local_vertices(); ++v) {
    in_edges += clone.in_neighbors(v).size();
  }
  EXPECT_EQ(in_edges, clone.num_local_edges());
}

TEST(PartitionTest, RewireCloneChangesSomething) {
  const EdgeList list = GenerateErdosRenyi(100, 800, 43);
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, Opts(2));
  const GraphPartition& original = pg.partition(0);
  const GraphPartition clone = original.RewireClone(100, 7);
  bool changed = false;
  for (LocalVertexId v = 0; v < clone.num_local_vertices() && !changed; ++v) {
    const auto a = original.out_neighbors(v);
    const auto b = clone.out_neighbors(v);
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) {
        changed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(changed);
}

TEST(PartitionTest, SuitablePartitionCountFormula) {
  // 1 MiB cache, 10% reserve, state ratio 0.5 per structure byte with 4 jobs: the
  // structure share per partition is capped near (1MiB - reserve) / (1 + 0.5*4).
  const uint64_t cache = 1ull << 20;
  const uint64_t reserve = cache / 10;
  const uint32_t count =
      SuitablePartitionCount(/*structure_bytes=*/8ull << 20, cache, 4, 0.5, reserve);
  const double pg_bytes = static_cast<double>(cache - reserve) / (1.0 + 0.5 * 4);
  EXPECT_EQ(count, static_cast<uint32_t>(std::ceil((8ull << 20) / pg_bytes)));
  EXPECT_GE(SuitablePartitionCount(0, cache, 4, 0.5, reserve), 1u);
}

// Property sweep: partition invariants hold across graph shapes and partition counts.
class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, bool>> {};

TEST_P(PartitionPropertyTest, InvariantsHold) {
  const auto [scale, parts, core] = GetParam();
  RmatOptions rmat;
  rmat.scale = scale;
  rmat.edge_factor = 8;
  rmat.seed = scale * 31 + parts;
  const EdgeList list = GenerateRmat(rmat);
  PartitionOptions options = Opts(parts, core);
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(list, options);

  // Edge preservation.
  EXPECT_EQ(pg.num_edges(), list.num_edges());
  uint64_t edge_total = 0;
  for (const auto& part : pg.partitions()) {
    edge_total += part.num_local_edges();
  }
  EXPECT_EQ(edge_total, list.num_edges());

  // Balance within one edge.
  const uint64_t lo = list.num_edges() / pg.num_partitions();
  for (const auto& part : pg.partitions()) {
    EXPECT_GE(part.num_local_edges(), lo);
    EXPECT_LE(part.num_local_edges(), lo + 1);
  }

  // Master uniqueness.
  std::vector<uint32_t> masters(list.num_vertices(), 0);
  for (const auto& part : pg.partitions()) {
    for (LocalVertexId v = 0; v < part.num_local_vertices(); ++v) {
      if (part.vertex(v).is_master) {
        ++masters[part.vertex(v).global_id];
      }
    }
  }
  for (VertexId v = 0; v < list.num_vertices(); ++v) {
    EXPECT_EQ(masters[v], 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionPropertyTest,
    ::testing::Combine(::testing::Values(8u, 10u), ::testing::Values(1u, 3u, 8u, 16u),
                       ::testing::Bool()));

}  // namespace
}  // namespace cgraph
