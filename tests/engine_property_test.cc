// Property suite: algorithm results must be invariant to every execution-configuration
// knob — partition count, worker count, partition layout, edge assignment, eviction
// policy, scheduler toggles. Only the *costs* may change, never the answers.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "src/algorithms/factory.h"
#include "src/algorithms/reference.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/partition/partitioned_graph.h"
#include "tests/testing/graph_fixtures.h"

namespace cgraph {
namespace {

const EdgeList& TestEdges() {
  static const EdgeList edges = test_support::FixedRmat(9, 7, 1234);
  return edges;
}

// (num_partitions, num_workers, core_subgraph)
using Config = std::tuple<uint32_t, uint32_t, bool>;

class ConfigInvarianceTest : public ::testing::TestWithParam<Config> {};

TEST_P(ConfigInvarianceTest, TraversalResultsExact) {
  const auto [partitions, workers, core] = GetParam();
  const EdgeList& edges = TestEdges();
  const Graph g = Graph::FromEdges(edges);
  const VertexId source = PickSourceVertex(edges);

  PartitionOptions popts;
  popts.num_partitions = partitions;
  popts.core_subgraph = core;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);

  EngineOptions options;
  options.num_workers = workers;
  LtpEngine engine(&pg, options);
  const JobId sssp = engine.AddJob(MakeProgram("sssp", source));
  const JobId wcc = engine.AddJob(MakeProgram("wcc", source));
  engine.Run();

  const auto sssp_expected = ReferenceSssp(g, source);
  const auto sssp_actual = engine.FinalValues(sssp);
  for (size_t v = 0; v < sssp_expected.size(); ++v) {
    if (std::isinf(sssp_expected[v])) {
      EXPECT_TRUE(std::isinf(sssp_actual[v])) << v;
    } else {
      EXPECT_DOUBLE_EQ(sssp_actual[v], sssp_expected[v]) << v;
    }
  }
  EXPECT_EQ(engine.FinalValues(wcc), ReferenceWcc(g));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigInvarianceTest,
    ::testing::Combine(::testing::Values(1u, 2u, 5u, 16u), ::testing::Values(1u, 3u, 8u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<Config>& param_info) {
      // Built via append: the const char* + std::string&& operator chain trips a GCC 12
      // -Werror=restrict false positive at -O3.
      std::string name = "p";
      name += std::to_string(std::get<0>(param_info.param));
      name += "_w";
      name += std::to_string(std::get<1>(param_info.param));
      name += std::get<2>(param_info.param) ? "_core" : "_flat";
      return name;
    });

TEST(PolicyInvarianceTest, EvictionPolicyDoesNotChangeResults) {
  const EdgeList& edges = TestEdges();
  const Graph g = Graph::FromEdges(edges);
  PartitionOptions popts;
  popts.num_partitions = 8;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  for (const auto policy : {EvictionPolicy::kLru, EvictionPolicy::kFrequencyAware}) {
    EngineOptions options;
    options.num_workers = 4;
    options.hierarchy.eviction_policy = policy;
    options.hierarchy.cache_capacity_bytes = 32ull << 10;
    options.hierarchy.cache_segment_bytes = 4ull << 10;
    LtpEngine engine(&pg, options);
    const JobId id = engine.AddJob(MakeProgram("wcc", 0));
    engine.Run();
    EXPECT_EQ(engine.FinalValues(id), ReferenceWcc(g));
  }
}

TEST(PolicyInvarianceTest, EdgeAssignmentDoesNotChangeResults) {
  const EdgeList& edges = TestEdges();
  const Graph g = Graph::FromEdges(edges);
  const VertexId source = PickSourceVertex(edges);
  for (const auto assignment :
       {EdgeAssignment::kChunkedEvenEdges, EdgeAssignment::kHashBySource}) {
    PartitionOptions popts;
    popts.num_partitions = 8;
    popts.assignment = assignment;
    popts.core_subgraph = assignment == EdgeAssignment::kChunkedEvenEdges;
    const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
    EngineOptions options;
    options.num_workers = 4;
    LtpEngine engine(&pg, options);
    const JobId id = engine.AddJob(MakeProgram("bfs", source));
    engine.Run();
    const auto expected = ReferenceBfs(g, source);
    const auto actual = engine.FinalValues(id);
    for (size_t v = 0; v < expected.size(); ++v) {
      if (std::isinf(expected[v])) {
        EXPECT_TRUE(std::isinf(actual[v])) << v;
      } else {
        EXPECT_DOUBLE_EQ(actual[v], expected[v]) << v;
      }
    }
  }
}

TEST(PolicyInvarianceTest, CacheCapacityDoesNotChangeResults) {
  const EdgeList& edges = TestEdges();
  const Graph g = Graph::FromEdges(edges);
  PartitionOptions popts;
  popts.num_partitions = 6;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  for (const uint64_t cache_kib : {4ull, 64ull, 4096ull}) {
    EngineOptions options;
    options.num_workers = 2;
    options.hierarchy.cache_capacity_bytes = cache_kib << 10;
    options.hierarchy.cache_segment_bytes = 2ull << 10;
    LtpEngine engine(&pg, options);
    const JobId id = engine.AddJob(MakeProgram("wcc", 0));
    engine.Run();
    EXPECT_EQ(engine.FinalValues(id), ReferenceWcc(g)) << cache_kib;
  }
}

TEST(PolicyInvarianceTest, SchedulerTogglesDoNotChangeResults) {
  const EdgeList& edges = TestEdges();
  const Graph g = Graph::FromEdges(edges);
  PartitionOptions popts;
  popts.num_partitions = 10;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  for (const bool scheduler : {false, true}) {
    for (const double theta : {0.0, 1.0}) {
      EngineOptions options;
      options.num_workers = 4;
      options.use_scheduler = scheduler;
      options.theta_scale = theta;
      LtpEngine engine(&pg, options);
      const JobId id = engine.AddJob(MakeProgram("wcc", 0));
      engine.Run();
      EXPECT_EQ(engine.FinalValues(id), ReferenceWcc(g));
    }
  }
}

}  // namespace
}  // namespace cgraph
