#ifndef TOTALLY_WRONG_H_
#define TOTALLY_WRONG_H_

inline int One() { return 1; }

#endif  // TOTALLY_WRONG_H_
