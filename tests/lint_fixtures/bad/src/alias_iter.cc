#include <unordered_map>

using Index = std::unordered_map<int, int>;
Index index_;

int SumAlias() {
  int sum = 0;
  for (const auto& kv : index_) {
    sum += kv.second;
  }
  return sum;
}
