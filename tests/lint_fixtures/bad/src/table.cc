#include "src/table.h"

#include <unordered_set>

std::unordered_set<int> local_keys;

int Sum(const Table& t) {
  int sum = 0;
  for (const auto& kv : t.entries_) {
    sum += kv.second;
  }
  for (int k : local_keys) {
    sum += k;
  }
  return sum;
}
