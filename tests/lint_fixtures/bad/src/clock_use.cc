#include <chrono>
#include <ctime>

double WallNow() {
  auto tp = std::chrono::system_clock::now();
  (void)tp;
  return static_cast<double>(time(nullptr));
}
