#include "src/core/trigger_stage.h"

void Run(const Job& job) {
  CGRAPH_CHECK(job.ok());
  CGRAPH_CHECK(pool != nullptr);
}
