#ifndef SRC_MISSING_DEFINE_H_

inline int Two() { return 2; }

#endif
