#include <cstdlib>
#include <random>

int Roll() {
  std::mt19937 gen(7);
  (void)gen;
  return rand();
}
