#include <thread>

void Spawn() {
  std::thread worker([] {});
  worker.join();
}
