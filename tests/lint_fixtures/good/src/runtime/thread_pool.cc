#include <thread>

// The one sanctioned home for raw threads: naked-thread exempts this path.
void SpawnWorkers() {
  std::thread worker([] {});
  worker.join();
}
