#include "src/core/trigger_stage.h"

void Wire(void* pool) {
  // Allowlisted programmer-error invariant — constructor wiring, not data.
  CGRAPH_CHECK(pool != nullptr);
}
