#include "src/table_good.h"

#include <vector>

// A comment naming system_clock, rand(), std::thread, or mt19937 must never trip
// the linter: rules run on stripped text.
static const char* kMessage = "rand() and steady_clock in a string literal are fine";

int Sum(const std::vector<int>& v, const Table& t) {
  int sum = 0;
  for (int x : v) {
    sum += x;
  }
  // Keyed lookups into unordered containers are fine; only iteration is banned.
  auto it = t.entries_.find(0);
  if (it != t.entries_.end()) {
    sum += it->second;
  }
  (void)kMessage;
  return sum;
}

uint64_t StepLatency(uint64_t finish_step, uint64_t submit_time) {
  // Identifiers *containing* banned names (submit_time, clock_skew_steps) are fine:
  // matching is whole-identifier.
  uint64_t clock_skew_steps = 0;
  return finish_step - submit_time + clock_skew_steps;
}
