#ifndef SRC_COMMON_PRNG_H_
#define SRC_COMMON_PRNG_H_

// The sanctioned randomness module: engine tokens in *this* path are exempt from
// determinism-rand (the rule exists to funnel all randomness through here).
using mt19937 = unsigned;

inline unsigned SplitMixLike(unsigned s) { return s * 2654435769u; }

#endif  // SRC_COMMON_PRNG_H_
