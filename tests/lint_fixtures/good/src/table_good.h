#ifndef SRC_TABLE_GOOD_H_
#define SRC_TABLE_GOOD_H_

#include <unordered_map>

struct Table {
  std::unordered_map<int, int> entries_;
};

#endif  // SRC_TABLE_GOOD_H_
