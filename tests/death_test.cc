// Death tests: programmer errors must fail fast with a diagnostic, not corrupt state.

#include <gtest/gtest.h>

#include <memory>

#include "src/algorithms/wcc.h"
#include "src/common/check.h"
#include "src/common/status.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/partition/partitioned_graph.h"

namespace cgraph {
namespace {

TEST(CheckDeathTest, CheckAbortsWithExpression) {
  EXPECT_DEATH(CGRAPH_CHECK(1 == 2), "CHECK failed");
}

TEST(CheckDeathTest, ComparisonMacros) {
  EXPECT_DEATH(CGRAPH_CHECK_EQ(1, 2), "CHECK failed");
  EXPECT_DEATH(CGRAPH_CHECK_LT(3, 2), "CHECK failed");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_DEATH((void)result.value(), "CHECK failed");
}

TEST(EngineDeathTest, AddJobAfterRunAborts) {
  const EdgeList edges = GenerateRing(8);
  PartitionOptions popts;
  popts.num_partitions = 2;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  EngineOptions options;
  options.num_workers = 1;
  LtpEngine engine(&pg, options);
  engine.AddJob(std::make_unique<WccProgram>());
  engine.Run();
  EXPECT_DEATH(engine.AddJob(std::make_unique<WccProgram>()), "CHECK failed");
}

TEST(EngineDeathTest, SecondRunAborts) {
  const EdgeList edges = GenerateRing(8);
  PartitionOptions popts;
  popts.num_partitions = 2;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  EngineOptions options;
  options.num_workers = 1;
  LtpEngine engine(&pg, options);
  engine.AddJob(std::make_unique<WccProgram>());
  engine.Run();
  EXPECT_DEATH(engine.Run(), "CHECK failed");
}

TEST(EngineDeathTest, TooManyJobsAborts) {
  const EdgeList edges = GenerateRing(8);
  PartitionOptions popts;
  popts.num_partitions = 2;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  EngineOptions options;
  options.num_workers = 1;
  options.max_jobs = 1;
  LtpEngine engine(&pg, options);
  engine.AddJob(std::make_unique<WccProgram>());
  EXPECT_DEATH(engine.AddJob(std::make_unique<WccProgram>()), "CHECK failed");
}

}  // namespace
}  // namespace cgraph
