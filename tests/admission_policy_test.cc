// Job-level admission policies (two-level scheduling): FIFO/overlap pick semantics,
// aging-bounded starvation-freedom, degenerate-case equivalence with FIFO, and
// determinism of overlap admission across runs and worker counts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/algorithms/bfs.h"
#include "src/algorithms/factory.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/wcc.h"
#include "src/core/admission_policy.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/metrics/csv_writer.h"
#include "src/partition/partitioned_graph.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

using Candidate = AdmissionPolicy::Candidate;

// --- Policy unit tests (synthetic global table) --------------------------------------

// A table with `registered` partitions occupied by one running job.
GlobalTable TableWithRegistered(uint32_t num_partitions,
                                const std::vector<PartitionId>& registered) {
  GlobalTable table(num_partitions, /*max_jobs=*/4);
  for (PartitionId p : registered) {
    table.Register(p, /*j=*/0);
  }
  return table;
}

TEST(AdmissionPolicyTest, FifoAlwaysPicksTheFront) {
  const GlobalTable table = TableWithRegistered(4, {0, 1});
  FifoAdmission fifo;
  const std::vector<uint32_t> a = {0, 0, 5, 5};  // Would lose on overlap...
  const std::vector<uint32_t> b = {7, 7, 0, 0};  // ...to this one.
  const std::vector<Candidate> due = {{0, 0, &a, {}}, {1, 0, &b, {}}};
  const auto pick = fifo.Pick(due, table, /*step=*/100, {});
  EXPECT_EQ(pick.index, 0u);
  EXPECT_EQ(pick.overlap, 0.0);
}

TEST(AdmissionPolicyTest, OverlapScoreIsSharedFractionOfFootprint) {
  const GlobalTable table = TableWithRegistered(4, {0, 1});
  const std::vector<uint32_t> full = {3, 9, 2, 1};     // Needs all 4, 2 registered.
  const std::vector<uint32_t> local = {0, 8, 0, 0};    // Needs only a registered one.
  const std::vector<uint32_t> disjoint = {0, 0, 0, 6}; // Needs only an idle one.
  const std::vector<uint32_t> empty = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(OverlapAdmission::OverlapScore(full, table), 0.5);
  EXPECT_DOUBLE_EQ(OverlapAdmission::OverlapScore(local, table), 1.0);
  EXPECT_DOUBLE_EQ(OverlapAdmission::OverlapScore(disjoint, table), 0.0);
  EXPECT_DOUBLE_EQ(OverlapAdmission::OverlapScore(empty, table), 0.0);
}

TEST(AdmissionPolicyTest, OverlapPrefersTheSharedFootprint) {
  const GlobalTable table = TableWithRegistered(4, {0, 1});
  OverlapAdmission overlap(/*aging=*/1.0 / 256.0);
  const std::vector<uint32_t> disjoint = {0, 0, 4, 4};
  const std::vector<uint32_t> shared = {4, 4, 0, 0};
  // The FIFO-older candidate needs idle partitions; the younger one rides the running set.
  const std::vector<Candidate> due = {{0, 10, &disjoint, {}}, {1, 12, &shared, {}}};
  const auto pick = overlap.Pick(due, table, /*step=*/12, {});
  EXPECT_EQ(pick.index, 1u);
  EXPECT_DOUBLE_EQ(pick.overlap, 1.0);
}

TEST(AdmissionPolicyTest, OverlapTiesBreakTowardFifoOrder) {
  const GlobalTable table = TableWithRegistered(4, {0});
  OverlapAdmission overlap(/*aging=*/1.0 / 256.0);
  const std::vector<uint32_t> fp = {1, 0, 0, 0};
  // Identical footprints and arrival steps: the earliest submission must win.
  const std::vector<Candidate> due = {{3, 5, &fp, {}}, {4, 5, &fp, {}}, {5, 5, &fp, {}}};
  EXPECT_EQ(overlap.Pick(due, table, /*step=*/9, {}).index, 0u);
}

TEST(AdmissionPolicyTest, AgingOvertakesBoundedOverlapAdvantage) {
  const GlobalTable table = TableWithRegistered(4, {0, 1});
  const double aging = 1.0 / 256.0;
  OverlapAdmission overlap(aging);
  const std::vector<uint32_t> never_overlaps = {0, 0, 0, 9};
  const std::vector<uint32_t> always_overlaps = {9, 0, 0, 0};
  // A fresh full-overlap candidate outranks the zero-overlap oldie only while the age
  // gap is under 1/aging steps; from 256 waited steps on, the oldie must win (ties
  // break toward it as the FIFO-older candidate).
  for (const uint64_t waited : {0ull, 100ull, 255ull}) {
    const std::vector<Candidate> due = {{0, 0, &never_overlaps, {}}, {1, waited, &always_overlaps, {}}};
    EXPECT_EQ(overlap.Pick(due, table, waited, {}).index, 1u) << waited;
  }
  for (const uint64_t waited : {256ull, 300ull, 100000ull}) {
    const std::vector<Candidate> due = {{0, 0, &never_overlaps, {}}, {1, waited, &always_overlaps, {}}};
    EXPECT_EQ(overlap.Pick(due, table, waited, {}).index, 0u) << waited;
  }
}

TEST(AdmissionPolicyTest, HostileArrivalStreamCannotStarveADueJob) {
  const GlobalTable table = TableWithRegistered(8, {0, 1, 2, 3});
  const double aging = 1.0 / 64.0;
  OverlapAdmission overlap(aging);
  const std::vector<uint32_t> victim_fp = {0, 0, 0, 0, 1, 1, 1, 1};  // Overlap 0 forever.
  const std::vector<uint32_t> hostile_fp = {1, 1, 1, 1, 0, 0, 0, 0}; // Overlap 1 forever.
  // Every round a slot frees, a brand-new full-overlap job is already waiting. The
  // victim must still be admitted within 1/aging steps of becoming due.
  uint64_t step = 0;
  bool victim_admitted = false;
  for (; step < 200; ++step) {
    const std::vector<Candidate> due = {{0, 0, &victim_fp, {}}, {1 + static_cast<JobId>(step), step, &hostile_fp, {}}};
    if (overlap.Pick(due, table, step, {}).index == 0) {
      victim_admitted = true;
      break;
    }
  }
  EXPECT_TRUE(victim_admitted);
  EXPECT_LE(step, static_cast<uint64_t>(1.0 / aging) + 1);
}

TEST(AdmissionPolicyTest, ParseAndNameRoundTrip) {
  AdmissionPolicyKind kind = AdmissionPolicyKind::kOverlap;
  EXPECT_TRUE(ParseAdmissionPolicyName("fifo", &kind));
  EXPECT_EQ(kind, AdmissionPolicyKind::kFifo);
  EXPECT_EQ(AdmissionPolicyKindName(kind), "fifo");
  EXPECT_TRUE(ParseAdmissionPolicyName("overlap", &kind));
  EXPECT_EQ(kind, AdmissionPolicyKind::kOverlap);
  EXPECT_EQ(AdmissionPolicyKindName(kind), "overlap");
  EXPECT_TRUE(ParseAdmissionPolicyName("predict", &kind));
  EXPECT_EQ(kind, AdmissionPolicyKind::kPredict);
  EXPECT_EQ(AdmissionPolicyKindName(kind), "predict");
  EXPECT_FALSE(ParseAdmissionPolicyName("sjf", &kind));
  EXPECT_FALSE(ParseAdmissionPolicyName("", &kind));
}

// --- Predict policy unit tests (synthetic history + runners) -------------------------

TEST(AdmissionPolicyTest, PredictFallsBackToOverlapWithoutHistory) {
  const GlobalTable table = TableWithRegistered(4, {0, 1});
  FootprintHistory empty(/*num_partitions=*/4, /*buckets=*/4, /*decay=*/0.5);
  OverlapAdmission overlap(/*aging=*/1.0 / 256.0);
  PredictAdmission predict(/*aging=*/1.0 / 256.0, &empty);
  const std::vector<uint32_t> disjoint = {0, 0, 4, 4};
  const std::vector<uint32_t> shared = {4, 4, 0, 0};
  const std::vector<Candidate> due = {{0, 10, &disjoint, "a"}, {1, 12, &shared, "b"}};
  // No program type has completed history: every candidate falls back to the
  // initial-footprint score, so predict reproduces overlap decision-for-decision.
  const auto expected = overlap.Pick(due, table, /*step=*/12, {});
  const auto pick = predict.Pick(due, table, /*step=*/12, {});
  EXPECT_EQ(pick.index, expected.index);
  EXPECT_DOUBLE_EQ(pick.overlap, expected.overlap);
  EXPECT_FALSE(pick.predicted);
}

TEST(AdmissionPolicyTest, PredictPrefersForecastLifetimeOverInitialFootprint) {
  // The running job lives on partitions {2, 3} — registered in the table and active in
  // its current iteration.
  const GlobalTable table = TableWithRegistered(4, {2, 3});
  const std::vector<uint32_t> runner_active = {0, 0, 5, 5};
  const std::vector<PredictedRunner> running = {{"runner", 0, &runner_active}};

  // A completed "trav" job started on partition 0 but spent its life on {2, 3}: the
  // initial footprint is a stale signal, the learned lifetime occupancy is not.
  FootprintHistory history(/*num_partitions=*/4, /*buckets=*/4, /*decay=*/0.5);
  history.RecordCompletion("trav", {{0}, {2}, {3}, {2, 3}}, /*iterations=*/4);

  const std::vector<uint32_t> plain_fp = {0, 1, 0, 0};  // Initially on idle partition 1.
  const std::vector<uint32_t> trav_fp = {1, 0, 0, 0};   // Initially on idle partition 0.
  const std::vector<Candidate> due = {{0, 5, &plain_fp, "plain"}, {1, 5, &trav_fp, "trav"}};

  // Both initial footprints miss the running set, so overlap scores 0 each and FIFO
  // order keeps the front.
  OverlapAdmission overlap(/*aging=*/1.0 / 256.0);
  EXPECT_EQ(overlap.Pick(due, table, /*step=*/5, running).index, 0u);

  // Predict sees trav's lifetime occupancy: 4 of its 5 partition-iterations land on the
  // runner's {2, 3}, so the forecast overlap is 0.8 and trav overtakes.
  PredictAdmission predict(/*aging=*/1.0 / 256.0, &history);
  const auto pick = predict.Pick(due, table, /*step=*/5, running);
  EXPECT_EQ(pick.index, 1u);
  EXPECT_TRUE(pick.predicted);
  EXPECT_DOUBLE_EQ(pick.overlap, 0.8);
}

TEST(AdmissionPolicyTest, AgingOvertakesBoundedPredictionAdvantage) {
  const GlobalTable table = TableWithRegistered(4, {0});
  const std::vector<uint32_t> runner_active = {7, 0, 0, 0};
  const std::vector<PredictedRunner> running = {{"runner", 0, &runner_active}};

  FootprintHistory history(/*num_partitions=*/4, /*buckets=*/4, /*decay=*/0.5);
  history.RecordCompletion("cold", {{3}, {3}, {3}, {3}}, /*iterations=*/4);  // Forecast 0.
  history.RecordCompletion("hot", {{0}, {0}, {0}, {0}}, /*iterations=*/4);   // Forecast 1.

  const double aging = 1.0 / 256.0;
  PredictAdmission predict(aging, &history);
  const std::vector<uint32_t> cold_fp = {0, 0, 0, 9};
  const std::vector<uint32_t> hot_fp = {9, 0, 0, 0};
  // Same boundary as the overlap policy: prediction scores are bounded by 1, so a fresh
  // full-forecast candidate outranks the zero-forecast oldie only while the age gap is
  // under 1/aging steps; from 256 waited steps on, the oldie wins (FIFO tie-break).
  for (const uint64_t waited : {0ull, 100ull, 255ull}) {
    const std::vector<Candidate> due = {{0, 0, &cold_fp, "cold"},
                                        {1, waited, &hot_fp, "hot"}};
    const auto pick = predict.Pick(due, table, waited, running);
    EXPECT_EQ(pick.index, 1u) << waited;
    EXPECT_TRUE(pick.predicted);
  }
  for (const uint64_t waited : {256ull, 300ull, 100000ull}) {
    const std::vector<Candidate> due = {{0, 0, &cold_fp, "cold"},
                                        {1, waited, &hot_fp, "hot"}};
    EXPECT_EQ(predict.Pick(due, table, waited, running).index, 0u) << waited;
  }
}

// --- Engine-level tests --------------------------------------------------------------

PartitionedGraph Partition(const EdgeList& edges, uint32_t parts) {
  PartitionOptions options;
  options.num_partitions = parts;
  options.core_subgraph = true;
  return PartitionedGraphBuilder::Build(edges, options);
}

// Report CSV with the legitimately varying columns normalized: wall clock zeroed and the
// worker count pinned (modeled-time columns divide by it), so reports from engines run
// at different worker counts are comparable on the modeled schedule alone.
std::string NormalizedCsv(const LtpEngine& engine) {
  RunReport report = engine.Report();
  for (JobStats& job : report.jobs) {
    job.wall_seconds = 0.0;
  }
  report.wall_seconds = 0.0;
  report.workers = 1;
  return RunReportToCsv(report, CostModel{});
}

TEST(AdmissionPolicyEngineTest, DegenerateSingleJobMatchesFifoByteForByte) {
  const EdgeList edges = GenerateErdosRenyi(250, 2000, 31);
  const PartitionedGraph pg = Partition(edges, 6);

  // One job, never queued: overlap admission has a single zero-overlap candidate, so the
  // whole schedule — and hence the report CSV — must match FIFO exactly.
  auto run = [&pg](AdmissionPolicyKind kind) {
    EngineOptions options = test_support::TestEngineOptions();
    options.admission_policy = kind;
    LtpEngine engine(&pg, options);
    engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
    engine.RunUntilIdle();
    EXPECT_EQ(engine.job(0).stats().wait_steps, 0u);
    EXPECT_EQ(engine.job(0).stats().admit_overlap, 0.0);
    return NormalizedCsv(engine);
  };
  EXPECT_EQ(run(AdmissionPolicyKind::kFifo), run(AdmissionPolicyKind::kOverlap));
}

TEST(AdmissionPolicyEngineTest, UncontendedSubmissionsMatchFifoByteForByte) {
  const EdgeList edges = GenerateErdosRenyi(250, 2000, 37);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 6);

  // Every submission finds a free slot (jobs <= max_jobs), so each admission decision
  // sees exactly one candidate and overlap cannot reorder anything.
  auto run = [&](AdmissionPolicyKind kind) {
    EngineOptions options = test_support::TestEngineOptions();
    options.admission_policy = kind;
    LtpEngine engine(&pg, options);
    engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
    engine.Submit(std::make_unique<SsspProgram>(source));
    engine.Submit(std::make_unique<WccProgram>());
    engine.SubmitAt(std::make_unique<BfsProgram>(source), /*arrival_step=*/7);
    engine.RunUntilIdle();
    return NormalizedCsv(engine);
  };
  EXPECT_EQ(run(AdmissionPolicyKind::kFifo), run(AdmissionPolicyKind::kOverlap));
}

TEST(AdmissionPolicyEngineTest, QueuedOverlapAdmissionRecordsStats) {
  const EdgeList edges = GenerateErdosRenyi(300, 2400, 41);
  const PartitionedGraph pg = Partition(edges, 6);

  EngineOptions options = test_support::TestEngineOptions();
  options.admission_policy = AdmissionPolicyKind::kOverlap;
  options.max_jobs = 1;  // Force queueing behind the running job.
  LtpEngine engine(&pg, options);
  engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
  const LtpEngine::JobHandle queued = engine.Submit(std::make_unique<WccProgram>());
  engine.RunUntilIdle();
  EXPECT_TRUE(queued.done());
  // The waiter was admitted strictly after its arrival (it waited for the slot) and the
  // first job never waited.
  EXPECT_EQ(engine.job(0).stats().wait_steps, 0u);
  EXPECT_GT(queued.stats().wait_steps, 0u);
  // With max_jobs == 1 the slot only frees when nothing is running, so the recorded
  // overlap at admit time is necessarily zero — the degenerate case. A lone due
  // candidate is admitted without scoring, and the stats must say so: the zero is
  // "never scored", not "scored zero".
  EXPECT_EQ(queued.stats().admit_overlap, 0.0);
  EXPECT_FALSE(queued.stats().admit_scored);
  EXPECT_FALSE(engine.job(0).stats().admit_scored);
}

TEST(AdmissionPolicyEngineTest, ScoredFlagMarksOnlyContendedDecisions) {
  const EdgeList edges = GenerateErdosRenyi(300, 2400, 59);
  const PartitionedGraph pg = Partition(edges, 6);

  EngineOptions options = test_support::TestEngineOptions();
  options.admission_policy = AdmissionPolicyKind::kOverlap;
  options.max_jobs = 1;  // Everything queues behind the first job.
  LtpEngine engine(&pg, options);
  engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
  // Two waiters are due when the slot frees: that decision has competitors, so its
  // winner is scored; the loser is admitted later as a lone candidate — unscored.
  const LtpEngine::JobHandle a = engine.Submit(std::make_unique<WccProgram>());
  const LtpEngine::JobHandle b = engine.Submit(std::make_unique<WccProgram>());
  engine.RunUntilIdle();
  EXPECT_FALSE(engine.job(0).stats().admit_scored);  // Admitted into an empty engine.
  EXPECT_TRUE(a.stats().admit_scored);               // Won a contended decision.
  EXPECT_FALSE(b.stats().admit_scored);              // Lone candidate at its admission.
  // Under overlap, nothing is ever forecast.
  EXPECT_FALSE(a.stats().admit_predicted);
  EXPECT_EQ(a.stats().predicted_overlap, 0.0);
}

TEST(AdmissionPolicyEngineTest, PredictLearnsWithinARunAndFlagsForecastAdmissions) {
  const EdgeList edges = GenerateErdosRenyi(300, 2400, 61);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 6);

  EngineOptions options = test_support::TestEngineOptions();
  options.admission_policy = AdmissionPolicyKind::kPredict;
  options.max_jobs = 1;
  LtpEngine engine(&pg, options);
  // First wcc runs alone and seeds the "wcc" profile at completion; the repeat wcc and
  // the bfs are both due when the slot frees, so that contended decision scores the
  // repeat via the forecast (profile exists) and the bfs via the footprint fallback.
  const LtpEngine::JobHandle first = engine.Submit(std::make_unique<WccProgram>());
  const LtpEngine::JobHandle repeat = engine.Submit(std::make_unique<WccProgram>());
  const LtpEngine::JobHandle traversal = engine.Submit(std::make_unique<BfsProgram>(source));
  engine.RunUntilIdle();
  EXPECT_TRUE(engine.footprint_history().HasProfile("wcc"));
  EXPECT_TRUE(engine.footprint_history().HasProfile("bfs"));
  EXPECT_FALSE(first.stats().admit_scored);  // Admitted into an empty engine.
  // Both waiters were due at the same arrival step and tied at score 0 (the slot frees
  // only when nothing is running), so FIFO order admits the repeat first — but through
  // the forecast path, which the diagnostics must record.
  EXPECT_TRUE(repeat.stats().admit_scored);
  EXPECT_TRUE(repeat.stats().admit_predicted);
  EXPECT_FALSE(traversal.stats().admit_scored);  // Lone candidate at its admission.
}

TEST(AdmissionPolicyEngineTest, SlotPoolPlacementJoinsTheOverlappingCohort) {
  const EdgeList edges = GenerateErdosRenyi(250, 2000, 53);
  const PartitionedGraph pg = Partition(edges, 6);

  EngineOptions options = test_support::TestEngineOptions();
  options.admission_policy = AdmissionPolicyKind::kPredict;
  options.max_jobs = 4;
  options.slot_pools = 2;  // Pools: slots {0, 1} and {2, 3}.
  LtpEngine engine(&pg, options);
  // Four full-coverage jobs: every later job overlaps every running cohort fully, so
  // placement packs pool 0 first (ties and positive scores both resolve toward it),
  // then spills to pool 1 when pool 0's slots are taken.
  std::vector<LtpEngine::JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(engine.Submit(std::make_unique<WccProgram>()));
  }
  for (const auto& h : handles) {
    EXPECT_FALSE(h.done());  // All four admitted and running concurrently.
  }
  engine.RunUntilIdle();
  EXPECT_EQ(handles[0].stats().admit_pool, 0u);  // Empty engine: first pool wins ties.
  EXPECT_EQ(handles[1].stats().admit_pool, 0u);  // Joins the overlapping cohort.
  EXPECT_EQ(handles[2].stats().admit_pool, 1u);  // Pool 0 full.
  EXPECT_EQ(handles[3].stats().admit_pool, 1u);
  for (const auto& h : handles) {
    EXPECT_TRUE(h.done());
  }

  // Placement is a pure function of modeled state: repeated runs are identical.
  auto run_waits = [&]() {
    LtpEngine e(&pg, options);
    for (int i = 0; i < 6; ++i) {
      e.SubmitAt(std::make_unique<WccProgram>(), static_cast<uint64_t>(2 * i));
    }
    e.RunUntilIdle();
    std::vector<std::pair<uint64_t, uint32_t>> out;
    for (JobId id = 0; id < e.num_jobs(); ++id) {
      out.emplace_back(e.job(id).stats().wait_steps, e.job(id).stats().admit_pool);
    }
    return out;
  };
  EXPECT_EQ(run_waits(), run_waits());
}

TEST(AdmissionPolicyEngineTest, PredictWithDistinctTypesMatchesOverlapSchedule) {
  const EdgeList edges = GenerateErdosRenyi(400, 3600, 67);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 8);

  // Every submission is a distinct program type, so no waiter ever has completed
  // history and predict falls back to the overlap score on every decision: the whole
  // schedule must match the overlap policy's.
  auto run = [&](AdmissionPolicyKind kind) {
    EngineOptions options = test_support::TestEngineOptions();
    options.admission_policy = kind;
    options.max_jobs = 2;
    LtpEngine engine(&pg, options);
    engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
    engine.Submit(std::make_unique<WccProgram>());
    engine.SubmitAt(std::make_unique<BfsProgram>(source), 5);
    engine.SubmitAt(std::make_unique<SsspProgram>(source), 10);
    engine.RunUntilIdle();
    return NormalizedCsv(engine);
  };
  EXPECT_EQ(run(AdmissionPolicyKind::kOverlap), run(AdmissionPolicyKind::kPredict));
}

TEST(AdmissionPolicyEngineTest, StarvationFreeUnderStaggeredOverlappingArrivals) {
  const EdgeList edges = GenerateErdosRenyi(300, 2400, 43);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 6);

  EngineOptions options = test_support::TestEngineOptions();
  options.admission_policy = AdmissionPolicyKind::kOverlap;
  options.admission_aging = 0.5;  // Overtake window: 2 steps.
  options.max_jobs = 2;
  LtpEngine engine(&pg, options);
  engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
  engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
  // The victim queues first; overlapping traversals keep arriving behind it, all outside
  // the 1/aging overtake window of the victim's arrival.
  const LtpEngine::JobHandle victim = engine.Submit(std::make_unique<WccProgram>());
  std::vector<LtpEngine::JobHandle> hostiles;
  for (uint64_t arrival = 5; arrival <= 30; arrival += 5) {
    hostiles.push_back(engine.SubmitAt(std::make_unique<BfsProgram>(source), arrival));
  }
  engine.RunUntilIdle();
  EXPECT_TRUE(victim.done());
  // Admission step = arrival + wait. The victim (runnable first, outside everyone's
  // overtake window) must have been admitted no later than any later arrival (two
  // admissions can land on the same step when consecutive slots free).
  const uint64_t victim_admit = victim.stats().wait_steps;  // Arrival step 0.
  for (size_t i = 0; i < hostiles.size(); ++i) {
    const uint64_t arrival = 5 * (i + 1);
    EXPECT_LE(victim_admit, arrival + hostiles[i].stats().wait_steps) << i;
  }
}

TEST(AdmissionPolicyEngineTest, OverlapAdmissionIsDeterministicAcrossRunsAndWorkers) {
  const EdgeList edges = GenerateErdosRenyi(400, 3600, 47);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 8);

  // A contended staggered mix: admission decisions must depend only on modeled state,
  // so the whole report — and every per-job admission stat — is identical across
  // repeated runs and worker counts.
  auto run = [&](uint32_t workers) {
    EngineOptions options = test_support::TestEngineOptions();
    options.admission_policy = AdmissionPolicyKind::kOverlap;
    options.max_jobs = 2;
    options.num_workers = workers;
    LtpEngine engine(&pg, options);
    engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
    engine.Submit(std::make_unique<WccProgram>());
    engine.SubmitAt(std::make_unique<BfsProgram>(source), 5);
    engine.SubmitAt(std::make_unique<WccProgram>(), 10);
    engine.SubmitAt(std::make_unique<SsspProgram>(source), 15);
    engine.RunUntilIdle();
    std::vector<std::pair<uint64_t, double>> admissions;
    for (JobId id = 0; id < engine.num_jobs(); ++id) {
      admissions.emplace_back(engine.job(id).stats().wait_steps,
                              engine.job(id).stats().admit_overlap);
    }
    return std::make_pair(NormalizedCsv(engine), admissions);
  };
  const auto baseline = run(1);
  EXPECT_EQ(baseline, run(1)) << "same worker count, repeated run";
  EXPECT_EQ(baseline, run(4)) << "different worker count";
}

}  // namespace
}  // namespace cgraph
