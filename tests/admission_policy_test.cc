// Job-level admission policies (two-level scheduling): FIFO/overlap pick semantics,
// aging-bounded starvation-freedom, degenerate-case equivalence with FIFO, and
// determinism of overlap admission across runs and worker counts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/algorithms/bfs.h"
#include "src/algorithms/factory.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/wcc.h"
#include "src/core/admission_policy.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/metrics/csv_writer.h"
#include "src/partition/partitioned_graph.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

using Candidate = AdmissionPolicy::Candidate;

// --- Policy unit tests (synthetic global table) --------------------------------------

// A table with `registered` partitions occupied by one running job.
GlobalTable TableWithRegistered(uint32_t num_partitions,
                                const std::vector<PartitionId>& registered) {
  GlobalTable table(num_partitions, /*max_jobs=*/4);
  for (PartitionId p : registered) {
    table.Register(p, /*j=*/0);
  }
  return table;
}

TEST(AdmissionPolicyTest, FifoAlwaysPicksTheFront) {
  const GlobalTable table = TableWithRegistered(4, {0, 1});
  FifoAdmission fifo;
  const std::vector<uint32_t> a = {0, 0, 5, 5};  // Would lose on overlap...
  const std::vector<uint32_t> b = {7, 7, 0, 0};  // ...to this one.
  const std::vector<Candidate> due = {{0, 0, &a}, {1, 0, &b}};
  const auto pick = fifo.Pick(due, table, /*step=*/100);
  EXPECT_EQ(pick.index, 0u);
  EXPECT_EQ(pick.overlap, 0.0);
}

TEST(AdmissionPolicyTest, OverlapScoreIsSharedFractionOfFootprint) {
  const GlobalTable table = TableWithRegistered(4, {0, 1});
  const std::vector<uint32_t> full = {3, 9, 2, 1};     // Needs all 4, 2 registered.
  const std::vector<uint32_t> local = {0, 8, 0, 0};    // Needs only a registered one.
  const std::vector<uint32_t> disjoint = {0, 0, 0, 6}; // Needs only an idle one.
  const std::vector<uint32_t> empty = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(OverlapAdmission::OverlapScore(full, table), 0.5);
  EXPECT_DOUBLE_EQ(OverlapAdmission::OverlapScore(local, table), 1.0);
  EXPECT_DOUBLE_EQ(OverlapAdmission::OverlapScore(disjoint, table), 0.0);
  EXPECT_DOUBLE_EQ(OverlapAdmission::OverlapScore(empty, table), 0.0);
}

TEST(AdmissionPolicyTest, OverlapPrefersTheSharedFootprint) {
  const GlobalTable table = TableWithRegistered(4, {0, 1});
  OverlapAdmission overlap(/*aging=*/1.0 / 256.0);
  const std::vector<uint32_t> disjoint = {0, 0, 4, 4};
  const std::vector<uint32_t> shared = {4, 4, 0, 0};
  // The FIFO-older candidate needs idle partitions; the younger one rides the running set.
  const std::vector<Candidate> due = {{0, 10, &disjoint}, {1, 12, &shared}};
  const auto pick = overlap.Pick(due, table, /*step=*/12);
  EXPECT_EQ(pick.index, 1u);
  EXPECT_DOUBLE_EQ(pick.overlap, 1.0);
}

TEST(AdmissionPolicyTest, OverlapTiesBreakTowardFifoOrder) {
  const GlobalTable table = TableWithRegistered(4, {0});
  OverlapAdmission overlap(/*aging=*/1.0 / 256.0);
  const std::vector<uint32_t> fp = {1, 0, 0, 0};
  // Identical footprints and arrival steps: the earliest submission must win.
  const std::vector<Candidate> due = {{3, 5, &fp}, {4, 5, &fp}, {5, 5, &fp}};
  EXPECT_EQ(overlap.Pick(due, table, /*step=*/9).index, 0u);
}

TEST(AdmissionPolicyTest, AgingOvertakesBoundedOverlapAdvantage) {
  const GlobalTable table = TableWithRegistered(4, {0, 1});
  const double aging = 1.0 / 256.0;
  OverlapAdmission overlap(aging);
  const std::vector<uint32_t> never_overlaps = {0, 0, 0, 9};
  const std::vector<uint32_t> always_overlaps = {9, 0, 0, 0};
  // A fresh full-overlap candidate outranks the zero-overlap oldie only while the age
  // gap is under 1/aging steps; from 256 waited steps on, the oldie must win (ties
  // break toward it as the FIFO-older candidate).
  for (const uint64_t waited : {0ull, 100ull, 255ull}) {
    const std::vector<Candidate> due = {{0, 0, &never_overlaps}, {1, waited, &always_overlaps}};
    EXPECT_EQ(overlap.Pick(due, table, waited).index, 1u) << waited;
  }
  for (const uint64_t waited : {256ull, 300ull, 100000ull}) {
    const std::vector<Candidate> due = {{0, 0, &never_overlaps}, {1, waited, &always_overlaps}};
    EXPECT_EQ(overlap.Pick(due, table, waited).index, 0u) << waited;
  }
}

TEST(AdmissionPolicyTest, HostileArrivalStreamCannotStarveADueJob) {
  const GlobalTable table = TableWithRegistered(8, {0, 1, 2, 3});
  const double aging = 1.0 / 64.0;
  OverlapAdmission overlap(aging);
  const std::vector<uint32_t> victim_fp = {0, 0, 0, 0, 1, 1, 1, 1};  // Overlap 0 forever.
  const std::vector<uint32_t> hostile_fp = {1, 1, 1, 1, 0, 0, 0, 0}; // Overlap 1 forever.
  // Every round a slot frees, a brand-new full-overlap job is already waiting. The
  // victim must still be admitted within 1/aging steps of becoming due.
  uint64_t step = 0;
  bool victim_admitted = false;
  for (; step < 200; ++step) {
    const std::vector<Candidate> due = {{0, 0, &victim_fp}, {1 + static_cast<JobId>(step), step, &hostile_fp}};
    if (overlap.Pick(due, table, step).index == 0) {
      victim_admitted = true;
      break;
    }
  }
  EXPECT_TRUE(victim_admitted);
  EXPECT_LE(step, static_cast<uint64_t>(1.0 / aging) + 1);
}

TEST(AdmissionPolicyTest, ParseAndNameRoundTrip) {
  AdmissionPolicyKind kind = AdmissionPolicyKind::kOverlap;
  EXPECT_TRUE(ParseAdmissionPolicyName("fifo", &kind));
  EXPECT_EQ(kind, AdmissionPolicyKind::kFifo);
  EXPECT_EQ(AdmissionPolicyKindName(kind), "fifo");
  EXPECT_TRUE(ParseAdmissionPolicyName("overlap", &kind));
  EXPECT_EQ(kind, AdmissionPolicyKind::kOverlap);
  EXPECT_EQ(AdmissionPolicyKindName(kind), "overlap");
  EXPECT_FALSE(ParseAdmissionPolicyName("sjf", &kind));
  EXPECT_FALSE(ParseAdmissionPolicyName("", &kind));
}

// --- Engine-level tests --------------------------------------------------------------

PartitionedGraph Partition(const EdgeList& edges, uint32_t parts) {
  PartitionOptions options;
  options.num_partitions = parts;
  options.core_subgraph = true;
  return PartitionedGraphBuilder::Build(edges, options);
}

// Report CSV with the legitimately varying columns normalized: wall clock zeroed and the
// worker count pinned (modeled-time columns divide by it), so reports from engines run
// at different worker counts are comparable on the modeled schedule alone.
std::string NormalizedCsv(const LtpEngine& engine) {
  RunReport report = engine.Report();
  for (JobStats& job : report.jobs) {
    job.wall_seconds = 0.0;
  }
  report.wall_seconds = 0.0;
  report.workers = 1;
  return RunReportToCsv(report, CostModel{});
}

TEST(AdmissionPolicyEngineTest, DegenerateSingleJobMatchesFifoByteForByte) {
  const EdgeList edges = GenerateErdosRenyi(250, 2000, 31);
  const PartitionedGraph pg = Partition(edges, 6);

  // One job, never queued: overlap admission has a single zero-overlap candidate, so the
  // whole schedule — and hence the report CSV — must match FIFO exactly.
  auto run = [&pg](AdmissionPolicyKind kind) {
    EngineOptions options = test_support::TestEngineOptions();
    options.admission_policy = kind;
    LtpEngine engine(&pg, options);
    engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
    engine.RunUntilIdle();
    EXPECT_EQ(engine.job(0).stats().wait_steps, 0u);
    EXPECT_EQ(engine.job(0).stats().admit_overlap, 0.0);
    return NormalizedCsv(engine);
  };
  EXPECT_EQ(run(AdmissionPolicyKind::kFifo), run(AdmissionPolicyKind::kOverlap));
}

TEST(AdmissionPolicyEngineTest, UncontendedSubmissionsMatchFifoByteForByte) {
  const EdgeList edges = GenerateErdosRenyi(250, 2000, 37);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 6);

  // Every submission finds a free slot (jobs <= max_jobs), so each admission decision
  // sees exactly one candidate and overlap cannot reorder anything.
  auto run = [&](AdmissionPolicyKind kind) {
    EngineOptions options = test_support::TestEngineOptions();
    options.admission_policy = kind;
    LtpEngine engine(&pg, options);
    engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
    engine.Submit(std::make_unique<SsspProgram>(source));
    engine.Submit(std::make_unique<WccProgram>());
    engine.SubmitAt(std::make_unique<BfsProgram>(source), /*arrival_step=*/7);
    engine.RunUntilIdle();
    return NormalizedCsv(engine);
  };
  EXPECT_EQ(run(AdmissionPolicyKind::kFifo), run(AdmissionPolicyKind::kOverlap));
}

TEST(AdmissionPolicyEngineTest, QueuedOverlapAdmissionRecordsStats) {
  const EdgeList edges = GenerateErdosRenyi(300, 2400, 41);
  const PartitionedGraph pg = Partition(edges, 6);

  EngineOptions options = test_support::TestEngineOptions();
  options.admission_policy = AdmissionPolicyKind::kOverlap;
  options.max_jobs = 1;  // Force queueing behind the running job.
  LtpEngine engine(&pg, options);
  engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
  const LtpEngine::JobHandle queued = engine.Submit(std::make_unique<WccProgram>());
  engine.RunUntilIdle();
  EXPECT_TRUE(queued.done());
  // The waiter was admitted strictly after its arrival (it waited for the slot) and the
  // first job never waited.
  EXPECT_EQ(engine.job(0).stats().wait_steps, 0u);
  EXPECT_GT(queued.stats().wait_steps, 0u);
  // With max_jobs == 1 the slot only frees when nothing is running, so the recorded
  // overlap at admit time is necessarily zero — the degenerate case.
  EXPECT_EQ(queued.stats().admit_overlap, 0.0);
}

TEST(AdmissionPolicyEngineTest, StarvationFreeUnderStaggeredOverlappingArrivals) {
  const EdgeList edges = GenerateErdosRenyi(300, 2400, 43);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 6);

  EngineOptions options = test_support::TestEngineOptions();
  options.admission_policy = AdmissionPolicyKind::kOverlap;
  options.admission_aging = 0.5;  // Overtake window: 2 steps.
  options.max_jobs = 2;
  LtpEngine engine(&pg, options);
  engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
  engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
  // The victim queues first; overlapping traversals keep arriving behind it, all outside
  // the 1/aging overtake window of the victim's arrival.
  const LtpEngine::JobHandle victim = engine.Submit(std::make_unique<WccProgram>());
  std::vector<LtpEngine::JobHandle> hostiles;
  for (uint64_t arrival = 5; arrival <= 30; arrival += 5) {
    hostiles.push_back(engine.SubmitAt(std::make_unique<BfsProgram>(source), arrival));
  }
  engine.RunUntilIdle();
  EXPECT_TRUE(victim.done());
  // Admission step = arrival + wait. The victim (runnable first, outside everyone's
  // overtake window) must have been admitted no later than any later arrival (two
  // admissions can land on the same step when consecutive slots free).
  const uint64_t victim_admit = victim.stats().wait_steps;  // Arrival step 0.
  for (size_t i = 0; i < hostiles.size(); ++i) {
    const uint64_t arrival = 5 * (i + 1);
    EXPECT_LE(victim_admit, arrival + hostiles[i].stats().wait_steps) << i;
  }
}

TEST(AdmissionPolicyEngineTest, OverlapAdmissionIsDeterministicAcrossRunsAndWorkers) {
  const EdgeList edges = GenerateErdosRenyi(400, 3600, 47);
  const VertexId source = PickSourceVertex(edges);
  const PartitionedGraph pg = Partition(edges, 8);

  // A contended staggered mix: admission decisions must depend only on modeled state,
  // so the whole report — and every per-job admission stat — is identical across
  // repeated runs and worker counts.
  auto run = [&](uint32_t workers) {
    EngineOptions options = test_support::TestEngineOptions();
    options.admission_policy = AdmissionPolicyKind::kOverlap;
    options.max_jobs = 2;
    options.num_workers = workers;
    LtpEngine engine(&pg, options);
    engine.Submit(std::make_unique<PageRankProgram>(0.85, 1e-10));
    engine.Submit(std::make_unique<WccProgram>());
    engine.SubmitAt(std::make_unique<BfsProgram>(source), 5);
    engine.SubmitAt(std::make_unique<WccProgram>(), 10);
    engine.SubmitAt(std::make_unique<SsspProgram>(source), 15);
    engine.RunUntilIdle();
    std::vector<std::pair<uint64_t, double>> admissions;
    for (JobId id = 0; id < engine.num_jobs(); ++id) {
      admissions.emplace_back(engine.job(id).stats().wait_steps,
                              engine.job(id).stats().admit_overlap);
    }
    return std::make_pair(NormalizedCsv(engine), admissions);
  };
  const auto baseline = run(1);
  EXPECT_EQ(baseline, run(1)) << "same worker count, repeated run";
  EXPECT_EQ(baseline, run(4)) << "different worker count";
}

}  // namespace
}  // namespace cgraph
