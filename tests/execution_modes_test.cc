// BSP <-> async equivalence and diagnostics of the bounded-staleness execution mode
// (docs/execution_modes.md). BSP is the correctness oracle: for every monotonic program
// the async engine must converge to identical final values at any staleness, any worker
// count, with deterministic work counts; non-monotonic programs must run exact BSP
// regardless of the configured mode.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/algorithms/factory.h"
#include "src/algorithms/kcore.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/reference.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/wcc.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/metrics/csv_writer.h"
#include "src/partition/partitioned_graph.h"
#include "tests/testing/graph_fixtures.h"
#include "tests/testing/test_helpers.h"

namespace cgraph {
namespace {

using test_support::GraphCase;
using test_support::StandardGraphCases;

PartitionedGraph Partition(const EdgeList& edges, uint32_t parts = 6) {
  PartitionOptions options;
  options.num_partitions = parts;
  options.core_subgraph = true;
  return PartitionedGraphBuilder::Build(edges, options);
}

EngineOptions AsyncOptions(uint32_t workers, uint32_t staleness) {
  EngineOptions options = test_support::TestEngineOptions();
  options.num_workers = workers;
  options.execution_mode = ExecutionMode::kAsync;
  options.staleness = staleness;
  return options;
}

// Wall time is the one machine-dependent CSV column; modeled columns are deterministic.
std::string DeterministicCsv(RunReport report, const CostModel& model) {
  report.wall_seconds = 0.0;
  for (auto& job : report.jobs) {
    job.wall_seconds = 0.0;
  }
  return RunReportToCsv(report, model);
}

// The traits are load-bearing API: async eligibility (monotonic) and re-drain
// eligibility (path_independent) are declared per program, and a wrong declaration
// silently changes results or work. Pin every program's values.
TEST(ExecutionTraitsTest, MonotonicityDeclarations) {
  for (const char* name : {"sssp", "bfs", "wcc", "kcore", "khop"}) {
    EXPECT_TRUE(MakeProgram(name, 0)->monotonic()) << name;
  }
  for (const char* name : {"pagerank", "ppr", "scc"}) {
    EXPECT_FALSE(MakeProgram(name, 0)->monotonic()) << name;
  }
}

TEST(ExecutionTraitsTest, PathIndependenceDeclarations) {
  // Only WCC floods a path-independent label; every edge-accumulating program must stay
  // out of the eager re-drain (premature scatters of improvable values are wasted work).
  EXPECT_TRUE(MakeProgram("wcc", 0)->path_independent());
  for (const char* name : {"sssp", "bfs", "kcore", "khop", "pagerank", "ppr", "scc"}) {
    EXPECT_FALSE(MakeProgram(name, 0)->path_independent()) << name;
  }
}

// Converged values must be identical to the references (the BSP oracle) for every
// monotonic program, across worker counts and the whole staleness range, on every
// standard graph shape. staleness=0 degenerates to BSP; 8 exceeds most fixtures'
// iteration counts, so the flush-on-drain path must deliver the withheld windows.
class AsyncEquivalenceTest : public ::testing::TestWithParam<size_t> {
 protected:
  static const GraphCase& Case() { return StandardGraphCases()[GetParam()]; }
};

TEST_P(AsyncEquivalenceTest, MonotonicMixMatchesReferences) {
  const GraphCase& c = Case();
  if (c.edges.num_vertices() == 0) {
    return;
  }
  const VertexId source = PickSourceVertex(c.edges);
  const PartitionedGraph pg = Partition(c.edges);
  const Graph g = Graph::FromEdges(c.edges);
  const auto want_dist = ReferenceSssp(g, source);
  const auto want_labels = ReferenceWcc(g);
  const auto want_core = ReferenceKCore(g, 3);  // 1.0 = in core.
  for (const uint32_t workers : {1u, 4u}) {
    for (const uint32_t staleness : {0u, 1u, 8u}) {
      const std::string what =
          c.name + "/w" + std::to_string(workers) + "/s" + std::to_string(staleness);
      LtpEngine engine(&pg, AsyncOptions(workers, staleness));
      const JobId sssp = engine.AddJob(std::make_unique<SsspProgram>(source));
      const JobId wcc = engine.AddJob(std::make_unique<WccProgram>());
      const JobId kcore = engine.AddJob(std::make_unique<KCoreProgram>(3));
      engine.Run();
      test_support::ExpectNearValues(engine.FinalValues(sssp), want_dist, 1e-12,
                                     what + "/sssp");
      test_support::ExpectNearValues(engine.FinalValues(wcc), want_labels, 0.0,
                                     what + "/wcc");
      // k-core converges on membership (aux: 1.0 = peeled); the peel-time residual in
      // `value` is schedule-dependent, so equivalence is on aux, not value.
      const auto aux = engine.FinalAux(kcore);
      ASSERT_EQ(aux.size(), want_core.size()) << what;
      for (size_t v = 0; v < aux.size(); ++v) {
        EXPECT_EQ(aux[v] == 0.0, want_core[v] == 1.0) << what << "/kcore vertex " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, AsyncEquivalenceTest,
                         ::testing::Range<size_t>(0, StandardGraphCases().size()),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return StandardGraphCases()[info.index].name;
                         });

class AsyncRmatTest : public ::testing::Test {
 protected:
  AsyncRmatTest() : edges_(test_support::FixedRmat(10, 8, 1234)), pg_(Partition(edges_, 8)) {}

  RunReport RunMix(const EngineOptions& options, std::vector<JobId>* ids = nullptr) {
    LtpEngine engine(&pg_, options);
    const JobId sssp = engine.AddJob(std::make_unique<SsspProgram>(0));
    const JobId wcc = engine.AddJob(std::make_unique<WccProgram>());
    const JobId kcore = engine.AddJob(std::make_unique<KCoreProgram>(3));
    if (ids != nullptr) {
      *ids = {sssp, wcc, kcore};
    }
    return engine.Run();
  }

  EdgeList edges_;
  PartitionedGraph pg_;
};

// staleness=0 makes every push a sync boundary, so async is *treated as* BSP: same
// modeled CSV byte for byte, and no job carries the async flag.
TEST_F(AsyncRmatTest, StalenessZeroIsByteIdenticalToBsp) {
  EngineOptions bsp = test_support::TestEngineOptions();
  const RunReport bsp_report = RunMix(bsp);
  const RunReport async_report = RunMix(AsyncOptions(4, 0));
  for (const auto& job : async_report.jobs) {
    EXPECT_FALSE(job.async_execution) << job.job_name;
    EXPECT_EQ(job.redrain_computes, 0u) << job.job_name;
    EXPECT_EQ(job.deferred_pushes, 0u) << job.job_name;
  }
  const CostModel model = bsp.cost_model;
  EXPECT_EQ(DeterministicCsv(bsp_report, model), DeterministicCsv(async_report, model));
}

// The async schedule is defined by partition order, not worker count: re-drain runs
// inline in ascending vertex order and deferral decisions depend only on per-iteration
// frontier state, so every modeled count must be identical across worker counts.
TEST_F(AsyncRmatTest, AsyncCountsDeterministicAcrossWorkers) {
  for (const uint32_t staleness : {1u, 8u}) {
    const RunReport w1 = RunMix(AsyncOptions(1, staleness));
    const RunReport w4 = RunMix(AsyncOptions(4, staleness));
    ASSERT_EQ(w1.jobs.size(), w4.jobs.size());
    for (size_t j = 0; j < w1.jobs.size(); ++j) {
      const std::string what = w1.jobs[j].job_name + "/s" + std::to_string(staleness);
      EXPECT_EQ(w1.jobs[j].iterations, w4.jobs[j].iterations) << what;
      EXPECT_EQ(w1.jobs[j].vertex_computes, w4.jobs[j].vertex_computes) << what;
      EXPECT_EQ(w1.jobs[j].edge_traversals, w4.jobs[j].edge_traversals) << what;
      EXPECT_EQ(w1.jobs[j].push_updates, w4.jobs[j].push_updates) << what;
      EXPECT_EQ(w1.jobs[j].compute_units, w4.jobs[j].compute_units) << what;
      EXPECT_EQ(w1.jobs[j].redrain_computes, w4.jobs[j].redrain_computes) << what;
      EXPECT_EQ(w1.jobs[j].deferred_pushes, w4.jobs[j].deferred_pushes) << what;
    }
  }
}

// A monotonic job that actually ran relaxed must say so; the diagnostics separate the
// two async mechanisms (re-drain is wcc-only via path_independent, deferral is global).
TEST_F(AsyncRmatTest, AsyncDiagnosticsAreReported) {
  const RunReport report = RunMix(AsyncOptions(4, 1));
  uint64_t redrain = 0;
  uint64_t deferred = 0;
  for (const auto& job : report.jobs) {
    EXPECT_TRUE(job.async_execution) << job.job_name;
    if (job.job_name == "wcc") {
      redrain = job.redrain_computes;
    } else {
      EXPECT_EQ(job.redrain_computes, 0u) << job.job_name;
    }
    deferred += job.deferred_pushes;
  }
  EXPECT_GT(redrain, 0u);
  EXPECT_GT(deferred, 0u);
}

// The perf claim the bench gates on, pinned as a canary at test scale: the monotonic mix
// must cost fewer compute units under async than under BSP.
TEST_F(AsyncRmatTest, AsyncReducesComputeUnits) {
  const RunReport bsp = RunMix(test_support::TestEngineOptions());
  const RunReport async_report = RunMix(AsyncOptions(4, 1));
  EXPECT_LT(async_report.TotalComputeUnits(), bsp.TotalComputeUnits());
}

// Non-monotonic programs must ignore the mode entirely: exact BSP schedule, identical
// modeled CSV, no async diagnostics. (The CLI additionally rejects such requests with a
// usage error; the engine-level contract is "silently exact".)
TEST_F(AsyncRmatTest, NonMonotonicProgramsRunExactBsp) {
  EngineOptions bsp_options = test_support::TestEngineOptions();
  RunReport bsp_report;
  RunReport async_report;
  {
    LtpEngine engine(&pg_, bsp_options);
    engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-10));
    engine.AddJob(MakeProgram("scc", 0));
    bsp_report = engine.Run();
  }
  {
    LtpEngine engine(&pg_, AsyncOptions(4, 8));
    engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-10));
    engine.AddJob(MakeProgram("scc", 0));
    async_report = engine.Run();
  }
  for (const auto& job : async_report.jobs) {
    EXPECT_FALSE(job.async_execution) << job.job_name;
    EXPECT_EQ(job.redrain_computes, 0u) << job.job_name;
    EXPECT_EQ(job.deferred_pushes, 0u) << job.job_name;
  }
  const CostModel model = bsp_options.cost_model;
  EXPECT_EQ(DeterministicCsv(bsp_report, model), DeterministicCsv(async_report, model));
}

// A mixed submission: the monotonic jobs relax, the non-monotonic job stays exact, and
// everyone still converges to reference results in the same engine run.
TEST_F(AsyncRmatTest, MixedMonotonicityCoexists) {
  LtpEngine engine(&pg_, AsyncOptions(4, 2));
  const JobId wcc = engine.AddJob(std::make_unique<WccProgram>());
  const JobId pr = engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-10));
  const RunReport report = engine.Run();
  EXPECT_TRUE(report.jobs[wcc].async_execution);
  EXPECT_FALSE(report.jobs[pr].async_execution);
  const Graph g = Graph::FromEdges(edges_);
  test_support::ExpectNearValues(engine.FinalValues(wcc), ReferenceWcc(g), 0.0,
                                 "mixed/wcc");
  test_support::ExpectNearValues(engine.FinalValues(pr),
                                 ReferencePageRank(g, 0.85, 1e-10), 1e-6, "mixed/pr");
}

}  // namespace
}  // namespace cgraph
