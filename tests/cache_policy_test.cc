// Tests for the frequency-aware eviction policy (paper section 2.2's LRU critique).

#include <gtest/gtest.h>

#include "src/cache/cache_sim.h"

namespace cgraph {
namespace {

ItemKey Item(PartitionId p) { return ItemKey{DataKind::kStructure, kSharedOwner, p, 0}; }

TEST(FrequencyPolicyTest, HotSegmentSurvivesStreaming) {
  // Capacity: 4 segments. Segment 0 is touched repeatedly (hot); a stream of one-shot
  // segments must not evict it under the frequency-aware policy.
  CacheSim cache(4 * 256, 256, EvictionPolicy::kFrequencyAware);
  for (int i = 0; i < 10; ++i) {
    cache.TouchSegment(Item(0), 0, 256, false);  // Heat it up.
  }
  for (PartitionId p = 1; p <= 20; ++p) {
    cache.TouchSegment(Item(p), 0, 256, false);  // Cold stream.
  }
  EXPECT_TRUE(cache.IsResident(Item(0), 0));
  // Under plain LRU the same sequence evicts the hot segment.
  CacheSim lru(4 * 256, 256, EvictionPolicy::kLru);
  for (int i = 0; i < 10; ++i) {
    lru.TouchSegment(Item(0), 0, 256, false);
  }
  for (PartitionId p = 1; p <= 20; ++p) {
    lru.TouchSegment(Item(p), 0, 256, false);
  }
  EXPECT_FALSE(lru.IsResident(Item(0), 0));
}

TEST(FrequencyPolicyTest, EqualFrequenciesDegradeToLru) {
  CacheSim cache(2 * 256, 256, EvictionPolicy::kFrequencyAware);
  cache.TouchSegment(Item(0), 0, 256, false);
  cache.TouchSegment(Item(1), 0, 256, false);
  cache.TouchSegment(Item(2), 0, 256, false);  // All have 1 touch: evict the oldest (0).
  EXPECT_FALSE(cache.IsResident(Item(0), 0));
  EXPECT_TRUE(cache.IsResident(Item(1), 0));
  EXPECT_TRUE(cache.IsResident(Item(2), 0));
}

TEST(FrequencyPolicyTest, PinnedEntriesInvisibleToEviction) {
  CacheSim cache(2 * 256, 256, EvictionPolicy::kFrequencyAware);
  cache.TouchSegment(Item(0), 0, 256, /*pin=*/true);
  cache.TouchSegment(Item(1), 0, 256, false);
  cache.TouchSegment(Item(2), 0, 256, false);  // Must evict 1, not pinned 0.
  EXPECT_TRUE(cache.IsResident(Item(0), 0));
  EXPECT_FALSE(cache.IsResident(Item(1), 0));
}

TEST(FrequencyPolicyTest, StatsStillExact) {
  CacheSim cache(4 * 256, 256, EvictionPolicy::kFrequencyAware);
  cache.TouchSegment(Item(0), 0, 256, false);
  cache.TouchSegment(Item(0), 0, 256, false);
  cache.TouchSegment(Item(1), 0, 256, false);
  EXPECT_EQ(cache.stats().touches, 3u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().miss_bytes, 512u);
}

TEST(FrequencyPolicyTest, WindowBoundsTheSearch) {
  // With a window of 8, a hot entry deeper than the window from the tail is untouchable;
  // eviction still happens (from within the window).
  CacheSim cache(8 * 256, 256, EvictionPolicy::kFrequencyAware);
  for (PartitionId p = 0; p < 8; ++p) {
    cache.TouchSegment(Item(p), 0, 256, false);
  }
  const uint64_t before = cache.stats().evictions;
  cache.TouchSegment(Item(100), 0, 256, false);
  EXPECT_EQ(cache.stats().evictions, before + 1);
  EXPECT_EQ(cache.occupancy(), 8 * 256u);
}

}  // namespace
}  // namespace cgraph
