// Evolving graph: jobs submitted at different times bind to different snapshots of the
// same graph (paper section 3.2.1, Fig. 5). Unchanged partitions are shared between
// snapshots, so concurrent jobs on different snapshots still amortize most loads.

#include <cstdio>
#include <memory>
#include <set>

#include "src/algorithms/factory.h"
#include "src/algorithms/wcc.h"
#include "src/common/strings.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/partition/partitioned_graph.h"
#include "src/storage/snapshot_store.h"

int main() {
  using namespace cgraph;

  RmatOptions rmat;
  rmat.scale = 12;
  rmat.edge_factor = 8;
  const EdgeList edges = GenerateRmat(rmat);

  PartitionOptions popts;
  popts.num_partitions = 16;
  SnapshotStore store(PartitionedGraphBuilder::Build(edges, popts));

  // Two graph updates arrive at t=10 and t=20, each rewiring 1% of the edges. Only the
  // partitions actually touched get new versions; the rest are shared.
  const uint32_t changed1 = store.CreateSnapshot(10, 0.01, 1);
  const uint32_t changed2 = store.CreateSnapshot(20, 0.01, 2);
  std::printf("snapshot t=10: %u/%u partitions re-versioned\n", changed1, store.num_partitions());
  std::printf("snapshot t=20: %u/%u partitions re-versioned\n", changed2, store.num_partitions());
  std::printf("incremental storage overhead: %s\n\n", HumanBytes(store.delta_bytes()).c_str());

  // Three WCC jobs submitted at t=0, t=10, t=20: each sees exactly its snapshot, and the
  // engine still shares every partition version needed by more than one job.
  EngineOptions options;
  options.num_workers = 4;
  LtpEngine engine(&store, options);
  const JobId j0 = engine.AddJob(std::make_unique<WccProgram>(), /*submit_time=*/0);
  const JobId j1 = engine.AddJob(std::make_unique<WccProgram>(), /*submit_time=*/10);
  const JobId j2 = engine.AddJob(std::make_unique<WccProgram>(), /*submit_time=*/20);
  const RunReport report = engine.Run();

  auto components = [&engine](JobId id) {
    const auto labels = engine.FinalValues(id);
    std::set<double> distinct(labels.begin(), labels.end());
    return distinct.size();
  };
  std::printf("components per snapshot: t=0 -> %zu, t=10 -> %zu, t=20 -> %zu\n",
              components(j0), components(j1), components(j2));
  std::printf("LLC miss rate with cross-snapshot sharing: %s%%\n",
              FormatDouble(report.cache.miss_rate() * 100, 1).c_str());
  return 0;
}
