// Quickstart: build a graph, partition it, run one PageRank job on the CGraph LTP
// engine, and read the results back.
//
//   $ ./quickstart [path/to/edge_list.txt]
//
// Without an argument a small synthetic power-law graph is used. The edge-list format is
// one "src dst [weight]" triple per line; '#' starts a comment.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/algorithms/pagerank.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/partition/partitioned_graph.h"

int main(int argc, char** argv) {
  using namespace cgraph;

  // 1. Obtain a graph: load from file or generate a small R-MAT instance.
  EdgeList edges;
  if (argc > 1) {
    auto loaded = LoadEdgeListText(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    edges = std::move(loaded).value();
  } else {
    RmatOptions rmat;
    rmat.scale = 12;
    rmat.edge_factor = 8;
    edges = GenerateRmat(rmat);
  }
  std::printf("graph: %u vertices, %zu edges\n", edges.num_vertices(), edges.num_edges());

  // 2. Partition: vertex-cut into equal-edge partitions, with core-subgraph grouping so
  //    hub-to-hub edges share partitions (paper section 3.3).
  PartitionOptions popts;
  popts.num_partitions = 16;
  popts.core_subgraph = true;
  const PartitionedGraph graph = PartitionedGraphBuilder::Build(edges, popts);
  std::printf("partitioned into %u partitions, replication factor %.2f\n",
              graph.num_partitions(), graph.replication_factor());

  // 3. Run one PageRank job on the LTP engine.
  EngineOptions options;
  options.num_workers = 4;
  LtpEngine engine(&graph, options);
  const JobId job = engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-9));
  const RunReport report = engine.Run();

  std::printf("converged in %llu iterations (%.1f ms wall)\n",
              static_cast<unsigned long long>(report.jobs[0].iterations),
              report.wall_seconds * 1e3);

  // 4. Read results: top-5 ranked vertices.
  const std::vector<double> ranks = engine.FinalValues(job);
  std::vector<VertexId> order(ranks.size());
  for (VertexId v = 0; v < order.size(); ++v) {
    order[v] = v;
  }
  std::partial_sort(order.begin(), order.begin() + std::min<size_t>(5, order.size()),
                    order.end(), [&](VertexId a, VertexId b) { return ranks[a] > ranks[b]; });
  std::printf("top vertices by rank:\n");
  for (size_t i = 0; i < std::min<size_t>(5, order.size()); ++i) {
    std::printf("  #%zu vertex %u rank %.6f\n", i + 1, order[i], ranks[order[i]]);
  }
  return 0;
}
