// Runtime job arrival: the production pattern from the paper's Figure 1 — jobs keep
// being submitted while others are mid-flight ("it allows to add new jobs into SJobs at
// runtime", section 3.4). A newcomer registers the partitions of its first iteration and
// is triggered off the same shared loads from then on.

#include <cstdio>
#include <memory>

#include "src/algorithms/bfs.h"
#include "src/algorithms/factory.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/wcc.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/partition/partitioned_graph.h"

int main() {
  using namespace cgraph;

  RmatOptions rmat;
  rmat.scale = 12;
  rmat.edge_factor = 10;
  const EdgeList edges = GenerateRmat(rmat);
  const VertexId source = PickSourceVertex(edges);

  PartitionOptions popts;
  popts.num_partitions = 16;
  const PartitionedGraph graph = PartitionedGraphBuilder::Build(edges, popts);

  EngineOptions options;
  options.num_workers = 4;
  LtpEngine engine(&graph, options);

  // PageRank starts immediately; a BFS arrives after 30 partition loads; a WCC arrives
  // after 80 more.
  engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-6));
  engine.ScheduleJob(std::make_unique<BfsProgram>(source), /*arrival_step=*/30);
  engine.ScheduleJob(std::make_unique<WccProgram>(), /*arrival_step=*/110);
  const RunReport report = engine.Run();

  std::printf("three jobs with staggered arrivals on a %u-vertex graph:\n\n",
              edges.num_vertices());
  for (const auto& job : report.jobs) {
    std::printf("  %-9s iterations=%-4llu vertex computes=%llu\n", job.job_name.c_str(),
                static_cast<unsigned long long>(job.iterations),
                static_cast<unsigned long long>(job.vertex_computes));
  }
  std::printf("\nshared-cache economics across the staggered mix: %.1f%% LLC miss rate\n",
              report.cache.miss_rate() * 100);
  std::printf("(late arrivals piggyback on loads issued for the jobs already running)\n");
  return 0;
}
