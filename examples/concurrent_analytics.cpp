// Concurrent analytics: the paper's headline scenario. Four iterative jobs — PageRank,
// SSSP, SCC, BFS — are submitted simultaneously over one shared graph, once on the
// CGraph LTP engine and once on a Seraph-style executor, and the simulated data-access
// economics are compared.

#include <cstdio>
#include <memory>

#include "src/algorithms/bfs.h"
#include "src/algorithms/factory.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/scc.h"
#include "src/algorithms/sssp.h"
#include "src/baselines/baseline_executor.h"
#include "src/common/strings.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/metrics/table_printer.h"
#include "src/partition/partitioned_graph.h"

int main() {
  using namespace cgraph;

  RmatOptions rmat;
  rmat.scale = 13;
  rmat.edge_factor = 12;
  const EdgeList edges = GenerateRmat(rmat);
  const VertexId source = PickSourceVertex(edges);

  PartitionOptions popts;
  popts.num_partitions = 24;
  const PartitionedGraph graph = PartitionedGraphBuilder::Build(edges, popts);

  EngineOptions options;
  options.num_workers = 4;
  options.hierarchy.cache_capacity_bytes = 512ull << 10;
  options.hierarchy.cache_segment_bytes = 8ull << 10;
  const CostModel cost;

  auto add_jobs = [source](auto& executor) {
    executor.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-6));
    executor.AddJob(std::make_unique<SsspProgram>(source));
    executor.AddJob(std::make_unique<SccProgram>());
    executor.AddJob(std::make_unique<BfsProgram>(source));
  };

  // CGraph: one loading order shared by all jobs.
  LtpEngine cgraph(&graph, options);
  add_jobs(cgraph);
  const RunReport cg = cgraph.Run();

  // Seraph-style: shared in-memory graph, but each job streams partitions in its own
  // order.
  BaselineOptions bopts;
  bopts.system = BaselineSystem::kSeraph;
  bopts.engine = options;
  BaselineExecutor seraph(&graph, bopts);
  add_jobs(seraph);
  const RunReport sr = seraph.Run();

  std::printf("four concurrent jobs on a %u-vertex, %zu-edge graph\n\n", edges.num_vertices(),
              edges.num_edges());
  TablePrinter table({"Metric", "Seraph-style", "CGraph (LTP)", "ratio"});
  auto row = [&table](const char* name, double seraph_value, double cgraph_value,
                      const std::string& s, const std::string& c) {
    table.AddRow({name, s, c,
                  seraph_value > 0 ? FormatDouble(cgraph_value / seraph_value, 3) : "-"});
  };
  row("LLC miss rate", sr.cache.miss_rate(), cg.cache.miss_rate(),
      FormatDouble(sr.cache.miss_rate() * 100, 1) + "%",
      FormatDouble(cg.cache.miss_rate() * 100, 1) + "%");
  row("volume into cache", static_cast<double>(sr.cache.miss_bytes),
      static_cast<double>(cg.cache.miss_bytes), HumanBytes(sr.cache.miss_bytes),
      HumanBytes(cg.cache.miss_bytes));
  row("modeled makespan", sr.ModeledMakespan(cost), cg.ModeledMakespan(cost),
      FormatDouble(sr.ModeledMakespan(cost), 0), FormatDouble(cg.ModeledMakespan(cost), 0));
  row("CPU utilization", sr.CpuUtilization(cost), cg.CpuUtilization(cost),
      FormatDouble(sr.CpuUtilization(cost) * 100, 1) + "%",
      FormatDouble(cg.CpuUtilization(cost) * 100, 1) + "%");
  table.Print();

  std::printf("\nper-job iterations (identical results, verified in the test suite):\n");
  for (size_t j = 0; j < cg.jobs.size(); ++j) {
    std::printf("  %-9s cgraph=%llu seraph=%llu\n", cg.jobs[j].job_name.c_str(),
                static_cast<unsigned long long>(cg.jobs[j].iterations),
                static_cast<unsigned long long>(sr.jobs[j].iterations));
  }
  return 0;
}
