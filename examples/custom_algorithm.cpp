// Custom algorithm: implementing a new vertex program against the public API.
//
// The paper's programming model (section 3.4) asks users for three functions —
// IsNotConvergent, Acc, and Compute. This example implements "heat diffusion": vertex 0
// starts hot, and each iteration every vertex absorbs its accumulated incoming heat and
// re-emits a damped share along its out-edges, until flows die out. Structurally it is a
// PageRank-family computation, but with per-edge weighting by the edge's weight rather
// than uniform division — exactly the kind of variant production platforms run dozens of
// concurrently (the paper's motivation).

#include <cstdio>
#include <memory>
#include <numeric>

#include "src/core/ltp_engine.h"
#include "src/core/vertex_program.h"
#include "src/graph/generators.h"
#include "src/partition/partitioned_graph.h"

namespace {

using namespace cgraph;

class HeatDiffusionProgram : public VertexProgram {
 public:
  HeatDiffusionProgram(VertexId seed_vertex, double retention, double epsilon)
      : seed_(seed_vertex), retention_(retention), epsilon_(epsilon) {}

  std::string_view name() const override { return "heat-diffusion"; }

  // Heat accumulates additively.
  AccKind acc_kind() const override { return AccKind::kSum; }

  // The seed starts with one unit of pending heat; everyone else is cold.
  VertexState InitialState(const LocalVertexInfo& info) const override {
    VertexState state;
    state.value = 0.0;
    state.delta = info.global_id == seed_ ? 1.0 : 0.0;
    return state;
  }

  // A vertex is busy while it has non-negligible pending heat (IsNotConvergent).
  bool IsActive(const VertexState& state) const override { return state.delta > epsilon_; }

  // Absorb pending heat; re-emit (1 - retention) of it along out-edges, proportionally
  // to edge weights. The split divides by the vertex's *global* out-weight: a replicated
  // vertex is computed once per partition, each replica emitting only its local edges'
  // share, so the shares must sum to one across replicas.
  void Compute(const GraphPartition& partition, LocalVertexId v,
               std::span<VertexState> states, ScatterOps& ops) override {
    VertexState& state = states[v];
    state.value += retention_ * state.delta;
    const auto targets = partition.out_neighbors(v);
    const auto weights = partition.out_weights(v);
    const double weight_sum = partition.vertex(v).global_out_weight;
    if (targets.empty() || weight_sum <= 0.0) {
      return;
    }
    const double emitted = (1.0 - retention_) * state.delta;
    for (size_t i = 0; i < targets.size(); ++i) {
      ops.Accumulate(targets[i], emitted * weights[i] / weight_sum);
    }
  }

 private:
  VertexId seed_;
  double retention_;
  double epsilon_;
};

}  // namespace

int main() {
  RmatOptions rmat;
  rmat.scale = 11;
  rmat.edge_factor = 8;
  const EdgeList edges = GenerateRmat(rmat);

  PartitionOptions popts;
  popts.num_partitions = 8;
  const PartitionedGraph graph = PartitionedGraphBuilder::Build(edges, popts);

  EngineOptions options;
  options.num_workers = 4;
  LtpEngine engine(&graph, options);
  const JobId job =
      engine.AddJob(std::make_unique<HeatDiffusionProgram>(/*seed_vertex=*/0,
                                                           /*retention=*/0.5,
                                                           /*epsilon=*/1e-9));
  const RunReport report = engine.Run();

  const auto heat = engine.FinalValues(job);
  const double total = std::accumulate(heat.begin(), heat.end(), 0.0);
  size_t warmed = 0;
  for (const double h : heat) {
    if (h > 0.0) {
      ++warmed;
    }
  }
  std::printf("heat diffusion converged in %llu iterations\n",
              static_cast<unsigned long long>(report.jobs[0].iterations));
  std::printf("heat retained in the graph: %.4f (rest left via dangling vertices)\n", total);
  std::printf("vertices warmed: %zu / %u\n", warmed, edges.num_vertices());
  return 0;
}
