// Table 1: dataset properties.
//
// Prints the paper's table side-by-side with the synthetic stand-ins actually used by
// this reproduction (see DESIGN.md for the substitution rationale).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/graph.h"
#include "src/graph/stats.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);

  std::printf("== Table 1: Data Sets Properties ==\n");
  std::printf("(paper columns reproduced; -sim columns are this repo's scaled stand-ins,\n");
  std::printf(" scale shift %d)\n\n", env.scale_shift);

  TablePrinter table({"Data set", "Paper V", "Paper E", "Paper size", "Sim V", "Sim E",
                      "Sim size", "Sim avg deg", "Sim max deg", "Top-1% edge share"});
  for (const auto& spec : bench::BenchDatasets(env)) {
    const EdgeList edges = GenerateDataset(spec);
    const Graph g = Graph::FromEdges(edges);
    const DegreeStats stats = ComputeDegreeStats(g);
    table.AddRow({spec.paper_name, FormatDouble(spec.paper_vertices_m, 1) + " M",
                  FormatDouble(spec.paper_edges_b, 1) + " B",
                  FormatDouble(spec.paper_size_gb, 1) + " G", std::to_string(g.num_vertices()),
                  std::to_string(g.num_edges()), HumanBytes(EstimateStructureBytes(edges)),
                  FormatDouble(stats.average_out_degree, 1),
                  std::to_string(stats.max_out_degree), bench::Pct(stats.edges_on_top_percent_hubs) + "%"});
  }
  table.Print();
  return 0;
}
