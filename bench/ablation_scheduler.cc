// Ablation: decomposing the scheduler's Eq. 1 into its two terms.
//
//   none        — fixed index order, plain vertex-cut partitions (CGraph-without)
//   N(P) only   — priority = jobs registered (theta = 0), core-subgraph layout
//   full Eq. 1  — N(P) + theta * D(P) * C(P), core-subgraph layout
//
// The N(P) term does the temporal-correlation work; the D*C tiebreak accelerates
// convergence by pushing hub-heavy, fast-changing partitions first.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  std::printf("== Ablation: scheduler terms (modeled makespan, normalized to 'none') ==\n\n");
  TablePrinter table({"Data set", "none", "N(P) only", "full Eq.1", "full: LLC miss %"});
  for (const auto& spec : bench::BenchDatasets(env)) {
    const bench::PreparedDataset ds = bench::Prepare(spec, env);

    const RunReport none = bench::RunCgraph(ds, env, env.jobs, /*use_scheduler=*/false);

    EngineOptions n_only = env.Engine();
    n_only.theta_scale = 0.0;
    LtpEngine n_engine(&ds.graph, n_only);
    bench::AddMixJobs(n_engine, ds, env.jobs);
    const RunReport n_report = n_engine.Run();

    const RunReport full = bench::RunCgraph(ds, env, env.jobs, /*use_scheduler=*/true);

    const double base = none.ModeledMakespan(cost);
    table.AddRow({spec.name, "1.000", bench::Norm(n_report.ModeledMakespan(cost), base),
                  bench::Norm(full.ModeledMakespan(cost), base),
                  bench::Pct(full.cache.miss_rate())});
  }
  table.Print();
  return 0;
}
