// Figure 9: total execution time of the four concurrent jobs under CLIP, Nxgraph,
// Seraph, and CGraph, per dataset (normalized to CLIP). The paper's headline: on
// hyperlink14 CGraph improves throughput 3.29x over CLIP, 4.32x over Nxgraph, and 2.31x
// over Seraph.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  std::printf("== Figure 9: total execution time for the four jobs (normalized to CLIP) ==\n\n");
  TablePrinter table({"Data set", "CLIP", "Nxgraph", "Seraph", "CGraph", "CGraph speedup vs"
                      " CLIP/Nx/Seraph"});
  for (const auto& spec : bench::BenchDatasets(env)) {
    const bench::PreparedDataset ds = bench::Prepare(spec, env);
    const double clip =
        bench::RunBaseline(ds, env, BaselineSystem::kClip, env.jobs).ModeledMakespan(cost);
    const double nxgraph =
        bench::RunBaseline(ds, env, BaselineSystem::kNxgraph, env.jobs).ModeledMakespan(cost);
    const double seraph =
        bench::RunBaseline(ds, env, BaselineSystem::kSeraph, env.jobs).ModeledMakespan(cost);
    const double cgraph = bench::RunCgraph(ds, env, env.jobs).ModeledMakespan(cost);
    table.AddRow({spec.name, "1.000", bench::Norm(nxgraph, clip), bench::Norm(seraph, clip),
                  bench::Norm(cgraph, clip),
                  bench::Norm(clip, cgraph) + "x / " + bench::Norm(nxgraph, cgraph) + "x / " +
                      bench::Norm(seraph, cgraph) + "x"});
  }
  table.Print();
  std::printf("\npaper shape: CGraph fastest everywhere; on hyperlink14 the speedups are\n"
              "3.29x (CLIP), 4.32x (Nxgraph), 2.31x (Seraph).\n");
  return 0;
}
