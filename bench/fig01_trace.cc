// Figure 1: concurrent-job trace on a social-network platform.
//
// (a) number of concurrent CGP jobs over a week; (b) ratio of the graph's partitions
// shared by more than k jobs. The paper's production trace is proprietary; this harness
// regenerates both panels from the synthetic trace generator (see DESIGN.md).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/trace/job_trace.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  (void)bench::BenchEnv::FromArgs(argc, argv);

  TraceOptions options;
  const TraceSummary summary = GenerateJobTrace(options);

  std::printf("== Figure 1(a): Number of CGP jobs over time (hourly, sampled every 6h) ==\n");
  TablePrinter jobs_table({"Hour", "Concurrent jobs"});
  for (size_t i = 0; i < summary.points.size(); i += 6) {
    jobs_table.AddRow({FormatDouble(summary.points[i].hour, 0),
                       std::to_string(summary.points[i].concurrent_jobs)});
  }
  jobs_table.Print();
  std::printf("peak concurrent jobs: %u (paper: >20 at peak)\n", summary.peak_concurrent_jobs);
  std::printf("mean concurrent jobs: %s\n\n", FormatDouble(summary.mean_concurrent_jobs, 2).c_str());

  std::printf("== Figure 1(b): Ratio of partitions shared by more than k jobs (%%) ==\n");
  TablePrinter share_table({"Hour", ">1", ">2", ">4", ">8", ">16"});
  for (size_t i = 0; i < summary.points.size(); i += 12) {
    const auto& p = summary.points[i];
    share_table.AddRow({FormatDouble(p.hour, 0), bench::Pct(p.shared_ratio[0]),
                        bench::Pct(p.shared_ratio[1]), bench::Pct(p.shared_ratio[2]),
                        bench::Pct(p.shared_ratio[3]), bench::Pct(p.shared_ratio[4])});
  }
  share_table.Print();
  std::printf("time-average ratio shared by >1 job: %s%% (paper: >75%% of active partitions)\n",
              bench::Pct(summary.mean_shared_by_more_than_one).c_str());
  return 0;
}
