// Figure 17: average per-job execution-time breakdown (vertex processing vs data
// access) on snapshot chains of hyperlink14 (5% change ratio) as the number of jobs
// grows 1 -> 8, for Seraph-VT, Seraph, and CGraph.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs.back();
  std::printf("== Figure 17: per-job breakdown on %s snapshots (5%% change) ==\n\n",
              spec.name.c_str());
  TablePrinter table(
      {"Jobs", "System", "Avg time (model units)", "Vertex processing (%)", "Data access (%)"});

  for (const size_t jobs : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const bench::EvolvingSetup setup = bench::PrepareEvolving(spec, env, jobs, 0.05);
    struct Entry {
      const char* name;
      RunReport report;
    };
    std::vector<Entry> entries;
    entries.push_back({"Seraph-VT", bench::RunBaselineEvolving(setup, env, BaselineSystem::kSeraphVt)});
    entries.push_back({"Seraph", bench::RunBaselineEvolving(setup, env, BaselineSystem::kSeraph)});
    entries.push_back({"CGraph", bench::RunCgraphEvolving(setup, env)});
    for (const auto& [name, report] : entries) {
      double compute = 0.0;
      double access = 0.0;
      for (const auto& job : report.jobs) {
        compute += job.ModeledComputeTime(cost, report.workers);
        access += job.ModeledAccessTime(cost, report.workers);
      }
      const double total = compute + access;
      table.AddRow({std::to_string(jobs), name, FormatDouble(total / jobs, 1),
                    bench::Pct(total > 0 ? compute / total : 0.0),
                    bench::Pct(total > 0 ? access / total : 0.0)});
    }
  }
  table.Print();
  std::printf("\npaper shape: CGraph's data-access share *drops* as jobs grow (more jobs\n"
              "amortize each load); Seraph-VT/Seraph get more access-bound with more jobs.\n");
  return 0;
}
