// Figure 2: the motivation experiment — per-job execution and data-access time on Seraph
// as the number of concurrent jobs grows, normalized against the sequential way (each
// job runs alone in a fresh engine, graph re-streamed from disk).
//
// For each benchmark algorithm, n concurrent copies are submitted together. A job's
// "execution time" is its completion time — with n same-length jobs sharing the machine
// that is the run's modeled makespan — and its data-access time is the access component
// of that makespan. The paper's two observations must reproduce: (1) the concurrent way
// beats the sequential way in total time (about 60% at eight jobs), because one shared
// in-memory structure copy serves every job; (2) the average per-job time nevertheless
// grows with n (cache interference and bandwidth contention), driven by data access.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  // uk-union, as in the paper's section 2.1.
  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs[std::min<size_t>(3, specs.size() - 1)];
  const bench::PreparedDataset ds = bench::Prepare(spec, env);
  std::printf("== Figure 2: per-job cost on Seraph vs number of jobs (dataset %s) ==\n",
              spec.name.c_str());
  std::printf("values normalized to the same algorithm executed the sequential way\n\n");

  const std::vector<std::string> algos = {"pagerank", "sssp", "scc", "bfs"};
  TablePrinter exec_table({"Algorithm", "n=1", "n=2", "n=4", "n=8"});
  TablePrinter access_table({"Algorithm", "n=1", "n=2", "n=4", "n=8"});

  double concurrent_total_8 = 0.0;
  double sequential_total_8 = 0.0;

  for (const auto& algo : algos) {
    // Sequential unit: one cold run (fresh engine, graph streamed from disk).
    BaselineOptions seq_options;
    seq_options.system = BaselineSystem::kSequential;
    seq_options.engine = env.Engine();
    BaselineExecutor sequential(&ds.graph_flat, seq_options);
    sequential.AddJob(MakeProgram(algo, ds.source));
    const RunReport seq_report = sequential.Run();
    const double seq_time = seq_report.ModeledMakespan(cost);
    const double seq_access = seq_report.jobs[0].ModeledAccessTime(cost, seq_report.workers);

    std::vector<std::string> exec_row = {algo};
    std::vector<std::string> access_row = {algo};
    for (const size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      BaselineOptions options;
      options.system = BaselineSystem::kSeraph;
      options.engine = env.Engine();
      BaselineExecutor executor(&ds.graph_flat, options);
      for (size_t i = 0; i < n; ++i) {
        executor.AddJob(MakeProgram(algo, ds.source));
      }
      const RunReport report = executor.Run();
      const double per_job_time = report.ModeledMakespan(cost);
      double access_total = 0.0;
      for (const auto& job : report.jobs) {
        access_total += cost.AccessCost(job.charge);
      }
      const double per_job_access =
          access_total / std::max<uint32_t>(1, std::min(report.workers, cost.bandwidth_channels));
      exec_row.push_back(bench::Norm(per_job_time, seq_time));
      access_row.push_back(bench::Norm(per_job_access, seq_access));
      if (n == 8) {
        concurrent_total_8 += per_job_time;      // Makespan of the 8 concurrent copies.
        sequential_total_8 += 8.0 * seq_time;    // 8 cold runs back to back.
      }
    }
    exec_table.AddRow(exec_row);
    access_table.AddRow(access_row);
  }

  std::printf("-- (a) average execution time of each job --\n");
  exec_table.Print();
  std::printf("\n-- (b) average data access time of each job --\n");
  access_table.Print();
  std::printf(
      "\nconcurrent/sequential total time at 8 jobs: %s (paper: concurrent ~60%% of "
      "sequential)\n",
      bench::Norm(concurrent_total_8, sequential_total_8).c_str());
  return 0;
}
