// Ablation: vertex-id layout. Since partitions are cut from the (core-first,
// source-sorted) edge order, relabeling vertices changes which vertices share partitions.
// Compares the natural R-MAT labeling against degree-descending and BFS relabelings on
// the four-job mix.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/reorder.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs[std::min<size_t>(3, specs.size() - 1)];
  const EdgeList natural = GenerateDataset(spec);
  const uint32_t parts = bench::PartitionCountFor(natural, env);

  std::printf("== Ablation: vertex-id layout on %s (%u partitions) ==\n\n", spec.name.c_str(),
              parts);
  TablePrinter table({"Layout", "Replication", "Makespan (norm)", "LLC miss %"});

  double base_time = 0.0;
  auto run_with = [&](const char* label, const EdgeList& edges) {
    PartitionOptions popts;
    popts.num_partitions = parts;
    const PartitionedGraph graph = PartitionedGraphBuilder::Build(edges, popts);
    const VertexId source = PickSourceVertex(edges);
    LtpEngine engine(&graph, env.Engine());
    for (const std::string& name : BenchmarkJobNames(env.jobs)) {
      engine.AddJob(MakeProgram(name, source));
    }
    const RunReport report = engine.Run();
    const double time = report.ModeledMakespan(cost);
    if (base_time == 0.0) {
      base_time = time;
    }
    table.AddRow({label, FormatDouble(graph.replication_factor(), 2),
                  bench::Norm(time, base_time), bench::Pct(report.cache.miss_rate())});
  };

  run_with("natural (generator ids)", natural);
  run_with("degree-descending", ReorderByDegree(natural).edges);
  run_with("bfs order", ReorderByBfs(natural).edges);
  table.Print();
  std::printf("\nBFS order clusters topologically-close vertices into the same chunks,\n"
              "cutting replication; degree order concentrates hubs like the core-subgraph\n"
              "layout does explicitly.\n");
  return 0;
}
