// Figure 12: total volume of data swapped into the cache for the four jobs, normalized
// to CLIP per dataset. Paper example: CGraph at 47.1% of CLIP on hyperlink14, with CLIP
// itself below Nxgraph/Seraph thanks to reentry.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);

  std::printf("== Figure 12: volume of data swapped into the cache (normalized to CLIP) ==\n\n");
  TablePrinter table({"Data set", "CLIP", "Nxgraph", "Seraph", "CGraph"});
  for (const auto& spec : bench::BenchDatasets(env)) {
    const bench::PreparedDataset ds = bench::Prepare(spec, env);
    const double clip = static_cast<double>(
        bench::RunBaseline(ds, env, BaselineSystem::kClip, env.jobs).cache.miss_bytes);
    const double nxgraph = static_cast<double>(
        bench::RunBaseline(ds, env, BaselineSystem::kNxgraph, env.jobs).cache.miss_bytes);
    const double seraph = static_cast<double>(
        bench::RunBaseline(ds, env, BaselineSystem::kSeraph, env.jobs).cache.miss_bytes);
    const double cgraph =
        static_cast<double>(bench::RunCgraph(ds, env, env.jobs).cache.miss_bytes);
    table.AddRow({spec.name, "1.000", bench::Norm(nxgraph, clip), bench::Norm(seraph, clip),
                  bench::Norm(cgraph, clip)});
  }
  table.Print();
  std::printf("\npaper shape: CLIP below Nxgraph and Seraph (reentry cuts iterations);\n"
              "CGraph lowest of all (47.1%% of CLIP on hyperlink14).\n");
  return 0;
}
