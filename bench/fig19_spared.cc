// Figure 19: ratio of total accessed data (disk->memory plus memory->cache) spared by
// each system relative to executing the same jobs sequentially on Seraph, on snapshot
// chains of hyperlink14. Paper example at eight jobs: CGraph spares 65.9%, Seraph-VT
// 39.5%, Seraph 31.3%.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  auto env = bench::BenchEnv::FromArgs(argc, argv);

  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs.back();
  std::printf("== Figure 19: ratio of spared accessed data (%%) vs sequential Seraph on %s ==\n\n",
              spec.name.c_str());
  TablePrinter table({"Jobs", "Seraph-VT", "Seraph", "CGraph"});
  for (const size_t jobs : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const bench::EvolvingSetup setup = bench::PrepareEvolving(spec, env, jobs, 0.05);
    const double sequential = bench::TotalAccessedBytes(
        bench::RunBaselineEvolving(setup, env, BaselineSystem::kSequential));
    const double vt =
        bench::TotalAccessedBytes(bench::RunBaselineEvolving(setup, env, BaselineSystem::kSeraphVt));
    const double seraph =
        bench::TotalAccessedBytes(bench::RunBaselineEvolving(setup, env, BaselineSystem::kSeraph));
    const double cgraph = bench::TotalAccessedBytes(bench::RunCgraphEvolving(setup, env));
    auto spared = [sequential](double bytes) {
      return sequential <= 0.0 ? 0.0 : 1.0 - bytes / sequential;
    };
    table.AddRow({std::to_string(jobs), bench::Pct(spared(vt)), bench::Pct(spared(seraph)),
                  bench::Pct(spared(cgraph))});
  }
  table.Print();
  std::printf("\npaper shape: savings grow with job count; CGraph >> Seraph-VT > Seraph\n"
              "(paper at 8 jobs: 65.9%% / 39.5%% / 31.3%%).\n");
  return 0;
}
