// Ablation: LLC eviction policy. Paper section 2.2 argues plain LRU swaps out
// frequently-used partitions in favor of one-shot streaming data; the frequency-aware
// policy evicts the least-touched entry within a tail window instead. Measured on the
// four-job mix over every dataset, for Seraph (individual streams, where interference is
// worst) and CGraph.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);

  std::printf("== Ablation: LLC eviction policy (miss rate %%) ==\n\n");
  TablePrinter table({"Data set", "Seraph LRU", "Seraph freq", "CGraph LRU", "CGraph freq"});
  for (const auto& spec : bench::BenchDatasets(env)) {
    const bench::PreparedDataset ds = bench::Prepare(spec, env);
    std::vector<std::string> row = {spec.name};
    for (const bool cgraph : {false, true}) {
      for (const auto policy : {EvictionPolicy::kLru, EvictionPolicy::kFrequencyAware}) {
        if (cgraph) {
          EngineOptions options = env.Engine();
          options.hierarchy.eviction_policy = policy;
          LtpEngine engine(&ds.graph, options);
          bench::AddMixJobs(engine, ds, env.jobs);
          row.push_back(bench::Pct(engine.Run().cache.miss_rate()));
        } else {
          BaselineOptions options;
          options.system = BaselineSystem::kSeraph;
          options.engine = env.Engine();
          options.engine.hierarchy.eviction_policy = policy;
          BaselineExecutor executor(&ds.graph_flat, options);
          bench::AddMixJobs(executor, ds, env.jobs);
          row.push_back(bench::Pct(executor.Run().cache.miss_rate()));
        }
      }
    }
    // Reorder: seraph-lru, seraph-freq, cgraph-lru, cgraph-freq already in order.
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
