// Ablation: edge-placement strategies (docs/partitioning.md). The paper's even-edge
// vertex-cut (section 3.2.1) is compared against hash-by-source, the streaming greedy
// replication-minimizing placement, and degree-aware hashing. Each row reports the
// build-time quality indices (replication factor, edge-cut fraction, edge balance)
// alongside the modeled makespan of the standard job mix on that layout — placement
// quality and runtime cost side by side.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/partition/partitioner.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs.back();
  const EdgeList edges = GenerateDataset(spec);
  const uint32_t parts = bench::PartitionCountFor(edges, env);
  const VertexId source = PickSourceVertex(edges);

  std::printf("== Ablation: edge-placement strategies on %s (%u partitions) ==\n\n",
              spec.name.c_str(), parts);
  TablePrinter table({"Strategy", "Replication", "Edge cut", "Edge balance",
                      "Mirrors", "Makespan (norm)"});

  double base_time = 0.0;
  auto run_with = [&](const char* label, PartitionerKind kind, bool core) {
    PartitionOptions popts;
    popts.num_partitions = parts;
    popts.partitioner = kind;
    popts.core_subgraph = core;
    const PartitionedGraph graph = PartitionedGraphBuilder::Build(edges, popts);
    LtpEngine engine(&graph, env.Engine());
    for (const std::string& name : BenchmarkJobNames(env.jobs)) {
      engine.AddJob(MakeProgram(name, source));
    }
    const RunReport report = engine.Run();
    const double time = report.ModeledMakespan(cost);
    if (base_time == 0.0) {
      base_time = time;
    }
    const PartitionQuality& q = graph.quality();
    table.AddRow({label, FormatDouble(q.replication_factor, 2),
                  FormatDouble(q.edge_cut_fraction, 3),
                  FormatDouble(q.edge_balance, 2), std::to_string(q.mirror_count),
                  bench::Norm(time, base_time)});
  };

  run_with("even_edge + core (paper)", PartitionerKind::kEvenEdge, true);
  run_with("even_edge", PartitionerKind::kEvenEdge, false);
  run_with("hash_source", PartitionerKind::kHashSource, false);
  run_with("greedy", PartitionerKind::kGreedy, false);
  run_with("degree", PartitionerKind::kDegree, false);
  table.Print();
  return 0;
}
