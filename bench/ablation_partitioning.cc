// Ablation: edge-assignment strategies. The paper's even-edge vertex-cut (section 3.2.1)
// is compared against hash-by-source assignment: hashing keeps each vertex's out-edges
// together but inherits the power-law imbalance, which serializes triggers on the
// heaviest partition.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs.back();
  const EdgeList edges = GenerateDataset(spec);
  const uint32_t parts = bench::PartitionCountFor(edges, env);
  const VertexId source = PickSourceVertex(edges);

  std::printf("== Ablation: edge assignment strategies on %s (%u partitions) ==\n\n",
              spec.name.c_str(), parts);
  TablePrinter table({"Strategy", "Replication", "Max/min partition edges", "Makespan (norm)"});

  double base_time = 0.0;
  auto run_with = [&](const char* label, EdgeAssignment assignment, bool core) {
    PartitionOptions popts;
    popts.num_partitions = parts;
    popts.assignment = assignment;
    popts.core_subgraph = core;
    const PartitionedGraph graph = PartitionedGraphBuilder::Build(edges, popts);
    uint64_t max_edges = 0;
    uint64_t min_edges = UINT64_MAX;
    for (const auto& part : graph.partitions()) {
      max_edges = std::max(max_edges, part.num_local_edges());
      min_edges = std::min(min_edges, part.num_local_edges());
    }
    LtpEngine engine(&graph, env.Engine());
    for (const std::string& name : BenchmarkJobNames(env.jobs)) {
      engine.AddJob(MakeProgram(name, source));
    }
    const RunReport report = engine.Run();
    const double time = report.ModeledMakespan(cost);
    if (base_time == 0.0) {
      base_time = time;
    }
    table.AddRow({label, FormatDouble(graph.replication_factor(), 2),
                  std::to_string(max_edges) + " / " + std::to_string(min_edges),
                  bench::Norm(time, base_time)});
  };

  run_with("even-edge chunks + core (paper)", EdgeAssignment::kChunkedEvenEdges, true);
  run_with("even-edge chunks", EdgeAssignment::kChunkedEvenEdges, false);
  run_with("hash by source", EdgeAssignment::kHashBySource, false);
  table.Print();
  return 0;
}
