// Figure 13: disk I/O overhead of the four jobs per system and dataset. The paper's
// shape: in-memory datasets (Twitter/Friendster/uk2007) incur almost no I/O for Seraph
// and CGraph, while the out-of-core datasets (uk-union, hyperlink14) do — and CGraph
// needs less I/O than Seraph by consolidating accesses.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);

  std::printf("== Figure 13: I/O overhead for the four jobs (disk bytes; normalized to CLIP) ==\n\n");
  TablePrinter table({"Data set", "CLIP", "Nxgraph", "Seraph", "CGraph", "CGraph disk"});
  for (const auto& spec : bench::BenchDatasets(env)) {
    const bench::PreparedDataset ds = bench::Prepare(spec, env);
    const double clip = static_cast<double>(
        bench::RunBaseline(ds, env, BaselineSystem::kClip, env.jobs).memory.disk_bytes);
    const double nxgraph = static_cast<double>(
        bench::RunBaseline(ds, env, BaselineSystem::kNxgraph, env.jobs).memory.disk_bytes);
    const double seraph = static_cast<double>(
        bench::RunBaseline(ds, env, BaselineSystem::kSeraph, env.jobs).memory.disk_bytes);
    const RunReport cgraph_report = bench::RunCgraph(ds, env, env.jobs);
    const double cgraph = static_cast<double>(cgraph_report.memory.disk_bytes);
    table.AddRow({spec.name, clip > 0 ? "1.000" : "0", bench::Norm(nxgraph, clip),
                  bench::Norm(seraph, clip), bench::Norm(cgraph, clip),
                  HumanBytes(cgraph_report.memory.disk_bytes)});
  }
  table.Print();
  std::printf("\npaper shape: Seraph/CGraph near zero I/O on the first three datasets (one\n"
              "shared in-memory copy suffices); on uk-union/hyperlink14 CGraph needs less\n"
              "I/O than Seraph by consolidating the jobs' accesses.\n");
  return 0;
}
