// Figure 16: total execution time of eight jobs over a chain of snapshots of
// hyperlink14 as the per-snapshot change ratio grows from 0.005% to 5%, for Seraph-VT,
// Seraph, and CGraph (normalized to Seraph-VT at 0.005%).

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  auto env = bench::BenchEnv::FromArgs(argc, argv);
  env.jobs = 8;
  const CostModel cost = env.Cost();

  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs.back();
  std::printf("== Figure 16: eight jobs over snapshots of %s with changes ==\n", spec.name.c_str());
  std::printf("(normalized to Seraph-VT at change ratio 0.005%%)\n\n");

  TablePrinter table({"Changed edges", "Seraph-VT", "Seraph", "CGraph"});
  double base = 0.0;
  for (const double ratio : {0.00005, 0.0005, 0.005, 0.05}) {
    const bench::EvolvingSetup setup = bench::PrepareEvolving(spec, env, env.jobs, ratio);
    const double vt =
        bench::RunBaselineEvolving(setup, env, BaselineSystem::kSeraphVt).ModeledMakespan(cost);
    const double seraph =
        bench::RunBaselineEvolving(setup, env, BaselineSystem::kSeraph).ModeledMakespan(cost);
    const double cgraph = bench::RunCgraphEvolving(setup, env).ModeledMakespan(cost);
    if (base == 0.0) {
      base = vt;
    }
    table.AddRow({FormatDouble(ratio * 100.0, 3) + "%", bench::Norm(vt, base),
                  bench::Norm(seraph, base), bench::Norm(cgraph, base)});
  }
  table.Print();
  std::printf("\npaper shape: CGraph best at every ratio; its time grows with the ratio\n"
              "(fewer shared partitions across snapshots).\n");
  return 0;
}
