// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one of the paper's tables/figures as stdout rows. The
// harness fixes the comparison protocol: the five scaled stand-in datasets, a simulated
// hierarchy whose capacities scale with the datasets (so the in-memory / out-of-core
// regimes of the paper are preserved), the four-job benchmark mix (PageRank, SSSP, SCC,
// BFS, submitted simultaneously, section 4), and runners for the LTP engine and every
// baseline.
//
// Flags (all optional):
//   --scale-shift=N   uniform dataset scaling (default -2: sixteen times smaller than the
//                     DESIGN.md reference scales; keeps the full suite under minutes)
//   --workers=N       worker threads (default 4)
//   --jobs=N          job-mix size where applicable (default 4)
//   --datasets=N      limit to the first N datasets (default all 5)

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/algorithms/factory.h"
#include "src/baselines/baseline_executor.h"
#include "src/common/strings.h"
#include "src/core/ltp_engine.h"
#include "src/graph/datasets.h"
#include "src/metrics/table_printer.h"
#include "src/partition/partitioned_graph.h"
#include "src/storage/snapshot_store.h"

namespace cgraph::bench {

struct BenchEnv {
  int scale_shift = -2;
  uint32_t workers = 4;
  uint32_t jobs = 4;
  size_t max_datasets = 5;

  static BenchEnv FromArgs(int argc, char** argv) {
    BenchEnv env;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const char* value = nullptr;
      auto match = [&arg, &value](std::string_view prefix) {
        if (!arg.starts_with(prefix)) {
          return false;
        }
        value = arg.data() + prefix.size();
        return true;
      };
      if (match("--scale-shift=")) {
        env.scale_shift = std::atoi(value);
      } else if (match("--workers=")) {
        env.workers = static_cast<uint32_t>(std::atoi(value));
      } else if (match("--jobs=")) {
        env.jobs = static_cast<uint32_t>(std::atoi(value));
      } else if (match("--datasets=")) {
        env.max_datasets = static_cast<size_t>(std::atoi(value));
      }
    }
    return env;
  }

  // Hierarchy capacities scale with 2^shift so cache:data and memory:data ratios stay in
  // the paper's regime: the three smaller datasets fit the memory tier with the 4-job
  // mix, uk-union and hyperlink14 do not (Fig. 13's crossover).
  HierarchyOptions Hierarchy() const {
    const double scale = std::pow(2.0, scale_shift);
    HierarchyOptions h;
    h.cache_capacity_bytes = std::max<uint64_t>(64ull << 10, static_cast<uint64_t>((4ull << 20) * scale));
    h.cache_segment_bytes = std::max<uint64_t>(2ull << 10, h.cache_capacity_bytes / 128);
    // 36 MiB at reference scale: the three smaller datasets (structure + 4 jobs' states)
    // fit, uk-union is marginal, hyperlink14 exceeds it ~2.7x — the paper's regime, where
    // uk-union (68 GB) and hyperlink14 (480 GB) exceed the testbed's 64 GB.
    h.memory_capacity_bytes =
        std::max<uint64_t>(1ull << 20, static_cast<uint64_t>((36ull << 20) * scale));
    return h;
  }

  EngineOptions Engine() const {
    EngineOptions options;
    options.num_workers = workers;
    options.hierarchy = Hierarchy();
    return options;
  }

  CostModel Cost() const { return CostModel{}; }
};

struct PreparedDataset {
  DatasetSpec spec;
  EdgeList edges;
  PartitionedGraph graph;       // Core-subgraph partitioning (CGraph layout).
  PartitionedGraph graph_flat;  // Plain vertex-cut (baselines / CGraph-without).
  VertexId source = 0;
};

inline uint32_t PartitionCountFor(const EdgeList& edges, const BenchEnv& env) {
  // The partitioned structure stores both CSR directions plus replicated vertex records:
  // about 2.2x the flat edge-list estimate.
  const uint64_t structure =
      static_cast<uint64_t>(2.2 * static_cast<double>(EstimateStructureBytes(edges)));
  // Private state per structure byte: ~32 bytes per (replicated) vertex per job over
  // ~16 bytes per edge.
  const double state_ratio =
      edges.num_edges() == 0
          ? 0.25
          : std::min(1.0, 2.5 * static_cast<double>(edges.num_vertices()) /
                              static_cast<double>(edges.num_edges()));
  const HierarchyOptions h = env.Hierarchy();
  return SuitablePartitionCount(structure, h.cache_capacity_bytes, env.jobs, state_ratio,
                                h.cache_capacity_bytes / 8);
}

inline PreparedDataset Prepare(const DatasetSpec& spec, const BenchEnv& env) {
  PreparedDataset ds;
  ds.spec = spec;
  ds.edges = GenerateDataset(spec);
  const uint32_t parts = PartitionCountFor(ds.edges, env);
  PartitionOptions core_opts;
  core_opts.num_partitions = parts;
  core_opts.core_subgraph = true;
  ds.graph = PartitionedGraphBuilder::Build(ds.edges, core_opts);
  PartitionOptions flat_opts;
  flat_opts.num_partitions = parts;
  flat_opts.core_subgraph = false;
  ds.graph_flat = PartitionedGraphBuilder::Build(ds.edges, flat_opts);
  ds.source = PickSourceVertex(ds.edges);
  return ds;
}

inline std::vector<DatasetSpec> BenchDatasets(const BenchEnv& env) {
  auto specs = PaperDatasets(env.scale_shift);
  if (specs.size() > env.max_datasets) {
    specs.resize(env.max_datasets);
  }
  return specs;
}

template <typename ExecutorT>
void AddMixJobs(ExecutorT& executor, const PreparedDataset& ds, size_t count) {
  for (const std::string& name : BenchmarkJobNames(count)) {
    executor.AddJob(MakeProgram(name, ds.source));
  }
}

// Runs the CGraph LTP engine on the dataset with the 4-job mix.
inline RunReport RunCgraph(const PreparedDataset& ds, const BenchEnv& env, size_t jobs,
                           bool use_scheduler = true) {
  EngineOptions options = env.Engine();
  options.use_scheduler = use_scheduler;
  const PartitionedGraph& graph = use_scheduler ? ds.graph : ds.graph_flat;
  LtpEngine engine(&graph, options);
  AddMixJobs(engine, ds, jobs);
  RunReport report = engine.Run();
  report.executor_name = use_scheduler ? "CGraph" : "CGraph-without";
  return report;
}

// Runs a baseline system on the dataset with the job mix.
inline RunReport RunBaseline(const PreparedDataset& ds, const BenchEnv& env,
                             BaselineSystem system, size_t jobs) {
  BaselineOptions options;
  options.system = system;
  options.engine = env.Engine();
  BaselineExecutor executor(&ds.graph_flat, options);
  AddMixJobs(executor, ds, jobs);
  return executor.Run();
}

// --- Evolving-graph (snapshot) experiments, Figs. 16-19. ---

struct EvolvingSetup {
  std::unique_ptr<SnapshotStore> store;
  std::vector<Timestamp> job_times;  // Submit time of job i (binds its snapshot).
  VertexId source = 0;
};

// Builds a snapshot chain: job 0 runs on the base graph; each later job runs on a fresh
// snapshot whose change ratio against the previous snapshot is `change_ratio`
// (section 4.4's protocol).
inline EvolvingSetup PrepareEvolving(const DatasetSpec& spec, const BenchEnv& env,
                                     size_t num_jobs, double change_ratio) {
  EvolvingSetup setup;
  EdgeList edges = GenerateDataset(spec);
  setup.source = PickSourceVertex(edges);
  PartitionOptions popts;
  popts.num_partitions = PartitionCountFor(edges, env);
  popts.core_subgraph = true;
  setup.store =
      std::make_unique<SnapshotStore>(PartitionedGraphBuilder::Build(edges, popts));
  setup.job_times.push_back(0);
  for (size_t i = 1; i < num_jobs; ++i) {
    const Timestamp ts = static_cast<Timestamp>(i) * 10;
    setup.store->CreateSnapshot(ts, change_ratio, 0xE0E0ull + i);
    setup.job_times.push_back(ts);
  }
  return setup;
}

inline RunReport RunCgraphEvolving(const EvolvingSetup& setup, const BenchEnv& env) {
  EngineOptions options = env.Engine();
  LtpEngine engine(setup.store.get(), options);
  const auto names = BenchmarkJobNames(setup.job_times.size());
  for (size_t i = 0; i < setup.job_times.size(); ++i) {
    engine.AddJob(MakeProgram(names[i], setup.source), setup.job_times[i]);
  }
  RunReport report = engine.Run();
  report.executor_name = "CGraph";
  return report;
}

inline RunReport RunBaselineEvolving(const EvolvingSetup& setup, const BenchEnv& env,
                                     BaselineSystem system) {
  BaselineOptions options;
  options.system = system;
  options.engine = env.Engine();
  BaselineExecutor executor(setup.store.get(), options);
  const auto names = BenchmarkJobNames(setup.job_times.size());
  for (size_t i = 0; i < setup.job_times.size(); ++i) {
    executor.AddJob(MakeProgram(names[i], setup.source), setup.job_times[i]);
  }
  return executor.Run();
}

// Total data accessed below the LLC plus disk->memory traffic: the quantity whose
// savings Fig. 19 reports.
inline double TotalAccessedBytes(const RunReport& report) {
  return static_cast<double>(report.cache.miss_bytes + report.memory.disk_bytes);
}

inline std::string Pct(double fraction) { return FormatDouble(fraction * 100.0, 1); }

inline std::string Norm(double value, double base) {
  return base <= 0.0 ? std::string("-") : FormatDouble(value / base, 3);
}

}  // namespace cgraph::bench

#endif  // BENCH_BENCH_COMMON_H_
