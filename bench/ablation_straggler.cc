// Ablation: straggler splitting (paper section 3.2.3, Fig. 6).
//
// With splitting on, a trigger's vertex ranges are consumed by whichever workers come
// free; with it off, each (job, partition) trigger is one task and a skewed job becomes
// the straggler. Modeled time is identical by construction (same work), so this ablation
// reports *wall-clock* trigger time, where the imbalance is real.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/timer.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  auto env = bench::BenchEnv::FromArgs(argc, argv);

  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs.back();
  const bench::PreparedDataset ds = bench::Prepare(spec, env);

  std::printf("== Ablation: straggler splitting on %s (%u workers, wall seconds) ==\n\n",
              spec.name.c_str(), env.workers);
  TablePrinter table({"Configuration", "Wall seconds", "Speedup"});
  double base = 0.0;
  for (const bool split : {false, true}) {
    EngineOptions options = env.Engine();
    options.straggler_split = split;
    // Repeat to stabilize the wall measurement.
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      LtpEngine engine(&ds.graph, options);
      bench::AddMixJobs(engine, ds, env.jobs);
      WallTimer timer;
      engine.Run();
      best = std::min(best, timer.ElapsedSeconds());
    }
    if (base == 0.0) {
      base = best;
    }
    table.AddRow({split ? "dynamic chunks (paper)" : "one task per job",
                  FormatDouble(best, 3), bench::Norm(base, best) + "x"});
  }
  table.Print();
  return 0;
}
