// Figure 15: CPU utilization of the vertex processing for the four jobs — the fraction
// of modeled time the cores spend computing rather than stalled on data. The paper shows
// CGraph's cores almost fully utilized and the baselines starved by data access.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  std::printf("== Figure 15: CPU utilization (%%) for the four jobs ==\n\n");
  TablePrinter table({"Data set", "CLIP", "Nxgraph", "Seraph", "CGraph"});
  for (const auto& spec : bench::BenchDatasets(env)) {
    const bench::PreparedDataset ds = bench::Prepare(spec, env);
    table.AddRow(
        {spec.name,
         bench::Pct(
             bench::RunBaseline(ds, env, BaselineSystem::kClip, env.jobs).CpuUtilization(cost)),
         bench::Pct(
             bench::RunBaseline(ds, env, BaselineSystem::kNxgraph, env.jobs).CpuUtilization(cost)),
         bench::Pct(
             bench::RunBaseline(ds, env, BaselineSystem::kSeraph, env.jobs).CpuUtilization(cost)),
         bench::Pct(bench::RunCgraph(ds, env, env.jobs).CpuUtilization(cost))});
  }
  table.Print();
  std::printf("\npaper shape: CGraph highest on every dataset.\n");
  return 0;
}
