// Ablation: the core-subgraph partitioning threshold (paper section 3.3).
//
// Sweeps the core-degree multiplier (a vertex is "core" above multiplier * average
// degree) and compares against plain vertex-cut partitioning, measuring modeled makespan
// and the volume swapped into the cache for the four-job mix.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs.back();
  const EdgeList edges = GenerateDataset(spec);
  const uint32_t parts = bench::PartitionCountFor(edges, env);
  const VertexId source = PickSourceVertex(edges);

  std::printf("== Ablation: core-subgraph degree threshold on %s ==\n\n", spec.name.c_str());
  TablePrinter table({"Partitioning", "Makespan (norm)", "Cache volume (norm)", "Core partitions"});

  double base_time = 0.0;
  double base_volume = 0.0;
  auto run_with = [&](const char* label, bool core, double multiplier) {
    PartitionOptions popts;
    popts.num_partitions = parts;
    popts.core_subgraph = core;
    popts.core_degree_multiplier = multiplier;
    const PartitionedGraph graph = PartitionedGraphBuilder::Build(edges, popts);
    uint32_t core_count = 0;
    for (const auto& part : graph.partitions()) {
      core_count += part.is_core() ? 1 : 0;
    }
    LtpEngine engine(&graph, env.Engine());
    for (const std::string& name : BenchmarkJobNames(env.jobs)) {
      engine.AddJob(MakeProgram(name, source));
    }
    const RunReport report = engine.Run();
    const double time = report.ModeledMakespan(cost);
    const double volume = static_cast<double>(report.cache.miss_bytes);
    if (base_time == 0.0) {
      base_time = time;
      base_volume = volume;
    }
    table.AddRow({label, bench::Norm(time, base_time), bench::Norm(volume, base_volume),
                  std::to_string(core_count) + "/" + std::to_string(parts)});
  };

  run_with("plain vertex-cut", false, 0.0);
  run_with("core x2", true, 2.0);
  run_with("core x4", true, 4.0);
  run_with("core x8 (default)", true, 8.0);
  run_with("core x16", true, 16.0);
  table.Print();
  return 0;
}
