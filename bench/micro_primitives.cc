// Micro-benchmarks (google-benchmark) for the hot primitives underneath the LTP engine:
// atomic accumulation, cache-simulator touches, partition construction, the sorted push,
// and a full single-partition trigger.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/algorithms/pagerank.h"
#include "src/cache/cache_sim.h"
#include "src/common/prng.h"
#include "src/core/job.h"
#include "src/core/ltp_engine.h"
#include "src/graph/generators.h"
#include "src/partition/partitioned_graph.h"
#include "src/storage/vertex_state.h"

namespace {

using namespace cgraph;

void BM_AtomicAccumulateSum(benchmark::State& state) {
  double slot = 0.0;
  for (auto _ : state) {
    AtomicAccumulate(AccKind::kSum, &slot, 1.0);
  }
  benchmark::DoNotOptimize(slot);
}
BENCHMARK(BM_AtomicAccumulateSum);

void BM_AtomicAccumulateMin(benchmark::State& state) {
  double slot = AccIdentity(AccKind::kMin);
  double v = 1e9;
  for (auto _ : state) {
    AtomicAccumulate(AccKind::kMin, &slot, v);
    v -= 1.0;
  }
  benchmark::DoNotOptimize(slot);
}
BENCHMARK(BM_AtomicAccumulateMin);

void BM_CacheSimTouch(benchmark::State& state) {
  CacheSim cache(1ull << 20, 4ull << 10);
  Xoshiro256 rng(1);
  const ItemKey item{DataKind::kStructure, kSharedOwner, 0, 0};
  for (auto _ : state) {
    cache.TouchSegment(item, static_cast<uint32_t>(rng.NextBounded(1024)), 4096, false);
  }
  benchmark::DoNotOptimize(cache.occupancy());
}
BENCHMARK(BM_CacheSimTouch);

void BM_PartitionBuild(benchmark::State& state) {
  RmatOptions rmat;
  rmat.scale = static_cast<uint32_t>(state.range(0));
  rmat.edge_factor = 8;
  const EdgeList edges = GenerateRmat(rmat);
  PartitionOptions popts;
  popts.num_partitions = 16;
  for (auto _ : state) {
    const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
    benchmark::DoNotOptimize(pg.num_partitions());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(edges.num_edges()));
}
BENCHMARK(BM_PartitionBuild)->Arg(10)->Arg(12);

void BM_PushSort(benchmark::State& state) {
  Xoshiro256 rng(7);
  std::vector<SyncRecord> records(static_cast<size_t>(state.range(0)));
  for (auto& r : records) {
    r.partition = static_cast<PartitionId>(rng.NextBounded(64));
    r.local = static_cast<LocalVertexId>(rng.NextBounded(10000));
    r.delta = rng.NextDouble();
  }
  for (auto _ : state) {
    auto copy = records;
    std::sort(copy.begin(), copy.end(), [](const SyncRecord& a, const SyncRecord& b) {
      if (a.partition != b.partition) {
        return a.partition < b.partition;
      }
      return a.local < b.local;
    });
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PushSort)->Arg(1 << 12)->Arg(1 << 16);

void BM_SinglePageRankIterationish(benchmark::State& state) {
  // End-to-end: one PageRank job over a small partitioned graph; measures the engine's
  // per-edge throughput including trigger, scatter, and push.
  RmatOptions rmat;
  rmat.scale = 11;
  rmat.edge_factor = 8;
  const EdgeList edges = GenerateRmat(rmat);
  PartitionOptions popts;
  popts.num_partitions = 8;
  const PartitionedGraph pg = PartitionedGraphBuilder::Build(edges, popts);
  EngineOptions options;
  options.num_workers = static_cast<uint32_t>(state.range(0));
  uint64_t edge_traversals = 0;
  for (auto _ : state) {
    LtpEngine engine(&pg, options);
    engine.AddJob(std::make_unique<PageRankProgram>(0.85, 1e-4));
    const RunReport report = engine.Run();
    edge_traversals += report.jobs[0].edge_traversals;
  }
  state.SetItemsProcessed(static_cast<int64_t>(edge_traversals));
}
BENCHMARK(BM_SinglePageRankIterationish)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
