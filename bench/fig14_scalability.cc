// Figure 14: scalability of the four jobs on hyperlink14 as workers grow 1 -> 32,
// normalized to CLIP with one worker. Compute scales with cores; data access only up to
// the memory-bandwidth saturation width — so data-heavy systems flatten early while
// CGraph keeps scaling until compute-bound.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs.back();

  std::printf("== Figure 14: scalability on %s (normalized to CLIP @ 1 worker) ==\n\n",
              spec.name.c_str());
  TablePrinter table({"Workers", "CLIP", "Nxgraph", "Seraph", "CGraph"});

  double clip_w1 = 0.0;
  for (const uint32_t workers : {1u, 2u, 4u, 8u, 16u, 32u}) {
    env.workers = workers;
    const bench::PreparedDataset ds = bench::Prepare(spec, env);
    const double clip =
        bench::RunBaseline(ds, env, BaselineSystem::kClip, env.jobs).ModeledMakespan(cost);
    const double nxgraph =
        bench::RunBaseline(ds, env, BaselineSystem::kNxgraph, env.jobs).ModeledMakespan(cost);
    const double seraph =
        bench::RunBaseline(ds, env, BaselineSystem::kSeraph, env.jobs).ModeledMakespan(cost);
    const double cgraph = bench::RunCgraph(ds, env, env.jobs).ModeledMakespan(cost);
    if (workers == 1) {
      clip_w1 = clip;
    }
    table.AddRow({std::to_string(workers), bench::Norm(clip, clip_w1),
                  bench::Norm(nxgraph, clip_w1), bench::Norm(seraph, clip_w1),
                  bench::Norm(cgraph, clip_w1)});
  }
  table.Print();
  std::printf("\npaper shape: CGraph scales best (its lower byte traffic defers the\n"
              "bandwidth wall); the baselines flatten once access cost dominates.\n");
  return 0;
}
