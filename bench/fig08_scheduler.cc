// Figure 8: contribution of the core-subgraph scheduler — total execution time of the
// four-job mix with and without it (CGraph vs CGraph-without), per dataset. The paper
// reports CGraph at e.g. 60.5% of CGraph-without on hyperlink14.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  std::printf("== Figure 8: execution time for the four jobs without/with the scheduler ==\n");
  std::printf("(normalized: CGraph-without = 100%%)\n\n");
  TablePrinter table({"Data set", "CGraph-without", "CGraph", "CGraph/without (%)"});
  for (const auto& spec : bench::BenchDatasets(env)) {
    const bench::PreparedDataset ds = bench::Prepare(spec, env);
    const RunReport without = bench::RunCgraph(ds, env, env.jobs, /*use_scheduler=*/false);
    const RunReport with = bench::RunCgraph(ds, env, env.jobs, /*use_scheduler=*/true);
    const double t_without = without.ModeledMakespan(cost);
    const double t_with = with.ModeledMakespan(cost);
    table.AddRow({spec.name, "100.0", bench::Pct(t_with / t_without),
                  bench::Pct(t_with / t_without)});
  }
  table.Print();
  std::printf("\npaper shape: CGraph <= CGraph-without everywhere; biggest win on the\n"
              "largest dataset (60.5%% on hyperlink14).\n");
  return 0;
}
