// Figure 11: last-level cache miss rate of the four-job mix under each system, per
// dataset. Paper example: 89.5% (Nxgraph) vs 29.6% (CGraph) on hyperlink14.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);

  std::printf("== Figure 11: LLC miss rate (%%) for the four jobs ==\n\n");
  TablePrinter table({"Data set", "CLIP", "Nxgraph", "Seraph", "CGraph"});
  for (const auto& spec : bench::BenchDatasets(env)) {
    const bench::PreparedDataset ds = bench::Prepare(spec, env);
    table.AddRow(
        {spec.name,
         bench::Pct(bench::RunBaseline(ds, env, BaselineSystem::kClip, env.jobs).cache.miss_rate()),
         bench::Pct(
             bench::RunBaseline(ds, env, BaselineSystem::kNxgraph, env.jobs).cache.miss_rate()),
         bench::Pct(
             bench::RunBaseline(ds, env, BaselineSystem::kSeraph, env.jobs).cache.miss_rate()),
         bench::Pct(bench::RunCgraph(ds, env, env.jobs).cache.miss_rate())});
  }
  table.Print();
  std::printf("\npaper shape: CLIP >= Nxgraph >= Seraph > CGraph on every dataset.\n");
  return 0;
}
