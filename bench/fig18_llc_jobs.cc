// Figure 18: LLC miss rate vs number of jobs on snapshot chains of hyperlink14 (5%
// change ratio) for Seraph-VT, Seraph, and CGraph. Paper example: CGraph's miss rate
// with eight jobs is only 32.8% of its one-job rate, while the baselines' rates rise.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  auto env = bench::BenchEnv::FromArgs(argc, argv);

  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs.back();
  std::printf("== Figure 18: LLC miss rate (%%) vs number of jobs on %s snapshots ==\n\n",
              spec.name.c_str());
  TablePrinter table({"Jobs", "Seraph-VT", "Seraph", "CGraph"});
  double cgraph_one = 0.0;
  double cgraph_eight = 0.0;
  for (const size_t jobs : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const bench::EvolvingSetup setup = bench::PrepareEvolving(spec, env, jobs, 0.05);
    const double vt =
        bench::RunBaselineEvolving(setup, env, BaselineSystem::kSeraphVt).cache.miss_rate();
    const double seraph =
        bench::RunBaselineEvolving(setup, env, BaselineSystem::kSeraph).cache.miss_rate();
    const double cgraph = bench::RunCgraphEvolving(setup, env).cache.miss_rate();
    if (jobs == 1) {
      cgraph_one = cgraph;
    }
    if (jobs == 8) {
      cgraph_eight = cgraph;
    }
    table.AddRow({std::to_string(jobs), bench::Pct(vt), bench::Pct(seraph), bench::Pct(cgraph)});
  }
  table.Print();
  std::printf("\nCGraph miss rate at 8 jobs / 1 job: %s (paper: 32.8%%)\n",
              bench::Pct(cgraph_one > 0 ? cgraph_eight / cgraph_one : 0.0).c_str());
  return 0;
}
