// Figure 10: execution-time breakdown (vertex processing vs data access) of each job on
// hyperlink14 under the four systems. The paper shows vertex processing dominating only
// under CGraph.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cgraph;
  const auto env = bench::BenchEnv::FromArgs(argc, argv);
  const CostModel cost = env.Cost();

  const auto specs = bench::BenchDatasets(env);
  const auto& spec = specs.back();  // hyperlink14-sim by default.
  const bench::PreparedDataset ds = bench::Prepare(spec, env);

  std::printf("== Figure 10: execution time breakdown per job on %s ==\n\n", spec.name.c_str());
  TablePrinter table({"System", "Job", "Vertex processing (%)", "Data access (%)"});

  auto add_rows = [&table, &cost](const RunReport& report, const char* system) {
    for (const auto& job : report.jobs) {
      const double compute = job.ModeledComputeTime(cost, report.workers);
      const double access = job.ModeledAccessTime(cost, report.workers);
      const double total = compute + access;
      table.AddRow({system, job.job_name, bench::Pct(total > 0 ? compute / total : 0.0),
                    bench::Pct(total > 0 ? access / total : 0.0)});
    }
  };

  add_rows(bench::RunBaseline(ds, env, BaselineSystem::kClip, env.jobs), "CLIP");
  add_rows(bench::RunBaseline(ds, env, BaselineSystem::kNxgraph, env.jobs), "Nxgraph");
  add_rows(bench::RunBaseline(ds, env, BaselineSystem::kSeraph, env.jobs), "Seraph");
  add_rows(bench::RunCgraph(ds, env, env.jobs), "CGraph");
  table.Print();
  std::printf("\npaper shape: under CGraph the vertex-processing share dominates; under\n"
              "CLIP/Nxgraph/Seraph data access dominates.\n");
  return 0;
}
