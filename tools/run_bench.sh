#!/usr/bin/env bash
# Runs a fixed concurrent-jobs LTP workload through cgraph_cli and emits BENCH_ltp.json,
# a machine-readable throughput record for tracking the engine's perf trajectory across
# PRs. The workload mixes up-front jobs with online arrivals so the job-service admission
# path is part of what gets measured.
#
# Each worker-count point is run 3 times and the *median* wall clock is recorded (wall
# noise on shared CI machines easily exceeds the deltas being tracked), sweeping
# workers in {1, 4}. The headline jobs_per_second_wall is the workers=4 median so the
# trajectory stays comparable with records written before the sweep existed. Modeled
# columns are identical across runs and worker counts by construction (asserted by the
# engine's tests), so they are taken from the last run.
#
# Usage: tools/run_bench.sh [BUILD_DIR] (default: build/release-all, configured on demand)
# Env:   OUT=path/to/record.json   override the output path (default: BENCH_ltp.json)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build/release-all}
OUT=${OUT:-BENCH_ltp.json}

# Fixed workload: deterministic R-MAT graph, four heterogeneous jobs up front, two online
# arrivals. Big enough for a stable wall-clock signal, small enough for CI.
RMAT="14,16,7"
JOBS="pagerank,sssp,wcc,bfs"
ARRIVALS="kcore@200,ppr@400"
PARTITIONS=32
WORKERS_SWEEP="1 4"
RUNS_PER_POINT=3

if [ ! -x "$BUILD_DIR/tools/cgraph_cli" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j --target cgraph_cli >/dev/null
fi

CSV=$(mktemp)
WALLS=$(mktemp)
trap 'rm -f "$CSV" "$WALLS"' EXIT

# CSV columns: executor,job,iterations,vertex_computes,edge_traversals,push_updates,
# compute_units,hit_bytes,mem_bytes,disk_bytes,modeled_compute,modeled_access,
# modeled_time,wall_seconds. The "total" row aggregates all jobs.
run_point() {  # $1 = workers; prints the total row's wall_seconds
  "$BUILD_DIR/tools/cgraph_cli" --rmat="$RMAT" --jobs="$JOBS" --arrivals="$ARRIVALS" \
    --partitions="$PARTITIONS" --workers="$1" --csv="$CSV" >/dev/null
  awk -F, '$2 == "total" { print $14 }' "$CSV"
}

: > "$WALLS"  # Lines of "<workers> <median_wall>".
for W in $WORKERS_SWEEP; do
  POINT=$(mktemp)
  for _ in $(seq "$RUNS_PER_POINT"); do
    run_point "$W" >> "$POINT"
  done
  MEDIAN=$(sort -g "$POINT" | awk -v n="$RUNS_PER_POINT" 'NR == int((n + 1) / 2)')
  echo "$W $MEDIAN" >> "$WALLS"
  rm -f "$POINT"
done

# $CSV now holds the last (workers=4) run; modeled columns are run-invariant.
awk -F, -v rmat="$RMAT" -v jobs="$JOBS" -v arrivals="$ARRIVALS" \
    -v partitions="$PARTITIONS" -v sweep="$WORKERS_SWEEP" -v runs="$RUNS_PER_POINT" \
    -v walls_file="$WALLS" '
  NR > 1 && $2 != "total" { n_jobs++ }
  $2 == "total" {
    compute_units = $7; below_cache = $9 + $10; modeled = $13
  }
  END {
    n_points = 0
    headline_wall = 0
    while ((getline line < walls_file) > 0) {
      split(line, f, " ")
      ++n_points
      point_workers[n_points] = f[1]
      point_wall[n_points] = f[2]
      if (f[1] == 4) {  # The headline stays pinned to workers=4 (config.workers),
        headline_wall = f[2]  # whatever the sweep grows to contain.
      }
    }
    wall_tp = headline_wall > 0 ? n_jobs / headline_wall : 0
    modeled_tp = modeled > 0 ? n_jobs / modeled : 0
    printf "{\n"
    printf "  \"bench\": \"ltp_throughput\",\n"
    printf "  \"config\": {\"rmat\": \"%s\", \"jobs\": \"%s\", \"arrivals\": \"%s\", ", rmat, jobs, arrivals
    printf "\"partitions\": %d, \"workers\": 4, ", partitions
    printf "\"workers_sweep\": \"%s\", \"runs_per_point\": %d},\n", sweep, runs
    printf "  \"jobs_completed\": %d,\n", n_jobs
    printf "  \"runs\": [\n"
    for (i = 1; i <= n_points; ++i) {
      tp = point_wall[i] > 0 ? n_jobs / point_wall[i] : 0
      printf "    {\"workers\": %d, \"wall_seconds_median\": %s, \"jobs_per_second_wall\": %.4f}%s\n", \
             point_workers[i], point_wall[i], tp, i < n_points ? "," : ""
    }
    printf "  ],\n"
    printf "  \"wall_seconds\": %s,\n", headline_wall
    printf "  \"jobs_per_second_wall\": %.4f,\n", wall_tp
    printf "  \"jobs_per_modeled_unit\": %.6g,\n", modeled_tp
    printf "  \"total_compute_units\": %s,\n", compute_units
    printf "  \"bytes_below_cache\": %s\n", below_cache
    printf "}\n"
  }' "$CSV" > "$OUT"

echo "wrote $OUT"
