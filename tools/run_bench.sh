#!/usr/bin/env bash
# Runs a fixed concurrent-jobs LTP workload through cgraph_cli and emits BENCH_ltp.json,
# a machine-readable throughput record for tracking the engine's perf trajectory across
# PRs. The workload mixes up-front jobs with online arrivals so the job-service admission
# path is part of what gets measured.
#
# Usage: tools/run_bench.sh [BUILD_DIR] (default: build/release-all, configured on demand)
# Env:   OUT=path/to/record.json   override the output path (default: BENCH_ltp.json)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build/release-all}
OUT=${OUT:-BENCH_ltp.json}

# Fixed workload: deterministic R-MAT graph, four heterogeneous jobs up front, two online
# arrivals. Big enough for a stable wall-clock signal, small enough for CI.
RMAT="14,16,7"
JOBS="pagerank,sssp,wcc,bfs"
ARRIVALS="kcore@200,ppr@400"
PARTITIONS=32
WORKERS=4

if [ ! -x "$BUILD_DIR/tools/cgraph_cli" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j --target cgraph_cli >/dev/null
fi

CSV=$(mktemp)
trap 'rm -f "$CSV"' EXIT
"$BUILD_DIR/tools/cgraph_cli" --rmat="$RMAT" --jobs="$JOBS" --arrivals="$ARRIVALS" \
  --partitions="$PARTITIONS" --workers="$WORKERS" --csv="$CSV" >/dev/null

# CSV columns: executor,job,iterations,vertex_computes,edge_traversals,push_updates,
# compute_units,hit_bytes,mem_bytes,disk_bytes,modeled_compute,modeled_access,
# modeled_time,wall_seconds. The "total" row aggregates all jobs.
awk -F, -v rmat="$RMAT" -v jobs="$JOBS" -v arrivals="$ARRIVALS" \
    -v partitions="$PARTITIONS" -v workers="$WORKERS" '
  NR > 1 && $2 != "total" { n_jobs++ }
  $2 == "total" {
    compute_units = $7; below_cache = $9 + $10; modeled = $13; wall = $14
  }
  END {
    wall_tp = wall > 0 ? n_jobs / wall : 0
    modeled_tp = modeled > 0 ? n_jobs / modeled : 0
    printf "{\n"
    printf "  \"bench\": \"ltp_throughput\",\n"
    printf "  \"config\": {\"rmat\": \"%s\", \"jobs\": \"%s\", \"arrivals\": \"%s\", ", rmat, jobs, arrivals
    printf "\"partitions\": %d, \"workers\": %d},\n", partitions, workers
    printf "  \"jobs_completed\": %d,\n", n_jobs
    printf "  \"wall_seconds\": %s,\n", wall
    printf "  \"jobs_per_second_wall\": %.4f,\n", wall_tp
    printf "  \"jobs_per_modeled_unit\": %.6g,\n", modeled_tp
    printf "  \"total_compute_units\": %s,\n", compute_units
    printf "  \"bytes_below_cache\": %s\n", below_cache
    printf "}\n"
  }' "$CSV" > "$OUT"

echo "wrote $OUT"
