#!/usr/bin/env bash
# Runs a fixed concurrent-jobs LTP workload through cgraph_cli and emits BENCH_ltp.json,
# a machine-readable throughput record for tracking the engine's perf trajectory across
# PRs. The workload mixes up-front jobs with online arrivals so the job-service admission
# path is part of what gets measured.
#
# Each worker-count point is run 3 times and the *median* wall clock is recorded (wall
# noise on shared CI machines easily exceeds the deltas being tracked), sweeping
# workers in {1, 4}. The headline jobs_per_second_wall is the workers=4 median so the
# trajectory stays comparable with records written before the sweep existed. Modeled
# columns are identical across runs and worker counts by construction (asserted by the
# engine's tests), so they are taken from the last run.
#
# The record additionally carries an "admission" section comparing the fifo, overlap,
# and predict job-admission policies (docs/scheduling.md) on a staggered-arrival
# overlapping job mix with a constrained slot pool: per-policy mean/max wait steps
# (deterministic for a fixed workload), scored-admission overlap means (only contended
# decisions are scored; unscored jobs are excluded from the mean), wall seconds, and
# jobs/s.
#
# Usage: tools/run_bench.sh [BUILD_DIR] (default: build/release-all, configured on demand)
# Env:   OUT=path/to/record.json   override the output path (default: BENCH_ltp.json)
#        SMOKE=1                   skip the throughput sweep; run only the admission
#                                  comparison at workers=1 and FAIL unless overlap
#                                  reduces mean wait steps vs fifo AND predict reduces
#                                  them further vs overlap (wait steps are modeled, so
#                                  this is deterministic — CI uses it as a
#                                  policy-regression gate)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build/release-all}
OUT=${OUT:-BENCH_ltp.json}

# Fixed workload: deterministic R-MAT graph, four heterogeneous jobs up front, two online
# arrivals. Big enough for a stable wall-clock signal, small enough for CI.
RMAT="14,16,7"
JOBS="pagerank,sssp,wcc,bfs"
ARRIVALS="kcore@200,ppr@400"
PARTITIONS=32
WORKERS_SWEEP="1 4"
RUNS_PER_POINT=3

# Admission-comparison workload: two full-coverage jobs hold both slots while a
# staggered queue of repeated traversal and full-coverage jobs builds up, so the
# footprint-aware policies have real reordering room and the predict policy sees
# completed history for every queued type (each repeats an earlier submission).
# Traversals root at the default source — deterministically the lowest-positive-
# out-degree vertex, so their footprints stay localized instead of replicating
# hub-style into every partition. Wait steps are a pure function of the modeled
# schedule: identical across runs, machines, and worker counts.
ADM_RMAT="12,8"
ADM_JOBS="pagerank,wcc"
ADM_ARRIVALS="bfs@5,sssp@10,wcc@15,bfs@20,sssp@25,wcc@30"
ADM_PARTITIONS=32
ADM_MAX_JOBS=2

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
# Always refresh the CLI: an existing binary may predate flags this script uses.
cmake --build "$BUILD_DIR" -j --target cgraph_cli >/dev/null

CSV=$(mktemp)
WALLS=$(mktemp)
ADMISSION=$(mktemp)
ADM_POINT=$(mktemp)
ADM_CSV=$(mktemp)
trap 'rm -f "$CSV" "$WALLS" "$ADMISSION" "$ADM_POINT" "$ADM_CSV"' EXIT

# CSV columns: executor,job,iterations,vertex_computes,edge_traversals,push_updates,
# compute_units,hit_bytes,mem_bytes,disk_bytes,modeled_compute,modeled_access,
# modeled_time,wall_seconds. The "total" row aggregates all jobs.
run_point() {  # $1 = workers; prints the total row's wall_seconds
  "$BUILD_DIR/tools/cgraph_cli" --rmat="$RMAT" --jobs="$JOBS" --arrivals="$ARRIVALS" \
    --partitions="$PARTITIONS" --workers="$1" --csv="$CSV" >/dev/null
  awk -F, '$2 == "total" { print $14 }' "$CSV"
}

run_admission() {  # $1 = policy, $2 = workers;
  # prints "mean_wait max_wait scored_jobs mean_admit_overlap wall_seconds".
  # mean_admit_overlap already aggregates *scored* admissions only (the CLI skips
  # unscored jobs, whose admit_overlap = 0 was never computed by any decision).
  local stdout mean max scored overlap wall
  stdout=$("$BUILD_DIR/tools/cgraph_cli" --rmat="$ADM_RMAT" \
    --jobs="$ADM_JOBS" --arrivals="$ADM_ARRIVALS" --partitions="$ADM_PARTITIONS" \
    --max-jobs="$ADM_MAX_JOBS" --workers="$2" --admission="$1" --csv="$ADM_CSV")
  mean=$(sed -n 's/.*mean_wait_steps=\([0-9.]*\).*/\1/p' <<<"$stdout")
  max=$(sed -n 's/.*max_wait_steps=\([0-9]*\).*/\1/p' <<<"$stdout")
  scored=$(sed -n 's/.*scored_jobs=\([0-9]*\).*/\1/p' <<<"$stdout")
  overlap=$(sed -n 's/.*mean_admit_overlap=\([0-9.]*\).*/\1/p' <<<"$stdout")
  wall=$(awk -F, '$2 == "total" { print $14 }' "$ADM_CSV")
  if [ -z "$mean" ] || [ -z "$max" ] || [ -z "$scored" ] || [ -z "$overlap" ] ||
     [ -z "$wall" ]; then
    echo "error: could not parse admission stats from cgraph_cli output" >&2
    exit 1
  fi
  echo "$mean $max $scored $overlap $wall"
}

if [ "${SMOKE:-0}" = "1" ]; then
  # Policy-regression gate: wait steps are modeled, so a single workers=1 run of each
  # policy is enough, and the comparisons are exact. (Plain command + file, not command
  # substitution, so an exit inside run_admission aborts the script.)
  run_admission fifo 1 > "$ADM_POINT"
  read -r FIFO_MEAN FIFO_MAX FIFO_SCORED FIFO_OVERLAP FIFO_WALL < "$ADM_POINT"
  run_admission overlap 1 > "$ADM_POINT"
  read -r OV_MEAN OV_MAX OV_SCORED OV_OVERLAP OV_WALL < "$ADM_POINT"
  run_admission predict 1 > "$ADM_POINT"
  read -r PR_MEAN PR_MAX PR_SCORED PR_OVERLAP PR_WALL < "$ADM_POINT"
  echo "admission smoke (workers=1): fifo mean_wait=$FIFO_MEAN max=$FIFO_MAX;" \
       "overlap mean_wait=$OV_MEAN max=$OV_MAX;" \
       "predict mean_wait=$PR_MEAN max=$PR_MAX"
  awk -v f="$FIFO_MEAN" -v o="$OV_MEAN" 'BEGIN { exit (o < f) ? 0 : 1 }' || {
    echo "FAIL: overlap admission no longer reduces mean wait steps vs fifo" >&2
    exit 1
  }
  awk -v o="$OV_MEAN" -v p="$PR_MEAN" 'BEGIN { exit (p < o) ? 0 : 1 }' || {
    echo "FAIL: predict admission no longer reduces mean wait steps vs overlap" >&2
    exit 1
  }
  # FIFO never scores an admission; the footprint-aware policies must have scored the
  # contended ones (the scored flag separates those from unscored zero-overlap jobs).
  if [ "$FIFO_SCORED" != "0" ] || [ "$OV_SCORED" = "0" ] || [ "$PR_SCORED" = "0" ]; then
    echo "FAIL: scored-admission counts are wrong (fifo=$FIFO_SCORED overlap=$OV_SCORED predict=$PR_SCORED)" >&2
    exit 1
  fi
  echo "OK: overlap reduces mean wait steps ($FIFO_MEAN -> $OV_MEAN)," \
       "predict reduces them further ($OV_MEAN -> $PR_MEAN)"
  exit 0
fi

: > "$WALLS"  # Lines of "<workers> <median_wall>".
for W in $WORKERS_SWEEP; do
  POINT=$(mktemp)
  for _ in $(seq "$RUNS_PER_POINT"); do
    run_point "$W" >> "$POINT"
  done
  MEDIAN=$(sort -g "$POINT" | awk -v n="$RUNS_PER_POINT" 'NR == int((n + 1) / 2)')
  echo "$W $MEDIAN" >> "$WALLS"
  rm -f "$POINT"
done

# Admission comparison at the headline worker count.
run_admission fifo 4 > "$ADM_POINT"
read -r FIFO_MEAN FIFO_MAX FIFO_SCORED FIFO_OVERLAP FIFO_WALL < "$ADM_POINT"
run_admission overlap 4 > "$ADM_POINT"
read -r OV_MEAN OV_MAX OV_SCORED OV_OVERLAP OV_WALL < "$ADM_POINT"
run_admission predict 4 > "$ADM_POINT"
read -r PR_MEAN PR_MAX PR_SCORED PR_OVERLAP PR_WALL < "$ADM_POINT"
# Jobs in the admission workload, derived from its report (per-job CSV rows) so the
# count cannot drift from ADM_JOBS/ADM_ARRIVALS edits.
ADM_NUM_JOBS=$(awk -F, 'NR > 1 && $2 != "total"' "$ADM_CSV" | wc -l)
emit_policy() {  # $1 name, $2 mean, $3 max, $4 scored, $5 overlap, $6 wall, $7 trailing comma
  awk -v name="$1" -v n="$ADM_NUM_JOBS" -v mean="$2" -v max="$3" -v scored="$4" \
      -v overlap="$5" -v wall="$6" -v comma="$7" \
    'BEGIN { printf "    \"%s\": {\"mean_wait_steps\": %s, \"max_wait_steps\": %s, \"scored_jobs\": %s, \"mean_admit_overlap_scored\": %s, \"wall_seconds\": %s, \"jobs_per_second_wall\": %.4f}%s\n", name, mean, max, scored, overlap, wall, (wall > 0 ? n / wall : 0), comma }'
}
{
  printf '  "admission": {\n'
  printf '    "config": {"rmat": "%s", "source": "low-degree-default", "jobs": "%s", "arrivals": "%s", ' \
         "$ADM_RMAT" "$ADM_JOBS" "$ADM_ARRIVALS"
  printf '"partitions": %d, "max_jobs": %d, "workers": 4},\n' "$ADM_PARTITIONS" "$ADM_MAX_JOBS"
  emit_policy fifo "$FIFO_MEAN" "$FIFO_MAX" "$FIFO_SCORED" "$FIFO_OVERLAP" "$FIFO_WALL" ","
  emit_policy overlap "$OV_MEAN" "$OV_MAX" "$OV_SCORED" "$OV_OVERLAP" "$OV_WALL" ","
  emit_policy predict "$PR_MEAN" "$PR_MAX" "$PR_SCORED" "$PR_OVERLAP" "$PR_WALL" ""
  printf '  }\n'
} > "$ADMISSION"

# $CSV still holds the last (workers=4) sweep run; modeled columns are run-invariant.
awk -F, -v rmat="$RMAT" -v jobs="$JOBS" -v arrivals="$ARRIVALS" \
    -v partitions="$PARTITIONS" -v sweep="$WORKERS_SWEEP" -v runs="$RUNS_PER_POINT" \
    -v walls_file="$WALLS" '
  NR > 1 && $2 != "total" { n_jobs++ }
  $2 == "total" {
    compute_units = $7; below_cache = $9 + $10; modeled = $13
  }
  END {
    n_points = 0
    headline_wall = 0
    while ((getline line < walls_file) > 0) {
      split(line, f, " ")
      ++n_points
      point_workers[n_points] = f[1]
      point_wall[n_points] = f[2]
      if (f[1] == 4) {  # The headline stays pinned to workers=4 (config.workers),
        headline_wall = f[2]  # whatever the sweep grows to contain.
      }
    }
    wall_tp = headline_wall > 0 ? n_jobs / headline_wall : 0
    modeled_tp = modeled > 0 ? n_jobs / modeled : 0
    printf "{\n"
    printf "  \"bench\": \"ltp_throughput\",\n"
    printf "  \"config\": {\"rmat\": \"%s\", \"jobs\": \"%s\", \"arrivals\": \"%s\", ", rmat, jobs, arrivals
    printf "\"partitions\": %d, \"workers\": 4, ", partitions
    printf "\"workers_sweep\": \"%s\", \"runs_per_point\": %d},\n", sweep, runs
    printf "  \"jobs_completed\": %d,\n", n_jobs
    printf "  \"runs\": [\n"
    for (i = 1; i <= n_points; ++i) {
      tp = point_wall[i] > 0 ? n_jobs / point_wall[i] : 0
      printf "    {\"workers\": %d, \"wall_seconds_median\": %s, \"jobs_per_second_wall\": %.4f}%s\n", \
             point_workers[i], point_wall[i], tp, i < n_points ? "," : ""
    }
    printf "  ],\n"
    printf "  \"wall_seconds\": %s,\n", headline_wall
    printf "  \"jobs_per_second_wall\": %.4f,\n", wall_tp
    printf "  \"jobs_per_modeled_unit\": %.6g,\n", modeled_tp
    printf "  \"total_compute_units\": %s,\n", compute_units
    printf "  \"bytes_below_cache\": %s,\n", below_cache
  }' "$CSV" > "$OUT"
cat "$ADMISSION" >> "$OUT"
echo "}" >> "$OUT"

echo "wrote $OUT"
