#!/usr/bin/env bash
# Runs a fixed concurrent-jobs LTP workload through cgraph_cli and emits BENCH_ltp.json,
# a machine-readable throughput record for tracking the engine's perf trajectory across
# PRs. The workload mixes up-front jobs with online arrivals so the job-service admission
# path is part of what gets measured.
#
# Each worker-count point is run 3 times and the *median* wall clock is recorded (wall
# noise on shared CI machines easily exceeds the deltas being tracked), sweeping
# workers in {1, 4}. The headline jobs_per_second_wall / wall_seconds are the *best*
# sweep point (lowest median wall), with best_workers recording which point that was —
# the per-worker medians live in "runs", keyed by worker count, so the headline is an
# explicit aggregate rather than an alias of whichever point ran last. Modeled columns
# are identical across runs and worker counts by construction (asserted by the engine's
# tests), so they are taken from the last run.
#
# The record additionally carries an "admission" section comparing the fifo, overlap,
# and predict job-admission policies (docs/scheduling.md) on a staggered-arrival
# overlapping job mix with a constrained slot pool: per-policy mean/max wait steps
# (deterministic for a fixed workload), scored-admission overlap means (only contended
# decisions are scored; unscored jobs are excluded from the mean), wall seconds, and
# jobs/s — and a "service" section from a graph-service daemon replay (docs/service.md):
# a 1000-request bursty arrival trace driven through cgraph_cli --serve, recording
# p50/p95/p99/mean completion latency in scheduling steps (deterministic), the query
# fan-in dedup ratio, shed counts, and sustained completed-requests/s (wall). The replay
# runs 3 times and the median-wall run is recorded (the step/latency figures are
# identical across runs by construction).
#
# An "execution" section compares the bsp and async iteration models
# (docs/execution_modes.md) on the monotonic job mix: modeled compute units and push
# updates (exact, machine-independent), 3x-median walls and jobs/s, the async re-drain /
# deferred-push diagnostics, and an async service-daemon replay of a monotonic request
# mix.
#
# A "robustness" section (docs/robustness.md) records the fault-injection recovery
# story on the service graph: a mid-run injected trigger-stage fault recovered from an
# iteration-boundary checkpoint, with byte-identity of the recovered run's compute
# columns and converged values vs a fault-free run recorded as booleans, plus the
# injected/recovered counters and the modeled checkpoint overhead ratio at the
# documented K=8 cadence. All fields are modeled — exact and machine-independent.
#
# A "partition" section (docs/partitioning.md) records the build-time quality indices
# (edge-cut fraction, replication factor, mirror count, edge/vertex balance) of every
# edge-placement strategy on the headline graph, plus a partitioner x admission-policy
# ablation on the admission workload: the layout decides which partitions each job's
# footprint touches, so the policies' reordering room shifts with the partitioner. All
# fields are modeled — exact and machine-independent.
#
# Usage: tools/run_bench.sh [BUILD_DIR] (default: build/release-all, configured on demand)
# Env:   OUT=path/to/record.json   override the output path (default: BENCH_ltp.json)
#        SMOKE=1                   skip the full sweep; run the deterministic CI gates:
#                                  (1) admission policy ladder — overlap must reduce
#                                  mean wait steps vs fifo, predict further vs overlap
#                                  (modeled, exact); (2) multi-worker scaling — the
#                                  workers=4 median wall must not exceed the workers=1
#                                  median by more than 5% (guards the oversubscription
#                                  regression where extra workers cost throughput);
#                                  (3) service fan-in — a repeated-query daemon trace
#                                  must report dedup_ratio > 0 and account for every
#                                  request; (4) execution mode — async must spend fewer
#                                  modeled compute units than bsp on the monotonic mix
#                                  (exact); (5) fault recovery — tools/fault_smoke.sh:
#                                  an injected per-job fault must recover from its
#                                  checkpoint with results byte-identical to a clean
#                                  run, and K=8 checkpointing must cost <= 5% of
#                                  modeled time; (6) partitioner — the default layout
#                                  must be byte-identical to an explicit
#                                  --partitioner=even_edge run (modeled CSV columns),
#                                  and greedy placement must strictly beat even_edge
#                                  on replication factor (exact)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build/release-all}
OUT=${OUT:-BENCH_ltp.json}

# Fixed workload: deterministic R-MAT graph, four heterogeneous jobs up front, two online
# arrivals. Big enough for a stable wall-clock signal, small enough for CI.
RMAT="14,16,7"
JOBS="pagerank,sssp,wcc,bfs"
ARRIVALS="kcore@200,ppr@400"
PARTITIONS=32
WORKERS_SWEEP="1 4"
RUNS_PER_POINT=3

# Admission-comparison workload: two full-coverage jobs hold both slots while a
# staggered queue of repeated traversal and full-coverage jobs builds up, so the
# footprint-aware policies have real reordering room and the predict policy sees
# completed history for every queued type (each repeats an earlier submission).
# Traversals root at the default source — deterministically the lowest-positive-
# out-degree vertex, so their footprints stay localized instead of replicating
# hub-style into every partition. Wait steps are a pure function of the modeled
# schedule: identical across runs, machines, and worker counts.
ADM_RMAT="12,8"
ADM_JOBS="pagerank,wcc"
ADM_ARRIVALS="bfs@5,sssp@10,wcc@15,bfs@20,sssp@25,wcc@30"
ADM_PARTITIONS=32
ADM_MAX_JOBS=2

# Service-daemon workload: a bursty 1000-request trace over a 4-program mix and a small
# source pool, so identical queries recur while earlier ones are still in flight and the
# query fan-in path gets real coverage. Latency percentiles are scheduling-step figures
# (deterministic); only wall seconds and sustained requests/s vary by machine.
SVC_RMAT="12,8"
SVC_JOBS="pagerank,sssp,wcc,bfs"
SVC_TRACE_JOBS=1000
SVC_PATTERN=bursty
SVC_BURST=32
SVC_GAP=2
SVC_SOURCES=8
SVC_SEED=42
SVC_PARTITIONS=16
SVC_QUEUE_BOUND=64

# Execution-mode workload: the monotonic mix on the headline graph
# (docs/execution_modes.md). Compute units and push updates are modeled and
# run-invariant; only walls need the median-of-3. The async service replay swaps the
# daemon's request mix for an all-monotonic one (the CLI rejects async requests for
# non-monotonic programs).
EXEC_JOBS="sssp,wcc,kcore"
EXEC_PARTITIONS=32
EXEC_STALENESS=1
EXEC_SVC_JOBS="sssp,wcc,bfs,kcore"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
# Always refresh the CLI: an existing binary may predate flags this script uses.
cmake --build "$BUILD_DIR" -j --target cgraph_cli >/dev/null

CSV=$(mktemp)
WALLS=$(mktemp)
ADMISSION=$(mktemp)
ADM_POINT=$(mktemp)
ADM_CSV=$(mktemp)
SERVICE=$(mktemp)
trap 'rm -f "$CSV" "$WALLS" "$ADMISSION" "$ADM_POINT" "$ADM_CSV" "$SERVICE"' EXIT

# CSV columns: executor,job,iterations,vertex_computes,edge_traversals,push_updates,
# compute_units,hit_bytes,mem_bytes,disk_bytes,modeled_compute,modeled_access,
# modeled_time,wall_seconds. The "total" row aggregates all jobs.
run_point() {  # $1 = workers; prints the total row's wall_seconds
  "$BUILD_DIR/tools/cgraph_cli" --rmat="$RMAT" --jobs="$JOBS" --arrivals="$ARRIVALS" \
    --partitions="$PARTITIONS" --workers="$1" --csv="$CSV" >/dev/null
  awk -F, '$2 == "total" { print $14 }' "$CSV"
}

run_admission() {  # $1 = policy, $2 = workers, $3... = extra flags;
  # prints "mean_wait max_wait scored_jobs mean_admit_overlap wall_seconds".
  # mean_admit_overlap already aggregates *scored* admissions only (the CLI skips
  # unscored jobs, whose admit_overlap = 0 was never computed by any decision).
  local stdout mean max scored overlap wall
  stdout=$("$BUILD_DIR/tools/cgraph_cli" --rmat="$ADM_RMAT" \
    --jobs="$ADM_JOBS" --arrivals="$ADM_ARRIVALS" --partitions="$ADM_PARTITIONS" \
    --max-jobs="$ADM_MAX_JOBS" --workers="$2" --admission="$1" --csv="$ADM_CSV" \
    "${@:3}")
  mean=$(sed -n 's/.*mean_wait_steps=\([0-9.]*\).*/\1/p' <<<"$stdout")
  max=$(sed -n 's/.*max_wait_steps=\([0-9]*\).*/\1/p' <<<"$stdout")
  scored=$(sed -n 's/.*scored_jobs=\([0-9]*\).*/\1/p' <<<"$stdout")
  overlap=$(sed -n 's/.*mean_admit_overlap=\([0-9.]*\).*/\1/p' <<<"$stdout")
  wall=$(awk -F, '$2 == "total" { print $14 }' "$ADM_CSV")
  if [ -z "$mean" ] || [ -z "$max" ] || [ -z "$scored" ] || [ -z "$overlap" ] ||
     [ -z "$wall" ]; then
    echo "error: could not parse admission stats from cgraph_cli output" >&2
    exit 1
  fi
  echo "$mean $max $scored $overlap $wall"
}

run_service() {  # $1 = workers, $2... = extra flags; prints the "service:" summary line
  local workers=$1 stdout line
  shift
  stdout=$("$BUILD_DIR/tools/cgraph_cli" --serve --rmat="$SVC_RMAT" --jobs="$SVC_JOBS" \
    --trace-jobs="$SVC_TRACE_JOBS" --trace-pattern="$SVC_PATTERN" \
    --trace-burst="$SVC_BURST" --trace-gap="$SVC_GAP" --trace-sources="$SVC_SOURCES" \
    --trace-seed="$SVC_SEED" --partitions="$SVC_PARTITIONS" \
    --queue-bound="$SVC_QUEUE_BOUND" --workers="$workers" "$@")
  line=$(grep '^service:' <<<"$stdout")
  if [ -z "$line" ]; then
    echo "error: cgraph_cli --serve printed no service summary" >&2
    exit 1
  fi
  echo "$line"
}

svc_field() {  # $1 = service line, $2 = field name; prints its numeric value
  sed -n "s/.* $2=\\([0-9.]*\\).*/\\1/p" <<<"$1"
}

# Runs the service replay RUNS_PER_POINT times and prints the summary line of the
# median-wall run. The step/latency figures are deterministic for a fixed trace, so any
# run carries them verbatim — the median only de-noises the wall-clock fields.
run_service_median() {  # args forwarded to run_service
  local lines line
  lines=$(mktemp)
  for _ in $(seq "$RUNS_PER_POINT"); do
    line=$(run_service "$@")
    echo "$(svc_field "$line" wall_seconds) $line" >> "$lines"
  done
  sort -g "$lines" |
    awk -v n="$RUNS_PER_POINT" 'NR == int((n + 1) / 2) { $1 = ""; sub(/^ /, ""); print }'
  rm -f "$lines"
}

run_exec() {  # $1 = workers, $2... = extra flags; prints "cu push mtime wall" (total row)
  "$BUILD_DIR/tools/cgraph_cli" --rmat="$RMAT" --jobs="$EXEC_JOBS" \
    --partitions="$EXEC_PARTITIONS" --workers="$1" --csv="$CSV" "${@:2}" >/dev/null
  awk -F, '$2 == "total" { print $7, $6, $13, $14 }' "$CSV"
}

if [ "${SMOKE:-0}" = "1" ]; then
  # Policy-regression gate: wait steps are modeled, so a single workers=1 run of each
  # policy is enough, and the comparisons are exact. (Plain command + file, not command
  # substitution, so an exit inside run_admission aborts the script.)
  run_admission fifo 1 > "$ADM_POINT"
  read -r FIFO_MEAN FIFO_MAX FIFO_SCORED FIFO_OVERLAP FIFO_WALL < "$ADM_POINT"
  run_admission overlap 1 > "$ADM_POINT"
  read -r OV_MEAN OV_MAX OV_SCORED OV_OVERLAP OV_WALL < "$ADM_POINT"
  run_admission predict 1 > "$ADM_POINT"
  read -r PR_MEAN PR_MAX PR_SCORED PR_OVERLAP PR_WALL < "$ADM_POINT"
  echo "admission smoke (workers=1): fifo mean_wait=$FIFO_MEAN max=$FIFO_MAX;" \
       "overlap mean_wait=$OV_MEAN max=$OV_MAX;" \
       "predict mean_wait=$PR_MEAN max=$PR_MAX"
  awk -v f="$FIFO_MEAN" -v o="$OV_MEAN" 'BEGIN { exit (o < f) ? 0 : 1 }' || {
    echo "FAIL: overlap admission no longer reduces mean wait steps vs fifo" >&2
    exit 1
  }
  awk -v o="$OV_MEAN" -v p="$PR_MEAN" 'BEGIN { exit (p < o) ? 0 : 1 }' || {
    echo "FAIL: predict admission no longer reduces mean wait steps vs overlap" >&2
    exit 1
  }
  # FIFO never scores an admission; the footprint-aware policies must have scored the
  # contended ones (the scored flag separates those from unscored zero-overlap jobs).
  if [ "$FIFO_SCORED" != "0" ] || [ "$OV_SCORED" = "0" ] || [ "$PR_SCORED" = "0" ]; then
    echo "FAIL: scored-admission counts are wrong (fifo=$FIFO_SCORED overlap=$OV_SCORED predict=$PR_SCORED)" >&2
    exit 1
  fi
  echo "OK: overlap reduces mean wait steps ($FIFO_MEAN -> $OV_MEAN)," \
       "predict reduces them further ($OV_MEAN -> $PR_MEAN)"

  # Scaling gate: more workers must never cost throughput. Median-of-3 per point; the
  # 5% tolerance absorbs CI wall noise without letting a real oversubscription
  # regression (historically ~4% at workers=4 on single-core runners, and unboundedly
  # worse the more the pool oversubscribes) slip through.
  SCALE_W1=""
  SCALE_W4=""
  for W in 1 4; do
    POINT=$(mktemp)
    for _ in $(seq "$RUNS_PER_POINT"); do
      run_point "$W" >> "$POINT"
    done
    MEDIAN=$(sort -g "$POINT" | awk -v n="$RUNS_PER_POINT" 'NR == int((n + 1) / 2)')
    rm -f "$POINT"
    if [ "$W" = 1 ]; then SCALE_W1=$MEDIAN; else SCALE_W4=$MEDIAN; fi
  done
  echo "scaling smoke: workers=1 median ${SCALE_W1}s, workers=4 median ${SCALE_W4}s"
  awk -v w1="$SCALE_W1" -v w4="$SCALE_W4" 'BEGIN { exit (w4 <= w1 * 1.05) ? 0 : 1 }' || {
    echo "FAIL: workers=4 wall ($SCALE_W4 s) exceeds workers=1 ($SCALE_W1 s) by >5%" >&2
    exit 1
  }
  echo "OK: workers=4 keeps pace with workers=1 (${SCALE_W1}s -> ${SCALE_W4}s)"

  # Service fan-in gate: the repeated-query daemon trace must coalesce something, and
  # every request must be accounted for (completed + shed + failed == total; failed is
  # 0 here — no faults are injected — but the identity is the daemon's real accounting
  # invariant, docs/robustness.md). All modeled quantities — exact and
  # machine-independent.
  SVC_LINE=$(run_service_median 1)
  SVC_TOTAL=$(svc_field "$SVC_LINE" requests)
  SVC_DONE=$(svc_field "$SVC_LINE" completed)
  SVC_SHED=$(svc_field "$SVC_LINE" shed)
  SVC_FAILED=$(svc_field "$SVC_LINE" failed)
  SVC_DEDUP=$(svc_field "$SVC_LINE" dedup_ratio)
  echo "service smoke (workers=1): requests=$SVC_TOTAL completed=$SVC_DONE" \
       "shed=$SVC_SHED failed=$SVC_FAILED dedup_ratio=$SVC_DEDUP"
  awk -v d="$SVC_DEDUP" 'BEGIN { exit (d > 0) ? 0 : 1 }' || {
    echo "FAIL: service daemon coalesced nothing on a repeated-query trace (dedup_ratio=$SVC_DEDUP)" >&2
    exit 1
  }
  if [ "$((SVC_DONE + SVC_SHED + SVC_FAILED))" != "$SVC_TOTAL" ]; then
    echo "FAIL: service requests unaccounted for (completed=$SVC_DONE + shed=$SVC_SHED + failed=$SVC_FAILED != $SVC_TOTAL)" >&2
    exit 1
  fi
  echo "OK: service daemon coalesces (dedup_ratio=$SVC_DEDUP) and accounts for every request"

  # Execution-mode gate: async must spend fewer modeled compute units than bsp on the
  # monotonic mix (exact and machine-independent — compute units don't depend on worker
  # count or wall noise).
  read -r BSP_CU BSP_PUSH _ _ <<<"$(run_exec 1)"
  read -r AS_CU AS_PUSH _ _ <<<"$(run_exec 1 --execution=async --staleness="$EXEC_STALENESS")"
  echo "execution smoke (workers=1): bsp compute_units=$BSP_CU push=$BSP_PUSH;" \
       "async compute_units=$AS_CU push=$AS_PUSH"
  if [ "$AS_CU" -ge "$BSP_CU" ]; then
    echo "FAIL: async execution no longer reduces compute units (bsp=$BSP_CU async=$AS_CU)" >&2
    exit 1
  fi
  echo "OK: async reduces compute units ($BSP_CU -> $AS_CU)"

  # Fault-recovery gate: injected per-job fault must recover from its checkpoint with
  # byte-identical results, and K=8 checkpointing must stay within 5% of modeled time
  # (tools/fault_smoke.sh, docs/robustness.md).
  tools/fault_smoke.sh "$BUILD_DIR"

  # Partitioner gate (docs/partitioning.md): the default layout must be byte-identical
  # to an explicit --partitioner=even_edge run on the headline workload (modeled CSV
  # columns 1-13; the wall-clock column is excluded), and the greedy streaming
  # placement must strictly beat even_edge on replication factor. Both checks are
  # modeled — exact and machine-independent.
  PART_DIR=$(mktemp -d)
  "$BUILD_DIR/tools/cgraph_cli" --rmat="$RMAT" --jobs="$JOBS" --arrivals="$ARRIVALS" \
    --partitions="$PARTITIONS" --workers=1 --csv="$PART_DIR/default.csv" \
    > "$PART_DIR/default.out"
  "$BUILD_DIR/tools/cgraph_cli" --rmat="$RMAT" --jobs="$JOBS" --arrivals="$ARRIVALS" \
    --partitions="$PARTITIONS" --workers=1 --partitioner=even_edge \
    --csv="$PART_DIR/even_edge.csv" >/dev/null
  if ! diff <(cut -d, -f1-13 "$PART_DIR/default.csv") \
            <(cut -d, -f1-13 "$PART_DIR/even_edge.csv") >/dev/null; then
    echo "FAIL: --partitioner=even_edge is not byte-identical to the default layout" >&2
    rm -rf "$PART_DIR"
    exit 1
  fi
  EE_LINE=$(grep '^partition:' "$PART_DIR/default.out")
  GR_LINE=$("$BUILD_DIR/tools/cgraph_cli" --rmat="$RMAT" --jobs=bfs \
    --partitions="$PARTITIONS" --partitioner=greedy --csv="$CSV" | grep '^partition:')
  rm -rf "$PART_DIR"
  EE_RF=$(svc_field "$EE_LINE" replication_factor)
  GR_RF=$(svc_field "$GR_LINE" replication_factor)
  echo "partition smoke: even_edge replication_factor=$EE_RF greedy=$GR_RF"
  awk -v e="$EE_RF" -v g="$GR_RF" 'BEGIN { exit (g < e) ? 0 : 1 }' || {
    echo "FAIL: greedy placement no longer beats even_edge on replication factor (even_edge=$EE_RF greedy=$GR_RF)" >&2
    exit 1
  }
  echo "OK: default layout is byte-identical to even_edge;" \
       "greedy replicates less ($EE_RF -> $GR_RF)"
  exit 0
fi

: > "$WALLS"  # Lines of "<workers> <median_wall>".
for W in $WORKERS_SWEEP; do
  POINT=$(mktemp)
  for _ in $(seq "$RUNS_PER_POINT"); do
    run_point "$W" >> "$POINT"
  done
  MEDIAN=$(sort -g "$POINT" | awk -v n="$RUNS_PER_POINT" 'NR == int((n + 1) / 2)')
  echo "$W $MEDIAN" >> "$WALLS"
  rm -f "$POINT"
done

# Admission comparison at the headline worker count.
run_admission fifo 4 > "$ADM_POINT"
read -r FIFO_MEAN FIFO_MAX FIFO_SCORED FIFO_OVERLAP FIFO_WALL < "$ADM_POINT"
run_admission overlap 4 > "$ADM_POINT"
read -r OV_MEAN OV_MAX OV_SCORED OV_OVERLAP OV_WALL < "$ADM_POINT"
run_admission predict 4 > "$ADM_POINT"
read -r PR_MEAN PR_MAX PR_SCORED PR_OVERLAP PR_WALL < "$ADM_POINT"
# Jobs in the admission workload, derived from its report (per-job CSV rows) so the
# count cannot drift from ADM_JOBS/ADM_ARRIVALS edits.
ADM_NUM_JOBS=$(awk -F, 'NR > 1 && $2 != "total"' "$ADM_CSV" | wc -l)
emit_policy() {  # $1 name, $2 mean, $3 max, $4 scored, $5 overlap, $6 wall, $7 trailing comma
  awk -v name="$1" -v n="$ADM_NUM_JOBS" -v mean="$2" -v max="$3" -v scored="$4" \
      -v overlap="$5" -v wall="$6" -v comma="$7" \
    'BEGIN { printf "    \"%s\": {\"mean_wait_steps\": %s, \"max_wait_steps\": %s, \"scored_jobs\": %s, \"mean_admit_overlap_scored\": %s, \"wall_seconds\": %s, \"jobs_per_second_wall\": %.4f}%s\n", name, mean, max, scored, overlap, wall, (wall > 0 ? n / wall : 0), comma }'
}
{
  printf '  "admission": {\n'
  printf '    "config": {"rmat": "%s", "source": "low-degree-default", "jobs": "%s", "arrivals": "%s", ' \
         "$ADM_RMAT" "$ADM_JOBS" "$ADM_ARRIVALS"
  printf '"partitions": %d, "max_jobs": %d, "workers": 4},\n' "$ADM_PARTITIONS" "$ADM_MAX_JOBS"
  emit_policy fifo "$FIFO_MEAN" "$FIFO_MAX" "$FIFO_SCORED" "$FIFO_OVERLAP" "$FIFO_WALL" ","
  emit_policy overlap "$OV_MEAN" "$OV_MAX" "$OV_SCORED" "$OV_OVERLAP" "$OV_WALL" ","
  emit_policy predict "$PR_MEAN" "$PR_MAX" "$PR_SCORED" "$PR_OVERLAP" "$PR_WALL" ""
  printf '  },\n'
} > "$ADMISSION"

# Service-daemon replay at the headline worker count, median wall of 3 runs. Everything
# except wall_seconds and sustained_jobs_per_second is deterministic for the fixed trace.
SVC_LINE=$(run_service_median 4)
{
  printf '  "service": {\n'
  printf '    "config": {"rmat": "%s", "jobs": "%s", "trace_jobs": %d, "pattern": "%s", ' \
         "$SVC_RMAT" "$SVC_JOBS" "$SVC_TRACE_JOBS" "$SVC_PATTERN"
  printf '"burst": %d, "gap": %d, "sources": %d, "seed": %d, "partitions": %d, ' \
         "$SVC_BURST" "$SVC_GAP" "$SVC_SOURCES" "$SVC_SEED" "$SVC_PARTITIONS"
  printf '"queue_bound": %d, "workers": 4},\n' "$SVC_QUEUE_BOUND"
  printf '    "requests": %s,\n' "$(svc_field "$SVC_LINE" requests)"
  printf '    "completed": %s,\n' "$(svc_field "$SVC_LINE" completed)"
  printf '    "shed": %s,\n' "$(svc_field "$SVC_LINE" shed)"
  printf '    "coalesced": %s,\n' "$(svc_field "$SVC_LINE" coalesced)"
  printf '    "executed_jobs": %s,\n' "$(svc_field "$SVC_LINE" executed_jobs)"
  printf '    "dedup_ratio": %s,\n' "$(svc_field "$SVC_LINE" dedup_ratio)"
  printf '    "p50_latency_steps": %s,\n' "$(svc_field "$SVC_LINE" p50)"
  printf '    "p95_latency_steps": %s,\n' "$(svc_field "$SVC_LINE" p95)"
  printf '    "p99_latency_steps": %s,\n' "$(svc_field "$SVC_LINE" p99)"
  printf '    "mean_latency_steps": %s,\n' "$(svc_field "$SVC_LINE" mean)"
  printf '    "final_step": %s,\n' "$(svc_field "$SVC_LINE" final_step)"
  printf '    "wall_seconds": %s,\n' "$(svc_field "$SVC_LINE" wall_seconds)"
  printf '    "sustained_jobs_per_second": %s\n' \
         "$(svc_field "$SVC_LINE" sustained_jobs_per_second)"
  printf '  },\n'
} > "$SERVICE"

# Robustness record: the fault_smoke.sh scenario (docs/robustness.md) with its
# counters and equivalence checks captured as data. A trigger-stage fault injected
# mid-flight into the wcc job recovers from its --checkpoint-every=2 checkpoint; the
# equivalence booleans compare the recovered run against a fault-free run on the
# schedule-invariant compute columns (CSV fields 1-7) and the converged values (the
# mix is min-accumulator only, so equality is exact). The overhead ratio is from a
# separate clean run at the documented K=8 cadence. Everything here is modeled.
ROBUSTNESS=$(mktemp)
ROB_DIR=$(mktemp -d)
trap 'rm -f "$CSV" "$WALLS" "$ADMISSION" "$ADM_POINT" "$ADM_CSV" "$SERVICE" "$ROBUSTNESS"; rm -rf "$ROB_DIR"' EXIT
ROB_JOBS="sssp,wcc,bfs"
ROB_FAULT="trigger@60:1"
ROB_CHECKPOINT_EVERY=2
"$BUILD_DIR/tools/cgraph_cli" --rmat="$SVC_RMAT" --jobs="$ROB_JOBS" \
  --partitions="$SVC_PARTITIONS" --csv="$ROB_DIR/clean.csv" \
  --values-out="$ROB_DIR/clean.values" >/dev/null
ROB_LINE=$("$BUILD_DIR/tools/cgraph_cli" --rmat="$SVC_RMAT" --jobs="$ROB_JOBS" \
  --partitions="$SVC_PARTITIONS" --checkpoint-every="$ROB_CHECKPOINT_EVERY" \
  --inject-fault="$ROB_FAULT" --csv="$ROB_DIR/fault.csv" \
  --values-out="$ROB_DIR/fault.values" | grep '^robustness:')
COLUMNS_MATCH=false
diff <(cut -d, -f1-7 "$ROB_DIR/clean.csv") <(cut -d, -f1-7 "$ROB_DIR/fault.csv") \
  >/dev/null && COLUMNS_MATCH=true
VALUES_MATCH=false
diff "$ROB_DIR/clean.values" "$ROB_DIR/fault.values" >/dev/null && VALUES_MATCH=true
ROB_OVERHEAD=$("$BUILD_DIR/tools/cgraph_cli" --rmat="$SVC_RMAT" --jobs="$ROB_JOBS" \
  --partitions="$SVC_PARTITIONS" --checkpoint-every=8 |
  sed -n 's/.*checkpoint_overhead_ratio=\([0-9.]*\).*/\1/p')
{
  printf '  "robustness": {\n'
  printf '    "config": {"rmat": "%s", "jobs": "%s", "partitions": %d, ' \
         "$SVC_RMAT" "$ROB_JOBS" "$SVC_PARTITIONS"
  printf '"fault": "%s", "checkpoint_every": %d},\n' "$ROB_FAULT" "$ROB_CHECKPOINT_EVERY"
  printf '    "injected_faults": %s,\n' "$(svc_field "$ROB_LINE" injected)"
  printf '    "recoveries": %s,\n' "$(svc_field "$ROB_LINE" recoveries)"
  printf '    "unrecovered": %s,\n' "$(svc_field "$ROB_LINE" unrecovered)"
  printf '    "checkpoints": %s,\n' "$(svc_field "$ROB_LINE" checkpoints)"
  printf '    "checkpoint_bytes": %s,\n' "$(svc_field "$ROB_LINE" checkpoint_bytes)"
  printf '    "recovered_compute_columns_identical": %s,\n' "$COLUMNS_MATCH"
  printf '    "recovered_values_identical": %s,\n' "$VALUES_MATCH"
  printf '    "checkpoint_overhead_ratio_k8": %s\n' "$ROB_OVERHEAD"
  printf '  },\n'
} > "$ROBUSTNESS"

# Execution-mode comparison: bsp vs async on the monotonic mix (headline graph,
# workers=4). Compute units and push updates are modeled (run-invariant, taken from the
# last run); walls are median-of-3. The async diagnostics come from the CLI's
# parseable "execution:" line, and the async service replay reuses the daemon workload
# with an all-monotonic request mix.
EXECUTION=$(mktemp)
trap 'rm -f "$CSV" "$WALLS" "$ADMISSION" "$ADM_POINT" "$ADM_CSV" "$SERVICE" "$ROBUSTNESS" "$EXECUTION"; rm -rf "$ROB_DIR"' EXIT
EXEC_POINT=$(mktemp)
: > "$EXEC_POINT"
for _ in $(seq "$RUNS_PER_POINT"); do
  run_exec 4 >> "$EXEC_POINT"
done
BSP_CU=$(awk 'NR == 1 { print $1 }' "$EXEC_POINT")
BSP_PUSH=$(awk 'NR == 1 { print $2 }' "$EXEC_POINT")
BSP_MTIME=$(awk 'NR == 1 { print $3 }' "$EXEC_POINT")
BSP_WALL=$(awk '{ print $4 }' "$EXEC_POINT" | sort -g |
           awk -v n="$RUNS_PER_POINT" 'NR == int((n + 1) / 2)')
: > "$EXEC_POINT"
for _ in $(seq "$RUNS_PER_POINT"); do
  run_exec 4 --execution=async --staleness="$EXEC_STALENESS" >> "$EXEC_POINT"
done
AS_CU=$(awk 'NR == 1 { print $1 }' "$EXEC_POINT")
AS_PUSH=$(awk 'NR == 1 { print $2 }' "$EXEC_POINT")
AS_MTIME=$(awk 'NR == 1 { print $3 }' "$EXEC_POINT")
AS_WALL=$(awk '{ print $4 }' "$EXEC_POINT" | sort -g |
          awk -v n="$RUNS_PER_POINT" 'NR == int((n + 1) / 2)')
rm -f "$EXEC_POINT"
EXEC_LINE=$("$BUILD_DIR/tools/cgraph_cli" --rmat="$RMAT" --jobs="$EXEC_JOBS" \
  --partitions="$EXEC_PARTITIONS" --workers=4 --execution=async \
  --staleness="$EXEC_STALENESS" --csv="$CSV" | grep '^execution:')
EXEC_SVC_LINE=$(run_service_median 4 --jobs="$EXEC_SVC_JOBS" --execution=async \
  --staleness="$EXEC_STALENESS")
EXEC_NUM_JOBS=$(awk -F, 'NR > 1 && $2 != "total"' "$CSV" | wc -l)
{
  printf '  "execution": {\n'
  printf '    "config": {"rmat": "%s", "jobs": "%s", "partitions": %d, "workers": 4, ' \
         "$RMAT" "$EXEC_JOBS" "$EXEC_PARTITIONS"
  printf '"staleness": %d, "runs_per_point": %d},\n' "$EXEC_STALENESS" "$RUNS_PER_POINT"
  awk -v n="$EXEC_NUM_JOBS" -v cu="$BSP_CU" -v push="$BSP_PUSH" -v mtime="$BSP_MTIME" \
      -v wall="$BSP_WALL" \
    'BEGIN { printf "    \"bsp\": {\"compute_units\": %s, \"push_updates\": %s, \"modeled_time\": %s, \"jobs_per_modeled_unit\": %.6g, \"wall_seconds_median\": %s, \"jobs_per_second_wall\": %.4f},\n", cu, push, mtime, (mtime > 0 ? n / mtime : 0), wall, (wall > 0 ? n / wall : 0) }'
  awk -v n="$EXEC_NUM_JOBS" -v cu="$AS_CU" -v push="$AS_PUSH" -v mtime="$AS_MTIME" \
      -v wall="$AS_WALL" \
      -v redrain="$(svc_field "$EXEC_LINE" redrain_computes)" \
      -v deferred="$(svc_field "$EXEC_LINE" deferred_pushes)" \
    'BEGIN { printf "    \"async\": {\"compute_units\": %s, \"push_updates\": %s, \"modeled_time\": %s, \"jobs_per_modeled_unit\": %.6g, \"redrain_computes\": %s, \"deferred_pushes\": %s, \"wall_seconds_median\": %s, \"jobs_per_second_wall\": %.4f},\n", cu, push, mtime, (mtime > 0 ? n / mtime : 0), redrain, deferred, wall, (wall > 0 ? n / wall : 0) }'
  awk -v b="$BSP_CU" -v a="$AS_CU" \
    'BEGIN { printf "    \"compute_units_ratio_async_over_bsp\": %.4f,\n", (b > 0 ? a / b : 0) }'
  awk -v b="$BSP_MTIME" -v a="$AS_MTIME" \
    'BEGIN { printf "    \"modeled_time_ratio_async_over_bsp\": %.4f,\n", (b > 0 ? a / b : 0) }'
  printf '    "async_service": {"jobs": "%s", "completed": %s, "shed": %s, ' \
         "$EXEC_SVC_JOBS" "$(svc_field "$EXEC_SVC_LINE" completed)" \
         "$(svc_field "$EXEC_SVC_LINE" shed)"
  printf '"p95_latency_steps": %s, "wall_seconds_median": %s, "sustained_jobs_per_second": %s}\n' \
         "$(svc_field "$EXEC_SVC_LINE" p95)" \
         "$(svc_field "$EXEC_SVC_LINE" wall_seconds)" \
         "$(svc_field "$EXEC_SVC_LINE" sustained_jobs_per_second)"
  printf '  },\n'
} > "$EXECUTION"

# Partition-quality record (docs/partitioning.md): every strategy's build-time quality
# indices on the headline graph, plus a partitioner x admission-policy ablation on the
# admission workload. Everything here is modeled — exact and machine-independent (the
# quality indices are pure functions of the deterministic layout; admission wait steps
# are a pure function of the modeled schedule).
PARTITION=$(mktemp)
PART_CSV=$(mktemp)
trap 'rm -f "$CSV" "$WALLS" "$ADMISSION" "$ADM_POINT" "$ADM_CSV" "$SERVICE" "$ROBUSTNESS" "$EXECUTION" "$PARTITION" "$PART_CSV"; rm -rf "$ROB_DIR"' EXIT
part_quality_line() {  # $1 = partitioner; prints the CLI's "partition:" summary line
  # A dedicated CSV keeps "$CSV" (read by the headline record below) untouched.
  "$BUILD_DIR/tools/cgraph_cli" --rmat="$RMAT" --jobs=bfs --partitions="$PARTITIONS" \
    --partitioner="$1" --csv="$PART_CSV" | grep '^partition:'
}
emit_quality() {  # $1 = partitioner, $2 = trailing comma
  local line
  line=$(part_quality_line "$1")
  printf '      "%s": {"edge_cut_fraction": %s, "replication_factor": %s, "mirror_count": %s, "edge_balance": %s, "vertex_balance": %s}%s\n' \
    "$1" "$(svc_field "$line" edge_cut_fraction)" \
    "$(svc_field "$line" replication_factor)" "$(svc_field "$line" mirror_count)" \
    "$(svc_field "$line" edge_balance)" "$(svc_field "$line" vertex_balance)" "$2"
}
emit_part_adm() {  # $1 = partitioner, $2 = trailing comma
  local pol sep mean max scored overlap wall
  printf '      "%s": {' "$1"
  sep=""
  for pol in fifo overlap predict; do
    run_admission "$pol" 1 --partitioner="$1" > "$ADM_POINT"
    read -r mean max scored overlap wall < "$ADM_POINT"
    printf '%s"%s": {"mean_wait_steps": %s, "max_wait_steps": %s, "wall_seconds": %s}' \
      "$sep" "$pol" "$mean" "$max" "$wall"
    sep=", "
  done
  printf '}%s\n' "$2"
}
{
  printf '  "partition": {\n'
  printf '    "config": {"rmat": "%s", "partitions": %d, ' "$RMAT" "$PARTITIONS"
  printf '"admission": {"rmat": "%s", "jobs": "%s", "arrivals": "%s", "partitions": %d, "max_jobs": %d, "workers": 1}},\n' \
         "$ADM_RMAT" "$ADM_JOBS" "$ADM_ARRIVALS" "$ADM_PARTITIONS" "$ADM_MAX_JOBS"
  printf '    "quality": {\n'
  emit_quality even_edge ","
  emit_quality hash_source ","
  emit_quality greedy ","
  emit_quality degree ""
  printf '    },\n'
  printf '    "admission_ablation": {\n'
  emit_part_adm even_edge ","
  emit_part_adm greedy ","
  emit_part_adm degree ""
  printf '    }\n'
  printf '  }\n'
} > "$PARTITION"

# $CSV still holds the last (workers=4) sweep run; modeled columns are run-invariant.
awk -F, -v rmat="$RMAT" -v jobs="$JOBS" -v arrivals="$ARRIVALS" \
    -v partitions="$PARTITIONS" -v sweep="$WORKERS_SWEEP" -v runs="$RUNS_PER_POINT" \
    -v walls_file="$WALLS" '
  NR > 1 && $2 != "total" { n_jobs++ }
  $2 == "total" {
    compute_units = $7; below_cache = $9 + $10; modeled = $13
  }
  END {
    n_points = 0
    headline_wall = 0
    best_workers = 0
    while ((getline line < walls_file) > 0) {
      split(line, f, " ")
      ++n_points
      point_workers[n_points] = f[1]
      point_wall[n_points] = f[2]
      # The headline is the BEST sweep point (lowest median wall), recorded explicitly
      # as best_workers below — not an alias of whichever point happened to run last.
      if (headline_wall == 0 || f[2] + 0 < headline_wall + 0) {
        headline_wall = f[2]
        best_workers = f[1]
      }
    }
    wall_tp = headline_wall > 0 ? n_jobs / headline_wall : 0
    modeled_tp = modeled > 0 ? n_jobs / modeled : 0
    printf "{\n"
    printf "  \"bench\": \"ltp_throughput\",\n"
    printf "  \"config\": {\"rmat\": \"%s\", \"jobs\": \"%s\", \"arrivals\": \"%s\", ", rmat, jobs, arrivals
    printf "\"partitions\": %d, ", partitions
    printf "\"workers_sweep\": \"%s\", \"runs_per_point\": %d},\n", sweep, runs
    printf "  \"jobs_completed\": %d,\n", n_jobs
    printf "  \"runs\": [\n"
    for (i = 1; i <= n_points; ++i) {
      tp = point_wall[i] > 0 ? n_jobs / point_wall[i] : 0
      printf "    {\"workers\": %d, \"wall_seconds_median\": %s, \"jobs_per_second_wall\": %.4f}%s\n", \
             point_workers[i], point_wall[i], tp, i < n_points ? "," : ""
    }
    printf "  ],\n"
    printf "  \"best_workers\": %d,\n", best_workers
    printf "  \"wall_seconds\": %s,\n", headline_wall
    printf "  \"jobs_per_second_wall\": %.4f,\n", wall_tp
    printf "  \"jobs_per_modeled_unit\": %.6g,\n", modeled_tp
    printf "  \"total_compute_units\": %s,\n", compute_units
    printf "  \"bytes_below_cache\": %s,\n", below_cache
  }' "$CSV" > "$OUT"
cat "$ADMISSION" "$SERVICE" "$ROBUSTNESS" "$EXECUTION" "$PARTITION" >> "$OUT"
echo "}" >> "$OUT"

echo "wrote $OUT"
