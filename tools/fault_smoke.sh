#!/usr/bin/env bash
# Fault-injection recovery smoke (docs/robustness.md), shared by run_bench.sh SMOKE=1
# and the sanitizer CI jobs: inject a mid-run per-job fault, recover the job from its
# checkpoint, and require the recovered run to be equivalent to a fault-free run —
#
#   (1) the process survives the fault (per-job failure isolation, no abort);
#   (2) the recovered run's schedule-invariant compute columns (CSV fields 1-7:
#       executor,job,iterations,vertex_computes,edge_traversals,push_updates,
#       compute_units) are byte-identical to the clean run's. The charge columns are
#       excluded by design: they couple through the shared cache simulation, whose
#       history extends through the failed attempt;
#   (3) the converged values of every job — min-accumulator programs only, so
#       equality is exact — are byte-identical to the clean run's;
#   (4) checkpointing at the documented K=8 cadence costs at most 5% of the run's
#       modeled time (checkpoint_overhead_ratio, modeled analytically from
#       checkpoint_bytes — checkpoints add no hierarchy charge).
#
# Usage: tools/fault_smoke.sh [BUILD_DIR] (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
CLI="$BUILD_DIR/tools/cgraph_cli"

# The min-accumulator mix on the bench service graph; trigger@60 lands mid-flight for
# job 1 (wcc, ~6 iterations), after its first --checkpoint-every=2 boundary.
RMAT="12,8"
JOBS="sssp,wcc,bfs"
PARTITIONS=16
FAULT="trigger@60:1"
CHECKPOINT_EVERY=2

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$CLI" --rmat="$RMAT" --jobs="$JOBS" --partitions="$PARTITIONS" \
  --csv="$TMP/clean.csv" --values-out="$TMP/clean.values" >/dev/null

FAULTED=$("$CLI" --rmat="$RMAT" --jobs="$JOBS" --partitions="$PARTITIONS" \
  --checkpoint-every="$CHECKPOINT_EVERY" --inject-fault="$FAULT" \
  --csv="$TMP/fault.csv" --values-out="$TMP/fault.values")
LINE=$(grep '^robustness:' <<<"$FAULTED")
INJECTED=$(sed -n 's/.* injected=\([0-9]*\).*/\1/p' <<<"$LINE")
RECOVERIES=$(sed -n 's/.* recoveries=\([0-9]*\).*/\1/p' <<<"$LINE")
UNRECOVERED=$(sed -n 's/.* unrecovered=\([0-9]*\).*/\1/p' <<<"$LINE")
echo "fault smoke: $LINE"
if [ "$INJECTED" != "1" ] || [ "$RECOVERIES" != "1" ] || [ "$UNRECOVERED" != "0" ]; then
  echo "FAIL: expected exactly one injected fault, one recovery, nothing unrecovered" >&2
  exit 1
fi

if ! diff <(cut -d, -f1-7 "$TMP/clean.csv") <(cut -d, -f1-7 "$TMP/fault.csv") >/dev/null; then
  echo "FAIL: recovered run's compute columns differ from the fault-free run" >&2
  diff <(cut -d, -f1-7 "$TMP/clean.csv") <(cut -d, -f1-7 "$TMP/fault.csv") >&2 || true
  exit 1
fi
if ! diff "$TMP/clean.values" "$TMP/fault.values" >/dev/null; then
  echo "FAIL: recovered run's converged values differ from the fault-free run" >&2
  exit 1
fi
echo "OK: fault injected, job recovered from its checkpoint, results byte-identical"

OVERHEAD=$("$CLI" --rmat="$RMAT" --jobs="$JOBS" --partitions="$PARTITIONS" \
  --checkpoint-every=8 | sed -n 's/.*checkpoint_overhead_ratio=\([0-9.]*\).*/\1/p')
echo "fault smoke: checkpoint_overhead_ratio=$OVERHEAD at --checkpoint-every=8"
awk -v r="$OVERHEAD" 'BEGIN { exit (r <= 0.05) ? 0 : 1 }' || {
  echo "FAIL: checkpoint overhead ratio $OVERHEAD exceeds 0.05 at --checkpoint-every=8" >&2
  exit 1
}
echo "OK: checkpoint overhead within 5% of modeled time"
