// cgraph_lint: repo-specific determinism/failure-boundary linter (docs/static_analysis.md).
//
// Usage:
//   cgraph_lint [--root=DIR] [--suppressions=FILE] [--allowlist=FILE] [paths...]
//
// Paths are repo-relative scan roots (default: `src tools`). Exit code 0 when clean,
// 1 when findings remain after suppressions, 2 on usage or config errors. Findings go
// to stdout as `file:line rule message` in deterministic order; diagnostics to stderr.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace {

bool ReadFile(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int Usage() {
  std::cerr << "usage: cgraph_lint [--root=DIR] [--suppressions=FILE] "
               "[--allowlist=FILE] [paths...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string suppressions_path;
  std::string allowlist_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--suppressions=", 0) == 0) {
      suppressions_path = arg.substr(15);
    } else if (arg.rfind("--allowlist=", 0) == 0) {
      allowlist_path = arg.substr(12);
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    roots = {"src", "tools"};
  }

  namespace fs = std::filesystem;
  // The committed config files are picked up automatically when present under the
  // scan root, so `cgraph_lint` from a repo checkout needs no flags at all.
  if (suppressions_path.empty()) {
    const fs::path candidate = fs::path(root) / "tools/lint/lint_suppressions.txt";
    if (fs::exists(candidate)) {
      suppressions_path = candidate.string();
    }
  }
  if (allowlist_path.empty()) {
    const fs::path candidate = fs::path(root) / "tools/lint/stage_check_allowlist.txt";
    if (fs::exists(candidate)) {
      allowlist_path = candidate.string();
    }
  }

  cgraph::lint::Config config;
  if (!allowlist_path.empty()) {
    std::string content;
    if (!ReadFile(allowlist_path, &content)) {
      std::cerr << "cgraph-lint: cannot read allowlist " << allowlist_path << "\n";
      return 2;
    }
    config.allowed_stage_checks = cgraph::lint::ParseAllowlistFile(content);
  }
  if (!suppressions_path.empty()) {
    std::string content;
    if (!ReadFile(suppressions_path, &content)) {
      std::cerr << "cgraph-lint: cannot read suppressions " << suppressions_path
                << "\n";
      return 2;
    }
    std::string error;
    if (!cgraph::lint::ParseSuppressionFile(content, &config.suppressions, &error)) {
      std::cerr << "cgraph-lint: " << suppressions_path << ": " << error << "\n";
      return 2;
    }
    // Report unused entries against the repo-relative name so output does not vary
    // with how the tool was invoked.
    config.suppression_file = "tools/lint/lint_suppressions.txt";
  }

  const std::vector<cgraph::lint::Finding> findings =
      cgraph::lint::LintTree(root, roots, config);
  std::cout << cgraph::lint::FormatFindings(findings);
  if (!findings.empty()) {
    std::cerr << "cgraph-lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  std::cerr << "cgraph-lint: clean\n";
  return 0;
}
