#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

namespace cgraph::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// One identifier token in the stripped text.
struct Ident {
  std::string_view name;
  size_t pos = 0;  // Offset of the first character in the stripped text.
};

std::vector<Ident> ScanIdentifiers(std::string_view stripped) {
  std::vector<Ident> out;
  size_t i = 0;
  while (i < stripped.size()) {
    if (IsIdentStart(stripped[i])) {
      size_t j = i + 1;
      while (j < stripped.size() && IsIdentChar(stripped[j])) {
        ++j;
      }
      out.push_back(Ident{stripped.substr(i, j - i), i});
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

int LineOf(std::string_view text, size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos), '\n'));
}

size_t NextNonWs(std::string_view text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

size_t PrevNonWs(std::string_view text, size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(text[pos])) == 0) {
      return pos;
    }
  }
  return std::string_view::npos;
}

// True when the identifier at `id` is reached through `std::` (exactly, after
// whitespace), e.g. `std :: thread`.
bool PrecededByStd(std::string_view stripped, const Ident& id) {
  size_t p = PrevNonWs(stripped, id.pos);
  if (p == std::string_view::npos || stripped[p] != ':') {
    return false;
  }
  p = PrevNonWs(stripped, p);
  if (p == std::string_view::npos || stripped[p] != ':') {
    return false;
  }
  p = PrevNonWs(stripped, p);
  if (p == std::string_view::npos || !IsIdentChar(stripped[p])) {
    return false;
  }
  size_t start = p;
  while (start > 0 && IsIdentChar(stripped[start - 1])) {
    --start;
  }
  return stripped.substr(start, p - start + 1) == "std";
}

// Returns the offset one past the matching close for the bracket pair opened at
// `open` ('(' or '<'), or npos when unbalanced. The angle variant ignores `->`.
size_t SkipBalanced(std::string_view text, size_t open, char open_c, char close_c) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == open_c) {
      ++depth;
    } else if (c == close_c) {
      if (close_c == '>' && i > 0 && text[i - 1] == '-') {
        continue;  // An `->` arrow, not a template close.
      }
      --depth;
      if (depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string_view::npos;
}

bool HasSuffix(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         std::string_view(s).substr(s.size() - suffix.size()) == suffix;
}

// --- determinism-clock / determinism-rand -------------------------------------------

// Wall-clock sources: any appearance is a finding.
const std::set<std::string_view> kClockTypes = {
    "system_clock", "high_resolution_clock", "steady_clock", "gettimeofday",
    "clock_gettime", "timespec_get",         "localtime",    "gmtime",
    "ftime",         "mktime",
};
// `time(...)` / `clock(...)`: flagged only in call position so fields like
// `submit_time` or `arrival_step` never trip the rule.
const std::set<std::string_view> kClockCalls = {"time", "clock"};

// Random engines/types: any appearance is a finding.
const std::set<std::string_view> kRandTypes = {
    "random_device",        "mt19937",
    "mt19937_64",           "minstd_rand",
    "minstd_rand0",         "default_random_engine",
    "knuth_b",              "ranlux24",
    "ranlux48",             "ranlux24_base",
    "ranlux48_base",        "random_shuffle",
    "mersenne_twister_engine", "linear_congruential_engine",
    "subtract_with_carry_engine",
};
// C random APIs: call position only (a member named `random` is fine; `random(` is not).
const std::set<std::string_view> kRandCalls = {
    "rand", "srand", "rand_r", "drand48", "srand48", "lrand48", "mrand48", "random",
};

void CheckDeterminism(const std::string& path, std::string_view stripped,
                      const std::vector<Ident>& idents, std::vector<Finding>* out) {
  const bool rand_exempt = path == "src/common/prng.h";
  for (const Ident& id : idents) {
    const bool call_position =
        NextNonWs(stripped, id.pos + id.name.size()) < stripped.size() &&
        stripped[NextNonWs(stripped, id.pos + id.name.size())] == '(';
    if (kClockTypes.count(id.name) != 0 ||
        (kClockCalls.count(id.name) != 0 && call_position)) {
      out->push_back(Finding{
          path, LineOf(stripped, id.pos), "determinism-clock",
          "wall-clock source '" + std::string(id.name) +
              "' — modeled metrics are scheduling-step based and must be byte-identical "
              "across runs; see docs/static_analysis.md"});
      continue;
    }
    if (rand_exempt) {
      continue;
    }
    if (kRandTypes.count(id.name) != 0 ||
        (kRandCalls.count(id.name) != 0 && call_position)) {
      out->push_back(Finding{
          path, LineOf(stripped, id.pos), "determinism-rand",
          "random source '" + std::string(id.name) +
              "' — use the seeded generators in src/common/prng.h so a fixed seed "
              "replays bit-for-bit"});
    }
  }
}

// --- unordered-iter -----------------------------------------------------------------

const std::set<std::string_view> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

// Harvests the declared name following a container type token: skips template
// arguments and `*`/`&` decorations, rejects nested-type uses (`>::iterator`) and
// function declarations (`> Name(`).
void HarvestDeclName(std::string_view stripped, size_t after_type,
                     std::set<std::string>* names) {
  size_t p = NextNonWs(stripped, after_type);
  if (p < stripped.size() && stripped[p] == '<') {
    p = SkipBalanced(stripped, p, '<', '>');
    if (p == std::string_view::npos) {
      return;
    }
    p = NextNonWs(stripped, p);
  }
  while (p < stripped.size() && (stripped[p] == '*' || stripped[p] == '&')) {
    p = NextNonWs(stripped, p + 1);
  }
  if (p >= stripped.size() || !IsIdentStart(stripped[p])) {
    return;
  }
  size_t q = p;
  while (q < stripped.size() && IsIdentChar(stripped[q])) {
    ++q;
  }
  const size_t next = NextNonWs(stripped, q);
  if (next < stripped.size() && (stripped[next] == '(' || stripped[next] == ':')) {
    return;  // Function declaration or `Type::member` scope use.
  }
  names->insert(std::string(stripped.substr(p, q - p)));
}

std::set<std::string> UnorderedNames(std::string_view stripped) {
  const std::vector<Ident> idents = ScanIdentifiers(stripped);
  // Pass 1: `using Alias = ... unordered_xxx ...;` alias names count as container
  // types for pass 2.
  std::set<std::string_view> aliases;
  for (size_t k = 0; k + 1 < idents.size(); ++k) {
    if (idents[k].name != "using") {
      continue;
    }
    const Ident& alias = idents[k + 1];
    const size_t eq = NextNonWs(stripped, alias.pos + alias.name.size());
    if (eq >= stripped.size() || stripped[eq] != '=') {
      continue;
    }
    const size_t semi = stripped.find(';', eq);
    if (semi == std::string_view::npos) {
      continue;
    }
    if (stripped.substr(eq, semi - eq).find("unordered_") != std::string_view::npos) {
      aliases.insert(alias.name);
    }
  }
  // Pass 2: harvest declared variable/member names.
  std::set<std::string> names;
  for (const Ident& id : idents) {
    if (kUnorderedTypes.count(id.name) != 0 || aliases.count(id.name) != 0) {
      HarvestDeclName(stripped, id.pos + id.name.size(), &names);
    }
  }
  return names;
}

// The final identifier of a range-for range expression (`table_`, `*map`,
// `this->entries_` all yield the trailing name). Empty for call expressions.
std::string_view FinalIdentifier(std::string_view expr) {
  size_t end = expr.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(expr[end - 1])) != 0) {
    --end;
  }
  if (end == 0 || !IsIdentChar(expr[end - 1])) {
    return {};
  }
  size_t start = end;
  while (start > 0 && IsIdentChar(expr[start - 1])) {
    --start;
  }
  return expr.substr(start, end - start);
}

void CheckUnorderedIter(const std::string& path, std::string_view stripped,
                        const std::vector<Ident>& idents,
                        const std::set<std::string>& container_names,
                        std::vector<Finding>* out) {
  if (container_names.empty()) {
    return;
  }
  for (const Ident& id : idents) {
    if (id.name != "for") {
      continue;
    }
    const size_t open = NextNonWs(stripped, id.pos + id.name.size());
    if (open >= stripped.size() || stripped[open] != '(') {
      continue;
    }
    const size_t close = SkipBalanced(stripped, open, '(', ')');
    if (close == std::string_view::npos) {
      continue;
    }
    const std::string_view body = stripped.substr(open + 1, close - open - 2);
    // Range-for: exactly one top-level `:` (not `::`) and no top-level `;`.
    size_t colon = std::string_view::npos;
    int depth = 0;
    bool classic = false;
    for (size_t i = 0; i < body.size(); ++i) {
      const char c = body[i];
      if (c == '(' || c == '[' || c == '{') {
        ++depth;
      } else if (c == ')' || c == ']' || c == '}') {
        --depth;
      } else if (depth == 0 && c == ';') {
        classic = true;
        break;
      } else if (depth == 0 && c == ':') {
        if (i + 1 < body.size() && body[i + 1] == ':') {
          ++i;  // Scope resolution.
          continue;
        }
        colon = i;
      }
    }
    if (classic || colon == std::string_view::npos) {
      continue;
    }
    const std::string_view range = body.substr(colon + 1);
    const std::string_view name = FinalIdentifier(range);
    if (!name.empty() && container_names.count(std::string(name)) != 0) {
      out->push_back(Finding{
          path, LineOf(stripped, id.pos), "unordered-iter",
          "range-for over unordered container '" + std::string(name) +
              "' — iteration order is implementation-defined and leaks into "
              "CSVs/Report/BENCH output; iterate a sorted key list instead"});
    }
  }
}

// --- check-allowlist ----------------------------------------------------------------

// The stage Run paths covered by the PR 8 failure boundary: data-dependent failures
// return Status; CGRAPH_CHECK is reserved for allowlisted programmer-error invariants.
const std::set<std::string_view> kStageFiles = {
    "src/core/trigger_stage.cc", "src/core/trigger_stage.h",
    "src/core/push_stage.cc",    "src/core/push_stage.h",
    "src/core/load_stage.cc",    "src/core/load_stage.h",
};

void CheckStageChecks(const std::string& path, std::string_view stripped,
                      const std::vector<Ident>& idents, const Config& config,
                      std::vector<Finding>* out) {
  if (kStageFiles.count(path) == 0) {
    return;
  }
  for (const Ident& id : idents) {
    if (id.name.substr(0, 12) != "CGRAPH_CHECK") {
      continue;
    }
    const size_t open = NextNonWs(stripped, id.pos + id.name.size());
    if (open >= stripped.size() || stripped[open] != '(') {
      continue;
    }
    const size_t close = SkipBalanced(stripped, open, '(', ')');
    if (close == std::string_view::npos) {
      continue;
    }
    const std::string normalized =
        std::string(id.name) + "(" +
        NormalizeWhitespace(stripped.substr(open + 1, close - open - 2)) + ")";
    if (std::find(config.allowed_stage_checks.begin(),
                  config.allowed_stage_checks.end(),
                  normalized) == config.allowed_stage_checks.end()) {
      out->push_back(Finding{
          path, LineOf(stripped, id.pos), "check-allowlist",
          "`" + normalized +
              "` is not in tools/lint/stage_check_allowlist.txt — data-dependent "
              "failures in stage Run paths must return Status, not abort"});
    }
  }
}

// --- naked-thread -------------------------------------------------------------------

void CheckNakedThread(const std::string& path, std::string_view stripped,
                      const std::vector<Ident>& idents, std::vector<Finding>* out) {
  if (path == "src/runtime/thread_pool.h" || path == "src/runtime/thread_pool.cc") {
    return;
  }
  for (const Ident& id : idents) {
    const bool std_thread = (id.name == "thread" || id.name == "jthread") &&
                            PrecededByStd(stripped, id);
    const bool pthread = id.name == "pthread_create" || id.name == "pthread_t";
    if (std_thread || pthread) {
      out->push_back(Finding{
          path, LineOf(stripped, id.pos), "naked-thread",
          "raw thread primitive '" + std::string(id.name) +
              "' — all parallelism goes through ThreadPool "
              "(src/runtime/thread_pool.h)"});
    }
  }
}

// --- header-guard -------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string guard;
  guard.reserve(path.size() + 1);
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    } else {
      guard.push_back('_');
    }
  }
  guard.push_back('_');
  return guard;
}

void CheckHeaderGuard(const std::string& path, std::string_view stripped,
                      std::vector<Finding>* out) {
  if (!HasSuffix(path, ".h")) {
    return;
  }
  const std::string expected = ExpectedGuard(path);
  // Collect the preprocessor directives in order, as (line, normalized text).
  std::vector<std::pair<int, std::string>> directives;
  int line = 1;
  size_t start = 0;
  while (start <= stripped.size()) {
    size_t nl = stripped.find('\n', start);
    if (nl == std::string_view::npos) {
      nl = stripped.size();
    }
    std::string_view raw = stripped.substr(start, nl - start);
    const size_t hash = NextNonWs(raw, 0);
    if (hash < raw.size() && raw[hash] == '#') {
      directives.emplace_back(line, NormalizeWhitespace(raw.substr(hash)));
    }
    start = nl + 1;
    ++line;
  }
  const std::string want_ifndef = "#ifndef " + expected;
  const std::string want_define = "#define " + expected;
  if (directives.empty() || directives[0].second != want_ifndef) {
    out->push_back(Finding{
        path, directives.empty() ? 1 : directives[0].first, "header-guard",
        "first preprocessor directive must be `" + want_ifndef +
            "` (canonical path-derived include guard)"});
    return;
  }
  if (directives.size() < 2 || directives[1].second != want_define) {
    out->push_back(Finding{path, directives[0].first, "header-guard",
                           "`" + want_ifndef + "` must be followed by `" + want_define +
                               "`"});
    return;
  }
  if (directives.back().second.substr(0, 6) != "#endif") {
    out->push_back(Finding{path, directives.back().first, "header-guard",
                           "include guard is never closed with `#endif`"});
  }
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

std::string StripCommentsAndStrings(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_close;  // `)delim"` terminator of the active raw string.
  auto blank = [&out](char c) { out.push_back(c == '\n' ? '\n' : ' '); };
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode: {
        if (c == '/' && next == '/') {
          state = State::kLine;
          blank(c);
          blank(next);
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          blank(c);
          blank(next);
          i += 2;
        } else if (c == '"') {
          // Raw string literal? `"` directly preceded by `R` with at most an
          // encoding prefix (u8 / u / U / L) before it.
          bool raw = false;
          if (i > 0 && text[i - 1] == 'R') {
            size_t q = i - 1;
            if (q > 0 && text[q - 1] == '8' && q > 1 && text[q - 2] == 'u') {
              q -= 2;
            } else if (q > 0 &&
                       (text[q - 1] == 'u' || text[q - 1] == 'U' ||
                        text[q - 1] == 'L')) {
              q -= 1;
            }
            raw = q == 0 || !IsIdentChar(text[q - 1]);
          }
          if (raw) {
            size_t d = i + 1;
            while (d < text.size() && text[d] != '(') {
              ++d;
            }
            raw_close = ")" + std::string(text.substr(i + 1, d - i - 1)) + "\"";
            state = State::kRaw;
          } else {
            state = State::kString;
          }
          blank(c);
          ++i;
        } else if (c == '\'' && i > 0 &&
                   std::isalnum(static_cast<unsigned char>(text[i - 1])) != 0) {
          blank(c);  // Digit separator (1'000'000) or literal suffix, not a char.
          ++i;
        } else if (c == '\'') {
          state = State::kChar;
          blank(c);
          ++i;
        } else {
          out.push_back(c);
          ++i;
        }
        break;
      }
      case State::kLine:
        if (c == '\n' && (i == 0 || text[i - 1] != '\\')) {
          state = State::kCode;
        }
        blank(c);
        ++i;
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          blank(c);
          blank(next);
          i += 2;
        } else {
          blank(c);
          ++i;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < text.size()) {
          blank(c);
          blank(next);
          i += 2;
        } else {
          if (c == quote) {
            state = State::kCode;
          }
          blank(c);
          ++i;
        }
        break;
      }
      case State::kRaw:
        if (text.substr(i, raw_close.size()) == raw_close) {
          for (size_t k = 0; k < raw_close.size(); ++k) {
            blank(text[i + k]);
          }
          i += raw_close.size();
          state = State::kCode;
        } else {
          blank(c);
          ++i;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> CollectUnorderedNames(std::string_view stripped) {
  const std::set<std::string> names = UnorderedNames(stripped);
  return std::vector<std::string>(names.begin(), names.end());
}

std::vector<Finding> LintContent(const std::string& path, std::string_view content,
                                 const Config& config,
                                 const std::vector<std::string>& sibling_unordered_names) {
  const std::string stripped = StripCommentsAndStrings(content);
  const std::vector<Ident> idents = ScanIdentifiers(stripped);

  std::set<std::string> container_names = UnorderedNames(stripped);
  container_names.insert(sibling_unordered_names.begin(),
                         sibling_unordered_names.end());

  std::vector<Finding> findings;
  CheckDeterminism(path, stripped, idents, &findings);
  CheckUnorderedIter(path, stripped, idents, container_names, &findings);
  CheckStageChecks(path, stripped, idents, config, &findings);
  CheckNakedThread(path, stripped, idents, &findings);
  CheckHeaderGuard(path, stripped, &findings);
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> ApplySuppressions(const std::vector<Finding>& findings,
                                       const std::vector<std::string>& lines,
                                       const Config& config, std::vector<bool>* used) {
  if (used != nullptr && used->size() != config.suppressions.size()) {
    used->assign(config.suppressions.size(), false);
  }
  std::vector<Finding> kept;
  for (const Finding& f : findings) {
    bool suppressed = false;
    for (size_t s = 0; s < config.suppressions.size(); ++s) {
      const Suppression& sup = config.suppressions[s];
      if (sup.file != f.file || sup.rule != f.rule) {
        continue;
      }
      const size_t idx = static_cast<size_t>(f.line) - 1;
      if (idx < lines.size() &&
          lines[idx].find(sup.needle) != std::string::npos) {
        suppressed = true;
        if (used != nullptr) {
          (*used)[s] = true;
        }
        break;
      }
    }
    if (!suppressed) {
      kept.push_back(f);
    }
  }
  return kept;
}

bool ParseSuppressionFile(std::string_view content, std::vector<Suppression>* out,
                          std::string* error) {
  int line_no = 0;
  for (const std::string& raw : SplitLines(content)) {
    ++line_no;
    const std::string line = NormalizeWhitespace(raw);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t first = line.find(':');
    const size_t second = first == std::string::npos ? std::string::npos
                                                     : line.find(':', first + 1);
    if (second == std::string::npos || second + 1 >= line.size()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) +
                 ": expected `file:rule:needle`, got `" + line + "`";
      }
      return false;
    }
    Suppression s;
    s.file = line.substr(0, first);
    s.rule = line.substr(first + 1, second - first - 1);
    s.needle = line.substr(second + 1);
    s.line = line_no;
    out->push_back(std::move(s));
  }
  return true;
}

std::vector<std::string> ParseAllowlistFile(std::string_view content) {
  std::vector<std::string> out;
  for (const std::string& raw : SplitLines(content)) {
    const std::string line = NormalizeWhitespace(raw);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    out.push_back(line);
  }
  return out;
}

std::string NormalizeWhitespace(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = !out.empty();
    } else {
      if (pending_space) {
        out.push_back(' ');
        pending_space = false;
      }
      out.push_back(c);
    }
  }
  return out;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << " " << f.rule << " " << f.message << "\n";
  }
  return os.str();
}

std::vector<Finding> LintTree(const std::string& repo_root,
                              const std::vector<std::string>& roots,
                              const Config& config) {
  namespace fs = std::filesystem;
  std::set<std::string> paths;  // Repo-relative, sorted — the scan order.
  for (const std::string& root : roots) {
    const fs::path abs = fs::path(repo_root) / root;
    std::error_code ec;
    if (fs::is_regular_file(abs, ec)) {
      paths.insert(root);
      continue;
    }
    for (fs::recursive_directory_iterator it(abs, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (!it->is_regular_file()) {
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      paths.insert(fs::relative(it->path(), repo_root).generic_string());
    }
  }

  auto read = [&](const std::string& rel, std::string* out) {
    std::ifstream in(fs::path(repo_root) / rel, std::ios::binary);
    if (!in) {
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
  };

  std::vector<Finding> all;
  std::vector<bool> used(config.suppressions.size(), false);
  for (const std::string& path : paths) {
    std::string content;
    if (!read(path, &content)) {
      all.push_back(Finding{path, 0, "io-error", "cannot read file"});
      continue;
    }
    // A .cc iterating a container declared in its own header is still caught.
    std::vector<std::string> sibling_names;
    if (HasSuffix(path, ".cc") || HasSuffix(path, ".cpp")) {
      const std::string header =
          path.substr(0, path.rfind('.')) + ".h";
      std::string header_content;
      if (read(header, &header_content)) {
        sibling_names =
            CollectUnorderedNames(StripCommentsAndStrings(header_content));
      }
    }
    const std::vector<Finding> raw =
        LintContent(path, content, config, sibling_names);
    const std::vector<Finding> kept =
        ApplySuppressions(raw, SplitLines(content), config, &used);
    all.insert(all.end(), kept.begin(), kept.end());
  }
  for (size_t s = 0; s < config.suppressions.size(); ++s) {
    if (!used[s]) {
      const Suppression& sup = config.suppressions[s];
      all.push_back(Finding{
          config.suppression_file.empty() ? std::string("<suppressions>")
                                          : config.suppression_file,
          sup.line, "unused-suppression",
          "suppression matched no finding: " + sup.file + ":" + sup.rule + ":" +
              sup.needle + " — delete it so the baseline cannot rot"});
    }
  }
  SortFindings(&all);
  return all;
}

}  // namespace cgraph::lint
