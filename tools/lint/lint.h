// cgraph-lint: repo-specific static invariant checks (docs/static_analysis.md).
//
// A deliberately dependency-free, token/line-level linter for the invariants the
// compiler cannot see but the repo's contracts depend on:
//
//   determinism-clock    no wall-clock reads anywhere in src/ or tools/ — modeled
//                        metrics must be byte-identical across runs/workers; the one
//                        sanctioned reader (src/common/timer.h's WallTimer, which only
//                        feeds the explicitly wall-clock bench columns) carries the
//                        single justified baseline suppression;
//   determinism-rand     no C rand()/std random engines outside src/common/prng.h
//                        (seeded SplitMix64/Xoshiro are the only sanctioned sources);
//   unordered-iter       no range-for over std::unordered_{map,set} in src/ or tools/
//                        (iteration order is implementation-defined and leaks into
//                        CSVs / Report / BENCH JSON);
//   check-allowlist      CGRAPH_CHECK in the stage Run paths only on allowlisted
//                        programmer-error conditions (data-dependent failures must
//                        return Status — the PR 8 failure boundary);
//   naked-thread         no std::thread / pthread_create outside src/runtime/
//                        thread_pool.* (all parallelism goes through ThreadPool);
//   header-guard         every header carries the canonical include guard derived from
//                        its path (the static half of header self-containment; the
//                        compile half is the generated header_selfcheck target).
//
// The lexer strips comments and string/character literals first (preserving line
// structure), so prose and literals never trip token rules — which also lets the
// linter lint its own sources. Output is deterministic: findings sorted by
// (file, line, rule, message), printed as `file:line rule message`.

#ifndef TOOLS_LINT_LINT_H_
#define TOOLS_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

namespace cgraph::lint {

struct Finding {
  std::string file;  // Path as given (repo-relative when scanning a tree).
  int line = 0;      // 1-based.
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

// One suppression entry: `file:rule:needle` — a finding is suppressed when its file
// and rule match exactly and `needle` is a substring of the offending source line.
// Unused entries are themselves reported (rule `unused-suppression`) so the baseline
// cannot rot.
struct Suppression {
  std::string file;
  std::string rule;
  std::string needle;
  int line = 0;  // Line in the suppression file (for unused-entry reporting).
};

struct Config {
  // Normalized (whitespace-collapsed) `MACRO(condition)` strings permitted by the
  // check-allowlist rule in stage Run-path files.
  std::vector<std::string> allowed_stage_checks;
  std::vector<Suppression> suppressions;
  std::string suppression_file;  // Label for unused-suppression findings.
};

// Replaces //- and /**/-comments and the contents of string/char literals (including
// raw strings) with spaces, preserving newlines so line numbers survive.
std::string StripCommentsAndStrings(std::string_view text);

// Lints one file's content. `path` should be repo-relative with forward slashes; rule
// applicability (prng.h / thread_pool.* / stage files) keys off it.
// `sibling_unordered_names` carries unordered-container member names declared in the
// file's own header so a .cc iterating a map declared in its .h is still caught.
std::vector<Finding> LintContent(const std::string& path, std::string_view content,
                                 const Config& config,
                                 const std::vector<std::string>& sibling_unordered_names = {});

// The unordered_{map,set} variable/member names declared in `content` — exposed so
// LintTree (and tests) can feed a header's declarations to its sibling .cc.
std::vector<std::string> CollectUnorderedNames(std::string_view stripped);

// Lints every .h/.cc/.cpp under `roots` (relative to `repo_root`), applying
// suppressions and appending unused-suppression findings. Deterministic order.
std::vector<Finding> LintTree(const std::string& repo_root,
                              const std::vector<std::string>& roots, const Config& config);

// Filters `findings` through `config.suppressions` (matching against `lines`, the
// original source lines of the file the findings came from) and marks used entries in
// `used` (parallel to config.suppressions).
std::vector<Finding> ApplySuppressions(const std::vector<Finding>& findings,
                                       const std::vector<std::string>& lines,
                                       const Config& config, std::vector<bool>* used);

// Parses a suppression file: one `file:rule:needle` per line, `#` comments and blank
// lines ignored. Returns false on malformed lines (error message in *error).
bool ParseSuppressionFile(std::string_view content, std::vector<Suppression>* out,
                          std::string* error);

// Parses the stage-check allowlist: one normalized `MACRO(condition)` per line, `#`
// comments and blank lines ignored.
std::vector<std::string> ParseAllowlistFile(std::string_view content);

// Collapses all whitespace runs to single spaces and trims — the normal form used to
// compare CGRAPH_CHECK conditions against the allowlist.
std::string NormalizeWhitespace(std::string_view text);

// Renders findings as `file:line rule message`, one per line, already sorted.
std::string FormatFindings(const std::vector<Finding>& findings);

}  // namespace cgraph::lint

#endif  // TOOLS_LINT_LINT_H_
