#!/usr/bin/env bash
# Checks that every local markdown link in README.md and docs/*.md resolves to an
# existing file (anchors are stripped; http(s)/mailto links are skipped — no network).
# Exits non-zero listing every broken link. Used by the CI docs job; run locally as
#   tools/check_docs_links.sh
set -euo pipefail
cd "$(dirname "$0")/.."

FILES=(README.md docs/*.md)
BROKEN=0

for file in "${FILES[@]}"; do
  dir=$(dirname "$file")
  # Inline markdown links: [text](target). One link per line after the grep split;
  # code spans are rare enough in these docs that false positives would just be
  # nonexistent-path reports, which the existence check below surfaces loudly.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;   # External: not checked (offline CI).
      \#*) continue ;;                           # Same-file anchor.
    esac
    path="${target%%#*}"                         # Strip a trailing anchor.
    [ -z "$path" ] && continue
    # Relative to the linking file's directory.
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $file -> $target"
      BROKEN=1
    fi
  done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$file" | sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/')
done

if [ "$BROKEN" -ne 0 ]; then
  echo "docs link check FAILED" >&2
  exit 1
fi
echo "docs link check OK (${#FILES[@]} files)"
